//! One Criterion group per paper exhibit: how long each table/figure
//! takes to regenerate at a reduced configuration. (The full-size runs
//! are the `src/bin` binaries.)

use criterion::{criterion_group, criterion_main, Criterion};

use mira::experiments::common::{quick_sim_config, sweep_ur};
use mira::experiments::{energy, latency, patterns, power, tables, thermal};
use mira::traffic::workloads::Application;

fn bench_static_exhibits(c: &mut Criterion) {
    c.bench_function("table1_area", |b| b.iter(tables::table1));
    c.bench_function("table2_params", |b| b.iter(tables::table2));
    c.bench_function("table3_delay", |b| b.iter(tables::table3));
    c.bench_function("fig9_energy_breakdown", |b| b.iter(energy::fig9));
}

fn bench_workload_exhibits(c: &mut Criterion) {
    let apps = [Application::Tpcw, Application::Multimedia];
    c.bench_function("fig1_data_patterns", |b| b.iter(|| patterns::fig1(&apps, 2_000)));
    c.bench_function("fig2_packet_types", |b| b.iter(|| patterns::fig2(&apps, 2_000)));
    c.bench_function("fig13a_short_flits", |b| b.iter(|| patterns::fig13a(&apps, 2_000)));
}

fn bench_simulation_exhibits(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation_exhibits");
    group.sample_size(10);
    group.bench_function("fig11a_12a_12d_sweep_point", |b| {
        b.iter(|| {
            let sweep = sweep_ur(&[0.05], 0.0, quick_sim_config());
            (latency::fig11a(&sweep), power::fig12a(&sweep), power::fig12d(&sweep))
        });
    });
    group.bench_function("fig11b_12b_point", |b| {
        b.iter(|| {
            (
                latency::fig11b(&[0.05], quick_sim_config()),
                power::fig12b(&[0.05], quick_sim_config()),
            )
        });
    });
    group.bench_function("fig11c_single_app", |b| {
        b.iter(|| latency::fig11c(&[Application::Multimedia], 2_000, quick_sim_config()));
    });
    group.bench_function("fig12c_single_app", |b| {
        b.iter(|| power::fig12c(&[Application::Multimedia], 2_000, quick_sim_config()));
    });
    group.bench_function("fig13b_shutdown", |b| {
        b.iter(|| power::fig13b(0.10, quick_sim_config()));
    });
    group.bench_function("fig13c_thermal_point", |b| {
        b.iter(|| thermal::fig13c(&[0.05], quick_sim_config()));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_static_exhibits,
    bench_workload_exhibits,
    bench_simulation_exhibits
);
criterion_main!(benches);
