//! Micro-benchmarks of the analytic models and substrates: thermal
//! solver, energy pricing, coherence trace generation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mira::experiments::thermal::chip_model;
use mira::traffic::workloads::Application;
use mira::Arch;
use mira_nuca::cmp::{CmpConfig, CmpSystem};

fn bench_thermal_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("thermal_solver");
    for arch in [Arch::TwoDB, Arch::ThreeDM] {
        let chip = chip_model(arch, 10.0);
        group.bench_with_input(BenchmarkId::new("solve", arch.name()), &chip, |b, chip| {
            b.iter(|| chip.solve());
        });
    }
    group.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    c.bench_function("cmp_trace_2k_cycles", |b| {
        b.iter(|| {
            let arch = Arch::TwoDB;
            let mut sys = CmpSystem::new(CmpConfig::for_app(
                Application::Tpcw,
                arch.cpu_nodes(),
                arch.cache_nodes(),
                7,
            ));
            sys.generate_trace(2_000)
        });
    });
}

fn bench_energy_pricing(c: &mut Criterion) {
    let pricing = Arch::ThreeDME.network_power();
    let mut counters = mira::noc::stats::ActivityCounters::new();
    counters.cycles = 1_000;
    for _ in 0..1_000 {
        counters.record_buffer_write(0.5);
        counters.record_buffer_read(0.5);
        counters.record_xbar(0.5);
        counters.record_link(1.58, 0.5);
    }
    c.bench_function("network_power_pricing", |b| {
        b.iter(|| pricing.average_power_w(&counters));
    });
}

criterion_group!(benches, bench_thermal_solver, bench_trace_generation, bench_energy_pricing);
criterion_main!(benches);
