//! Micro-benchmarks of the simulation engine: cycles/second for each
//! topology and load level.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mira::arch::Arch;
use mira::experiments::EXPERIMENT_SEED;
use mira::noc::sim::{SimConfig, Simulator};
use mira::noc::traffic::UniformRandom;

fn tiny_sim() -> SimConfig {
    SimConfig {
        warmup_cycles: 100,
        measure_cycles: 400,
        drain_cycles: 1_500,
        ..SimConfig::default()
    }
}

fn bench_architectures(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_cycle_throughput");
    for arch in Arch::HARDWARE {
        group.bench_with_input(BenchmarkId::new("ur_10pct", arch.name()), &arch, |b, &arch| {
            b.iter(|| {
                let mut sim =
                    Simulator::new(arch.topology(), arch.network_config(false), tiny_sim());
                sim.run(Box::new(UniformRandom::new(0.10, 5, EXPERIMENT_SEED)))
            });
        });
    }
    group.finish();
}

fn bench_load_levels(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_load_levels");
    for rate in [0.02_f64, 0.10, 0.30] {
        group.bench_with_input(BenchmarkId::new("2db", format!("{rate:.2}")), &rate, |b, &rate| {
            b.iter(|| {
                let arch = Arch::TwoDB;
                let mut sim =
                    Simulator::new(arch.topology(), arch.network_config(false), tiny_sim());
                sim.run(Box::new(UniformRandom::new(rate, 5, EXPERIMENT_SEED)))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_architectures, bench_load_levels);
criterion_main!(benches);
