//! Micro-benchmarks of `Network::step` itself: flits/sec and cycles/sec
//! for the 2DB / 3DM / 3DM-E routers at a low and a saturated load,
//! with no simulation-driver phases in the timed loop.
//!
//! The `bench_step` binary runs the same matrix without criterion and
//! writes `BENCH_step.json` for CI trend tracking.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mira::arch::Arch;
use mira_bench::drive_network_step;

const CYCLES: u64 = 2_000;

fn bench_step_matrix(c: &mut Criterion) {
    let mut group = c.benchmark_group("network_step");
    for arch in [Arch::TwoDB, Arch::ThreeDM, Arch::ThreeDME] {
        for (load_name, rate) in [("low", 0.05_f64), ("saturated", 0.60)] {
            group.bench_with_input(
                BenchmarkId::new(load_name, arch.name()),
                &(arch, rate),
                |b, &(arch, rate)| {
                    b.iter(|| drive_network_step(arch, rate, CYCLES));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_step_matrix);
criterion_main!(benches);
