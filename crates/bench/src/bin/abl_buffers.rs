//! Ablation: VC count and buffer depth around the paper's V=2, k=4
//! operating point.
use std::time::Instant;

use mira::experiments::ablations::ablate_buffers;
use mira_bench::{emit, Cli};

fn main() {
    let cli = Cli::parse();
    let t0 = Instant::now();
    let fig = ablate_buffers(0.15, cli.sim_config());
    emit(cli, &fig.to_text(), &fig, t0);
}
