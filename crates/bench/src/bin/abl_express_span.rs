//! Ablation: express-channel span on the 6×6 multi-layer mesh.
use std::time::Instant;

use mira::experiments::ablations::ablate_express_span;
use mira_bench::{emit, Cli};

fn main() {
    let cli = Cli::parse();
    let t0 = Instant::now();
    let fig = ablate_express_span(0.10, cli.sim_config());
    emit(cli, &fig.to_text(), &fig, t0);
}
