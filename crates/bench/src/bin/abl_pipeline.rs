//! Ablation: router pipeline depth (Fig. 8(a)-(c) organisations) on the
//! 3DM substrate.
use std::time::Instant;

use mira::experiments::ablations::ablate_pipeline;
use mira_bench::{emit, Cli};

fn main() {
    let cli = Cli::parse();
    let t0 = Instant::now();
    let fig = ablate_pipeline(0.10, cli.sim_config());
    emit(cli, &fig.to_text(), &fig, t0);
}
