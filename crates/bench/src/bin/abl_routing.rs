//! Ablation: X-Y vs turn-model adaptive routing on adversarial traffic.
use std::time::Instant;

use mira::experiments::ablations::ablate_routing;
use mira_bench::{emit, Cli};

fn main() {
    let cli = Cli::parse();
    let t0 = Instant::now();
    let fig = ablate_routing(0.15, cli.sim_config());
    emit(cli, &fig.to_text(), &fig, t0);
}
