//! Runs every table and figure in sequence (the full reproduction pass).
//!
//! `--quick` keeps the total under a couple of minutes; the default
//! configuration is what EXPERIMENTS.md records.
use std::time::Instant;

use mira::experiments::common::sweep_ur;
use mira::experiments::{
    ablations, energy, faults, latency, patterns, power, scorecard, tables, thermal,
};
use mira::traffic::workloads::Application;
use mira_bench::{rates_nuca, rates_ur, Cli};

fn main() {
    let cli = Cli::parse();
    let t0 = Instant::now();
    let sim = cli.sim_config();
    let cycles = if cli.quick { 4_000 } else { 20_000 };
    let trace_cycles = cli.trace_cycles();

    println!("{}", tables::table1().to_text());
    println!("{}", tables::table2().to_text());
    println!("{}", tables::table3().to_text());
    println!("{}", energy::fig9().to_text());
    println!("{}", patterns::fig1(&Application::ALL, cycles).to_text());
    println!("{}", patterns::fig2(&Application::ALL, cycles).to_text());
    println!("{}", patterns::fig13a(&Application::ALL, cycles).to_text());

    eprintln!("[static exhibits done at {:.1?}; starting UR sweep]", t0.elapsed());
    let sweep = sweep_ur(&rates_ur(cli), 0.0, sim);
    println!("{}", latency::fig11a(&sweep).to_text());
    println!("{}", power::fig12a(&sweep).to_text());
    println!("{}", power::fig12d(&sweep).to_text());

    eprintln!("[UR done at {:.1?}; starting NUCA-UR]", t0.elapsed());
    println!("{}", latency::fig11b(&rates_nuca(cli), sim).to_text());
    println!("{}", power::fig12b(&rates_nuca(cli), sim).to_text());

    eprintln!("[NUCA-UR done at {:.1?}; starting traces]", t0.elapsed());
    println!("{}", latency::fig11c(&Application::PRESENTED, trace_cycles, sim).to_text());
    println!("{}", power::fig12c(&Application::PRESENTED, trace_cycles, sim).to_text());
    println!("{}", latency::fig11d(&sweep, 0.05, Application::Apache, trace_cycles, sim).to_text());

    eprintln!("[traces done at {:.1?}; starting shutdown/thermal]", t0.elapsed());
    println!("{}", power::fig13b(0.10, sim).to_text());
    let rates: &[f64] = if cli.quick { &[0.05, 0.20] } else { &[0.05, 0.15, 0.30] };
    println!("{}", thermal::fig13c(rates, sim).to_text());

    eprintln!("[paper exhibits done at {:.1?}; starting extensions]", t0.elapsed());
    println!("{}", ablations::ablate_pipeline(0.10, sim).to_text());
    println!("{}", ablations::ablate_express_span(0.10, sim).to_text());
    println!("{}", ablations::ablate_buffers(0.15, sim).to_text());
    println!("{}", ablations::ablate_routing(0.15, sim).to_text());
    println!("{}", latency::tail_latency(0.15, sim).to_text());
    println!("{}", faults::fault_sweep(&faults::fault_rates_ppm(cli.quick), sim).to_text());

    let claims = scorecard::run_scorecard(sim, trace_cycles);
    println!("{}", scorecard::scorecard_table(&claims).to_text());
    println!(
        "{}/{} claims reproduced\n",
        claims.iter().filter(|c| c.passes()).count(),
        claims.len()
    );

    eprintln!("[all experiments done in {:.1?}]", t0.elapsed());
}
