//! `Network::step` throughput runner: times the same arch × load matrix
//! as the `step_throughput` criterion bench with plain wall-clock
//! timing and writes `BENCH_step.json` into the current directory (the
//! repo root under CI) for trend tracking. A full run also appends the
//! sharded-stepping scaling block (DESIGN.md §18): a 16×16 and a 32×32
//! 2D mesh at saturated load, each at 1, 2 and 4 shard workers.
//!
//! `--quick` shortens the timed window; `--json` also prints the file's
//! contents to stdout. `--mesh WxH` restricts the run to that 2D mesh
//! (2DB router configuration) and `--shards <n>` sets the intra-run
//! worker count — together they time one scaling configuration, e.g.
//! `bench_step --mesh 16x16 --shards 4`.
//!
//! `--compare <baseline.json>` turns the run into a regression gate: the
//! baseline (a previously committed `BENCH_step.json`) is read *before*
//! the fresh report overwrites it, each measured point is matched to its
//! baseline point by (arch, mesh, shards, load), and the process exits
//! non-zero if any point's `cycles_per_sec` falls more than 20% below
//! the baseline. A restricted run (`--mesh`/`--shards`) gates only the
//! points it measured; a full run also fails on baseline points missing
//! from the fresh report.
use std::time::Instant;

use mira::arch::Arch;
use mira::experiments::common::EXPERIMENT_SEED;
use mira_bench::{drive_network_step_sharded, write_obs_artifacts, Cli};
use serde::{Deserialize, Serialize};

/// Fractional slowdown vs the baseline that fails the `--compare` gate.
const COMPARE_TOLERANCE: f64 = 0.20;

/// One timed (architecture, mesh, shards, load) cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct StepPoint {
    arch: String,
    /// Mesh dimensions, `WxH` (or `WxHxD` for the 3D architectures).
    mesh: String,
    /// Intra-run shard workers the mesh was split across (DESIGN.md §18).
    shards: u64,
    load: f64,
    cycles: u64,
    flits_ejected: u64,
    wall_ms: f64,
    cycles_per_sec: f64,
    flits_per_sec: f64,
}

/// The whole matrix, as written to `BENCH_step.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct StepReport {
    quick: bool,
    cycles_per_point: u64,
    /// CPUs available to the measuring host: shard speedups are bounded
    /// by this, so scaling points are only comparable across runs with
    /// the same value.
    host_cpus: u64,
    /// True when `--mesh`/`--shards` restricted the run to a subset of
    /// the matrix; the compare gate then skips baseline points the run
    /// never measured.
    filtered: bool,
    points: Vec<StepPoint>,
}

/// The native topology of the benchmarked architectures, as recorded in
/// each point's `mesh` field.
fn native_mesh(arch: Arch) -> &'static str {
    match arch {
        Arch::ThreeDB => "3x3x4",
        _ => "6x6",
    }
}

/// Compares the fresh report against `baseline`, returning the points
/// that regressed past [`COMPARE_TOLERANCE`]. On a full (unfiltered)
/// run, baseline points with no measured counterpart are reported as
/// regressions too — a silently dropped point must not pass the gate.
fn regressions(baseline: &StepReport, fresh: &StepReport) -> Vec<String> {
    let mut failures = Vec::new();
    for base in &baseline.points {
        let Some(point) = fresh.points.iter().find(|p| {
            p.arch == base.arch
                && p.mesh == base.mesh
                && p.shards == base.shards
                && (p.load - base.load).abs() < 1e-9
        }) else {
            if !fresh.filtered {
                failures.push(format!(
                    "{} {} x{} @ load {}: missing from fresh run",
                    base.arch, base.mesh, base.shards, base.load
                ));
            }
            continue;
        };
        let floor = base.cycles_per_sec * (1.0 - COMPARE_TOLERANCE);
        if point.cycles_per_sec < floor {
            failures.push(format!(
                "{} {} x{} @ load {}: {:.0} cycles/s is {:.1}% below baseline {:.0}",
                base.arch,
                base.mesh,
                base.shards,
                base.load,
                point.cycles_per_sec,
                (1.0 - point.cycles_per_sec / base.cycles_per_sec) * 100.0,
                base.cycles_per_sec,
            ));
        }
    }
    failures
}

fn main() {
    let cli = Cli::parse();
    let t0 = Instant::now();
    // Read the baseline before the fresh report overwrites the file (the
    // common case is comparing against the committed BENCH_step.json that
    // this run replaces).
    let baseline: Option<StepReport> = cli.compare.map(|path| {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {path}: {e}");
            std::process::exit(1);
        });
        serde_json::from_str(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse baseline {path}: {e:?}");
            std::process::exit(1);
        })
    });
    let cycles: u64 = if cli.quick { 3_000 } else { 20_000 };

    let mut points = Vec::new();
    let mut bench = |arch: Arch, mesh: Option<(usize, usize)>, rate: f64, shards: usize| {
        let mesh_name =
            mesh.map_or_else(|| native_mesh(arch).to_string(), |(w, h)| format!("{w}x{h}"));
        // One untimed pass warms allocator, caches and the shard worker
        // pool so the timed pass measures steady-state stepping.
        drive_network_step_sharded(arch, rate, cycles.min(1_000), mesh, shards);
        let started = Instant::now();
        let flits = drive_network_step_sharded(arch, rate, cycles, mesh, shards);
        let wall = started.elapsed().as_secs_f64();
        let denom = wall.max(f64::MIN_POSITIVE);
        let point = StepPoint {
            arch: arch.name().to_string(),
            mesh: mesh_name,
            shards: shards.max(1) as u64,
            load: rate,
            cycles,
            flits_ejected: flits,
            wall_ms: wall * 1e3,
            cycles_per_sec: cycles as f64 / denom,
            flits_per_sec: flits as f64 / denom,
        };
        eprintln!(
            "[bench_step] {} {} x{} ({rate}): {:.0} cycles/s, {:.0} flits/s",
            point.arch, point.mesh, point.shards, point.cycles_per_sec, point.flits_per_sec,
        );
        points.push(point);
    };

    let filtered = cli.mesh.is_some() || cli.shards.is_some();
    if let Some(mesh) = cli.mesh {
        // Restricted scaling run: one mesh, both loads, one shard count.
        let shards = cli.shards.unwrap_or(1);
        for rate in [0.05_f64, 0.60] {
            bench(Arch::TwoDB, Some(mesh), rate, shards);
        }
    } else {
        let shards = cli.shards.unwrap_or(1);
        for arch in [Arch::TwoDB, Arch::ThreeDM, Arch::ThreeDME] {
            for rate in [0.05_f64, 0.60] {
                bench(arch, None, rate, shards);
            }
        }
        if !filtered {
            // Sharded-stepping scaling block: larger meshes where the
            // per-cycle work is big enough to amortise shard barriers.
            for mesh in [(16usize, 16usize), (32, 32)] {
                for shards in [1usize, 2, 4] {
                    bench(Arch::TwoDB, Some(mesh), 0.60, shards);
                }
            }
        }
    }

    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get()) as u64;
    let report =
        StepReport { quick: cli.quick, cycles_per_point: cycles, host_cpus, filtered, points };
    if mira_obs::enabled() {
        append_ledger(&report, t0);
    }
    let json = serde_json::to_string_pretty(&report).expect("serialisable report");
    let path = "BENCH_step.json";
    std::fs::write(path, &json).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    });
    if cli.json {
        println!("{json}");
    } else {
        println!("wrote {} points to {path}", report.points.len());
    }
    if let Some(baseline) = &baseline {
        let failures = regressions(baseline, &report);
        if failures.is_empty() {
            eprintln!(
                "[bench_step] regression gate passed: measured points within {:.0}% of baseline",
                COMPARE_TOLERANCE * 100.0,
            );
        } else {
            for f in &failures {
                eprintln!("[bench_step] REGRESSION: {f}");
            }
            eprintln!("[done in {:.1?}]", t0.elapsed());
            std::process::exit(1);
        }
    }
    write_obs_artifacts(cli);
    eprintln!("[done in {:.1?}]", t0.elapsed());
}

/// Records the matrix in the durable run ledger (bench_step drives the
/// network directly rather than through the [`Runner`], so it appends
/// its own entry). IO failure warns instead of failing the bench.
///
/// [`Runner`]: mira::experiments::runner::Runner
fn append_ledger(report: &StepReport, t0: Instant) {
    use mira_obs::ledger::{self, LedgerEntry};
    let labels: Vec<String> = report
        .points
        .iter()
        .map(|p| format!("{} {} x{} @ {}", p.arch, p.mesh, p.shards, p.load))
        .collect();
    let hash =
        ledger::config_hash("bench_step", labels.iter().map(|l| (l.as_str(), EXPERIMENT_SEED)));
    let build = mira_obs::provenance::Provenance::current();
    let wall = t0.elapsed();
    let total_cycles: u64 = report.points.iter().map(|p| p.cycles).sum();
    let total_flits: u64 = report.points.iter().map(|p| p.flits_ejected).sum();
    let wall_s = wall.as_secs_f64().max(f64::MIN_POSITIVE);
    let peak = mira_obs::registry::ARENA_LIVE_PEAK.get();
    let entry = LedgerEntry {
        ts_ms: ledger::unix_millis(),
        exhibit: "bench_step".to_string(),
        config_hash: ledger::hash_hex(hash),
        seed: EXPERIMENT_SEED,
        seed_min: EXPERIMENT_SEED,
        seed_max: EXPERIMENT_SEED,
        git_rev: build.git_rev,
        profile: build.profile,
        rustc: build.rustc,
        points: report.points.len(),
        jobs: 1,
        wall_ms: wall.as_secs_f64() * 1e3,
        cycles_simulated: total_cycles,
        kcycles_per_sec: total_cycles as f64 / 1e3 / wall_s,
        mflits_per_sec: total_flits as f64 / 1e6 / wall_s,
        saturated_points: 0,
        failed_points: 0,
        resumed_points: 0,
        peak_arena_flits: peak,
        anomalies: None,
        anomaly_kinds: None,
    };
    let path = ledger::default_path();
    if let Err(e) = ledger::append(&path, &entry) {
        eprintln!("[bench_step] warning: could not append run ledger {}: {e}", path.display());
    }
    ledger::record_session(entry);
}
