//! `Network::step` throughput runner: times the same arch × load matrix
//! as the `step_throughput` criterion bench with plain wall-clock
//! timing and writes `BENCH_step.json` into the current directory (the
//! repo root under CI) for trend tracking.
//!
//! `--quick` shortens the timed window; `--json` also prints the file's
//! contents to stdout.
use std::time::Instant;

use mira::arch::Arch;
use mira_bench::{drive_network_step, Cli};
use serde::Serialize;

/// One timed (architecture, load) cell.
#[derive(Debug, Clone, Serialize)]
struct StepPoint {
    arch: String,
    load: f64,
    cycles: u64,
    flits_ejected: u64,
    wall_ms: f64,
    cycles_per_sec: f64,
    flits_per_sec: f64,
}

/// The whole matrix, as written to `BENCH_step.json`.
#[derive(Debug, Clone, Serialize)]
struct StepReport {
    quick: bool,
    cycles_per_point: u64,
    points: Vec<StepPoint>,
}

fn main() {
    let cli = Cli::parse();
    let t0 = Instant::now();
    let cycles: u64 = if cli.quick { 3_000 } else { 20_000 };

    let mut points = Vec::new();
    for arch in [Arch::TwoDB, Arch::ThreeDM, Arch::ThreeDME] {
        for (load_name, rate) in [("low", 0.05_f64), ("saturated", 0.60)] {
            // One untimed pass warms allocator and caches so the timed
            // pass measures steady-state stepping.
            drive_network_step(arch, rate, cycles.min(1_000));
            let started = Instant::now();
            let flits = drive_network_step(arch, rate, cycles);
            let wall = started.elapsed().as_secs_f64();
            let denom = wall.max(f64::MIN_POSITIVE);
            points.push(StepPoint {
                arch: arch.name().to_string(),
                load: rate,
                cycles,
                flits_ejected: flits,
                wall_ms: wall * 1e3,
                cycles_per_sec: cycles as f64 / denom,
                flits_per_sec: flits as f64 / denom,
            });
            eprintln!(
                "[bench_step] {} {load_name} ({rate}): {:.0} cycles/s, {:.0} flits/s",
                arch.name(),
                points.last().expect("just pushed").cycles_per_sec,
                points.last().expect("just pushed").flits_per_sec,
            );
        }
    }

    let report = StepReport { quick: cli.quick, cycles_per_point: cycles, points };
    let json = serde_json::to_string_pretty(&report).expect("serialisable report");
    let path = "BENCH_step.json";
    std::fs::write(path, &json).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    });
    if cli.json {
        println!("{json}");
    } else {
        println!("wrote {} points to {path}", report.points.len());
    }
    eprintln!("[done in {:.1?}]", t0.elapsed());
}
