//! Extension: converged power–thermal co-simulation with
//! temperature-dependent leakage, for all four hardware architectures.
use std::time::Instant;

use mira::arch::Arch;
use mira::experiments::thermal::co_simulate;
use mira_bench::Cli;

fn main() {
    let cli = Cli::parse();
    let t0 = Instant::now();
    println!("power-thermal co-simulation, UR at 0.10 flits/node/cycle\n");
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>10} {:>6}",
        "arch", "dyn (W)", "leak (W)", "mean (K)", "max (K)", "iters"
    );
    for arch in Arch::HARDWARE {
        let r = co_simulate(arch, 0.10, 0.0, cli.sim_config());
        println!(
            "{:>8} {:>10.2} {:>10.3} {:>10.2} {:>10.2} {:>6}",
            arch.name(),
            r.dynamic_w,
            r.leakage_w,
            r.mean_k,
            r.max_k,
            r.iterations
        );
    }
    eprintln!("[done in {:.1?}]", t0.elapsed());
}
