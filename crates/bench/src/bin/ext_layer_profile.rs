//! Extension: vertical temperature profile of the stacked designs —
//! the power-density story of §1 made visible: the same cores produce
//! a hotter chip when stacked into a quarter of the footprint.
use std::time::Instant;

use mira::arch::Arch;
use mira::experiments::thermal::{chip_model, network_power_at};
use mira_bench::Cli;

fn main() {
    let cli = Cli::parse();
    let t0 = Instant::now();
    let rate = 0.10;
    println!("vertical temperature profile at {rate} flits/node/cycle (UR)\n");
    for arch in [Arch::TwoDB, Arch::ThreeDB, Arch::ThreeDM] {
        let p = network_power_at(arch, rate, 0.0, cli.sim_config());
        let t = chip_model(arch, p).solve();
        let layers = match arch {
            Arch::TwoDB => 1,
            _ => 4,
        };
        print!("{:>6} ({:4.1} W net):", arch.name(), p);
        for layer in 0..layers {
            // Mean over the layer's cells.
            let (rows, cols) = if arch == Arch::ThreeDB { (3, 3) } else { (6, 6) };
            let mut sum = 0.0;
            for r in 0..rows {
                for c in 0..cols {
                    sum += t.cell_k(layer, r, c);
                }
            }
            print!("  L{layer}={:6.2}K", sum / (rows * cols) as f64);
        }
        println!("  (max {:6.2}K)", t.max_k());
    }
    println!("\n(L0 is the sink side; stacking raises both mean and peak — paper §1's");
    println!(" thermal challenge, which the CPU-on-top placement and shutdown mitigate)");
    eprintln!("[done in {:.1?}]", t0.elapsed());
}
