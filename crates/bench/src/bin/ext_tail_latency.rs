//! Extension: tail latency (p50/p95/p99/p99.9) per architecture under
//! UR, plus — when `--span-sample-rate` enables journey sampling — the
//! attribution mode: a per-bucket breakdown of where tail packets spend
//! their cycles (source queue, stall causes, pipeline, link, ARQ).
use std::time::Instant;

use mira::experiments::latency::{tail_attribution, tail_latency};
use mira_bench::{emit, write_telemetry_artifacts, Cli};

fn main() {
    let cli = Cli::parse();
    let t0 = Instant::now();
    let fig = tail_latency(0.15, cli.sim_config());
    match cli.span_sample_ppm.filter(|&ppm| ppm > 0) {
        // Attribution mode: the percentile bars plus the journey-based
        // breakdown, as `{"figure": ..., "attribution": ...}` in JSON.
        Some(ppm) => {
            // The attribution runs install their own telemetry; strip the
            // sweep-level journey flag so the two modes stay independent.
            let mut base = cli;
            base.span_sample_ppm = None;
            let attr = tail_attribution(0.15, ppm, base.sim_config());
            if cli.json {
                let wrapped = serde::Value::Object(vec![
                    ("figure".to_string(), serde::Serialize::to_value(&fig)),
                    ("attribution".to_string(), serde::Serialize::to_value(&attr)),
                ]);
                println!(
                    "{}",
                    serde_json::to_string_pretty(&wrapped).expect("serialisable exhibit")
                );
            } else {
                println!("{}", fig.to_text());
                println!("{}", attr.to_text());
            }
            write_telemetry_artifacts(cli);
            eprintln!("[done in {:.1?}]", t0.elapsed());
        }
        None => emit(cli, &fig.to_text(), &fig, t0),
    }
}
