//! Extension: tail latency (p50/p95/p99) per architecture under UR.
use std::time::Instant;

use mira::experiments::latency::tail_latency;
use mira_bench::{emit, Cli};

fn main() {
    let cli = Cli::parse();
    let t0 = Instant::now();
    let fig = tail_latency(0.15, cli.sim_config());
    emit(cli, &fig.to_text(), &fig, t0);
}
