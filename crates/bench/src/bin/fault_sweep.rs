//! Fault-degradation sweep: delivered fraction and average latency vs
//! transient link-fault rate for 2DB / 3DM / 3DM-E (DESIGN.md §12).
//!
//! Composes with the shared fault flags: `--kill-link` adds a permanent
//! kill on top of every sweep point, `--fault-seed` reseeds the plans.
use std::time::Instant;

use mira::experiments::faults::{fault_rates_ppm, fault_sweep_on};
use mira_bench::{emit_with_runner, Cli};

fn main() {
    let cli = Cli::parse();
    let t0 = Instant::now();
    let rates = fault_rates_ppm(cli.quick);
    let (sweep, summary) = fault_sweep_on(&cli.runner(), &rates, cli.sim_config());
    emit_with_runner(cli, &sweep.to_text(), &sweep, &summary, t0);
}
