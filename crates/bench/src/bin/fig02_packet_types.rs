//! Fig. 2: packet-type distribution per application.
use std::time::Instant;

use mira::experiments::patterns::fig2;
use mira::traffic::workloads::Application;
use mira_bench::{emit, Cli};

fn main() {
    let cli = Cli::parse();
    let t0 = Instant::now();
    let cycles = if cli.quick { 4_000 } else { 20_000 };
    let fig = fig2(&Application::ALL, cycles);
    emit(cli, &fig.to_text(), &fig, t0);
}
