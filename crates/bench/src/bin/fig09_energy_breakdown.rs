//! Fig. 9: per-flit energy breakdown per architecture.
use std::time::Instant;

use mira::experiments::energy::fig9;
use mira_bench::{emit, Cli};

fn main() {
    let cli = Cli::parse();
    let t0 = Instant::now();
    let fig = fig9();
    emit(cli, &fig.to_text(), &fig, t0);
}
