//! Fig. 11(b): average latency vs request rate, NUCA-UR bimodal.
use std::time::Instant;

use mira::experiments::latency::fig11b_on;
use mira_bench::{emit_with_runner, rates_nuca, Cli};

fn main() {
    let cli = Cli::parse();
    let t0 = Instant::now();
    let (fig, summary) = fig11b_on(&cli.runner(), &rates_nuca(cli), cli.sim_config());
    emit_with_runner(cli, &fig.to_text(), &fig, &summary, t0);
}
