//! Fig. 11(c): MP-trace latency normalised to 2DB.
use std::time::Instant;

use mira::experiments::latency::fig11c_on;
use mira::traffic::workloads::Application;
use mira_bench::{emit_with_runner, Cli};

fn main() {
    let cli = Cli::parse();
    let t0 = Instant::now();
    let (fig, summary) =
        fig11c_on(&cli.runner(), &Application::PRESENTED, cli.trace_cycles(), cli.sim_config());
    emit_with_runner(cli, &fig.to_text(), &fig, &summary, t0);
}
