//! Fig. 11(c): MP-trace latency normalised to 2DB.
use std::time::Instant;

use mira::experiments::latency::fig11c;
use mira::traffic::workloads::Application;
use mira_bench::{emit, Cli};

fn main() {
    let cli = Cli::parse();
    let t0 = Instant::now();
    let fig = fig11c(&Application::PRESENTED, cli.trace_cycles(), cli.sim_config());
    emit(cli, &fig.to_text(), &fig, t0);
}
