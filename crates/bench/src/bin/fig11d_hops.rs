//! Fig. 11(d): average hop counts for UR / NUCA-UR / MP-trace traffic.
use std::time::Instant;

use mira::experiments::common::sweep_ur_on;
use mira::experiments::latency::fig11d_on;
use mira::traffic::workloads::Application;
use mira_bench::{emit_with_runner, Cli};

fn main() {
    let cli = Cli::parse();
    let t0 = Instant::now();
    let runner = cli.runner();
    let (sweep, _) = sweep_ur_on(&runner, &[0.05], 0.0, cli.sim_config());
    let (fig, summary) =
        fig11d_on(&runner, &sweep, 0.05, Application::Apache, cli.trace_cycles(), cli.sim_config());
    emit_with_runner(cli, &fig.to_text(), &fig, &summary, t0);
}
