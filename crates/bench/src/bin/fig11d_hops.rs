//! Fig. 11(d): average hop counts for UR / NUCA-UR / MP-trace traffic.
use std::time::Instant;

use mira::experiments::common::sweep_ur;
use mira::experiments::latency::fig11d;
use mira::traffic::workloads::Application;
use mira_bench::{emit, Cli};

fn main() {
    let cli = Cli::parse();
    let t0 = Instant::now();
    let sweep = sweep_ur(&[0.05], 0.0, cli.sim_config());
    let fig = fig11d(&sweep, 0.05, Application::Apache, cli.trace_cycles(), cli.sim_config());
    emit(cli, &fig.to_text(), &fig, t0);
}
