//! Fig. 12(a): average power vs injection rate, uniform random, 0% short.
use std::time::Instant;

use mira::experiments::common::sweep_ur;
use mira::experiments::power::fig12a;
use mira_bench::{emit, rates_ur, Cli};

fn main() {
    let cli = Cli::parse();
    let t0 = Instant::now();
    let sweep = sweep_ur(&rates_ur(cli), 0.0, cli.sim_config());
    let fig = fig12a(&sweep);
    emit(cli, &fig.to_text(), &fig, t0);
}
