//! Fig. 12(a): average power vs injection rate, uniform random, 0% short.
use std::time::Instant;

use mira::experiments::common::sweep_ur_on;
use mira::experiments::power::fig12a;
use mira_bench::{emit_with_runner, rates_ur, Cli};

fn main() {
    let cli = Cli::parse();
    let t0 = Instant::now();
    let (sweep, summary) = sweep_ur_on(&cli.runner(), &rates_ur(cli), 0.0, cli.sim_config());
    let fig = fig12a(&sweep);
    emit_with_runner(cli, &fig.to_text(), &fig, &summary, t0);
}
