//! Fig. 12(b): average power vs request rate, NUCA-UR bimodal.
use std::time::Instant;

use mira::experiments::power::fig12b;
use mira_bench::{emit, rates_nuca, Cli};

fn main() {
    let cli = Cli::parse();
    let t0 = Instant::now();
    let fig = fig12b(&rates_nuca(cli), cli.sim_config());
    emit(cli, &fig.to_text(), &fig, t0);
}
