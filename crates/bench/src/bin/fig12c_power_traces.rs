//! Fig. 12(c): MP-trace power normalised to 2DB (shutdown on 3DM/3DM-E).
use std::time::Instant;

use mira::experiments::power::fig12c_on;
use mira::traffic::workloads::Application;
use mira_bench::{emit_with_runner, Cli};

fn main() {
    let cli = Cli::parse();
    let t0 = Instant::now();
    let (fig, summary) =
        fig12c_on(&cli.runner(), &Application::PRESENTED, cli.trace_cycles(), cli.sim_config());
    emit_with_runner(cli, &fig.to_text(), &fig, &summary, t0);
}
