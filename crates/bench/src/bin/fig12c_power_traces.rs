//! Fig. 12(c): MP-trace power normalised to 2DB (shutdown on 3DM/3DM-E).
use std::time::Instant;

use mira::experiments::power::fig12c;
use mira::traffic::workloads::Application;
use mira_bench::{emit, Cli};

fn main() {
    let cli = Cli::parse();
    let t0 = Instant::now();
    let fig = fig12c(&Application::PRESENTED, cli.trace_cycles(), cli.sim_config());
    emit(cli, &fig.to_text(), &fig, t0);
}
