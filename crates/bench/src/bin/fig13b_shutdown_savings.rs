//! Fig. 13(b): power saving from layer shutdown at 25% / 50% short flits.
use std::time::Instant;

use mira::experiments::power::fig13b;
use mira_bench::{emit, Cli};

fn main() {
    let cli = Cli::parse();
    let t0 = Instant::now();
    let fig = fig13b(0.10, cli.sim_config());
    emit(cli, &fig.to_text(), &fig, t0);
}
