//! Fig. 13(c): temperature reduction from layer shutdown (3DM).
use std::time::Instant;

use mira::experiments::thermal::fig13c;
use mira_bench::{emit, Cli};

fn main() {
    let cli = Cli::parse();
    let t0 = Instant::now();
    let rates: &[f64] = if cli.quick { &[0.05, 0.20] } else { &[0.05, 0.15, 0.30] };
    let fig = fig13c(rates, cli.sim_config());
    emit(cli, &fig.to_text(), &fig, t0);
}
