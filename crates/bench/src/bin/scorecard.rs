//! The reproduction scorecard: every headline claim of the paper checked
//! against a live run, with PASS/FAIL verdicts, plus journey-sourced
//! tail columns (p99 / p99.9 latency and the dominant attribution
//! component at p99, per architecture).
//!
//! `--json` emits `{"claims": [...], "tail": [...], "host": {...}}`: one
//! object per claim (`name`, `source`, `expected`, `actual`, `band`,
//! `passes`), one tail row per architecture, and a host section (wall
//! time, Kcycles/s, peak arena watermark, build rev — sourced from the
//! run ledger), so CI can archive all three as an artifact.
use std::time::Instant;

use mira::experiments::scorecard::{
    run_scorecard, scorecard_table, tail_summaries, tail_table, Claim,
};
use mira_bench::{write_obs_artifacts, write_telemetry_artifacts, Cli};
use mira_obs::ledger;
use serde::Serialize;

/// JSON shape of one claim row.
struct ClaimRow<'a>(&'a Claim);

impl Serialize for ClaimRow<'_> {
    fn to_value(&self) -> serde::Value {
        let c = self.0;
        serde::Value::Object(vec![
            ("name".to_string(), c.what.to_value()),
            ("source".to_string(), c.source.to_value()),
            ("expected".to_string(), c.paper.to_value()),
            ("actual".to_string(), c.measured.to_value()),
            ("band".to_string(), c.band.to_value()),
            ("passes".to_string(), serde::Value::Bool(c.passes())),
        ])
    }
}

/// The `"host"` section: this process's simulation batches summarised
/// from the in-process session ledger (total wall time across batches,
/// aggregate Kcycles/s, peak arena watermark, build revision).
fn host_section() -> serde::Value {
    let entries = ledger::session_entries();
    let wall_ms: f64 = entries.iter().map(|e| e.wall_ms).sum();
    let cycles: u64 = entries.iter().map(|e| e.cycles_simulated).sum();
    let kcycles_per_sec = if wall_ms > 0.0 { cycles as f64 / 1e3 / (wall_ms / 1e3) } else { 0.0 };
    let peak_arena_flits = entries.iter().map(|e| e.peak_arena_flits).max().unwrap_or(0);
    let build = mira_obs::provenance::Provenance::current();
    let (anomaly_count, anomaly_kinds) = session_anomalies(&entries);
    serde::Value::Object(vec![
        ("batches".to_string(), entries.len().to_value()),
        ("wall_ms".to_string(), wall_ms.to_value()),
        ("cycles_simulated".to_string(), cycles.to_value()),
        ("kcycles_per_sec".to_string(), kcycles_per_sec.to_value()),
        ("peak_arena_flits".to_string(), peak_arena_flits.to_value()),
        ("git_rev".to_string(), build.git_rev.to_value()),
        ("profile".to_string(), build.profile.to_value()),
        (
            "anomalies".to_string(),
            serde::Value::Object(vec![
                ("count".to_string(), anomaly_count.to_value()),
                ("kinds".to_string(), anomaly_kinds.to_value()),
            ]),
        ),
    ])
}

/// Aggregates anomaly-detector firings over the session's ledger
/// entries: total count and the deduplicated, sorted kind names.
fn session_anomalies(entries: &[ledger::LedgerEntry]) -> (u64, Vec<String>) {
    let count: u64 = entries.iter().filter_map(|e| e.anomalies).sum();
    let mut kinds: Vec<String> =
        entries.iter().filter_map(|e| e.anomaly_kinds.clone()).flatten().collect();
    kinds.sort_unstable();
    kinds.dedup();
    (count, kinds)
}

fn main() {
    let cli = Cli::parse();
    // The scorecard always collects host observability: its batches feed
    // the session ledger the `"host"` section is built from. (Simulated
    // results are unaffected — the golden suites pin that.)
    mira_obs::set_enabled(true);
    let t0 = Instant::now();
    let claims = run_scorecard(cli.sim_config(), cli.trace_cycles());
    let tail = tail_summaries(cli.sim_config());
    let passed = claims.iter().filter(|c| c.passes()).count();
    let (anomaly_count, anomaly_kinds) = session_anomalies(&ledger::session_entries());
    if anomaly_count > 0 {
        eprintln!(
            "[scorecard] WARNING: {anomaly_count} anomaly detector firing(s) this session \
             ({}); inspect the dumps with `trace_tool blackbox`",
            anomaly_kinds.join(", ")
        );
    }
    if cli.json {
        let rows: Vec<ClaimRow> = claims.iter().map(ClaimRow).collect();
        let wrapped = serde::Value::Object(vec![
            ("claims".to_string(), rows.to_value()),
            ("tail".to_string(), tail.to_value()),
            ("host".to_string(), host_section()),
        ]);
        println!("{}", serde_json::to_string_pretty(&wrapped).expect("serialisable claims"));
    } else {
        let table = scorecard_table(&claims);
        println!("{}", table.to_text());
        println!("{}", tail_table(&tail).to_text());
        println!("{passed}/{} claims reproduced", claims.len());
        let entries = ledger::session_entries();
        let wall_ms: f64 = entries.iter().map(|e| e.wall_ms).sum();
        let cycles: u64 = entries.iter().map(|e| e.cycles_simulated).sum();
        let peak = entries.iter().map(|e| e.peak_arena_flits).max().unwrap_or(0);
        eprintln!(
            "[host] {} batches, {:.2} s sim wall, {} cycles, peak arena {} flits",
            entries.len(),
            wall_ms / 1e3,
            cycles,
            peak,
        );
    }
    write_telemetry_artifacts(cli);
    write_obs_artifacts(cli);
    eprintln!("[done in {:.1?}]", t0.elapsed());
    if passed < claims.len() {
        std::process::exit(1);
    }
}
