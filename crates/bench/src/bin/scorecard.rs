//! The reproduction scorecard: every headline claim of the paper checked
//! against a live run, with PASS/FAIL verdicts.
use std::time::Instant;

use mira::experiments::scorecard::{run_scorecard, scorecard_table};
use mira_bench::Cli;

fn main() {
    let cli = Cli::parse();
    let t0 = Instant::now();
    let claims = run_scorecard(cli.sim_config(), cli.trace_cycles());
    let table = scorecard_table(&claims);
    println!("{}", table.to_text());
    let passed = claims.iter().filter(|c| c.passes()).count();
    println!("{passed}/{} claims reproduced", claims.len());
    eprintln!("[done in {:.1?}]", t0.elapsed());
    if passed < claims.len() {
        std::process::exit(1);
    }
}
