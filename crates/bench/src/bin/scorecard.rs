//! The reproduction scorecard: every headline claim of the paper checked
//! against a live run, with PASS/FAIL verdicts, plus journey-sourced
//! tail columns (p99 / p99.9 latency and the dominant attribution
//! component at p99, per architecture).
//!
//! `--json` emits `{"claims": [...], "tail": [...]}`: one object per
//! claim (`name`, `source`, `expected`, `actual`, `band`, `passes`) and
//! one tail row per architecture, so CI can archive both as an
//! artifact.
use std::time::Instant;

use mira::experiments::scorecard::{
    run_scorecard, scorecard_table, tail_summaries, tail_table, Claim,
};
use mira_bench::{write_telemetry_artifacts, Cli};
use serde::Serialize;

/// JSON shape of one claim row.
struct ClaimRow<'a>(&'a Claim);

impl Serialize for ClaimRow<'_> {
    fn to_value(&self) -> serde::Value {
        let c = self.0;
        serde::Value::Object(vec![
            ("name".to_string(), c.what.to_value()),
            ("source".to_string(), c.source.to_value()),
            ("expected".to_string(), c.paper.to_value()),
            ("actual".to_string(), c.measured.to_value()),
            ("band".to_string(), c.band.to_value()),
            ("passes".to_string(), serde::Value::Bool(c.passes())),
        ])
    }
}

fn main() {
    let cli = Cli::parse();
    let t0 = Instant::now();
    let claims = run_scorecard(cli.sim_config(), cli.trace_cycles());
    let tail = tail_summaries(cli.sim_config());
    let passed = claims.iter().filter(|c| c.passes()).count();
    if cli.json {
        let rows: Vec<ClaimRow> = claims.iter().map(ClaimRow).collect();
        let wrapped = serde::Value::Object(vec![
            ("claims".to_string(), rows.to_value()),
            ("tail".to_string(), tail.to_value()),
        ]);
        println!("{}", serde_json::to_string_pretty(&wrapped).expect("serialisable claims"));
    } else {
        let table = scorecard_table(&claims);
        println!("{}", table.to_text());
        println!("{}", tail_table(&tail).to_text());
        println!("{passed}/{} claims reproduced", claims.len());
    }
    write_telemetry_artifacts(cli);
    eprintln!("[done in {:.1?}]", t0.elapsed());
    if passed < claims.len() {
        std::process::exit(1);
    }
}
