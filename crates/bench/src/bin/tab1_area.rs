//! Table 1: router component areas for 2DB / 3DB / 3DM / 3DM-E.
use std::time::Instant;

use mira::experiments::tables::table1;
use mira_bench::{emit, Cli};

fn main() {
    let cli = Cli::parse();
    let t0 = Instant::now();
    let t = table1();
    emit(cli, &t.to_text(), &t, t0);
}
