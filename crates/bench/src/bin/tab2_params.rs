//! Table 2: design parameters (wire delays, link lengths).
use std::time::Instant;

use mira::experiments::tables::table2;
use mira_bench::{emit, Cli};

fn main() {
    let cli = Cli::parse();
    let t0 = Instant::now();
    let t = table2();
    emit(cli, &t.to_text(), &t, t0);
}
