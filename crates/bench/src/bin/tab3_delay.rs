//! Table 3: ST+LT pipeline-combining delay validation.
use std::time::Instant;

use mira::experiments::tables::table3;
use mira_bench::{emit, Cli};

fn main() {
    let cli = Cli::parse();
    let t0 = Instant::now();
    let t = table3();
    emit(cli, &t.to_text(), &t, t0);
}
