//! Trace utility: synthesise an application trace to a JSON-lines file,
//! print the statistics of an existing trace file, render a per-router
//! congestion heatmap from a telemetry metrics dump, pretty-print one
//! sampled packet's journey from a `--journeys-out` dump, or render a
//! host-observability snapshot from `--obs-out` as a phase-profile
//! table.
//!
//! ```console
//! $ cargo run -p mira-bench --bin trace_tool -- generate tpcw /tmp/tpcw.jsonl
//! $ cargo run -p mira-bench --bin trace_tool -- stats /tmp/tpcw.jsonl
//! $ cargo run -p mira-bench --bin fig11a -- --quick --metrics-out /tmp/metrics.json
//! $ cargo run -p mira-bench --bin trace_tool -- netview /tmp/metrics.json
//! $ cargo run -p mira-bench --bin fig11a -- --quick --journeys-out /tmp/journeys.json
//! $ cargo run -p mira-bench --bin trace_tool -- journey /tmp/journeys.json 1234
//! $ cargo run -p mira-bench --bin fig11a -- --quick --obs-out /tmp/obs.json
//! $ cargo run -p mira-bench --bin trace_tool -- obs /tmp/obs.json
//! $ cargo run -p mira-bench --bin trace_tool -- blackbox results/blackbox/fig11a-p3.json
//! ```
use std::fs::File;
use std::io::{BufReader, BufWriter};

use mira::arch::Arch;
use mira::experiments::EXPERIMENT_SEED;
use mira::noc::recorder::{BlackBox, StuckPacket};
use mira::noc::telemetry::{render_heatmap, MetricsWindow};
use mira::noc::PacketJourney;
use mira::nuca::cmp::{CmpConfig, CmpSystem, TraceStats};
use mira::traffic::trace::{read_trace, TraceWriter};
use mira::traffic::workloads::Application;
use serde::Deserialize;

fn usage() -> ! {
    eprintln!("usage: trace_tool generate <app> <out.jsonl> [cycles] [--seed <u64>]");
    eprintln!("       trace_tool stats <in.jsonl>");
    eprintln!("       trace_tool netview <metrics.json> [window-index]");
    eprintln!("       trace_tool journey <journeys.json> [packet-id]");
    eprintln!("       trace_tool obs <obs.json>");
    eprintln!("       trace_tool blackbox <blackbox.json> [packet-id]");
    eprintln!("apps: {}", Application::ALL.map(|a| a.name()).join(" "));
    std::process::exit(2);
}

fn usage_error(message: String) -> ! {
    eprintln!("error: {message}");
    usage()
}

/// Renders one metrics window as per-router text heatmaps (occupancy
/// and stall pressure).
fn netview(window: &MetricsWindow) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "window {} (cycles {}..{}), {} routers\n",
        window.index,
        window.start_cycle,
        window.end_cycle,
        window.routers.len()
    ));
    let occupancy: Vec<(usize, usize, f64)> =
        window.routers.iter().map(|r| (r.x, r.y, r.occupancy_mean)).collect();
    let span = (window.end_cycle - window.start_cycle).max(1) as f64;
    let stalls: Vec<(usize, usize, f64)> =
        window.routers.iter().map(|r| (r.x, r.y, r.stalls.stalled as f64 / span)).collect();
    let peak_occ = occupancy.iter().map(|c| c.2).fold(0.0_f64, f64::max);
    let peak_stall = stalls.iter().map(|c| c.2).fold(0.0_f64, f64::max);
    out.push_str(&format!("buffer occupancy (peak {peak_occ:.2} flits):\n"));
    out.push_str(&render_heatmap(&occupancy));
    out.push_str(&format!("stall pressure (peak {peak_stall:.2} stall-cycles/cycle):\n"));
    out.push_str(&render_heatmap(&stalls));
    out.push_str("scale: ' ' (idle) . : - = + * # % @ (peak)\n");
    out
}

/// Pretty-prints one packet's journey: the per-hop span table plus the
/// end-to-end decomposition that sums exactly to the latency.
fn journey_view(j: &PacketJourney) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "packet {} ({}, {}): created @{}, ejected @{}, latency {} cycles\n",
        j.packet,
        j.class.name(),
        if j.measured { "measured" } else { "unmeasured" },
        j.created_at,
        j.ejected_at,
        j.latency()
    ));
    out.push_str(&format!("  source queue : {:>6} cycles\n", j.source_queue));
    for (i, h) in j.hops.iter().enumerate() {
        if h.link_cycles + h.arq_cycles > 0 {
            out.push_str(&format!(
                "  wire         : {:>6} cycles{}\n",
                h.link_cycles + h.arq_cycles,
                if h.arq_cycles > 0 {
                    format!(" ({} nominal + {} ARQ replay)", h.link_cycles, h.arq_cycles)
                } else {
                    String::new()
                }
            ));
        }
        let mut causes = Vec::new();
        for (name, v) in [
            ("no-credit", h.stalls.no_credit),
            ("va-loss", h.stalls.va_loss),
            ("sa-loss", h.stalls.sa_loss),
            ("route-busy", h.stalls.route_busy),
            ("link-fault", h.stalls.link_fault),
        ] {
            if v > 0 {
                causes.push(format!("{name} {v}"));
            }
        }
        let stall_note = if causes.is_empty() {
            String::new()
        } else {
            format!(", stalls: {}", causes.join(", "))
        };
        let body_note = if h.body_stalls.stalled > 0 {
            format!(" [+{} body-flit stall cycles]", h.body_stalls.stalled)
        } else {
            String::new()
        };
        out.push_str(&format!(
            "  hop {i:<2} router {:<3}: in-port {} @{} -> out-port {} @{} \
             ({} cycles: {} pipeline{stall_note}){body_note}\n",
            h.router,
            h.in_port,
            h.arrived,
            h.out_port,
            h.departed,
            h.residency(),
            h.pipeline_cycles(),
        ));
    }
    out.push_str(&format!("  serialization: {:>6} cycles\n", j.serialization));
    out.push_str(&format!(
        "  span sum {} == latency {} (exact attribution)\n",
        j.span_sum(),
        j.latency()
    ));
    out
}

/// Renders one stuck packet, with its sampled hop history when the
/// journey recorder had it.
fn stuck_view(p: &StuckPacket) -> String {
    let mut out = format!(
        "  packet {:<8} {:<14} {:>3} -> {:<3} created @{}, age {} cycles, {} flits\n",
        p.packet, p.class, p.src, p.dst, p.created_at, p.age, p.len_flits
    );
    if let Some(j) = &p.journey {
        out.push_str(&format!("    source queue: {} cycles\n", j.source_queue));
        for (i, h) in j.hops.iter().enumerate() {
            if h.departed > 0 {
                out.push_str(&format!(
                    "    hop {i:<2} router {:<3}: in-port {} @{} -> out-port {} @{}\n",
                    h.router, h.in_port, h.arrived, h.out_port, h.departed
                ));
            } else {
                out.push_str(&format!(
                    "    hop {i:<2} router {:<3}: in-port {} @{} -> STUCK (head never \
                     traversed the switch)\n",
                    h.router, h.in_port, h.arrived
                ));
            }
        }
    }
    out
}

/// Renders a black-box dump: the trigger, every detector verdict, a
/// per-router occupancy heatmap with frozen/masked routers called out,
/// and the stuck-packet inventory.
fn blackbox_view(bb: &BlackBox) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "black box v{}: `{}` halted the run at cycle {}\n",
        bb.version, bb.trigger.kind, bb.cycle
    ));
    out.push_str(&format!("trigger: {}\n", bb.trigger.detail));
    out.push_str("detector firings:\n");
    out.push_str(&format!(
        "  {:<18} {:>10} {:>12} {:>12} {:>8}\n",
        "kind", "cycle", "observed", "threshold", "samples"
    ));
    for f in &bb.fired {
        out.push_str(&format!(
            "  {:<18} {:>10} {:>12} {:>12} {:>8}\n",
            f.kind, f.cycle, f.stats.observed, f.stats.threshold, f.stats.samples
        ));
    }
    let occupancy: Vec<(usize, usize, f64)> =
        bb.routers.iter().map(|r| (r.x as usize, r.y as usize, r.buffered as f64)).collect();
    let peak = occupancy.iter().map(|c| c.2).fold(0.0_f64, f64::max);
    out.push_str(&format!(
        "buffer occupancy at capture ({} routers, peak {peak:.0} flits):\n",
        bb.routers.len()
    ));
    out.push_str(&render_heatmap(&occupancy));
    out.push_str("scale: ' ' (idle) . : - = + * # % @ (peak)\n");
    let frozen: Vec<u64> = bb.routers.iter().filter(|r| r.sa_frozen).map(|r| r.router).collect();
    if !frozen.is_empty() {
        out.push_str(&format!("frozen switch allocators (chaos hook): {frozen:?}\n"));
    }
    let waiting: usize = bb.routers.iter().map(|r| r.waiting_mask.count_ones() as usize).sum();
    let active: usize = bb.routers.iter().map(|r| r.active_mask.count_ones() as usize).sum();
    out.push_str(&format!(
        "VC states: {} waiting for a VC, {} active; {} flits live in the arena\n",
        waiting,
        active,
        bb.arena.len()
    ));
    let wire_flits: u64 = bb.links.iter().map(|l| l.flits).sum();
    let wire_credits: u64 = bb.links.iter().map(|l| l.credits).sum();
    out.push_str(&format!(
        "links: {} non-quiet ({wire_flits} flits, {wire_credits} credit returns in flight)\n",
        bb.links.len()
    ));
    out.push_str(&format!(
        "event ring: {} events captured, {} dropped\n",
        bb.events.len(),
        bb.events_dropped
    ));
    out.push_str(&format!("stuck packets ({}):\n", bb.stuck_packets.len()));
    for p in bb.stuck_packets.iter().take(20) {
        out.push_str(&stuck_view(p));
    }
    if bb.stuck_packets.len() > 20 {
        out.push_str(&format!(
            "  ... {} more (pass a packet id to inspect one)\n",
            bb.stuck_packets.len() - 20
        ));
    }
    out
}

/// Renders an `--obs-out` snapshot: build line, the phase profile as a
/// table (share of `step_total` per phase), coverage, and the metrics.
fn obs_view(snap: &mira_obs::ObsSnapshot) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "build {} ({}, {})\n",
        snap.build.git_rev, snap.build.profile, snap.build.rustc
    ));
    let step_nanos = snap.phases.iter().find(|p| p.phase == "step_total").map_or(0, |p| p.nanos);
    out.push_str(&format!(
        "{:<16} {:>12} {:>14} {:>10} {:>8}\n",
        "phase", "calls", "nanos", "ns/call", "% step"
    ));
    for p in &snap.phases {
        if p.calls == 0 {
            continue;
        }
        let per_call = p.nanos / p.calls.max(1);
        let share = if step_nanos > 0 {
            format!("{:>7.1}%", p.nanos as f64 / step_nanos as f64 * 100.0)
        } else {
            format!("{:>8}", "-")
        };
        out.push_str(&format!(
            "{:<16} {:>12} {:>14} {:>10} {share}\n",
            p.phase, p.calls, p.nanos, per_call
        ));
    }
    match snap.coverage {
        Some(cov) => out.push_str(&format!(
            "step coverage: {:.1}% of step_total attributed to tiled sections\n",
            cov * 100.0
        )),
        None => out.push_str("step coverage: no profiled steps\n"),
    }
    if !snap.metrics.is_empty() {
        out.push_str("metrics:\n");
        for m in &snap.metrics {
            match m.kind.as_str() {
                "histogram" => {
                    out.push_str(&format!("  {:<32} count {} sum {}\n", m.name, m.value, m.sum))
                }
                _ => out.push_str(&format!("  {:<32} {}\n", m.name, m.value)),
            }
        }
    }
    out
}

fn main() -> std::io::Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("generate") => {
            let (Some(app_name), Some(path)) = (args.get(1), args.get(2)) else { usage() };
            // Optional trailing arguments: a cycle count and a seed
            // override.
            let mut cycles: u64 = 30_000;
            let mut seed: u64 = EXPERIMENT_SEED;
            let mut rest = args[3..].iter();
            while let Some(arg) = rest.next() {
                if arg == "--seed" {
                    let v =
                        rest.next().unwrap_or_else(|| usage_error("--seed needs a value".into()));
                    seed = v.parse().unwrap_or_else(|_| usage_error(format!("invalid seed {v:?}")));
                } else {
                    cycles = arg
                        .parse()
                        .unwrap_or_else(|_| usage_error(format!("invalid cycle count {arg:?}")));
                }
            }
            let app = Application::ALL
                .into_iter()
                .find(|a| a.name() == app_name)
                .unwrap_or_else(|| usage_error(format!("unknown app {app_name:?}")));
            let arch = Arch::TwoDB;
            let mut sys =
                CmpSystem::new(CmpConfig::for_app(app, arch.cpu_nodes(), arch.cache_nodes(), seed));
            sys.calibrate_rate(app.profile().offered_load, 36, 10_000);
            let trace = sys.generate_trace(cycles);
            let mut w = TraceWriter::new(BufWriter::new(File::create(path)?));
            for rec in &trace {
                w.write(rec)?;
            }
            let n = w.records_written();
            w.finish()?;
            println!("wrote {n} packets over {cycles} cycles to {path} (seed {seed})");
            Ok(())
        }
        Some("stats") => {
            let Some(path) = args.get(1) else { usage() };
            let trace = read_trace(BufReader::new(File::open(path)?))?;
            let span = trace.last().map_or(0, |r| r.cycle + 1);
            let stats = TraceStats::from_trace(&trace, span);
            println!("{} packets, {} flits, span {span} cycles", stats.packets, stats.flits);
            println!("control fraction : {:.1}%", stats.control_fraction() * 100.0);
            println!("short payload    : {:.1}%", stats.short_payload_fraction() * 100.0);
            println!("short (all flits): {:.1}%", stats.short_total_fraction() * 100.0);
            let (z, o, other) = stats.patterns.fractions();
            println!("word patterns    : {z:.3} all-0, {o:.3} all-1, {other:.3} other");
            Ok(())
        }
        Some("netview") => {
            let Some(path) = args.get(1) else { usage() };
            let text = std::fs::read_to_string(path)?;
            let value: serde::Value = serde_json::from_str(&text)
                .unwrap_or_else(|e| usage_error(format!("{path} is not valid JSON: {e:?}")));
            // Accept either a full `--metrics-out` dump (object with a
            // "windows" array) or a bare array of windows.
            let windows_value = match value.field("windows") {
                serde::Value::Null => &value,
                w => w,
            };
            let Ok(items) = windows_value.as_array() else {
                usage_error(format!("{path} holds no metrics windows"))
            };
            let windows: Vec<MetricsWindow> = items
                .iter()
                .map(|v| {
                    MetricsWindow::from_value(v).unwrap_or_else(|e| {
                        usage_error(format!("bad metrics window in {path}: {e:?}"))
                    })
                })
                .collect();
            if windows.is_empty() {
                usage_error(format!("{path} holds no metrics windows"));
            }
            let index: usize = match args.get(2) {
                Some(s) => {
                    s.parse().unwrap_or_else(|_| usage_error(format!("invalid window index {s:?}")))
                }
                // Default to the busiest mid-run window: the last one is
                // often a partial drain-phase window.
                None => windows.len() / 2,
            };
            let Some(window) = windows.get(index) else {
                usage_error(format!("window index {index} out of range 0..{}", windows.len()))
            };
            print!("{}", netview(window));
            Ok(())
        }
        Some("journey") => {
            let Some(path) = args.get(1) else { usage() };
            let text = std::fs::read_to_string(path)?;
            let value: serde::Value = serde_json::from_str(&text)
                .unwrap_or_else(|e| usage_error(format!("{path} is not valid JSON: {e:?}")));
            // Accept either a full `--journeys-out` dump (object with a
            // "journeys" array) or a bare array of journeys.
            let journeys_value = match value.field("journeys") {
                serde::Value::Null => &value,
                w => w,
            };
            let Ok(items) = journeys_value.as_array() else {
                usage_error(format!("{path} holds no journeys"))
            };
            let journeys: Vec<PacketJourney> = items
                .iter()
                .map(|v| {
                    PacketJourney::from_value(v)
                        .unwrap_or_else(|e| usage_error(format!("bad journey in {path}: {e:?}")))
                })
                .collect();
            if journeys.is_empty() {
                usage_error(format!("{path} holds no journeys"));
            }
            match args.get(2) {
                Some(s) => {
                    let id: u64 = s
                        .parse()
                        .unwrap_or_else(|_| usage_error(format!("invalid packet id {s:?}")));
                    let Some(j) = journeys.iter().find(|j| j.packet == id) else {
                        usage_error(format!(
                            "packet {id} is not in {path} ({} sampled journeys)",
                            journeys.len()
                        ))
                    };
                    print!("{}", journey_view(j));
                }
                // No id: list what is available, slowest first.
                None => {
                    let mut sorted: Vec<&PacketJourney> = journeys.iter().collect();
                    sorted.sort_by_key(|j| std::cmp::Reverse(j.latency()));
                    println!("{} sampled journeys (slowest first):", sorted.len());
                    for j in sorted.iter().take(20) {
                        println!(
                            "  packet {:<8} {:<8} {} hops, {} cycles",
                            j.packet,
                            j.class.name(),
                            j.hops.len(),
                            j.latency()
                        );
                    }
                }
            }
            Ok(())
        }
        Some("blackbox") => {
            let Some(path) = args.get(1) else { usage() };
            let text = std::fs::read_to_string(path)?;
            let value: serde::Value = serde_json::from_str(&text)
                .unwrap_or_else(|e| usage_error(format!("{path} is not valid JSON: {e:?}")));
            let bb = BlackBox::from_value(&value)
                .unwrap_or_else(|e| usage_error(format!("{path} is not a black box: {e:?}")));
            match args.get(2) {
                Some(s) => {
                    let id: u64 = s
                        .parse()
                        .unwrap_or_else(|_| usage_error(format!("invalid packet id {s:?}")));
                    let Some(p) = bb.stuck_packets.iter().find(|p| p.packet == id) else {
                        usage_error(format!(
                            "packet {id} is not stuck in {path} ({} stuck packets)",
                            bb.stuck_packets.len()
                        ))
                    };
                    print!("{}", stuck_view(p));
                }
                None => print!("{}", blackbox_view(&bb)),
            }
            Ok(())
        }
        Some("obs") => {
            let Some(path) = args.get(1) else { usage() };
            let text = std::fs::read_to_string(path)?;
            let snap: mira_obs::ObsSnapshot = serde_json::from_str(&text)
                .unwrap_or_else(|e| usage_error(format!("{path} is not an obs snapshot: {e:?}")));
            print!("{}", obs_view(&snap));
            Ok(())
        }
        _ => usage(),
    }
}
