//! Trace utility: synthesise an application trace to a JSON-lines file,
//! or print the statistics of an existing trace file.
//!
//! ```console
//! $ cargo run -p mira-bench --bin trace_tool -- generate tpcw /tmp/tpcw.jsonl
//! $ cargo run -p mira-bench --bin trace_tool -- stats /tmp/tpcw.jsonl
//! ```
use std::fs::File;
use std::io::{BufReader, BufWriter};

use mira::arch::Arch;
use mira::experiments::EXPERIMENT_SEED;
use mira::nuca::cmp::{CmpConfig, CmpSystem, TraceStats};
use mira::traffic::trace::{read_trace, TraceWriter};
use mira::traffic::workloads::Application;

fn usage() -> ! {
    eprintln!("usage: trace_tool generate <app> <out.jsonl> [cycles]");
    eprintln!("       trace_tool stats <in.jsonl>");
    eprintln!("apps: {}", Application::ALL.map(|a| a.name()).join(" "));
    std::process::exit(2);
}

fn main() -> std::io::Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("generate") => {
            let (Some(app_name), Some(path)) = (args.get(1), args.get(2)) else { usage() };
            let cycles: u64 = args.get(3).map_or(30_000, |s| s.parse().expect("cycle count"));
            let app = Application::ALL
                .into_iter()
                .find(|a| a.name() == app_name)
                .unwrap_or_else(|| usage());
            let arch = Arch::TwoDB;
            let mut sys = CmpSystem::new(CmpConfig::for_app(
                app,
                arch.cpu_nodes(),
                arch.cache_nodes(),
                EXPERIMENT_SEED,
            ));
            sys.calibrate_rate(app.profile().offered_load, 36, 10_000);
            let trace = sys.generate_trace(cycles);
            let mut w = TraceWriter::new(BufWriter::new(File::create(path)?));
            for rec in &trace {
                w.write(rec)?;
            }
            let n = w.records_written();
            w.finish()?;
            println!("wrote {n} packets over {cycles} cycles to {path}");
            Ok(())
        }
        Some("stats") => {
            let Some(path) = args.get(1) else { usage() };
            let trace = read_trace(BufReader::new(File::open(path)?))?;
            let span = trace.last().map_or(0, |r| r.cycle + 1);
            let stats = TraceStats::from_trace(&trace, span);
            println!("{} packets, {} flits, span {span} cycles", stats.packets, stats.flits);
            println!("control fraction : {:.1}%", stats.control_fraction() * 100.0);
            println!("short payload    : {:.1}%", stats.short_payload_fraction() * 100.0);
            println!("short (all flits): {:.1}%", stats.short_total_fraction() * 100.0);
            let (z, o, other) = stats.patterns.fractions();
            println!("word patterns    : {z:.3} all-0, {o:.3} all-1, {other:.3} other");
            Ok(())
        }
        _ => usage(),
    }
}
