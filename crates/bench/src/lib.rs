#![warn(missing_docs)]
//! # mira-bench — the benchmark harness
//!
//! One binary per table/figure of the paper (see DESIGN.md §5 for the
//! index). Every binary accepts `--quick` to run a reduced configuration
//! and prints the regenerated exhibit as text (plus `--json` for
//! machine-readable output).
//!
//! Telemetry flags (DESIGN.md §11): `--metrics-window <cycles>` turns on
//! windowed per-router metrics for every simulation the binary runs;
//! `--trace-out <path>` / `--metrics-out <path>` write a Perfetto
//! -compatible event trace and a metrics dump from one representative
//! traced run.
//!
//! Criterion benches covering the simulator engine and each experiment
//! group live under `benches/`.

use std::time::Instant;

use serde::Serialize;

use mira::arch::Arch;
use mira::error::HostError;
use mira::experiments::common::EXPERIMENT_SEED;
use mira::noc::sim::Simulator;
use mira::noc::telemetry::TelemetryConfig;
use mira::noc::traffic::{PayloadProfile, UniformRandom};

pub use mira::experiments::runner::{RunSummary, Runner};

const USAGE: &str = "usage: <bin> [--quick] [--json] [--metrics-window <cycles>] \
                     [--trace-out <path>] [--metrics-out <path>] \
                     [--span-sample-rate <0..=1>] [--journeys-out <path>] \
                     [--fault-rate <fraction>] [--kill-link <node:port[@cycle]>] \
                     [--fault-seed <seed>] [--compare <baseline.json>] \
                     [--obs-out <path>] [--progress-json] \
                     [--resume] [--checkpoint-dir <dir>] [--point-timeout <secs>] \
                     [--point-retries <n>] [--fail-fast] \
                     [--anomaly] [--anomaly-no-progress <cycles>] \
                     [--anomaly-starvation <cycles>] [--anomaly-fault-storm <events>] \
                     [--anomaly-latency-spike-pct <pct>] [--anomaly-window <cycles>] \
                     [--blackbox-out <dir>] [--mesh <WxH>] [--shards <n>]";

/// Shared CLI handling for the experiment binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Cli {
    /// Reduced configuration (shorter sims, fewer points).
    pub quick: bool,
    /// Emit JSON instead of aligned text.
    pub json: bool,
    /// Windowed-metrics interval in cycles (`--metrics-window`).
    pub metrics_window: Option<u64>,
    /// Write a Chrome trace-event JSON file from a representative traced
    /// run (`--trace-out`).
    pub trace_out: Option<&'static str>,
    /// Write the representative run's metrics windows as JSON
    /// (`--metrics-out`).
    pub metrics_out: Option<&'static str>,
    /// Packet-journey head-sampling rate in ppm, parsed from the
    /// `--span-sample-rate <0..=1>` flag (`0.01` → 10000 ppm). `Some(0)`
    /// (an explicit rate of 0) keeps the recorder uninstalled, exactly
    /// like leaving the flag off.
    pub span_sample_ppm: Option<u32>,
    /// Write the representative run's sampled packet journeys as JSON
    /// (`--journeys-out`); implies span sampling at rate 1 unless
    /// `--span-sample-rate` narrows it.
    pub journeys_out: Option<&'static str>,
    /// Transient link-fault rate in ppm of flit deliveries, parsed from
    /// the `--fault-rate <fraction>` flag (`0.001` → 1000 ppm).
    pub fault_rate_ppm: Option<u32>,
    /// Permanent link kill as `(node, out-port, cycle)`, from
    /// `--kill-link node:port[@cycle]` (cycle defaults to 0).
    pub kill_link: Option<(usize, usize, u64)>,
    /// Seed for the fault plan (`--fault-seed`); defaults to the fault
    /// subsystem's own default when unset.
    pub fault_seed: Option<u64>,
    /// Baseline report to regression-gate against (`--compare <path>`):
    /// binaries that support it exit non-zero when a measured point falls
    /// too far below the baseline.
    pub compare: Option<&'static str>,
    /// Write the host-observability snapshot as JSON (`--obs-out`); a
    /// Prometheus text rendering lands next to it with a `.prom`
    /// extension. Giving the flag also enables observability for the
    /// process (phase timers, metrics, run ledger).
    pub obs_out: Option<&'static str>,
    /// Emit one machine-readable JSON line per completed runner point on
    /// stderr (`--progress-json`).
    pub progress_json: bool,
    /// Replay completed points from the batch's sweep checkpoint and run
    /// only the missing ones (`--resume`). Implies checkpointing.
    pub resume: bool,
    /// Directory for per-point sweep checkpoints (`--checkpoint-dir`);
    /// giving it enables checkpoint writing.
    pub checkpoint_dir: Option<&'static str>,
    /// Watchdog limit per runner point in milliseconds, parsed from the
    /// `--point-timeout <secs>` flag (stored as ms so [`Cli`] stays
    /// `Eq`).
    pub point_timeout_ms: Option<u64>,
    /// Extra attempts per failed runner point (`--point-retries`).
    pub point_retries: Option<u32>,
    /// Abort the batch on the first point failure instead of running the
    /// remaining points (`--fail-fast`).
    pub fail_fast: bool,
    /// Arm the flight recorder with every detector at its default
    /// threshold (`--anomaly`); any specific `--anomaly-*` threshold
    /// flag implies this.
    pub anomaly: bool,
    /// No-progress watchdog threshold in cycles
    /// (`--anomaly-no-progress`); overrides the default.
    pub anomaly_no_progress: Option<u64>,
    /// Starvation head-flit age threshold in cycles
    /// (`--anomaly-starvation`).
    pub anomaly_starvation: Option<u64>,
    /// Fault-storm budget in fault events per window
    /// (`--anomaly-fault-storm`).
    pub anomaly_fault_storm: Option<u64>,
    /// Latency-spike threshold in percent of the trailing baseline p99
    /// (`--anomaly-latency-spike-pct`).
    pub anomaly_latency_spike_pct: Option<u32>,
    /// Windowed-detector evaluation cadence in cycles
    /// (`--anomaly-window`).
    pub anomaly_window: Option<u64>,
    /// Directory anomaly black-box dumps are written under
    /// (`--blackbox-out`; default `results/blackbox`).
    pub blackbox_out: Option<&'static str>,
    /// Explicit 2D mesh size as `(width, height)` for binaries that
    /// support scaling runs (`--mesh WxH`, e.g. `--mesh 16x16`).
    pub mesh: Option<(usize, usize)>,
    /// Intra-run shard-worker count for a single simulation
    /// (`--shards <n>`; DESIGN.md §18). Unset leaves the `MIRA_SHARDS`
    /// environment default in charge.
    pub shards: Option<usize>,
}

/// Parses `WxH` (e.g. `16x16`) for `--mesh`.
fn parse_mesh(spec: &str) -> Option<(usize, usize)> {
    let (w, h) = spec.split_once('x')?;
    let (w, h) = (w.parse().ok()?, h.parse().ok()?);
    if w >= 2 && h >= 2 {
        Some((w, h))
    } else {
        None
    }
}

/// Parses `node:port[@cycle]` (e.g. `7:3@250`) for `--kill-link`.
fn parse_kill_link(spec: &str) -> Option<(usize, usize, u64)> {
    let (link, cycle) = match spec.split_once('@') {
        Some((l, c)) => (l, c.parse::<u64>().ok()?),
        None => (spec, 0),
    };
    let (node, port) = link.split_once(':')?;
    Some((node.parse().ok()?, port.parse().ok()?, cycle))
}

/// Leaks a flag value so [`Cli`] can stay `Copy` (flags are parsed once
/// per process; the leak is bounded and deliberate).
fn leak(value: String) -> &'static str {
    Box::leak(value.into_boxed_str())
}

fn usage_error(message: &str) -> ! {
    eprintln!("{message}; {USAGE}");
    std::process::exit(2);
}

impl Cli {
    /// Parses the process arguments (unknown flags abort with usage).
    /// Also initialises host observability from the environment
    /// (`MIRA_OBS=1`), so every bench binary honours it without code.
    pub fn parse() -> Cli {
        mira_obs::init_from_env();
        let mut cli = Cli::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => cli.quick = true,
                "--json" => cli.json = true,
                "--metrics-window" => {
                    let v = args
                        .next()
                        .unwrap_or_else(|| usage_error("--metrics-window needs a cycle count"));
                    match v.parse::<u64>() {
                        Ok(cycles) if cycles > 0 => cli.metrics_window = Some(cycles),
                        _ => usage_error(&format!("invalid --metrics-window value {v:?}")),
                    }
                }
                "--trace-out" => {
                    let v = args.next().unwrap_or_else(|| usage_error("--trace-out needs a path"));
                    cli.trace_out = Some(leak(v));
                }
                "--metrics-out" => {
                    let v =
                        args.next().unwrap_or_else(|| usage_error("--metrics-out needs a path"));
                    cli.metrics_out = Some(leak(v));
                }
                "--span-sample-rate" => {
                    let v = args
                        .next()
                        .unwrap_or_else(|| usage_error("--span-sample-rate needs a fraction"));
                    match v.parse::<f64>() {
                        Ok(f) if (0.0..=1.0).contains(&f) => {
                            cli.span_sample_ppm = Some((f * 1_000_000.0).round() as u32);
                        }
                        _ => usage_error(&format!("invalid --span-sample-rate value {v:?}")),
                    }
                }
                "--journeys-out" => {
                    let v =
                        args.next().unwrap_or_else(|| usage_error("--journeys-out needs a path"));
                    cli.journeys_out = Some(leak(v));
                }
                "--fault-rate" => {
                    let v =
                        args.next().unwrap_or_else(|| usage_error("--fault-rate needs a fraction"));
                    match v.parse::<f64>() {
                        Ok(f) if (0.0..1.0).contains(&f) => {
                            cli.fault_rate_ppm = Some((f * 1_000_000.0).round() as u32);
                        }
                        _ => usage_error(&format!("invalid --fault-rate value {v:?}")),
                    }
                }
                "--kill-link" => {
                    let v = args
                        .next()
                        .unwrap_or_else(|| usage_error("--kill-link needs node:port[@cycle]"));
                    match parse_kill_link(&v) {
                        Some(kill) => cli.kill_link = Some(kill),
                        None => usage_error(&format!("invalid --kill-link spec {v:?}")),
                    }
                }
                "--compare" => {
                    let v = args
                        .next()
                        .unwrap_or_else(|| usage_error("--compare needs a baseline path"));
                    cli.compare = Some(leak(v));
                }
                "--obs-out" => {
                    let v = args.next().unwrap_or_else(|| usage_error("--obs-out needs a path"));
                    cli.obs_out = Some(leak(v));
                    mira_obs::set_enabled(true);
                }
                "--progress-json" => cli.progress_json = true,
                "--resume" => cli.resume = true,
                "--checkpoint-dir" => {
                    let v = args
                        .next()
                        .unwrap_or_else(|| usage_error("--checkpoint-dir needs a directory"));
                    cli.checkpoint_dir = Some(leak(v));
                }
                "--point-timeout" => {
                    let v =
                        args.next().unwrap_or_else(|| usage_error("--point-timeout needs seconds"));
                    match v.parse::<f64>() {
                        Ok(s) if s > 0.0 && s.is_finite() => {
                            cli.point_timeout_ms = Some((s * 1e3).round().max(1.0) as u64);
                        }
                        _ => usage_error(&format!("invalid --point-timeout value {v:?}")),
                    }
                }
                "--point-retries" => {
                    let v =
                        args.next().unwrap_or_else(|| usage_error("--point-retries needs a count"));
                    match v.parse::<u32>() {
                        Ok(n) => cli.point_retries = Some(n),
                        _ => usage_error(&format!("invalid --point-retries value {v:?}")),
                    }
                }
                "--fail-fast" => cli.fail_fast = true,
                "--anomaly" => cli.anomaly = true,
                "--anomaly-no-progress" => {
                    let v = args
                        .next()
                        .unwrap_or_else(|| usage_error("--anomaly-no-progress needs cycles"));
                    match v.parse::<u64>() {
                        Ok(cycles) => {
                            cli.anomaly = true;
                            cli.anomaly_no_progress = Some(cycles);
                        }
                        _ => usage_error(&format!("invalid --anomaly-no-progress value {v:?}")),
                    }
                }
                "--anomaly-starvation" => {
                    let v = args
                        .next()
                        .unwrap_or_else(|| usage_error("--anomaly-starvation needs cycles"));
                    match v.parse::<u64>() {
                        Ok(age) => {
                            cli.anomaly = true;
                            cli.anomaly_starvation = Some(age);
                        }
                        _ => usage_error(&format!("invalid --anomaly-starvation value {v:?}")),
                    }
                }
                "--anomaly-fault-storm" => {
                    let v = args
                        .next()
                        .unwrap_or_else(|| usage_error("--anomaly-fault-storm needs a budget"));
                    match v.parse::<u64>() {
                        Ok(budget) => {
                            cli.anomaly = true;
                            cli.anomaly_fault_storm = Some(budget);
                        }
                        _ => usage_error(&format!("invalid --anomaly-fault-storm value {v:?}")),
                    }
                }
                "--anomaly-latency-spike-pct" => {
                    let v = args.next().unwrap_or_else(|| {
                        usage_error("--anomaly-latency-spike-pct needs a percentage")
                    });
                    match v.parse::<u32>() {
                        Ok(pct) => {
                            cli.anomaly = true;
                            cli.anomaly_latency_spike_pct = Some(pct);
                        }
                        _ => {
                            usage_error(&format!("invalid --anomaly-latency-spike-pct value {v:?}"))
                        }
                    }
                }
                "--anomaly-window" => {
                    let v =
                        args.next().unwrap_or_else(|| usage_error("--anomaly-window needs cycles"));
                    match v.parse::<u64>() {
                        Ok(cycles) if cycles > 0 => {
                            cli.anomaly = true;
                            cli.anomaly_window = Some(cycles);
                        }
                        _ => usage_error(&format!("invalid --anomaly-window value {v:?}")),
                    }
                }
                "--blackbox-out" => {
                    let v =
                        args.next().unwrap_or_else(|| usage_error("--blackbox-out needs a dir"));
                    cli.blackbox_out = Some(leak(v));
                }
                "--mesh" => {
                    let v = args.next().unwrap_or_else(|| usage_error("--mesh needs WxH"));
                    match parse_mesh(&v) {
                        Some(mesh) => cli.mesh = Some(mesh),
                        None => usage_error(&format!("invalid --mesh value {v:?}")),
                    }
                }
                "--shards" => {
                    let v = args.next().unwrap_or_else(|| usage_error("--shards needs a count"));
                    match v.parse::<usize>() {
                        Ok(n) if n > 0 => cli.shards = Some(n),
                        _ => usage_error(&format!("invalid --shards value {v:?}")),
                    }
                }
                "--fault-seed" => {
                    let v = args.next().unwrap_or_else(|| usage_error("--fault-seed needs a seed"));
                    match v.parse::<u64>() {
                        Ok(seed) => cli.fault_seed = Some(seed),
                        _ => usage_error(&format!("invalid --fault-seed value {v:?}")),
                    }
                }
                "--help" | "-h" => {
                    eprintln!("{USAGE}");
                    std::process::exit(0);
                }
                other => usage_error(&format!("unknown flag {other}")),
            }
        }
        cli
    }

    /// The simulation window for this invocation (metrics windows wired
    /// in when `--metrics-window` was given).
    pub fn sim_config(&self) -> mira::noc::sim::SimConfig {
        let base = if self.quick {
            mira::experiments::quick_sim_config()
        } else {
            mira::noc::sim::SimConfig {
                warmup_cycles: 2_000,
                measure_cycles: 10_000,
                drain_cycles: 30_000,
                ..mira::noc::sim::SimConfig::default()
            }
        };
        let mut telemetry = match self.metrics_window {
            Some(w) => TelemetryConfig::windows(w),
            None => TelemetryConfig::disabled(),
        };
        if let Some(ppm) = self.span_sample_ppm {
            telemetry = telemetry.with_journeys(ppm);
        }
        let base = base.with_telemetry(telemetry);
        let base = match self.fault_config() {
            Some(faults) => base.with_faults(faults),
            None => base,
        };
        match self.anomaly_config() {
            Some(anomaly) => base.with_anomaly(anomaly),
            None => base,
        }
    }

    /// The flight-recorder configuration requested by `--anomaly` and
    /// the `--anomaly-*` threshold flags, or `None` when no anomaly
    /// flag was given (so the default path stays bit-identical to the
    /// recorder-free simulator).
    pub fn anomaly_config(&self) -> Option<mira::noc::anomaly::AnomalyConfig> {
        use mira::noc::anomaly::AnomalyConfig;
        if !self.anomaly {
            return None;
        }
        let mut cfg = AnomalyConfig::detect();
        if let Some(cycles) = self.anomaly_no_progress {
            cfg = cfg.with_no_progress(cycles);
        }
        if let Some(age) = self.anomaly_starvation {
            cfg = cfg.with_starvation(age);
        }
        if let Some(budget) = self.anomaly_fault_storm {
            cfg = cfg.with_fault_storm(budget);
        }
        if let Some(pct) = self.anomaly_latency_spike_pct {
            cfg = cfg.with_latency_spike(pct, cfg.latency_spike_min_samples);
        }
        if let Some(cycles) = self.anomaly_window {
            cfg = cfg.with_window(cycles);
        }
        Some(cfg)
    }

    /// The fault configuration requested by `--fault-rate` /
    /// `--kill-link` / `--fault-seed`, or `None` when no fault flag was
    /// given (so the default path stays bit-identical to the fault-free
    /// simulator).
    pub fn fault_config(&self) -> Option<mira::noc::fault::FaultConfig> {
        use mira::noc::fault::FaultConfig;
        if self.fault_rate_ppm.is_none() && self.kill_link.is_none() {
            return None;
        }
        let mut faults = FaultConfig::disabled();
        if let Some(ppm) = self.fault_rate_ppm {
            faults = faults.with_transient(ppm);
        }
        if let Some((node, port, cycle)) = self.kill_link {
            faults = faults.with_kill(node, port, cycle);
        }
        if let Some(seed) = self.fault_seed {
            faults = faults.with_seed(seed);
        }
        Some(faults)
    }

    /// Trace length (cycles) for trace-driven experiments.
    pub fn trace_cycles(&self) -> u64 {
        if self.quick {
            5_000
        } else {
            30_000
        }
    }

    /// The worker pool for this invocation: sized by
    /// `available_parallelism`, overridable with `MIRA_JOBS`; the
    /// progress line shows whenever stderr is a terminal. Crash-safety
    /// flags (`--resume`, `--checkpoint-dir`, `--point-timeout`,
    /// `--point-retries`, `--fail-fast`) layer on top of their
    /// environment-variable equivalents.
    pub fn runner(&self) -> Runner {
        let mut runner = Runner::from_env().progress_json(self.progress_json);
        if let Some(n) = self.point_retries {
            runner = runner.point_retries(n);
        }
        if let Some(ms) = self.point_timeout_ms {
            runner = runner.point_timeout(std::time::Duration::from_millis(ms));
        }
        if self.fail_fast {
            runner = runner.fail_fast(true);
        }
        if let Some(dir) = self.checkpoint_dir {
            runner = runner.checkpoint_dir(dir);
        }
        if self.resume {
            runner = runner.resume(true);
        }
        if let Some(dir) = self.blackbox_out {
            runner = runner.blackbox_out(dir);
        }
        runner
    }
}

/// The journeys dump written by `--journeys-out`: what the `journey`
/// subcommand of `trace_tool` pretty-prints.
#[derive(Debug, Clone, Serialize)]
pub struct JourneysDump {
    /// Architecture of the representative run.
    pub arch: String,
    /// Head-sampling rate in ppm.
    pub sample_ppm: u32,
    /// The tail-latency attribution report over the sampled journeys.
    pub report: mira::noc::JourneyReport,
    /// Every completed sampled journey, in completion order.
    pub journeys: Vec<mira::noc::PacketJourney>,
}

/// The metrics dump written by `--metrics-out`: what the `netview`
/// subcommand of `trace_tool` renders.
#[derive(Debug, Clone, Serialize)]
pub struct MetricsDump {
    /// Architecture of the representative run.
    pub arch: String,
    /// Metrics-window length in cycles.
    pub window_cycles: u64,
    /// The closed windows.
    pub windows: Vec<mira::noc::telemetry::MetricsWindow>,
}

/// Runs one representative traced simulation and writes the artifacts
/// requested by `--trace-out` / `--metrics-out`. A no-op when neither
/// flag is set. The run is separate from the exhibit's own simulations,
/// so enabling tracing never perturbs published numbers: 3DM at UR 0.15
/// with 50% short flits and layer shutdown on — a load that exercises
/// every pipeline stage, credit stalls, and layer gating.
pub fn write_telemetry_artifacts(cli: Cli) {
    if cli.trace_out.is_none() && cli.metrics_out.is_none() && cli.journeys_out.is_none() {
        return;
    }
    let arch = Arch::ThreeDM;
    let window = cli.metrics_window.unwrap_or(1_000);
    // `--journeys-out` without an explicit rate samples every packet;
    // `--trace-out` alone keeps the plain trace unless a rate was given,
    // so existing trace consumers see no flow events they did not ask
    // for.
    let journey_ppm = match (cli.span_sample_ppm, cli.journeys_out) {
        (Some(ppm), _) => ppm,
        (None, Some(_)) => 1_000_000,
        (None, None) => 0,
    };
    let telemetry = TelemetryConfig {
        metrics_window: window,
        trace_capacity: if cli.trace_out.is_some() { 1 << 16 } else { 0 },
        journey_sample_ppm: journey_ppm,
        journey_seed: 0,
    };
    let sim_cfg = cli.sim_config().with_telemetry(telemetry);
    let workload = UniformRandom::new(0.15, 5, EXPERIMENT_SEED)
        .with_payload(PayloadProfile::with_short_fraction(4, 0.5));
    let mut sim = Simulator::new(arch.topology(), arch.network_config(true), sim_cfg);
    let report = sim.run(Box::new(workload));

    if let Some(path) = cli.trace_out {
        let trace = sim.trace_chrome_json().expect("trace sink installed");
        if let Err(e) = std::fs::write(path, trace) {
            HostError::io("write trace to", path, &e).exit();
        }
        eprintln!("[telemetry] event trace written to {path} (load in ui.perfetto.dev)");
    }
    if let Some(path) = cli.metrics_out {
        let dump = MetricsDump {
            arch: arch.name().to_string(),
            window_cycles: window,
            windows: report.windows.clone(),
        };
        let json = serde_json::to_string_pretty(&dump).expect("serialisable dump");
        if let Err(e) = std::fs::write(path, json) {
            HostError::io("write metrics to", path, &e).exit();
        }
        eprintln!(
            "[telemetry] {} metrics windows written to {path} (render with `trace_tool netview`)",
            report.windows.len()
        );
    }
    if let Some(path) = cli.journeys_out {
        let dump = JourneysDump {
            arch: arch.name().to_string(),
            sample_ppm: journey_ppm,
            report: report.journeys.clone().expect("journey recorder installed"),
            journeys: sim.journeys().to_vec(),
        };
        let json = serde_json::to_string_pretty(&dump).expect("serialisable journeys");
        if let Err(e) = std::fs::write(path, json) {
            HostError::io("write journeys to", path, &e).exit();
        }
        eprintln!(
            "[telemetry] {} packet journeys written to {path} (inspect with `trace_tool journey`)",
            dump.journeys.len()
        );
    }
}

/// Writes the host-observability snapshot requested by `--obs-out`: the
/// JSON snapshot at the given path plus a Prometheus text rendering next
/// to it with a `.prom` extension. A no-op when the flag is off.
pub fn write_obs_artifacts(cli: Cli) {
    let Some(path) = cli.obs_out else {
        return;
    };
    let snap = mira_obs::snapshot();
    if let Err(e) = std::fs::write(path, snap.to_json()) {
        HostError::io("write obs snapshot to", path, &e).exit();
    }
    let prom_path = std::path::Path::new(path).with_extension("prom");
    if let Err(e) = std::fs::write(&prom_path, snap.to_prometheus()) {
        HostError::io("write obs exposition to", &prom_path, &e).exit();
    }
    eprintln!(
        "[obs] snapshot written to {path} (+ {}; inspect with `trace_tool obs`)",
        prom_path.display()
    );
}

/// Prints an exhibit in the requested format, with a timing footer.
pub fn emit<T: serde::Serialize>(cli: Cli, text: &str, value: &T, started: Instant) {
    if cli.json {
        println!("{}", serde_json::to_string_pretty(value).expect("serialisable exhibit"));
    } else {
        println!("{text}");
    }
    write_telemetry_artifacts(cli);
    write_obs_artifacts(cli);
    eprintln!("[done in {:.1?}]", started.elapsed());
}

/// Like [`emit`], but includes the runner's machine-readable batch
/// summary: in JSON mode the output becomes
/// `{"exhibit": ..., "runner": ...}`; in text mode the summary is one
/// stderr line.
pub fn emit_with_runner<T: serde::Serialize>(
    cli: Cli,
    text: &str,
    value: &T,
    summary: &RunSummary,
    started: Instant,
) {
    if cli.json {
        let wrapped = serde::Value::Object(vec![
            ("exhibit".to_string(), value.to_value()),
            ("runner".to_string(), summary.to_value()),
        ]);
        println!("{}", serde_json::to_string_pretty(&wrapped).expect("serialisable exhibit"));
    } else {
        println!("{text}");
        eprintln!("[runner] {}", summary.one_line());
    }
    write_telemetry_artifacts(cli);
    write_obs_artifacts(cli);
    eprintln!("[done in {:.1?}]", started.elapsed());
}

/// Drives a bare [`Network`](mira::noc::network::Network) under
/// uniform-random load for `cycles` cycles and returns the flits
/// ejected — the measured unit of the `step_throughput` criterion bench
/// and the `bench_step` binary. No warm-up, measurement, or drain
/// phases: this times `Network::step` itself, not the simulation
/// driver.
pub fn drive_network_step(arch: Arch, rate: f64, cycles: u64) -> u64 {
    drive_network_step_sharded(arch, rate, cycles, None, 0)
}

/// Like [`drive_network_step`], but on an explicit 2D mesh size and
/// shard-worker count — the scaling points of `bench_step` (DESIGN.md
/// §18). `mesh: None` keeps the architecture's native topology (a
/// `Some` mesh replaces it with a plain 2D mesh at the 2DB pitch);
/// `shards: 0` leaves the `MIRA_SHARDS` environment default in charge.
pub fn drive_network_step_sharded(
    arch: Arch,
    rate: f64,
    cycles: u64,
    mesh: Option<(usize, usize)>,
    shards: usize,
) -> u64 {
    use mira::noc::network::Network;
    use mira::noc::packet::{Packet, PacketId};
    use mira::noc::topology::{Mesh2D, Topology};
    use mira::noc::traffic::Workload;
    let topo: Box<dyn Topology> = match mesh {
        Some((w, h)) => Box::new(Mesh2D::with_pitch(w, h, Mesh2D::PITCH_2DB_MM)),
        None => arch.topology(),
    };
    let mut net = Network::new(topo, arch.network_config(false));
    if shards > 0 {
        net.set_shards(shards);
    }
    let mut workload = UniformRandom::new(rate, 5, EXPERIMENT_SEED);
    workload.init(net.topology().num_nodes());
    let mut next_packet = 0u64;
    let mut ejected = Vec::new();
    for cycle in 0..cycles {
        for spec in workload.generate(cycle) {
            net.enqueue_packet(Packet {
                id: PacketId(next_packet),
                src: spec.src,
                dst: spec.dst,
                class: spec.class,
                payload: spec.payload,
                created_at: cycle,
            });
            next_packet += 1;
        }
        net.step(cycle);
        net.drain_ejected(&mut ejected);
        ejected.clear();
    }
    if mira_obs::enabled() {
        let wm = net.watermarks();
        mira_obs::registry::ARENA_LIVE_PEAK.set_max(wm.arena_live_peak as u64);
        mira_obs::registry::ROUTER_BUFFER_PEAK.set_max(wm.router_buffer_peak as u64);
    }
    net.counters().flits_ejected
}

/// Injection-rate grid for the uniform-random sweeps (flits/node/cycle).
pub fn rates_ur(cli: Cli) -> Vec<f64> {
    if cli.quick {
        vec![0.05, 0.15, 0.30]
    } else {
        vec![0.02, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40]
    }
}

/// Request-rate grid for the NUCA-UR sweeps (requests/CPU/cycle).
pub fn rates_nuca(cli: Cli) -> Vec<f64> {
    if cli.quick {
        vec![0.05, 0.15]
    } else {
        vec![0.02, 0.05, 0.10, 0.15, 0.20, 0.30]
    }
}
