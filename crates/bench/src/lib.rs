#![warn(missing_docs)]
//! # mira-bench — the benchmark harness
//!
//! One binary per table/figure of the paper (see DESIGN.md §5 for the
//! index). Every binary accepts `--quick` to run a reduced configuration
//! and prints the regenerated exhibit as text (plus `--json` for
//! machine-readable output).
//!
//! Criterion benches covering the simulator engine and each experiment
//! group live under `benches/`.

use std::time::Instant;

use serde::Serialize;

pub use mira::experiments::runner::{RunSummary, Runner};

/// Shared CLI handling for the experiment binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Cli {
    /// Reduced configuration (shorter sims, fewer points).
    pub quick: bool,
    /// Emit JSON instead of aligned text.
    pub json: bool,
}

impl Cli {
    /// Parses the process arguments (unknown flags abort with usage).
    pub fn parse() -> Cli {
        let mut cli = Cli { quick: false, json: false };
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--quick" => cli.quick = true,
                "--json" => cli.json = true,
                "--help" | "-h" => {
                    eprintln!("usage: <bin> [--quick] [--json]");
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown flag {other}; usage: <bin> [--quick] [--json]");
                    std::process::exit(2);
                }
            }
        }
        cli
    }

    /// The simulation window for this invocation.
    pub fn sim_config(&self) -> mira::noc::sim::SimConfig {
        if self.quick {
            mira::experiments::quick_sim_config()
        } else {
            mira::noc::sim::SimConfig {
                warmup_cycles: 2_000,
                measure_cycles: 10_000,
                drain_cycles: 30_000,
            }
        }
    }

    /// Trace length (cycles) for trace-driven experiments.
    pub fn trace_cycles(&self) -> u64 {
        if self.quick {
            5_000
        } else {
            30_000
        }
    }

    /// The worker pool for this invocation: sized by
    /// `available_parallelism`, overridable with `MIRA_JOBS`; the
    /// progress line shows whenever stderr is a terminal.
    pub fn runner(&self) -> Runner {
        Runner::from_env()
    }
}

/// Prints an exhibit in the requested format, with a timing footer.
pub fn emit<T: serde::Serialize>(cli: Cli, text: &str, value: &T, started: Instant) {
    if cli.json {
        println!("{}", serde_json::to_string_pretty(value).expect("serialisable exhibit"));
    } else {
        println!("{text}");
    }
    eprintln!("[done in {:.1?}]", started.elapsed());
}

/// Like [`emit`], but includes the runner's machine-readable batch
/// summary: in JSON mode the output becomes
/// `{"exhibit": ..., "runner": ...}`; in text mode the summary is one
/// stderr line.
pub fn emit_with_runner<T: serde::Serialize>(
    cli: Cli,
    text: &str,
    value: &T,
    summary: &RunSummary,
    started: Instant,
) {
    if cli.json {
        let wrapped = serde::Value::Object(vec![
            ("exhibit".to_string(), value.to_value()),
            ("runner".to_string(), summary.to_value()),
        ]);
        println!("{}", serde_json::to_string_pretty(&wrapped).expect("serialisable exhibit"));
    } else {
        println!("{text}");
        eprintln!("[runner] {}", summary.one_line());
    }
    eprintln!("[done in {:.1?}]", started.elapsed());
}

/// Injection-rate grid for the uniform-random sweeps (flits/node/cycle).
pub fn rates_ur(cli: Cli) -> Vec<f64> {
    if cli.quick {
        vec![0.05, 0.15, 0.30]
    } else {
        vec![0.02, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40]
    }
}

/// Request-rate grid for the NUCA-UR sweeps (requests/CPU/cycle).
pub fn rates_nuca(cli: Cli) -> Vec<f64> {
    if cli.quick {
        vec![0.05, 0.15]
    } else {
        vec![0.02, 0.05, 0.10, 0.15, 0.20, 0.30]
    }
}
