//! Turn-model adaptive routing on the 2D mesh (extension).
//!
//! The paper evaluates deterministic X-Y routing only; the turn models
//! of Glass & Ni are the classic way to add adaptivity while staying
//! deadlock-free: each model forbids just enough turns to break every
//! cycle in the channel-dependence graph, and the router picks among
//! the remaining *productive* output ports by downstream credit count
//! (congestion-aware selection happens in the RC stage, which can see
//! the router's credit state).
//!
//! [`AdaptiveMesh2D`] wraps [`Mesh2D`] and overrides
//! [`Topology::route_candidates`]; everything else (links, lengths,
//! coordinates) is inherited.
//!
//! Under fault-aware routing the candidate set additionally passes
//! through [`apply_fault_mask`](crate::routing::apply_fault_mask) in the
//! router's RC stage: dead output ports are filtered out *before* the
//! credit-based selection, so an adaptive router sheds a failed link by
//! simply never picking it — the surviving productive candidates keep
//! the route minimal and turn-legal, no detour needed (unlike
//! deterministic X-Y, which has a single candidate and must detour).

use crate::ids::{NodeId, PortId};
use crate::routing::{dim_step, DimStep};
use crate::topology::{port, Coords, Mesh2D, Topology};

/// A deadlock-free turn restriction (Glass & Ni).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TurnModel {
    /// All westward moves happen first; afterwards E/N/S are adaptive.
    WestFirst,
    /// Northward moves happen last; E/W/S are adaptive before that.
    NorthLast,
    /// All negative-direction (W, S) moves happen first; afterwards E/N
    /// are adaptive.
    NegativeFirst,
}

impl TurnModel {
    /// All three models.
    pub const ALL: [TurnModel; 3] =
        [TurnModel::WestFirst, TurnModel::NorthLast, TurnModel::NegativeFirst];

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            TurnModel::WestFirst => "west-first",
            TurnModel::NorthLast => "north-last",
            TurnModel::NegativeFirst => "negative-first",
        }
    }

    /// Productive, turn-legal output ports towards `(dx, dy)` steps, in
    /// preference order. At least one port is always returned for a
    /// non-zero displacement. Returns a static slice so the RC hot path
    /// copies ports without allocating.
    fn candidates(self, x_step: DimStep, y_step: DimStep) -> &'static [PortId] {
        use DimStep::{Done, Negative, Positive};
        match self {
            TurnModel::WestFirst => match (x_step, y_step) {
                // Westward component: west only, first.
                (Negative, _) => &[port::WEST],
                (Positive, Positive) => &[port::EAST, port::NORTH],
                (Positive, Negative) => &[port::EAST, port::SOUTH],
                (Positive, Done) => &[port::EAST],
                (Done, Positive) => &[port::NORTH],
                (Done, Negative) => &[port::SOUTH],
                (Done, Done) => &[port::LOCAL],
            },
            TurnModel::NorthLast => match (x_step, y_step) {
                // North only when nothing else remains.
                (Done, Positive) => &[port::NORTH],
                (Positive, Negative) => &[port::EAST, port::SOUTH],
                (Negative, Negative) => &[port::WEST, port::SOUTH],
                (Positive, _) => &[port::EAST],
                (Negative, _) => &[port::WEST],
                (Done, Negative) => &[port::SOUTH],
                (Done, Done) => &[port::LOCAL],
            },
            TurnModel::NegativeFirst => match (x_step, y_step) {
                // Negative moves (W, S) first — adaptive among them.
                (Negative, Negative) => &[port::WEST, port::SOUTH],
                (Negative, _) => &[port::WEST],
                (_, Negative) => &[port::SOUTH],
                (Positive, Positive) => &[port::EAST, port::NORTH],
                (Positive, Done) => &[port::EAST],
                (Done, Positive) => &[port::NORTH],
                (Done, Done) => &[port::LOCAL],
            },
        }
    }
}

impl std::fmt::Display for TurnModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A 2D mesh with turn-model adaptive routing.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveMesh2D {
    inner: Mesh2D,
    model: TurnModel,
}

impl AdaptiveMesh2D {
    /// Wraps a mesh with the given turn model.
    pub fn new(inner: Mesh2D, model: TurnModel) -> Self {
        AdaptiveMesh2D { inner, model }
    }

    /// The turn model in use.
    pub fn model(&self) -> TurnModel {
        self.model
    }

    fn steps(&self, current: NodeId, dst: NodeId) -> (DimStep, DimStep) {
        let c = self.inner.coords(current);
        let d = self.inner.coords(dst);
        (dim_step(c.x, d.x), dim_step(c.y, d.y))
    }
}

impl Topology for AdaptiveMesh2D {
    fn name(&self) -> String {
        format!("{}-{}", self.inner.name(), self.model.name())
    }

    fn num_nodes(&self) -> usize {
        self.inner.num_nodes()
    }

    fn radix(&self) -> usize {
        self.inner.radix()
    }

    fn neighbor(&self, node: NodeId, out_port: PortId) -> Option<NodeId> {
        self.inner.neighbor(node, out_port)
    }

    fn route(&self, current: NodeId, dst: NodeId) -> PortId {
        // Deterministic fallback: the most-preferred legal candidate.
        let (xs, ys) = self.steps(current, dst);
        self.model.candidates(xs, ys)[0]
    }

    fn route_candidates_into(&self, current: NodeId, dst: NodeId, out: &mut Vec<PortId>) {
        let (xs, ys) = self.steps(current, dst);
        out.extend_from_slice(self.model.candidates(xs, ys));
    }

    fn link_length_mm(&self, node: NodeId, out_port: PortId) -> f64 {
        self.inner.link_length_mm(node, out_port)
    }

    fn min_hops(&self, src: NodeId, dst: NodeId) -> usize {
        // All candidates are productive, so routing stays minimal.
        self.inner.min_hops(src, dst)
    }

    fn coords(&self, node: NodeId) -> Coords {
        self.inner.coords(node)
    }

    fn opposite_port(&self, out_port: PortId) -> PortId {
        self.inner.opposite_port(out_port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh(model: TurnModel) -> AdaptiveMesh2D {
        AdaptiveMesh2D::new(Mesh2D::new(6, 6), model)
    }

    /// Every candidate is productive (reduces the Manhattan distance).
    #[test]
    fn candidates_are_productive() {
        for model in TurnModel::ALL {
            let topo = mesh(model);
            for s in 0..36 {
                for d in 0..36 {
                    let (src, dst) = (NodeId(s), NodeId(d));
                    let before = topo.min_hops(src, dst);
                    for p in topo.route_candidates(src, dst) {
                        if src == dst {
                            assert!(p.is_local());
                            continue;
                        }
                        let next = topo
                            .neighbor(src, p)
                            .unwrap_or_else(|| panic!("{model}: candidate off-mesh {src}->{dst}"));
                        assert_eq!(
                            topo.min_hops(next, dst),
                            before - 1,
                            "{model}: unproductive candidate {src}->{dst} via {p}"
                        );
                    }
                }
            }
        }
    }

    /// West-first: no candidate set ever mixes WEST with another port —
    /// westward progress is never adaptive (the turn restriction).
    #[test]
    fn west_first_restriction() {
        let topo = mesh(TurnModel::WestFirst);
        for s in 0..36 {
            for d in 0..36 {
                let c = topo.route_candidates(NodeId(s), NodeId(d));
                if c.contains(&port::WEST) {
                    assert_eq!(c.len(), 1, "west must be exclusive: {c:?}");
                }
            }
        }
    }

    /// North-last: NORTH only appears as the sole final candidate.
    #[test]
    fn north_last_restriction() {
        let topo = mesh(TurnModel::NorthLast);
        for s in 0..36 {
            for d in 0..36 {
                let c = topo.route_candidates(NodeId(s), NodeId(d));
                if c.contains(&port::NORTH) {
                    assert_eq!(c.len(), 1, "north must come last, alone: {c:?}");
                }
            }
        }
    }

    /// Negative-first: once a positive move is available, no negative
    /// port remains a candidate.
    #[test]
    fn negative_first_restriction() {
        let topo = mesh(TurnModel::NegativeFirst);
        for s in 0..36 {
            for d in 0..36 {
                let c = topo.route_candidates(NodeId(s), NodeId(d));
                let has_neg = c.contains(&port::WEST) || c.contains(&port::SOUTH);
                let has_pos = c.contains(&port::EAST) || c.contains(&port::NORTH);
                assert!(!(has_neg && has_pos), "negative and positive mixed: {c:?}");
            }
        }
    }

    /// Fault masking composes with adaptivity: killing the preferred
    /// candidate leaves a productive, turn-legal alternative wherever
    /// the model offered more than one port — graceful degradation
    /// without a detour.
    #[test]
    fn fault_mask_leaves_productive_candidates() {
        use crate::routing::apply_fault_mask;
        for model in TurnModel::ALL {
            let topo = mesh(model);
            for s in 0..36 {
                for d in 0..36 {
                    let (src, dst) = (NodeId(s), NodeId(d));
                    let mut c = topo.route_candidates(src, dst);
                    if c.len() < 2 {
                        continue;
                    }
                    let mut dead = vec![false; topo.radix()];
                    dead[c[0].index()] = true;
                    assert!(apply_fault_mask(&mut c, &dead), "{model}: mask must report removal");
                    assert!(!c.is_empty());
                    let before = topo.min_hops(src, dst);
                    for p in c {
                        let next = topo.neighbor(src, p).expect("candidate on-mesh");
                        assert_eq!(topo.min_hops(next, dst), before - 1, "{model}: unproductive");
                    }
                }
            }
        }
    }

    /// The deterministic fallback route still delivers minimally.
    #[test]
    fn fallback_route_is_minimal() {
        for model in TurnModel::ALL {
            let topo = mesh(model);
            for s in 0..36 {
                for d in 0..36 {
                    if s == d {
                        continue;
                    }
                    let (mut cur, dst) = (NodeId(s), NodeId(d));
                    let mut hops = 0;
                    while cur != dst {
                        let p = topo.route(cur, dst);
                        cur = topo.neighbor(cur, p).expect("on-mesh");
                        hops += 1;
                        assert!(hops <= 10, "{model}: loop {s}->{d}");
                    }
                    assert_eq!(hops, topo.min_hops(NodeId(s), dst), "{model}: {s}->{d}");
                }
            }
        }
    }
}
