//! Anomaly detection configuration and verdicts (DESIGN.md §17).
//!
//! The flight recorder ([`crate::recorder`]) evaluates a small set of
//! deterministic detectors while a simulation runs. This module holds
//! the shared vocabulary: [`AnomalyConfig`] (what is armed, with which
//! thresholds — all off by default, the zero-overhead path),
//! [`AnomalyKind`] (which detector fired), [`AnomalyCounts`] (per-kind
//! firing counts carried on `SimReport`), and [`AnomalyAbort`] (the
//! panic payload a halting trigger unwinds with, carrying the rendered
//! `blackbox.json` so the host can persist it).
//!
//! Every detector is a pure function of simulator state, so a given
//! (config, seed) pair either always fires or never does — anomaly
//! failures are reproducible, and the experiment runner treats them as
//! deterministic (no retry).

use crate::fault::FaultCounters;

/// Which detector fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnomalyKind {
    /// No flit ejected and no router state-mask transition for the
    /// configured number of cycles while the network is not drained —
    /// a deadlock or a wedged router.
    NoProgress,
    /// A router's downstream credit count exceeds the buffer depth it
    /// tracks — credits were double-returned or conjured.
    CreditViolation,
    /// Some head flit has been parked in a VC buffer longer than the
    /// starvation threshold.
    Starvation,
    /// More fault events landed in one metrics window than the budget
    /// allows.
    FaultStorm,
    /// The windowed latency p99 exceeded the trailing baseline by the
    /// configured multiplier.
    LatencySpike,
}

impl AnomalyKind {
    /// Every detector, in the order counts are reported.
    pub const ALL: [AnomalyKind; 5] = [
        AnomalyKind::NoProgress,
        AnomalyKind::CreditViolation,
        AnomalyKind::Starvation,
        AnomalyKind::FaultStorm,
        AnomalyKind::LatencySpike,
    ];

    /// Stable machine-readable tag (used in dumps, ledger entries and
    /// failure kinds).
    pub fn name(self) -> &'static str {
        match self {
            AnomalyKind::NoProgress => "no_progress",
            AnomalyKind::CreditViolation => "credit_violation",
            AnomalyKind::Starvation => "starvation",
            AnomalyKind::FaultStorm => "fault_storm",
            AnomalyKind::LatencySpike => "latency_spike",
        }
    }
}

impl std::fmt::Display for AnomalyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Detector thresholds. `disabled()` (the [`Default`]) arms nothing and
/// is the zero-overhead path: the simulator allocates no recorder and
/// runs bit-identically to a build without the anomaly subsystem.
///
/// A threshold of zero disarms its detector individually, so partial
/// configurations are possible (e.g. only the no-progress watchdog).
/// `Copy + Eq` keeps `SimConfig` hashable and comparable; the
/// latency-spike multiplier is therefore stored in percent
/// (`300` = p99 must stay under 3× the trailing baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnomalyConfig {
    /// Cycles without any progress (flit ejection or state-mask
    /// transition) before the no-progress watchdog fires. 0 = off.
    pub no_progress_cycles: u64,
    /// Head-flit age (cycles parked at the front of a VC buffer) above
    /// which the starvation detector fires. 0 = off.
    pub starvation_age: u64,
    /// Fault events allowed per evaluation window before the
    /// fault-storm detector fires. 0 = off.
    pub fault_storm_budget: u64,
    /// Latency-spike threshold in percent of the trailing baseline p99
    /// (`300` fires when a window's p99 exceeds 3× baseline). 0 = off.
    pub latency_spike_pct: u32,
    /// Minimum measured ejections a window needs before its p99 is
    /// compared (guards against tiny-sample spikes).
    pub latency_spike_min_samples: u64,
    /// Evaluation cadence in cycles for the windowed detectors
    /// (starvation, credit, fault-storm, latency-spike).
    pub window: u64,
    /// Capacity of the flight-recorder event ring (recent compact
    /// events kept for the black-box dump). 0 keeps the ring off.
    pub ring_capacity: usize,
    /// Whether a no-progress trigger halts the run by unwinding with an
    /// [`AnomalyAbort`] (the runner converts it into a typed anomaly
    /// failure). Off, the trigger only counts and snapshots.
    pub halt_on_no_progress: bool,
}

impl AnomalyConfig {
    /// Nothing armed — the default, zero-overhead path.
    pub const fn disabled() -> Self {
        AnomalyConfig {
            no_progress_cycles: 0,
            starvation_age: 0,
            fault_storm_budget: 0,
            latency_spike_pct: 0,
            latency_spike_min_samples: 0,
            window: 1_000,
            ring_capacity: 0,
            halt_on_no_progress: false,
        }
    }

    /// Every detector armed with its default threshold, halting on
    /// no-progress — what `--anomaly` gives the bench binaries.
    pub fn detect() -> Self {
        AnomalyConfig {
            no_progress_cycles: 1_000,
            starvation_age: 2_000,
            fault_storm_budget: 1_000,
            latency_spike_pct: 400,
            latency_spike_min_samples: 200,
            window: 1_000,
            ring_capacity: 4_096,
            halt_on_no_progress: true,
        }
    }

    /// Whether any detector is armed.
    pub fn is_enabled(&self) -> bool {
        self.no_progress_cycles > 0
            || self.starvation_age > 0
            || self.fault_storm_budget > 0
            || self.latency_spike_pct > 0
    }

    /// The same thresholds with a different no-progress watchdog.
    #[must_use]
    pub fn with_no_progress(mut self, cycles: u64) -> Self {
        self.no_progress_cycles = cycles;
        self
    }

    /// The same thresholds with a different starvation age.
    #[must_use]
    pub fn with_starvation(mut self, age: u64) -> Self {
        self.starvation_age = age;
        self
    }

    /// The same thresholds with a different fault-storm budget.
    #[must_use]
    pub fn with_fault_storm(mut self, budget: u64) -> Self {
        self.fault_storm_budget = budget;
        self
    }

    /// The same thresholds with a different latency-spike multiplier
    /// (percent of trailing baseline) and minimum sample count.
    #[must_use]
    pub fn with_latency_spike(mut self, pct: u32, min_samples: u64) -> Self {
        self.latency_spike_pct = pct;
        self.latency_spike_min_samples = min_samples;
        self
    }

    /// The same thresholds with a different evaluation window.
    #[must_use]
    pub fn with_window(mut self, cycles: u64) -> Self {
        self.window = cycles.max(1);
        self
    }

    /// The same thresholds with a different event-ring capacity.
    #[must_use]
    pub fn with_ring(mut self, capacity: usize) -> Self {
        self.ring_capacity = capacity;
        self
    }

    /// The same thresholds with halting configured.
    #[must_use]
    pub fn with_halt(mut self, halt: bool) -> Self {
        self.halt_on_no_progress = halt;
        self
    }
}

impl Default for AnomalyConfig {
    fn default() -> Self {
        AnomalyConfig::disabled()
    }
}

/// Per-kind firing counts over one run. All-zero (and omitted from
/// report JSON) on a clean run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct AnomalyCounts {
    /// No-progress watchdog firings.
    pub no_progress: u64,
    /// Credit-conservation violations.
    pub credit_violation: u64,
    /// Starvation detections.
    pub starvation: u64,
    /// Fault-storm windows.
    pub fault_storm: u64,
    /// Latency-spike windows.
    pub latency_spike: u64,
}

impl AnomalyCounts {
    /// Records one firing.
    pub fn record(&mut self, kind: AnomalyKind) {
        match kind {
            AnomalyKind::NoProgress => self.no_progress += 1,
            AnomalyKind::CreditViolation => self.credit_violation += 1,
            AnomalyKind::Starvation => self.starvation += 1,
            AnomalyKind::FaultStorm => self.fault_storm += 1,
            AnomalyKind::LatencySpike => self.latency_spike += 1,
        }
    }

    /// The count for one kind.
    pub fn get(&self, kind: AnomalyKind) -> u64 {
        match kind {
            AnomalyKind::NoProgress => self.no_progress,
            AnomalyKind::CreditViolation => self.credit_violation,
            AnomalyKind::Starvation => self.starvation,
            AnomalyKind::FaultStorm => self.fault_storm,
            AnomalyKind::LatencySpike => self.latency_spike,
        }
    }

    /// Total firings across all detectors.
    pub fn total(&self) -> u64 {
        AnomalyKind::ALL.iter().map(|&k| self.get(k)).sum()
    }

    /// Names of the kinds that fired at least once, in [`AnomalyKind::ALL`]
    /// order.
    pub fn kinds(&self) -> Vec<&'static str> {
        AnomalyKind::ALL.iter().filter(|&&k| self.get(k) > 0).map(|&k| k.name()).collect()
    }
}

/// Window statistics accompanying a firing (what the detector compared;
/// meaning depends on the kind — see the field docs).
#[derive(Debug, Clone, Copy, Default, serde::Serialize, serde::Deserialize)]
pub struct WindowStats {
    /// The value the detector measured (stalled cycles, head-flit age,
    /// fault events in the window, or the window's p99 in cycles).
    pub observed: u64,
    /// The threshold it compared against (configured limit, or the
    /// scaled trailing baseline for latency spikes).
    pub threshold: u64,
    /// Measured ejections contributing to the window (latency-spike
    /// only; 0 otherwise).
    pub samples: u64,
}

/// One detector firing: what fired, when, and against which numbers.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct FiredDetector {
    /// [`AnomalyKind::name`] of the detector.
    pub kind: String,
    /// Cycle the detector fired on.
    pub cycle: u64,
    /// Human-readable one-line verdict.
    pub detail: String,
    /// The numbers behind the verdict.
    pub stats: WindowStats,
}

/// The panic payload a halting no-progress trigger unwinds with.
///
/// The dump is rendered to its JSON text *before* the unwind so the
/// host side (which has no access to the dead simulator) can write
/// `blackbox.json` verbatim. The experiment runner downcasts this
/// payload ahead of its generic panic handling and converts it into a
/// typed anomaly failure instead of an opaque panic or timeout.
#[derive(Debug, Clone)]
pub struct AnomalyAbort {
    /// Which detector halted the run.
    pub kind: AnomalyKind,
    /// Cycle the run halted on.
    pub cycle: u64,
    /// The rendered `blackbox.json` snapshot.
    pub dump: String,
}

impl std::fmt::Display for AnomalyAbort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "anomaly detector `{}` halted the run at cycle {}", self.kind, self.cycle)
    }
}

/// Computes the fault-event total the fault-storm detector budgets:
/// everything the fault machinery counted as an injected fault or a
/// recovery action (not the packets it eventually delivered anyway).
pub(crate) fn fault_event_total(c: &FaultCounters) -> u64 {
    c.transient_faults + c.stuck_faults + c.links_killed + c.retransmissions + c.flits_dropped
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_arms_nothing() {
        let cfg = AnomalyConfig::disabled();
        assert!(!cfg.is_enabled());
        assert_eq!(cfg, AnomalyConfig::default());
    }

    #[test]
    fn detect_arms_everything() {
        let cfg = AnomalyConfig::detect();
        assert!(cfg.is_enabled());
        assert!(cfg.no_progress_cycles > 0 && cfg.starvation_age > 0);
        assert!(cfg.halt_on_no_progress);
    }

    #[test]
    fn single_detector_configs_are_enabled() {
        assert!(AnomalyConfig::disabled().with_no_progress(500).is_enabled());
        assert!(AnomalyConfig::disabled().with_starvation(100).is_enabled());
        assert!(AnomalyConfig::disabled().with_fault_storm(10).is_enabled());
        assert!(AnomalyConfig::disabled().with_latency_spike(300, 50).is_enabled());
    }

    #[test]
    fn counts_track_kinds() {
        let mut c = AnomalyCounts::default();
        assert_eq!(c.total(), 0);
        assert!(c.kinds().is_empty());
        c.record(AnomalyKind::NoProgress);
        c.record(AnomalyKind::NoProgress);
        c.record(AnomalyKind::LatencySpike);
        assert_eq!(c.total(), 3);
        assert_eq!(c.get(AnomalyKind::NoProgress), 2);
        assert_eq!(c.kinds(), vec!["no_progress", "latency_spike"]);
    }

    #[test]
    fn kind_names_are_stable() {
        let names: Vec<&str> = AnomalyKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            ["no_progress", "credit_violation", "starvation", "fault_storm", "latency_spike"]
        );
    }
}
