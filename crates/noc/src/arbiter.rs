//! Round-robin arbiters used by the allocation stages.
//!
//! The VA and SA stages of the router are built from `n:1` arbiters
//! (paper §3.2.5–3.2.6: VA1 uses `P·V` V:1 arbiters, VA2 uses `P·V` PV:1
//! arbiters, SA is a two-stage separable allocator). A rotating-priority
//! (round-robin) arbiter provides the strong fairness the analysis
//! assumes; the arbiter *size* is what the area/power models care about,
//! so it is exposed alongside the grant logic.

use serde::{Deserialize, Serialize};

/// A rotating-priority (round-robin) arbiter over `n` request lines.
///
/// Grants are fair: after granting line `i`, line `i+1` has the highest
/// priority on the next arbitration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundRobinArbiter {
    size: usize,
    next_priority: usize,
}

impl RoundRobinArbiter {
    /// Creates an arbiter over `size` request lines.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "arbiter must have at least one request line");
        RoundRobinArbiter { size, next_priority: 0 }
    }

    /// Number of request lines (the `n` of an `n:1` arbiter).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Arbitrates among the requests selected by `requesting` and returns
    /// the granted line, advancing the priority pointer past it.
    ///
    /// Returns `None` if no line requests.
    pub fn arbitrate<F>(&mut self, requesting: F) -> Option<usize>
    where
        F: Fn(usize) -> bool,
    {
        for offset in 0..self.size {
            let line = (self.next_priority + offset) % self.size;
            if requesting(line) {
                self.next_priority = (line + 1) % self.size;
                return Some(line);
            }
        }
        None
    }

    /// Arbitrates among an explicit list of requesting line indices.
    ///
    /// Returns `None` if the list is empty. Indices outside `0..size` are
    /// ignored.
    pub fn arbitrate_among(&mut self, lines: &[usize]) -> Option<usize> {
        self.arbitrate(|i| lines.contains(&i))
    }

    /// Arbitrates among the request lines set in `mask` (bit `i` = line
    /// `i`). Produces exactly the same grant sequence as
    /// `arbitrate(|i| mask & (1 << i) != 0)` — the first requesting line
    /// at or after the priority pointer, wrapping — but in O(1) via
    /// count-trailing-zeros, which is what the per-cycle hot path uses.
    ///
    /// Only valid for arbiters of up to 64 lines; bits at or above
    /// `size` are ignored.
    #[inline]
    pub fn arbitrate_mask(&mut self, mask: u64) -> Option<usize> {
        debug_assert!(self.size <= 64, "mask arbitration supports at most 64 lines");
        let mask = if self.size < 64 { mask & ((1u64 << self.size) - 1) } else { mask };
        if mask == 0 {
            return None;
        }
        let shifted = mask >> self.next_priority;
        let line = if shifted != 0 {
            self.next_priority + shifted.trailing_zeros() as usize
        } else {
            mask.trailing_zeros() as usize
        };
        self.next_priority = (line + 1) % self.size;
        Some(line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_only_requesting_lines() {
        let mut a = RoundRobinArbiter::new(4);
        assert_eq!(a.arbitrate(|i| i == 2), Some(2));
        assert_eq!(a.arbitrate(|_| false), None);
    }

    #[test]
    fn round_robin_is_fair() {
        let mut a = RoundRobinArbiter::new(3);
        // All lines always request: grants must rotate 0,1,2,0,1,2…
        let grants: Vec<_> = (0..6).map(|_| a.arbitrate(|_| true).unwrap()).collect();
        assert_eq!(grants, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn priority_moves_past_granted_line() {
        let mut a = RoundRobinArbiter::new(4);
        assert_eq!(a.arbitrate(|i| i == 3), Some(3));
        // Next arbitration starts the search at line 0.
        assert_eq!(a.arbitrate(|_| true), Some(0));
    }

    #[test]
    fn no_starvation_under_contention() {
        let mut a = RoundRobinArbiter::new(5);
        let mut counts = [0usize; 5];
        for _ in 0..1000 {
            let g = a.arbitrate(|_| true).unwrap();
            counts[g] += 1;
        }
        assert!(counts.iter().all(|&c| c == 200), "{counts:?}");
    }

    #[test]
    fn arbitrate_among_list() {
        let mut a = RoundRobinArbiter::new(4);
        assert_eq!(a.arbitrate_among(&[1, 3]), Some(1));
        assert_eq!(a.arbitrate_among(&[1, 3]), Some(3));
        assert_eq!(a.arbitrate_among(&[]), None);
        // out-of-range indices ignored
        assert_eq!(a.arbitrate_among(&[9]), None);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_size_panics() {
        let _ = RoundRobinArbiter::new(0);
    }
}
