//! Flat flit storage for the data-oriented core (DESIGN.md §14).
//!
//! Every flit in the fabric lives in one [`FlitArena`] owned by the
//! network; routers, links, and NIC queues hold 4-byte [`FlitRef`]
//! indices instead of by-value [`Flit`]s. This keeps the per-cycle path
//! allocation-free: a flit's heap payload is allocated exactly once at
//! packet creation, and every subsequent hop moves only an index.
//!
//! The arena is a slot map with a free list. `alloc` reuses the
//! lowest-water free slot when one exists, so steady-state simulation
//! reaches a fixed footprint and never grows. The free list's capacity
//! is pre-reserved to match the slot table inside `alloc` — the
//! injection path, where allocation is permitted — so `free` never
//! allocates during the measured window.

use crate::flit::Flit;

/// Index of a live flit in the [`FlitArena`].
///
/// Refs are plain `u32` indices; they are invalidated by
/// [`FlitArena::free`]/[`FlitArena::take`] and must not be dereferenced
/// afterwards (debug builds panic on a dangling deref).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlitRef(pub u32);

/// Slot-map arena holding every flit currently in the fabric.
#[derive(Debug, Default)]
pub struct FlitArena {
    slots: Vec<Option<Flit>>,
    free: Vec<u32>,
    /// Highest live-flit count ever reached (host-side watermark for
    /// the observability layer; never read by the simulation).
    live_peak: usize,
}

impl FlitArena {
    /// An empty arena.
    pub fn new() -> Self {
        FlitArena::default()
    }

    /// An empty arena with room for `cap` flits before any slot-table
    /// growth.
    pub fn with_capacity(cap: usize) -> Self {
        FlitArena { slots: Vec::with_capacity(cap), free: Vec::with_capacity(cap), live_peak: 0 }
    }

    /// Stores `flit`, returning its index. Reuses a freed slot when one
    /// exists; only grows the slot table (and, in step, the free list —
    /// keeping `free.capacity() >= slots.len()` so a later [`free`]
    /// never reallocates) when the arena is full.
    ///
    /// [`free`]: FlitArena::free
    pub fn alloc(&mut self, flit: Flit) -> FlitRef {
        let r = if let Some(idx) = self.free.pop() {
            debug_assert!(self.slots[idx as usize].is_none(), "free slot was occupied");
            self.slots[idx as usize] = Some(flit);
            FlitRef(idx)
        } else {
            let idx = u32::try_from(self.slots.len()).expect("flit arena overflow");
            self.slots.push(Some(flit));
            if self.free.capacity() < self.slots.len() {
                self.free.reserve(self.slots.len() - self.free.len());
            }
            FlitRef(idx)
        };
        self.live_peak = self.live_peak.max(self.allocated());
        r
    }

    /// Borrows the flit at `r`.
    #[inline]
    pub fn get(&self, r: FlitRef) -> &Flit {
        self.slots[r.0 as usize].as_ref().expect("dangling FlitRef")
    }

    /// Mutably borrows the flit at `r`.
    #[inline]
    pub fn get_mut(&mut self, r: FlitRef) -> &mut Flit {
        self.slots[r.0 as usize].as_mut().expect("dangling FlitRef")
    }

    /// Removes and returns the flit at `r`, freeing the slot.
    #[inline]
    pub fn take(&mut self, r: FlitRef) -> Flit {
        let flit = self.slots[r.0 as usize].take().expect("dangling FlitRef");
        self.free.push(r.0);
        flit
    }

    /// Frees the slot at `r`, dropping the flit.
    #[inline]
    pub fn free(&mut self, r: FlitRef) {
        let _ = self.take(r);
    }

    /// Number of live flits.
    pub fn allocated(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Total slots ever created (live + free).
    pub fn capacity_slots(&self) -> usize {
        self.slots.len()
    }

    /// Highest [`FlitArena::allocated`] value ever reached.
    pub fn live_peak(&self) -> usize {
        self.live_peak
    }

    /// Returns `true` if `r` currently addresses a live flit.
    pub fn is_live(&self, r: FlitRef) -> bool {
        self.slots.get(r.0 as usize).is_some_and(Option::is_some)
    }

    /// Iterates every live slot as `(slot index, flit)`, in slot order
    /// (the flight recorder's full-arena dump).
    pub fn iter_live(&self) -> impl Iterator<Item = (u32, &Flit)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| s.as_ref().map(|f| (i as u32, f)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{FlitData, FlitKind};
    use crate::ids::NodeId;
    use crate::packet::{PacketClass, PacketId};

    fn flit(seq: u32) -> Flit {
        Flit {
            packet: PacketId(1),
            seq,
            kind: FlitKind::Body,
            src: NodeId(0),
            dst: NodeId(1),
            class: PacketClass::ReadRequest,
            data: FlitData::dense(4),
            created_at: 0,
            hops: 0,
        }
    }

    #[test]
    fn alloc_take_roundtrip() {
        let mut a = FlitArena::new();
        let r0 = a.alloc(flit(0));
        let r1 = a.alloc(flit(1));
        assert_eq!(a.allocated(), 2);
        assert_eq!(a.get(r0).seq, 0);
        assert_eq!(a.get(r1).seq, 1);
        let f = a.take(r0);
        assert_eq!(f.seq, 0);
        assert_eq!(a.allocated(), 1);
        assert!(!a.is_live(r0));
        assert!(a.is_live(r1));
    }

    #[test]
    fn freed_slots_are_reused() {
        let mut a = FlitArena::new();
        let r0 = a.alloc(flit(0));
        let _r1 = a.alloc(flit(1));
        a.free(r0);
        let r2 = a.alloc(flit(2));
        assert_eq!(r2, r0, "lowest-water slot reuse");
        assert_eq!(a.capacity_slots(), 2, "no growth while a free slot exists");
    }

    #[test]
    fn free_list_capacity_covers_all_slots() {
        let mut a = FlitArena::new();
        let refs: Vec<_> = (0..64).map(|s| a.alloc(flit(s))).collect();
        assert!(a.free.capacity() >= a.slots.len(), "free never reallocates");
        for r in refs {
            a.free(r);
        }
        assert_eq!(a.allocated(), 0);
    }

    #[test]
    #[should_panic(expected = "dangling FlitRef")]
    fn dangling_deref_panics() {
        let mut a = FlitArena::new();
        let r = a.alloc(flit(0));
        a.free(r);
        let _ = a.get(r);
    }
}
