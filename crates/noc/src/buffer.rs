//! Flat flit buffering for the data-oriented router core.
//!
//! One [`FlitSlab`] holds *every* virtual-channel FIFO of a router in a
//! single contiguous ring-buffer slab, keyed by the flat `(port, vc)`
//! index. In the multi-layered router the buffer is bit-sliced across
//! layers (paper §3.2.1): word-lines span layers, bit-lines stay within
//! a layer. That split is *physical*, not logical — the buffer still
//! holds whole flits — so the simulator models it through the activity
//! accounting (a short flit only charges the active slices), not
//! through the data structure.
//!
//! Buffered entries are [`BufSlot`]s: a [`FlitRef`] into the network's
//! flit arena plus the header fields the pipeline stages read every
//! cycle (packet, destination, class, head/tail flags, readiness).
//! Denormalising those fields into the slab keeps the SA/VA/RC hot
//! loops free of arena derefs; the payload is only touched at switch
//! traversal.

use crate::arena::FlitRef;
use crate::ids::NodeId;
use crate::packet::{PacketClass, PacketId};

/// One buffered flit: its arena reference plus the denormalised header
/// fields the allocation stages poll each cycle.
#[derive(Debug, Clone, Copy)]
pub struct BufSlot {
    /// Arena reference to the flit itself.
    pub fref: FlitRef,
    /// Earliest cycle this flit is visible to the pipeline (models
    /// link/pipeline latches).
    pub ready_at: u64,
    /// Packet this flit belongs to.
    pub packet: PacketId,
    /// Destination node (read by RC on head flits).
    pub dst: NodeId,
    /// Traffic class (selects the output VC in VA1).
    pub class: PacketClass,
    /// `true` when the flit carries the packet header.
    pub head: bool,
    /// `true` when the flit terminates the packet.
    pub tail: bool,
}

/// All virtual-channel FIFOs of one router, as a single flat ring
/// buffer slab: `pvs` FIFOs of `depth` slots each, FIFO `pv` occupying
/// slots `pv*depth .. (pv+1)*depth`.
#[derive(Debug, Clone)]
pub struct FlitSlab {
    slots: Box<[Option<BufSlot>]>,
    head: Box<[u32]>,
    len: Box<[u32]>,
    depth: usize,
    occupied: usize,
    /// Highest total occupancy ever reached (host-side watermark for
    /// the observability layer; never read by the simulation).
    occupied_peak: usize,
}

impl FlitSlab {
    /// Creates a slab of `pvs` FIFOs holding up to `depth` flits each.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn new(pvs: usize, depth: usize) -> Self {
        assert!(depth > 0, "buffer depth must be positive");
        FlitSlab {
            slots: vec![None; pvs * depth].into_boxed_slice(),
            head: vec![0; pvs].into_boxed_slice(),
            len: vec![0; pvs].into_boxed_slice(),
            depth,
            occupied: 0,
            occupied_peak: 0,
        }
    }

    /// Capacity in flits of each FIFO.
    #[inline]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Current occupancy of FIFO `pv` in flits.
    #[inline]
    pub fn len(&self, pv: usize) -> usize {
        self.len[pv] as usize
    }

    /// Returns `true` if FIFO `pv` holds no flits.
    #[inline]
    pub fn is_empty(&self, pv: usize) -> bool {
        self.len[pv] == 0
    }

    /// Free slots in FIFO `pv` (the quantity credits track).
    #[inline]
    pub fn free_slots(&self, pv: usize) -> usize {
        self.depth - self.len[pv] as usize
    }

    /// Total flits buffered across every FIFO (maintained incrementally;
    /// this is the O(1) occupancy read of the data-oriented core).
    #[inline]
    pub fn occupied(&self) -> usize {
        self.occupied
    }

    /// Highest [`FlitSlab::occupied`] value ever reached.
    #[inline]
    pub fn occupied_peak(&self) -> usize {
        self.occupied_peak
    }

    /// Writes a flit into FIFO `pv`.
    ///
    /// # Panics
    ///
    /// Panics on overflow — credits must guarantee space, so overflow is a
    /// flow-control bug, not a recoverable condition.
    pub fn push(&mut self, pv: usize, slot: BufSlot) {
        let len = self.len[pv] as usize;
        assert!(len < self.depth, "VC buffer overflow: credit accounting is broken");
        let idx = pv * self.depth + (self.head[pv] as usize + len) % self.depth;
        debug_assert!(self.slots[idx].is_none(), "ring slot already occupied");
        self.slots[idx] = Some(slot);
        self.len[pv] += 1;
        self.occupied += 1;
        self.occupied_peak = self.occupied_peak.max(self.occupied);
    }

    /// The flit at the head of FIFO `pv`, if any.
    #[inline]
    pub fn front(&self, pv: usize) -> Option<&BufSlot> {
        if self.len[pv] == 0 {
            return None;
        }
        self.slots[pv * self.depth + self.head[pv] as usize].as_ref()
    }

    /// Returns `true` if the head flit of FIFO `pv` exists and is ready
    /// at `cycle`.
    #[inline]
    pub fn front_ready(&self, pv: usize, cycle: u64) -> bool {
        self.front(pv).is_some_and(|t| t.ready_at <= cycle)
    }

    /// Removes and returns the head flit of FIFO `pv`.
    pub fn pop(&mut self, pv: usize) -> Option<BufSlot> {
        if self.len[pv] == 0 {
            return None;
        }
        let idx = pv * self.depth + self.head[pv] as usize;
        let slot = self.slots[idx].take();
        debug_assert!(slot.is_some(), "ring bookkeeping out of sync");
        self.head[pv] = ((self.head[pv] as usize + 1) % self.depth) as u32;
        self.len[pv] -= 1;
        self.occupied -= 1;
        slot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_slot(seq: u32) -> BufSlot {
        BufSlot {
            fref: FlitRef(seq),
            ready_at: 0,
            packet: PacketId(1),
            dst: NodeId(1),
            class: PacketClass::DataResponse,
            head: false,
            tail: false,
        }
    }

    #[test]
    fn fifo_order() {
        let mut b = FlitSlab::new(2, 4);
        b.push(1, mk_slot(0));
        b.push(1, mk_slot(1));
        assert_eq!(b.len(1), 2);
        assert_eq!(b.len(0), 0, "FIFOs are independent");
        assert_eq!(b.pop(1).unwrap().fref, FlitRef(0));
        assert_eq!(b.pop(1).unwrap().fref, FlitRef(1));
        assert!(b.pop(1).is_none());
    }

    #[test]
    fn ring_wraps_past_depth() {
        let mut b = FlitSlab::new(1, 3);
        for round in 0..4u32 {
            b.push(0, mk_slot(3 * round));
            b.push(0, mk_slot(3 * round + 1));
            assert_eq!(b.pop(0).unwrap().fref, FlitRef(3 * round));
            assert_eq!(b.pop(0).unwrap().fref, FlitRef(3 * round + 1));
        }
        assert!(b.is_empty(0));
    }

    #[test]
    fn readiness_gates_front() {
        let mut b = FlitSlab::new(1, 2);
        let mut s = mk_slot(0);
        s.ready_at = 5;
        b.push(0, s);
        assert!(!b.front_ready(0, 4));
        assert!(b.front_ready(0, 5));
        assert!(b.front_ready(0, 6));
    }

    #[test]
    fn capacity_accounting() {
        let mut b = FlitSlab::new(2, 2);
        assert_eq!(b.free_slots(0), 2);
        assert!(b.is_empty(0));
        b.push(0, mk_slot(0));
        b.push(0, mk_slot(1));
        assert_eq!(b.free_slots(0), 0);
        assert_eq!(b.free_slots(1), 2);
        assert_eq!(b.occupied(), 2);
        let _ = b.pop(0);
        assert_eq!(b.occupied(), 1);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut b = FlitSlab::new(1, 1);
        b.push(0, mk_slot(0));
        b.push(0, mk_slot(1));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_depth_panics() {
        let _ = FlitSlab::new(4, 0);
    }
}
