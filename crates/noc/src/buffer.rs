//! Flit buffers with cycle-accurate readiness tracking.
//!
//! Each virtual channel owns one [`VcBuffer`] of `depth` flits. In the
//! multi-layered router the buffer is bit-sliced across layers
//! (paper §3.2.1): word-lines span layers, bit-lines stay within a layer.
//! That split is *physical*, not logical — the buffer still holds whole
//! flits — so the simulator models it through the activity accounting
//! (a short flit only charges the active slices), not through the data
//! structure.

use std::collections::VecDeque;

use crate::flit::Flit;

/// A flit annotated with the earliest cycle at which it may participate in
/// a pipeline stage (models link/pipeline latches).
#[derive(Debug, Clone)]
pub struct TimedFlit {
    /// The buffered flit.
    pub flit: Flit,
    /// Earliest cycle this flit is visible to the pipeline.
    pub ready_at: u64,
}

/// A fixed-capacity FIFO buffer for one virtual channel.
#[derive(Debug, Clone)]
pub struct VcBuffer {
    slots: VecDeque<TimedFlit>,
    depth: usize,
}

impl VcBuffer {
    /// Creates a buffer holding up to `depth` flits.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "buffer depth must be positive");
        VcBuffer { slots: VecDeque::with_capacity(depth), depth }
    }

    /// Capacity in flits.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Current occupancy in flits.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns `true` if no flits are buffered.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Returns `true` if a write would overflow.
    pub fn is_full(&self) -> bool {
        self.slots.len() >= self.depth
    }

    /// Free slots (the quantity credits track).
    pub fn free_slots(&self) -> usize {
        self.depth - self.slots.len()
    }

    /// Writes a flit into the buffer.
    ///
    /// # Panics
    ///
    /// Panics on overflow — credits must guarantee space, so overflow is a
    /// flow-control bug, not a recoverable condition.
    pub fn push(&mut self, flit: Flit, ready_at: u64) {
        assert!(!self.is_full(), "VC buffer overflow: credit accounting is broken");
        self.slots.push_back(TimedFlit { flit, ready_at });
    }

    /// The flit at the head of the FIFO, if any.
    pub fn front(&self) -> Option<&TimedFlit> {
        self.slots.front()
    }

    /// Returns `true` if the head flit exists and is ready at `cycle`.
    pub fn front_ready(&self, cycle: u64) -> bool {
        self.front().is_some_and(|t| t.ready_at <= cycle)
    }

    /// Removes and returns the head flit.
    pub fn pop(&mut self) -> Option<TimedFlit> {
        self.slots.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{FlitData, FlitKind};
    use crate::ids::NodeId;
    use crate::packet::{PacketClass, PacketId};

    fn mk_flit(seq: u32) -> Flit {
        Flit {
            packet: PacketId(1),
            seq,
            kind: FlitKind::Body,
            src: NodeId(0),
            dst: NodeId(1),
            class: PacketClass::DataResponse,
            data: FlitData::dense(4),
            created_at: 0,
            hops: 0,
        }
    }

    #[test]
    fn fifo_order() {
        let mut b = VcBuffer::new(4);
        b.push(mk_flit(0), 0);
        b.push(mk_flit(1), 0);
        assert_eq!(b.len(), 2);
        assert_eq!(b.pop().unwrap().flit.seq, 0);
        assert_eq!(b.pop().unwrap().flit.seq, 1);
        assert!(b.pop().is_none());
    }

    #[test]
    fn readiness_gates_front() {
        let mut b = VcBuffer::new(2);
        b.push(mk_flit(0), 5);
        assert!(!b.front_ready(4));
        assert!(b.front_ready(5));
        assert!(b.front_ready(6));
    }

    #[test]
    fn capacity_accounting() {
        let mut b = VcBuffer::new(2);
        assert_eq!(b.free_slots(), 2);
        assert!(b.is_empty() && !b.is_full());
        b.push(mk_flit(0), 0);
        b.push(mk_flit(1), 0);
        assert!(b.is_full());
        assert_eq!(b.free_slots(), 0);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut b = VcBuffer::new(1);
        b.push(mk_flit(0), 0);
        b.push(mk_flit(1), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_depth_panics() {
        let _ = VcBuffer::new(0);
    }
}
