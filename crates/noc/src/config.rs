//! Simulation configuration types and builders.

use serde::{Deserialize, Serialize};

use crate::error::NocError;

/// Router pipeline depth (paper Fig. 8(a)–(c)).
///
/// The MIRA evaluation uses the conservative four-stage organisation;
/// the shallower pipelines from the literature the paper surveys
/// (speculative switch allocation, look-ahead routing) are provided as
/// extensions for ablation studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PipelineDepth {
    /// Fig. 8(a): RC → VA → SA → ST; one cycle per stage.
    #[default]
    FourStage,
    /// Fig. 8(b): speculative SA overlaps VA — a freshly VC-allocated
    /// head flit arbitrates for the switch in the same cycle (the
    /// speculation "fails" gracefully into a retry under contention).
    ThreeStageSpeculative,
    /// Fig. 8(c): look-ahead routing removes RC from the critical path
    /// (the route is available the cycle the flit becomes visible), on
    /// top of speculative SA.
    TwoStageLookahead,
}

impl PipelineDepth {
    /// Router-internal stage count for an uncontended head flit.
    pub const fn stages(self) -> u64 {
        match self {
            PipelineDepth::FourStage => 4,
            PipelineDepth::ThreeStageSpeculative => 3,
            PipelineDepth::TwoStageLookahead => 2,
        }
    }
}

/// Router pipeline organisation (paper Fig. 8).
///
/// The baseline router is the four-stage pipeline RC → VA → SA → ST with a
/// separate link-traversal (LT) cycle, i.e. five cycles per hop for a head
/// flit. The multi-layered routers (3DM / 3DM-E) shorten crossbar wires
/// and inter-router links enough that **ST and LT fit in one 500 ps cycle**
/// (paper Table 3), removing one cycle per hop. The `(NC)` "no-combining"
/// ablation keeps the separate LT stage. [`PipelineDepth`] additionally
/// selects the speculative organisations of Fig. 8(b)/(c).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// If `true`, switch traversal and link traversal share a cycle.
    pub st_lt_combined: bool,
    /// Router-internal stage organisation.
    pub depth: PipelineDepth,
}

impl PipelineConfig {
    /// Baseline pipeline: ST and LT are separate cycles (2DB, 3DB, and the
    /// `(NC)` variants of 3DM / 3DM-E).
    pub const fn separate_lt() -> Self {
        PipelineConfig { st_lt_combined: false, depth: PipelineDepth::FourStage }
    }

    /// Combined pipeline: ST and LT share a cycle (3DM, 3DM-E).
    pub const fn combined_st_lt() -> Self {
        PipelineConfig { st_lt_combined: true, depth: PipelineDepth::FourStage }
    }

    /// Replaces the router-internal stage organisation.
    #[must_use]
    pub const fn with_depth(mut self, depth: PipelineDepth) -> Self {
        self.depth = depth;
        self
    }

    /// Head-flit cycles per hop through an unloaded router, including the
    /// wire.
    pub const fn cycles_per_hop(self) -> u64 {
        self.depth.stages() + if self.st_lt_combined { 0 } else { 1 }
    }

    /// Additional cycles a flit spends on the wire after the ST cycle.
    pub(crate) const fn link_extra_cycles(self) -> u64 {
        if self.st_lt_combined {
            0
        } else {
            1
        }
    }
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig::separate_lt()
    }
}

/// Per-router microarchitecture parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouterConfig {
    /// Virtual channels per physical channel (the paper fixes V = 2).
    pub vcs_per_port: usize,
    /// Buffer depth in flits per virtual channel (`k` in the paper's
    /// Table 1; the evaluated configuration uses 4).
    pub buffer_depth: usize,
    /// Pipeline organisation.
    pub pipeline: PipelineConfig,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig { vcs_per_port: 2, buffer_depth: 4, pipeline: PipelineConfig::default() }
    }
}

/// Datapath and network-wide parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Flit width in bits (the paper uses W = 128).
    pub flit_bits: usize,
    /// Number of stacked datapath layers the flit is sliced across
    /// (L = 4 for the 3DM designs; 1 for a monolithic 2D datapath).
    ///
    /// Note that 2DB can still *logically* apply the short-flit gating at
    /// word granularity within its single layer; whether it does is
    /// controlled by [`NetworkConfig::layer_shutdown`].
    pub layers: usize,
    /// Enable short-flit shutdown of the separable datapath (buffer,
    /// crossbar, link slices). Affects only the activity accounting, not
    /// the timing.
    pub layer_shutdown: bool,
    /// Router microarchitecture.
    pub router: RouterConfig,
}

impl NetworkConfig {
    /// Starts building a configuration from the paper's defaults.
    pub fn builder() -> NetworkConfigBuilder {
        NetworkConfigBuilder::new()
    }

    /// Number of payload words per flit (one per layer slice at the MIRA
    /// word size of 32 bits).
    pub fn words_per_flit(&self) -> usize {
        self.flit_bits / crate::flit::WORD_BITS
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::InvalidConfig`] when a parameter is zero, when
    /// the flit width is not a whole number of 32-bit words, or when the
    /// layer count does not divide the word count.
    pub fn validate(&self) -> Result<(), NocError> {
        if self.flit_bits == 0 || !self.flit_bits.is_multiple_of(crate::flit::WORD_BITS) {
            return Err(NocError::InvalidConfig {
                parameter: "flit_bits",
                reason: format!(
                    "must be a positive multiple of {} (got {})",
                    crate::flit::WORD_BITS,
                    self.flit_bits
                ),
            });
        }
        if self.layers == 0 || !self.words_per_flit().is_multiple_of(self.layers) {
            return Err(NocError::InvalidConfig {
                parameter: "layers",
                reason: format!(
                    "must divide the {} words per flit (got {} layers)",
                    self.words_per_flit(),
                    self.layers
                ),
            });
        }
        if self.router.vcs_per_port == 0 {
            return Err(NocError::InvalidConfig {
                parameter: "vcs_per_port",
                reason: "must be at least 1".into(),
            });
        }
        if self.router.buffer_depth == 0 {
            return Err(NocError::InvalidConfig {
                parameter: "buffer_depth",
                reason: "must be at least 1".into(),
            });
        }
        Ok(())
    }
}

impl Default for NetworkConfig {
    /// The paper's evaluated datapath: 128-bit flits over 4 layers, 2 VCs,
    /// 4-flit buffers, baseline pipeline, shutdown disabled.
    fn default() -> Self {
        NetworkConfig {
            flit_bits: 128,
            layers: 4,
            layer_shutdown: false,
            router: RouterConfig::default(),
        }
    }
}

/// Builder for [`NetworkConfig`] (see [`NetworkConfig::builder`]).
#[derive(Debug, Clone, Default)]
pub struct NetworkConfigBuilder {
    cfg: NetworkConfig,
}

impl NetworkConfigBuilder {
    /// Creates a builder initialised with the paper's defaults.
    pub fn new() -> Self {
        NetworkConfigBuilder { cfg: NetworkConfig::default() }
    }

    /// Sets the flit width in bits.
    pub fn flit_bits(mut self, bits: usize) -> Self {
        self.cfg.flit_bits = bits;
        self
    }

    /// Sets the number of datapath layers.
    pub fn layers(mut self, layers: usize) -> Self {
        self.cfg.layers = layers;
        self
    }

    /// Enables or disables short-flit layer shutdown.
    pub fn layer_shutdown(mut self, on: bool) -> Self {
        self.cfg.layer_shutdown = on;
        self
    }

    /// Sets the number of virtual channels per port.
    pub fn vcs_per_port(mut self, vcs: usize) -> Self {
        self.cfg.router.vcs_per_port = vcs;
        self
    }

    /// Sets the buffer depth (flits per VC).
    pub fn buffer_depth(mut self, depth: usize) -> Self {
        self.cfg.router.buffer_depth = depth;
        self
    }

    /// Sets the pipeline organisation.
    pub fn pipeline(mut self, pipeline: PipelineConfig) -> Self {
        self.cfg.router.pipeline = pipeline;
        self
    }

    /// Finalises the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; use [`Self::try_build`] for
    /// a fallible version.
    pub fn build(self) -> NetworkConfig {
        self.try_build().expect("invalid network configuration")
    }

    /// Finalises the configuration, returning an error instead of
    /// panicking.
    ///
    /// # Errors
    ///
    /// Propagates [`NetworkConfig::validate`] failures.
    pub fn try_build(self) -> Result<NetworkConfig, NocError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// The process-wide default shard count for intra-run sharded stepping
/// (DESIGN.md §18), from the `MIRA_SHARDS` environment variable. Unset,
/// unparsable, or `0` all mean 1 — sequential stepping, byte-identical
/// to builds without the shard subsystem. Cached on first read: tests
/// that need a specific count use `SimConfig::with_shards` or
/// `Network::set_shards` instead of mutating the environment.
pub fn shards_from_env() -> usize {
    static SHARDS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *SHARDS.get_or_init(|| {
        std::env::var("MIRA_SHARDS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(1)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = NetworkConfig::default();
        assert_eq!(c.flit_bits, 128);
        assert_eq!(c.layers, 4);
        assert_eq!(c.words_per_flit(), 4);
        assert_eq!(c.router.vcs_per_port, 2);
        assert_eq!(c.router.buffer_depth, 4);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn pipeline_hop_cycles() {
        assert_eq!(PipelineConfig::separate_lt().cycles_per_hop(), 5);
        assert_eq!(PipelineConfig::combined_st_lt().cycles_per_hop(), 4);
    }

    #[test]
    fn builder_sets_fields() {
        let c = NetworkConfig::builder()
            .flit_bits(64)
            .layers(2)
            .layer_shutdown(true)
            .vcs_per_port(4)
            .buffer_depth(8)
            .pipeline(PipelineConfig::combined_st_lt())
            .build();
        assert_eq!(c.flit_bits, 64);
        assert_eq!(c.layers, 2);
        assert!(c.layer_shutdown);
        assert_eq!(c.router.vcs_per_port, 4);
        assert_eq!(c.router.buffer_depth, 8);
        assert!(c.router.pipeline.st_lt_combined);
    }

    #[test]
    fn invalid_flit_width_rejected() {
        let err = NetworkConfig::builder().flit_bits(100).try_build().unwrap_err();
        assert!(matches!(err, NocError::InvalidConfig { parameter: "flit_bits", .. }));
    }

    #[test]
    fn layers_must_divide_words() {
        let err = NetworkConfig::builder().flit_bits(128).layers(3).try_build().unwrap_err();
        assert!(matches!(err, NocError::InvalidConfig { parameter: "layers", .. }));
    }

    #[test]
    fn zero_vcs_rejected() {
        let err = NetworkConfig::builder().vcs_per_port(0).try_build().unwrap_err();
        assert!(matches!(err, NocError::InvalidConfig { parameter: "vcs_per_port", .. }));
    }

    #[test]
    fn zero_depth_rejected() {
        let err = NetworkConfig::builder().buffer_depth(0).try_build().unwrap_err();
        assert!(matches!(err, NocError::InvalidConfig { parameter: "buffer_depth", .. }));
    }
}
