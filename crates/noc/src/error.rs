//! Error types for the simulator.

use std::error::Error;
use std::fmt;

use crate::ids::{NodeId, PortId, VcId};

/// Errors produced while configuring or running a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NocError {
    /// A configuration parameter was outside its valid range.
    InvalidConfig {
        /// Name of the offending parameter.
        parameter: &'static str,
        /// Human-readable description of the constraint that was violated.
        reason: String,
    },
    /// A node id referenced a node that does not exist in the topology.
    UnknownNode(NodeId),
    /// A port id referenced a port that does not exist on a router.
    UnknownPort(NodeId, PortId),
    /// A flit was written into a virtual-channel buffer that had no free
    /// slot — this indicates a credit-accounting bug upstream.
    BufferOverflow {
        /// Router at which the overflow occurred.
        node: NodeId,
        /// Input port of the overflowing buffer.
        port: PortId,
        /// Virtual channel of the overflowing buffer.
        vc: VcId,
    },
    /// The routing function returned a port that does not lead towards the
    /// destination (or does not exist).
    RoutingFailure {
        /// Router at which routing failed.
        node: NodeId,
        /// The destination the flit was trying to reach.
        dest: NodeId,
    },
}

impl fmt::Display for NocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NocError::InvalidConfig { parameter, reason } => {
                write!(f, "invalid configuration for `{parameter}`: {reason}")
            }
            NocError::UnknownNode(n) => write!(f, "unknown node {n}"),
            NocError::UnknownPort(n, p) => write!(f, "unknown port {p} on node {n}"),
            NocError::BufferOverflow { node, port, vc } => {
                write!(f, "buffer overflow at {node} {port} {vc} (credit accounting bug)")
            }
            NocError::RoutingFailure { node, dest } => {
                write!(f, "routing failure at {node} towards {dest}")
            }
        }
    }
}

impl Error for NocError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NocError::BufferOverflow { node: NodeId(3), port: PortId(1), vc: VcId(0) };
        let s = e.to_string();
        assert!(s.contains("n3"));
        assert!(s.contains("p1"));
        assert!(s.contains("v0"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NocError>();
    }
}
