//! Error types for the simulator.

use std::error::Error;
use std::fmt;

use crate::ids::{NodeId, PortId, VcId};
use crate::packet::PacketId;

/// Errors produced while configuring or running a simulation.
///
/// The enum is `#[non_exhaustive]`: downstream matches must carry a
/// wildcard arm, so future error growth (as with the fault variants
/// below) is not a breaking change.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NocError {
    /// A configuration parameter was outside its valid range.
    InvalidConfig {
        /// Name of the offending parameter.
        parameter: &'static str,
        /// Human-readable description of the constraint that was violated.
        reason: String,
    },
    /// A node id referenced a node that does not exist in the topology.
    UnknownNode(NodeId),
    /// A port id referenced a port that does not exist on a router.
    UnknownPort(NodeId, PortId),
    /// A flit was written into a virtual-channel buffer that had no free
    /// slot — this indicates a credit-accounting bug upstream.
    BufferOverflow {
        /// Router at which the overflow occurred.
        node: NodeId,
        /// Input port of the overflowing buffer.
        port: PortId,
        /// Virtual channel of the overflowing buffer.
        vc: VcId,
    },
    /// The routing function returned a port that does not lead towards the
    /// destination (or does not exist).
    RoutingFailure {
        /// Router at which routing failed.
        node: NodeId,
        /// The destination the flit was trying to reach.
        dest: NodeId,
    },
    /// A fault-plan entry addressed a link that does not exist, or a
    /// link-level hardware fault was reported at this endpoint.
    LinkFault {
        /// Upstream router of the faulty link.
        node: NodeId,
        /// Output port whose link is at fault.
        port: PortId,
        /// What went wrong.
        reason: &'static str,
    },
    /// A corrupted flit exhausted its retransmission budget; the owning
    /// packet was dropped.
    RetryExhausted {
        /// Upstream router of the link on which retries exhausted.
        node: NodeId,
        /// Output port of that link.
        port: PortId,
        /// The dropped packet.
        packet: PacketId,
    },
}

impl fmt::Display for NocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NocError::InvalidConfig { parameter, reason } => {
                write!(f, "invalid configuration for `{parameter}`: {reason}")
            }
            NocError::UnknownNode(n) => write!(f, "unknown node {n}"),
            NocError::UnknownPort(n, p) => write!(f, "unknown port {p} on node {n}"),
            NocError::BufferOverflow { node, port, vc } => {
                write!(f, "buffer overflow at {node} {port} {vc} (credit accounting bug)")
            }
            NocError::RoutingFailure { node, dest } => {
                write!(f, "routing failure at {node} towards {dest}")
            }
            NocError::LinkFault { node, port, reason } => {
                write!(f, "link fault at {node} {port}: {reason}")
            }
            NocError::RetryExhausted { node, port, packet } => {
                write!(
                    f,
                    "retry budget exhausted on link at {node} {port}; dropped packet {}",
                    packet.0
                )
            }
        }
    }
}

impl Error for NocError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NocError::BufferOverflow { node: NodeId(3), port: PortId(1), vc: VcId(0) };
        let s = e.to_string();
        assert!(s.contains("n3"));
        assert!(s.contains("p1"));
        assert!(s.contains("v0"));
    }

    #[test]
    fn fault_variants_display_is_informative() {
        let e = NocError::LinkFault { node: NodeId(2), port: PortId(1), reason: "via sheared" };
        let s = e.to_string();
        assert!(s.contains("n2") && s.contains("p1") && s.contains("via sheared"), "{s}");

        let e = NocError::RetryExhausted { node: NodeId(4), port: PortId(3), packet: PacketId(99) };
        let s = e.to_string();
        assert!(s.contains("n4") && s.contains("p3") && s.contains("99"), "{s}");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NocError>();
    }
}
