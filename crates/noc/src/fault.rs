//! Fault injection: deterministic, seed-driven fault plans for the
//! 3D-stacked interconnect.
//!
//! MIRA's datapath is bit-sliced across four stacked layers joined by
//! inter-layer vias (paper §3.2, Table 1) — exactly the structures real
//! 3D integration makes fragile: inter-tier process variation and
//! TSV/MIV defects degrade or kill individual slices and links. This
//! module models four fault classes, all derived deterministically from
//! a seed so runs stay reproducible and paired across architectures:
//!
//! * **Transient slice corruption** — a link traversal flips one or two
//!   bits in an upper payload word (the words that ride the TSVs to the
//!   lower layers). Single flips are caught by the per-slice parity and
//!   NACKed; double flips in the same word defeat parity and *escape*;
//!   flips landing on a slice the short-flit layer shutdown has gated
//!   off are *masked* (the gated slice is regenerated downstream, not
//!   transported).
//! * **Permanent link/via failure** — a link dies at a scheduled onset
//!   cycle and never recovers. Flits in flight (and unacknowledged
//!   retransmit-window entries) are lost; routing degrades around it.
//! * **Stuck layer gates** — a link's upper slices latch off: any flit
//!   needing more active words than the surviving slices is corrupted
//!   deterministically on every attempt, so retries exhaust and the
//!   packet is dropped with accounting. Short flits pass unharmed.
//! * **Router-port death** — an explicit [`LinkKill`] addressed by
//!   `(node, out-port)`, the way a dead output port of a specific
//!   router is expressed.
//!
//! Recovery is link-level go-back-N retransmission (in
//! [`crate::link`]) plus fault-aware route masks (in [`crate::router`]
//! / [`crate::routing`]); the network orchestrates both and reports
//! everything through [`FaultCounters`].

use serde::{Deserialize, Serialize};

use crate::error::NocError;
use crate::ids::{NodeId, PortId};

/// Maximum number of explicitly scheduled link kills in a
/// [`FaultConfig`] (a fixed array keeps the config `Copy`).
pub const MAX_EXPLICIT_KILLS: usize = 4;

/// One scheduled permanent failure of the link leaving `(node, port)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkKill {
    /// Upstream router of the link to kill.
    pub node: usize,
    /// Output port (on `node`) whose link dies.
    pub port: usize,
    /// Cycle at which the link dies (0 = dead from the start).
    pub at_cycle: u64,
}

/// Fault-injection switches, carried by [`crate::sim::SimConfig`].
///
/// All rates are integers (parts per million) so the config stays
/// `Copy + Eq` like the rest of the simulator configuration. The
/// default is fully inert: [`FaultConfig::enabled`] returns `false`
/// and the simulator never engages any fault machinery, keeping the
/// default path bit-identical to a build without this module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultConfig {
    /// Per-link-traversal probability of transient corruption, in parts
    /// per million (0 disables transient faults).
    pub transient_ppm: u32,
    /// Among transient faults, the ppm fraction that flip *two* bits in
    /// the same word — defeating the per-slice parity and escaping
    /// detection. Default 62 500 (1 in 16 faults).
    pub double_ppm: u32,
    /// Explicitly scheduled link kills (router-port death).
    pub kills: [Option<LinkKill>; MAX_EXPLICIT_KILLS],
    /// Number of additional links killed at seed-derived positions and
    /// onset cycles.
    pub random_kills: u32,
    /// Onset cycles for random kills and stuck gates are drawn from
    /// `[0, kill_window]`.
    pub kill_window: u64,
    /// Number of links whose upper layer gates latch off (seed-derived
    /// positions; each keeps a seed-derived number of healthy words).
    pub stuck_gates: u32,
    /// Retransmission budget per corrupted flit before the owning
    /// packet is dropped; 0 means retry forever.
    pub max_retries: u32,
    /// Enables fault-aware route masks: traffic reroutes around dead
    /// links (3DM-E express channels fall back to the baseline mesh).
    pub reroute: bool,
    /// Seed for every randomised fault decision.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

impl FaultConfig {
    /// Faults fully off (the default).
    pub const fn disabled() -> Self {
        FaultConfig {
            transient_ppm: 0,
            double_ppm: 62_500,
            kills: [None; MAX_EXPLICIT_KILLS],
            random_kills: 0,
            kill_window: 0,
            stuck_gates: 0,
            max_retries: 8,
            reroute: true,
            seed: 0,
        }
    }

    /// `true` when any fault source is configured; `false` keeps the
    /// simulator on the zero-overhead path.
    pub fn enabled(&self) -> bool {
        self.transient_ppm > 0
            || self.random_kills > 0
            || self.stuck_gates > 0
            || self.kills.iter().any(Option::is_some)
    }

    /// Sets the transient corruption rate (parts per million).
    #[must_use]
    pub fn with_transient(mut self, ppm: u32) -> Self {
        self.transient_ppm = ppm;
        self
    }

    /// Schedules a permanent kill of the link leaving `(node, port)`.
    ///
    /// # Panics
    ///
    /// Panics if all [`MAX_EXPLICIT_KILLS`] slots are taken.
    #[must_use]
    pub fn with_kill(mut self, node: usize, port: usize, at_cycle: u64) -> Self {
        let slot =
            self.kills.iter_mut().find(|k| k.is_none()).expect("all explicit kill slots are taken");
        *slot = Some(LinkKill { node, port, at_cycle });
        self
    }

    /// Schedules `n` random link kills with onsets in `[0, window]`.
    #[must_use]
    pub fn with_random_kills(mut self, n: u32, window: u64) -> Self {
        self.random_kills = n;
        self.kill_window = window;
        self
    }

    /// Latches the upper layer gates of `n` random links off.
    #[must_use]
    pub fn with_stuck_gates(mut self, n: u32) -> Self {
        self.stuck_gates = n;
        self
    }

    /// Sets the retransmission budget (0 = unlimited).
    #[must_use]
    pub fn with_max_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }

    /// Sets the fault seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables or disables fault-aware rerouting.
    #[must_use]
    pub fn with_reroute(mut self, reroute: bool) -> Self {
        self.reroute = reroute;
        self
    }
}

/// SplitMix64 finalizer: a high-quality 64-bit mixing function (same
/// family as the experiment-seed derivation, so fault decisions are
/// stateless and order-independent).
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stateless fault hash over (seed, three decision coordinates).
#[inline]
fn fault_hash(seed: u64, a: u64, b: u64, c: u64) -> u64 {
    mix(seed ^ mix(a ^ mix(b ^ mix(c))))
}

/// Corruption outcome for one flit delivery over a faulty link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// No corruption: the flit is delivered and acknowledged.
    Clean,
    /// The fault hit a slice that layer shutdown had gated off: the
    /// slice is regenerated downstream, so the corruption is harmless.
    Masked,
    /// Parity caught the corruption: the receiver NACKs and the sender
    /// retransmits.
    Detected,
    /// A double bit-flip in one word defeated parity: the corrupted
    /// flit is delivered as-is.
    Escaped {
        /// Index of the corrupted word.
        word: usize,
        /// XOR mask applied to that word.
        mask: u32,
    },
}

/// One scheduled permanent link kill, resolved to a link index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledKill {
    /// Onset cycle.
    pub cycle: u64,
    /// Index of the dying link in the network's link table.
    pub link: usize,
}

/// A compiled fault plan: the config resolved against a concrete link
/// table, with every randomised decision fixed by the seed.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    cfg: FaultConfig,
    /// Kills sorted by onset cycle (ties by link index).
    kills: Vec<ScheduledKill>,
    /// Per-link stuck-gate state: `(onset cycle, healthy words)`.
    stuck: Vec<Option<(u64, usize)>>,
}

impl FaultPlan {
    /// Compiles `cfg` against a link table given as `(node, out-port)`
    /// upstream endpoints. `words_per_flit` bounds the healthy-word
    /// counts of stuck gates.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::LinkFault`] when an explicit kill addresses
    /// a `(node, port)` pair with no link.
    pub fn compile(
        cfg: FaultConfig,
        endpoints: &[(usize, usize)],
        words_per_flit: usize,
    ) -> Result<FaultPlan, NocError> {
        let n = endpoints.len();
        let mut kills: Vec<ScheduledKill> = Vec::new();
        for k in cfg.kills.iter().flatten() {
            let link = endpoints
                .iter()
                .position(|&(node, port)| node == k.node && port == k.port)
                .ok_or(NocError::LinkFault {
                    node: NodeId(k.node),
                    port: PortId(k.port),
                    reason: "no link leaves this (node, port)",
                })?;
            kills.push(ScheduledKill { cycle: k.at_cycle, link });
        }
        if n > 0 {
            for i in 0..cfg.random_kills as u64 {
                let h = fault_hash(cfg.seed, 0xD1E, i, 0);
                let mut link = (h % n as u64) as usize;
                // Linear-probe past links already scheduled to die so
                // `random_kills` distinct links actually die.
                while kills.iter().any(|s| s.link == link) && kills.len() < n {
                    link = (link + 1) % n;
                }
                let cycle = if cfg.kill_window == 0 {
                    0
                } else {
                    fault_hash(cfg.seed, 0xD1E, i, 1) % (cfg.kill_window + 1)
                };
                kills.push(ScheduledKill { cycle, link });
            }
        }
        kills.sort_by_key(|s| (s.cycle, s.link));
        kills.dedup_by_key(|s| s.link);

        let mut stuck = vec![None; n];
        if n > 0 {
            for i in 0..cfg.stuck_gates as u64 {
                let h = fault_hash(cfg.seed, 0x57C, i, 0);
                let link = (h % n as u64) as usize;
                let healthy = if words_per_flit > 1 {
                    1 + (fault_hash(cfg.seed, 0x57C, i, 1) % (words_per_flit as u64 - 1)) as usize
                } else {
                    1
                };
                let onset = if cfg.kill_window == 0 {
                    0
                } else {
                    fault_hash(cfg.seed, 0x57C, i, 2) % (cfg.kill_window + 1)
                };
                stuck[link] = Some((onset, healthy));
            }
        }
        Ok(FaultPlan { cfg, kills, stuck })
    }

    /// The configuration this plan was compiled from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Scheduled kills, sorted by onset cycle.
    pub fn kills(&self) -> &[ScheduledKill] {
        &self.kills
    }

    /// Stuck-gate state for `link`: `(onset cycle, healthy words)`.
    pub fn stuck_gate(&self, link: usize) -> Option<(u64, usize)> {
        self.stuck[link]
    }

    /// Corruption verdict for one delivery: flit with `active_words`
    /// of `num_words` arriving over `link` at `cycle` with link-level
    /// sequence number `seq`, under `layer_shutdown`.
    ///
    /// The decision is a stateless hash of `(seed, link, seq, cycle)`,
    /// so a retransmitted copy (same `seq`, later `cycle`) re-rolls —
    /// transient faults clear on retry, which is what makes unbounded
    /// retries converge.
    pub fn verdict(
        &self,
        link: usize,
        seq: u64,
        cycle: u64,
        num_words: usize,
        active_words: usize,
        layer_shutdown: bool,
    ) -> Verdict {
        // Stuck gates corrupt deterministically: every attempt to push
        // more active words than the surviving slices fails the same
        // way, so retries exhaust and the packet drops.
        if let Some((onset, healthy)) = self.stuck[link] {
            if cycle >= onset && active_words > healthy {
                return Verdict::Detected;
            }
        }
        if self.cfg.transient_ppm == 0 {
            return Verdict::Clean;
        }
        let h = fault_hash(self.cfg.seed, link as u64, seq, cycle);
        if h % 1_000_000 >= self.cfg.transient_ppm as u64 {
            return Verdict::Clean;
        }
        // Fault fires. Pick the word: upper words (the TSV-borne
        // slices) when the flit spans more than one.
        let h2 = fault_hash(self.cfg.seed, link as u64, seq, cycle ^ 0xF417);
        let word = if num_words > 1 { 1 + (h2 % (num_words as u64 - 1)) as usize } else { 0 };
        if layer_shutdown && word >= active_words {
            // The hit slice is gated off: it is regenerated downstream
            // from the pattern tag, not transported, so the flip never
            // reaches the receiver.
            return Verdict::Masked;
        }
        let bit1 = (h2 >> 8) % 32;
        if (h2 >> 16) % 1_000_000 < self.cfg.double_ppm as u64 {
            let mut bit2 = (h2 >> 40) % 32;
            if bit2 == bit1 {
                bit2 = (bit2 + 1) % 32;
            }
            Verdict::Escaped { word, mask: (1u32 << bit1) | (1u32 << bit2) }
        } else {
            Verdict::Detected
        }
    }
}

/// Cumulative fault and recovery accounting, surfaced through
/// [`crate::sim::SimReport`].
///
/// Invariants (asserted by the property tests): every transient fault
/// is exactly one of detected / escaped / masked, so
/// `transient_faults == (detected - stuck_faults) + escaped + masked`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultCounters {
    /// Transient corruption events injected on link traversals.
    pub transient_faults: u64,
    /// Deliveries corrupted by a stuck layer gate.
    pub stuck_faults: u64,
    /// Corruptions caught by per-slice parity (NACKed).
    pub detected: u64,
    /// Double-flips that defeated parity (delivered corrupt).
    pub escaped: u64,
    /// Flips on gated-off slices (harmless under layer shutdown).
    pub masked: u64,
    /// Flits re-sent by the go-back-N recovery.
    pub retransmissions: u64,
    /// Flits lost to dead links, exhausted retries, or purged stubs.
    pub flits_dropped: u64,
    /// Packets dropped (severed) rather than delivered.
    pub packets_dropped: u64,
    /// Route computations that had to divert around a dead link.
    pub reroutes: u64,
    /// Links permanently killed so far.
    pub links_killed: u64,
}

impl FaultCounters {
    /// Zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_endpoints(n: usize) -> Vec<(usize, usize)> {
        // A fake link table: node i, port 1 (east), for i in 0..n.
        (0..n).map(|i| (i, 1)).collect()
    }

    #[test]
    fn default_config_is_inert() {
        let cfg = FaultConfig::default();
        assert!(!cfg.enabled());
        assert_eq!(cfg, FaultConfig::disabled());
    }

    #[test]
    fn any_source_enables() {
        assert!(FaultConfig::disabled().with_transient(1).enabled());
        assert!(FaultConfig::disabled().with_kill(0, 1, 0).enabled());
        assert!(FaultConfig::disabled().with_random_kills(1, 100).enabled());
        assert!(FaultConfig::disabled().with_stuck_gates(1).enabled());
    }

    #[test]
    fn explicit_kill_resolves_to_link() {
        let cfg = FaultConfig::disabled().with_kill(3, 1, 42);
        let plan = FaultPlan::compile(cfg, &line_endpoints(8), 4)
            .expect("explicit kill on a wired port compiles");
        assert_eq!(plan.kills(), &[ScheduledKill { cycle: 42, link: 3 }]);
    }

    #[test]
    fn unresolvable_kill_errors() {
        let cfg = FaultConfig::disabled().with_kill(3, 2, 0);
        let err = FaultPlan::compile(cfg, &line_endpoints(8), 4).unwrap_err();
        assert!(matches!(err, NocError::LinkFault { .. }), "{err}");
    }

    #[test]
    fn random_kills_are_distinct_and_deterministic() {
        let cfg = FaultConfig::disabled().with_random_kills(3, 500).with_seed(7);
        let a = FaultPlan::compile(cfg, &line_endpoints(16), 4).expect("random-kill plan compiles");
        let b = FaultPlan::compile(cfg, &line_endpoints(16), 4).expect("random-kill plan compiles");
        assert_eq!(a.kills(), b.kills());
        assert_eq!(a.kills().len(), 3);
        let mut links: Vec<usize> = a.kills().iter().map(|k| k.link).collect();
        links.dedup();
        assert_eq!(links.len(), 3, "kills hit distinct links");
        assert!(a.kills().windows(2).all(|w| w[0].cycle <= w[1].cycle), "sorted by onset");
        assert!(a.kills().iter().all(|k| k.cycle <= 500));
    }

    #[test]
    fn different_seeds_give_different_plans() {
        let e = line_endpoints(64);
        let a = FaultPlan::compile(
            FaultConfig::disabled().with_random_kills(2, 1000).with_seed(1),
            &e,
            4,
        )
        .expect("seed-1 plan compiles");
        let b = FaultPlan::compile(
            FaultConfig::disabled().with_random_kills(2, 1000).with_seed(2),
            &e,
            4,
        )
        .expect("seed-2 plan compiles");
        assert_ne!(a.kills(), b.kills());
    }

    #[test]
    fn stuck_gates_keep_at_least_one_word() {
        let cfg = FaultConfig::disabled().with_stuck_gates(4).with_seed(11);
        let plan =
            FaultPlan::compile(cfg, &line_endpoints(16), 4).expect("stuck-gate plan compiles");
        let gates: Vec<(u64, usize)> = (0..16).filter_map(|l| plan.stuck_gate(l)).collect();
        assert!(!gates.is_empty());
        assert!(gates.iter().all(|&(_, healthy)| (1..4).contains(&healthy)));
    }

    #[test]
    fn verdict_rerolls_per_cycle() {
        let cfg = FaultConfig::disabled().with_transient(500_000).with_seed(3);
        let plan = FaultPlan::compile(cfg, &line_endpoints(4), 4).expect("transient plan compiles");
        // At 50% the verdict must differ across cycles for the same seq
        // — the stateless hash re-rolls, so retries can succeed.
        let mut seen_clean = false;
        let mut seen_fault = false;
        for cycle in 0..64 {
            match plan.verdict(0, 9, cycle, 4, 4, false) {
                Verdict::Clean => seen_clean = true,
                _ => seen_fault = true,
            }
        }
        assert!(seen_clean && seen_fault);
    }

    #[test]
    fn shutdown_masks_gated_slice_hits() {
        let cfg = FaultConfig::disabled().with_transient(1_000_000).with_seed(5);
        let plan = FaultPlan::compile(cfg, &line_endpoints(4), 4).expect("transient plan compiles");
        // Always-fault config: a short flit (1 active word of 4) under
        // shutdown only ever sees Masked (upper-word hits regenerate) —
        // the fault word is always >= 1 when num_words > 1.
        for cycle in 0..64 {
            let v = plan.verdict(1, cycle, cycle, 4, 1, true);
            assert_eq!(v, Verdict::Masked, "cycle {cycle}: {v:?}");
        }
        // The same hits corrupt a dense flit.
        let any_detected = (0..64)
            .any(|cycle| matches!(plan.verdict(1, cycle, cycle, 4, 4, true), Verdict::Detected));
        assert!(any_detected);
    }

    #[test]
    fn stuck_gate_corrupts_wide_flits_only() {
        let mut cfg = FaultConfig::disabled().with_stuck_gates(1).with_seed(2);
        cfg.transient_ppm = 0;
        let plan =
            FaultPlan::compile(cfg, &line_endpoints(2), 4).expect("stuck-gate plan compiles");
        let link = (0..2).find(|&l| plan.stuck_gate(l).is_some()).expect("one stuck link");
        let (onset, healthy) = plan.stuck_gate(link).expect("the link just found is stuck");
        assert_eq!(plan.verdict(link, 0, onset, 4, healthy, true), Verdict::Clean);
        assert_eq!(plan.verdict(link, 0, onset, 4, healthy + 1, true), Verdict::Detected);
    }

    #[test]
    fn escaped_mask_is_two_bits_in_one_word() {
        let mut cfg = FaultConfig::disabled().with_transient(1_000_000).with_seed(1);
        cfg.double_ppm = 1_000_000; // every fault escapes
        let plan = FaultPlan::compile(cfg, &line_endpoints(4), 4).expect("transient plan compiles");
        for cycle in 0..32 {
            match plan.verdict(2, cycle, cycle, 4, 4, false) {
                Verdict::Escaped { word, mask } => {
                    assert!((1..4).contains(&word), "upper-word hit");
                    assert_eq!(mask.count_ones(), 2, "double flip defeats parity");
                }
                v => panic!("expected Escaped, got {v:?}"),
            }
        }
    }
}
