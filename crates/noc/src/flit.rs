//! Flits: the unit of flow control, and their data-payload patterns.
//!
//! MIRA's power optimisation hinges on the observation (paper Fig. 1) that
//! NUCA traffic payloads are dominated by *frequent patterns* — words that
//! are all zeros or all ones — and by short address/control flits. The
//! multi-layered router splits a `W`-bit flit into `L` word slices, one per
//! silicon layer (LSB word on the top layer), and a zero-detector shuts the
//! lower layers down when they would only carry redundant data.
//!
//! [`FlitData`] models the payload at word granularity and implements the
//! zero-detector ([`FlitData::active_words`]) and the frequent-pattern
//! classifier used to regenerate the paper's Fig. 1.

use serde::{Deserialize, Serialize};

use crate::ids::NodeId;
use crate::packet::{PacketClass, PacketId};

/// Number of bits per payload word (one word per silicon layer).
pub const WORD_BITS: usize = 32;

/// Maximum payload words a flit can carry. Payloads are stored inline
/// (no heap allocation per flit), so the widest supported flit is
/// `MAX_FLIT_WORDS * WORD_BITS` bits — 256 bits, double the paper's
/// 128-bit evaluation point.
pub const MAX_FLIT_WORDS: usize = 8;

/// Position of a flit within its packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlitKind {
    /// First flit of a multi-flit packet; carries routing information.
    Head,
    /// Interior flit of a multi-flit packet.
    Body,
    /// Last flit of a multi-flit packet; releases the virtual channel.
    Tail,
    /// Only flit of a single-flit packet (head and tail at once).
    HeadTail,
}

impl FlitKind {
    /// Returns `true` for flits that carry the packet header (route/VC
    /// decisions happen on these).
    #[inline]
    pub const fn is_head(self) -> bool {
        matches!(self, FlitKind::Head | FlitKind::HeadTail)
    }

    /// Returns `true` for flits that terminate the packet (the VC is
    /// released after they traverse the switch).
    #[inline]
    pub const fn is_tail(self) -> bool {
        matches!(self, FlitKind::Tail | FlitKind::HeadTail)
    }
}

/// Classification of a payload word, following the frequent-pattern
/// taxonomy of Alameldeen & Wood that the paper cites for Fig. 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WordPattern {
    /// All 32 bits are zero.
    AllZero,
    /// All 32 bits are one.
    AllOne,
    /// Any other value.
    Other,
}

impl WordPattern {
    /// Classifies a single payload word.
    #[inline]
    pub fn of(word: u32) -> Self {
        match word {
            0 => WordPattern::AllZero,
            u32::MAX => WordPattern::AllOne,
            _ => WordPattern::Other,
        }
    }

    /// Returns `true` if the word carries no information beyond its
    /// pattern tag (and can therefore be regenerated on the far side
    /// instead of being transported).
    #[inline]
    pub fn is_redundant(self) -> bool {
        !matches!(self, WordPattern::Other)
    }
}

/// Payload of one flit, stored at word granularity.
///
/// The flit width is `words.len() * 32` bits; the MIRA evaluation uses
/// 128-bit flits (4 words, 4 layers). Word 0 is the least-significant word
/// and lives on the **top** layer (closest to the heat sink), so layer
/// shutdown always retains word 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlitData {
    /// Inline word storage; only `words[..len]` is meaningful, and every
    /// word past `len` is kept zero so the derived `Eq`/`Hash` agree
    /// with logical payload equality.
    words: [u32; MAX_FLIT_WORDS],
    len: u8,
    /// Cached zero-detector output (`active_words`). A pure function of
    /// `words[..len]`, maintained by every constructor and by
    /// [`FlitData::flip_bits`], so equality stays consistent with the
    /// payload. The switch-traversal path reads it once per hop.
    active: u8,
}

impl Serialize for FlitData {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![("words".to_string(), self.words().to_value())])
    }
}

impl Deserialize for FlitData {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let words = Vec::<u32>::from_value(v.field("words"))?;
        if words.is_empty() || words.len() > MAX_FLIT_WORDS {
            return Err(serde::Error::msg(format!(
                "flit payload must have 1..={MAX_FLIT_WORDS} words, got {}",
                words.len()
            )));
        }
        Ok(FlitData::new(words))
    }
}

impl FlitData {
    /// Creates a payload from explicit words.
    ///
    /// # Panics
    ///
    /// Panics if `words` is empty or wider than [`MAX_FLIT_WORDS`].
    pub fn new(words: Vec<u32>) -> Self {
        FlitData::from_words(&words)
    }

    /// Creates a payload from a word slice without consuming a `Vec`.
    ///
    /// # Panics
    ///
    /// Panics if `words` is empty or wider than [`MAX_FLIT_WORDS`].
    pub fn from_words(words: &[u32]) -> Self {
        assert!(!words.is_empty(), "flit payload must have at least one word");
        assert!(
            words.len() <= MAX_FLIT_WORDS,
            "flit payload is limited to {MAX_FLIT_WORDS} words, got {}",
            words.len()
        );
        let mut w = [0u32; MAX_FLIT_WORDS];
        w[..words.len()].copy_from_slice(words);
        let mut d = FlitData { words: w, len: words.len() as u8, active: 0 };
        d.recompute_active();
        d
    }

    /// An all-zero payload of `num_words` words — the maximally short flit.
    pub fn zeroed(num_words: usize) -> Self {
        assert!(num_words >= 1, "flit payload must have at least one word");
        assert!(
            num_words <= MAX_FLIT_WORDS,
            "flit payload is limited to {MAX_FLIT_WORDS} words, got {num_words}"
        );
        FlitData { words: [0; MAX_FLIT_WORDS], len: num_words as u8, active: 1 }
    }

    /// A payload in which every word is distinct and non-redundant — the
    /// maximally long flit (all layers active).
    pub fn dense(num_words: usize) -> Self {
        let mut d = FlitData::zeroed(num_words);
        for i in 0..num_words {
            d.words[i] = 0xDEAD_0001_u32.wrapping_mul(i as u32 + 1);
        }
        d.recompute_active();
        d
    }

    /// Builds a payload with exactly `active` meaningful low words; all
    /// higher words are zero. `active` is clamped to `1..=num_words`.
    pub fn with_active_words(num_words: usize, active: usize) -> Self {
        let active = active.clamp(1, num_words);
        let mut d = FlitData::zeroed(num_words);
        for i in 0..active {
            d.words[i] = 0xA5A5_0001_u32.wrapping_mul(i as u32 + 1);
        }
        d.recompute_active();
        d
    }

    /// Re-runs the zero-detector over the stored words (constructors and
    /// payload mutation call this; everything else reads the cache).
    fn recompute_active(&mut self) {
        let mut active = self.len as usize;
        while active > 1 && WordPattern::of(self.words[active - 1]).is_redundant() {
            active -= 1;
        }
        self.active = active as u8;
    }

    /// Number of payload words (= number of datapath layers it spans).
    #[inline]
    pub fn num_words(&self) -> usize {
        self.len as usize
    }

    /// Borrow the payload words (word 0 = LSB = top layer).
    #[inline]
    pub fn words(&self) -> &[u32] {
        &self.words[..self.len as usize]
    }

    /// The zero-detector: number of low-order words that must stay
    /// powered. All words above the returned index are redundant
    /// (all-zero or all-one) and their layers can be shut down.
    ///
    /// The result is always at least 1: the top layer (word 0) is never
    /// gated, because the header travels with it.
    #[inline]
    pub fn active_words(&self) -> usize {
        self.active as usize
    }

    /// A *short flit* in the paper's sense: every word except the top-layer
    /// word is redundant, so only one layer of the datapath is needed.
    #[inline]
    pub fn is_short(&self) -> bool {
        self.active_words() == 1
    }

    /// Fraction of datapath layers that stay active for this flit
    /// (`active_words / num_words`), the quantity that scales the
    /// separable-module energy under layer shutdown.
    #[inline]
    pub fn active_fraction(&self) -> f64 {
        self.active_words() as f64 / self.len as f64
    }

    /// Per-word pattern classification (drives the Fig. 1 reproduction).
    pub fn patterns(&self) -> impl Iterator<Item = WordPattern> + '_ {
        self.words().iter().map(|&w| WordPattern::of(w))
    }

    /// Per-slice parity: one even-parity bit per payload word, packed
    /// LSB-first (word `i` contributes bit `i % 8`). This is the
    /// link-level error-detection code of the fault model
    /// ([`crate::fault`]): a single bit-flip in any word changes its
    /// parity bit, while a double flip in the same word cancels and
    /// escapes detection.
    pub fn slice_parity(&self) -> u8 {
        let mut p = 0u8;
        for (i, w) in self.words().iter().enumerate() {
            p ^= ((w.count_ones() & 1) as u8) << (i & 7);
        }
        p
    }

    /// XORs `mask` into word `word` (fault injection: models bit-flips
    /// on the link slice carrying that word).
    ///
    /// # Panics
    ///
    /// Panics if `word` is out of range.
    pub fn flip_bits(&mut self, word: usize, mask: u32) {
        let len = self.len as usize;
        self.words[..len][word] ^= mask;
        self.recompute_active();
    }
}

/// The unit of flow control: one flit travelling through the network.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Flit {
    /// Packet this flit belongs to.
    pub packet: PacketId,
    /// Sequence number of this flit within its packet (0 = head).
    pub seq: u32,
    /// Position within the packet.
    pub kind: FlitKind,
    /// Source node of the packet.
    pub src: NodeId,
    /// Destination node of the packet.
    pub dst: NodeId,
    /// Traffic class (selects the virtual channel).
    pub class: PacketClass,
    /// Payload words.
    pub data: FlitData,
    /// Cycle at which the owning packet was created at the source.
    pub created_at: u64,
    /// Number of router-to-router hops taken so far.
    pub hops: u32,
}

impl Flit {
    /// Returns `true` if this flit carries the packet header.
    #[inline]
    pub fn is_head(&self) -> bool {
        self.kind.is_head()
    }

    /// Returns `true` if this flit terminates the packet.
    #[inline]
    pub fn is_tail(&self) -> bool {
        self.kind.is_tail()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_pattern_classification() {
        assert_eq!(WordPattern::of(0), WordPattern::AllZero);
        assert_eq!(WordPattern::of(u32::MAX), WordPattern::AllOne);
        assert_eq!(WordPattern::of(42), WordPattern::Other);
        assert!(WordPattern::AllZero.is_redundant());
        assert!(WordPattern::AllOne.is_redundant());
        assert!(!WordPattern::Other.is_redundant());
    }

    #[test]
    fn zero_detector_counts_low_words() {
        let d = FlitData::new(vec![7, 0, 0, 0]);
        assert_eq!(d.active_words(), 1);
        assert!(d.is_short());

        let d = FlitData::new(vec![7, 9, 0, 0]);
        assert_eq!(d.active_words(), 2);
        assert!(!d.is_short());

        let d = FlitData::new(vec![7, 9, 1, 3]);
        assert_eq!(d.active_words(), 4);
    }

    #[test]
    fn all_ones_count_as_redundant() {
        let d = FlitData::new(vec![7, u32::MAX, u32::MAX, u32::MAX]);
        assert_eq!(d.active_words(), 1);
    }

    #[test]
    fn top_layer_never_gated() {
        let d = FlitData::zeroed(4);
        assert_eq!(d.active_words(), 1, "even an all-zero flit keeps one layer");
        assert!((d.active_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn interior_zero_does_not_shorten() {
        // A zero word *between* meaningful words cannot be gated: layers
        // shut down strictly from the bottom (MSB side).
        let d = FlitData::new(vec![7, 0, 5, 0]);
        assert_eq!(d.active_words(), 3);
    }

    #[test]
    fn dense_payload_uses_all_layers() {
        let d = FlitData::dense(4);
        assert_eq!(d.active_words(), 4);
        assert!((d.active_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn with_active_words_clamps() {
        assert_eq!(FlitData::with_active_words(4, 0).active_words(), 1);
        assert_eq!(FlitData::with_active_words(4, 2).active_words(), 2);
        assert_eq!(FlitData::with_active_words(4, 9).active_words(), 4);
    }

    #[test]
    fn slice_parity_detects_single_flips() {
        let d = FlitData::new(vec![0b1011, 0, 7, u32::MAX]);
        let before = d.slice_parity();
        for word in 0..4 {
            for bit in [0u32, 13, 31] {
                let mut c = d;
                c.flip_bits(word, 1 << bit);
                assert_ne!(c.slice_parity(), before, "flip in word {word} bit {bit} must show");
            }
        }
    }

    #[test]
    fn slice_parity_misses_double_flips_in_one_word() {
        let d = FlitData::dense(4);
        let before = d.slice_parity();
        let mut c = d;
        c.flip_bits(2, (1 << 5) | (1 << 19));
        assert_eq!(c.slice_parity(), before, "double flip cancels: the escape path");
        assert_ne!(c, d, "payload is still corrupted");
    }

    #[test]
    #[should_panic(expected = "at least one word")]
    fn empty_payload_panics() {
        let _ = FlitData::new(vec![]);
    }

    #[test]
    fn flit_kind_predicates() {
        assert!(FlitKind::Head.is_head());
        assert!(FlitKind::HeadTail.is_head());
        assert!(FlitKind::HeadTail.is_tail());
        assert!(FlitKind::Tail.is_tail());
        assert!(!FlitKind::Body.is_head());
        assert!(!FlitKind::Body.is_tail());
    }
}
