//! Strongly typed identifiers for nodes, ports, and virtual channels.
//!
//! Using newtypes instead of bare `usize` values keeps node, port, and VC
//! indices from being confused with each other at compile time (the three
//! are freely mixed inside router inner loops, where such a mix-up would
//! silently corrupt a simulation rather than crash it).

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a network node (a router plus its attached core).
///
/// Nodes are numbered `0..num_nodes` by the [`Topology`] that owns them;
/// the mapping from id to spatial coordinates is topology-specific.
///
/// [`Topology`]: crate::topology::Topology
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct NodeId(pub usize);

impl NodeId {
    /// Returns the raw index of this node.
    #[inline]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for NodeId {
    fn from(value: usize) -> Self {
        NodeId(value)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a router port.
///
/// Port 0 is always the local (injection/ejection) port; the meaning of the
/// remaining ports depends on the topology (see [`crate::topology`]).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PortId(pub usize);

impl PortId {
    /// The local injection/ejection port present on every router.
    pub const LOCAL: PortId = PortId(0);

    /// Returns the raw index of this port.
    #[inline]
    pub const fn index(self) -> usize {
        self.0
    }

    /// Returns `true` if this is the local (injection/ejection) port.
    #[inline]
    pub const fn is_local(self) -> bool {
        self.0 == 0
    }
}

impl From<usize> for PortId {
    fn from(value: usize) -> Self {
        PortId(value)
    }
}

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Identifier of a virtual channel within a port.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct VcId(pub usize);

impl VcId {
    /// Returns the raw index of this virtual channel.
    #[inline]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for VcId {
    fn from(value: usize) -> Self {
        VcId(value)
    }
}

impl fmt::Display for VcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let n = NodeId::from(17);
        assert_eq!(n.index(), 17);
        assert_eq!(n.to_string(), "n17");
    }

    #[test]
    fn local_port_is_zero() {
        assert!(PortId::LOCAL.is_local());
        assert!(!PortId(1).is_local());
        assert_eq!(PortId::LOCAL.index(), 0);
    }

    #[test]
    fn ids_are_ordered() {
        assert!(NodeId(1) < NodeId(2));
        assert!(PortId(0) < PortId(4));
        assert!(VcId(0) < VcId(1));
    }

    #[test]
    fn display_forms() {
        assert_eq!(PortId(3).to_string(), "p3");
        assert_eq!(VcId(1).to_string(), "v1");
    }
}
