//! Packet-journey tracing: per-hop latency spans for sampled packets.
//!
//! The telemetry layer ([`crate::telemetry`]) says where *routers* spend
//! cycles; this module says where an individual *packet's* latency comes
//! from. A deterministic head-sampler (a seeded hash of the packet id)
//! selects packets at injection; for each sampled packet a
//! [`JourneyRecorder`] collects one [`HopSpan`] per router visited, with
//! the head flit's residency split into stall cycles by
//! [`StallCause`](crate::telemetry::StallCause) (the same attribution the
//! router's [`StallCounters`] use) and pipeline occupancy (RC/VA/SA/ST),
//! plus the wire time between routers split into nominal link traversal
//! and ARQ replay delay.
//!
//! # The sum-to-latency invariant
//!
//! A journey tiles the packet's life exactly:
//!
//! ```text
//! latency = source_queue                        (creation → head NIC write)
//!         + Σ per hop (stalls + pipeline)       (head arrival → head ST)
//!         + Σ per edge (link + arq_replay)      (head ST → next arrival)
//!         + serialization                       (head eject → tail eject)
//! ```
//!
//! Every boundary is an observed event cycle, so the spans sum to the
//! packet's measured end-to-end latency with no residue — asserted by
//! [`PacketJourney::span_sum`] consumers in the property tests.
//!
//! Recording is purely observational: a run with journeys enabled is
//! bit-identical to one without (golden tests enforce it).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::ids::{NodeId, PortId};
use crate::packet::{PacketClass, PacketId};
use crate::telemetry::{StallCause, StallCounters};

/// SplitMix64 finalizer: a high-quality 64-bit mix used to turn packet
/// ids into sampling coins. Stable — changing it would change every
/// sampled set.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic head-sampler: whether a packet is traced depends only
/// on its id and the seed, never on scheduling — so the sampled set is
/// identical across runner worker counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JourneySampler {
    sample_ppm: u32,
    seed: u64,
    threshold: u64,
}

impl JourneySampler {
    /// Creates a sampler tracing `sample_ppm` parts-per-million of
    /// packets (clamped to 1 000 000 = every packet).
    pub fn new(sample_ppm: u32, seed: u64) -> Self {
        let ppm = sample_ppm.min(1_000_000);
        // u64::MAX / 1e6 buckets of equal size; ppm of them accept.
        let threshold = u64::from(ppm).wrapping_mul(u64::MAX / 1_000_000);
        JourneySampler { sample_ppm: ppm, seed, threshold }
    }

    /// The configured sampling rate in parts per million.
    pub fn sample_ppm(&self) -> u32 {
        self.sample_ppm
    }

    /// Whether `packet` is in the sampled set.
    #[inline]
    pub fn sampled(&self, packet: PacketId) -> bool {
        if self.sample_ppm >= 1_000_000 {
            return true;
        }
        splitmix64(packet.0 ^ self.seed) < self.threshold
    }
}

/// One router visit of a sampled packet, tracked on the head flit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HopSpan {
    /// Router visited.
    pub router: usize,
    /// Input port the head flit arrived on (0 = injected locally).
    pub in_port: usize,
    /// Output port the head flit left through (0 = ejected locally).
    pub out_port: usize,
    /// Cycle the head flit was written into this router's input buffer.
    pub arrived: u64,
    /// Cycle the head flit traversed this router's switch.
    pub departed: u64,
    /// Nominal wire cycles spent reaching this router from the previous
    /// hop's switch traversal (0 for the injection hop).
    pub link_cycles: u64,
    /// Wire cycles beyond nominal — ARQ replay, backoff, and NACK purges
    /// (0 unless fault injection delayed the delivery).
    pub arq_cycles: u64,
    /// Stall cycles charged to this packet's *head* flit at this router,
    /// by cause (the same sites that feed the router's `StallCounters`).
    /// These tile the hop's residency together with `pipeline_cycles`.
    pub stalls: StallCounters,
    /// Stall cycles charged to this packet's *body/tail* flits at this
    /// router. They overlap the head's progress at later hops (wormhole
    /// pipelining), so they are kept out of the residency decomposition —
    /// but together with `stalls` they account for every `StallCounters`
    /// cycle the routers charged this packet.
    pub body_stalls: StallCounters,
}

impl HopSpan {
    /// Head-flit residency at this router (arrival to switch traversal).
    pub fn residency(&self) -> u64 {
        self.departed - self.arrived
    }

    /// Residency cycles not attributed to a stall: RC/VA/SA/ST pipeline
    /// occupancy (plus the buffer-write cycle).
    pub fn pipeline_cycles(&self) -> u64 {
        self.residency() - self.stalls.stalled
    }
}

/// A complete journey of one sampled packet, closed at tail ejection.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketJourney {
    /// Packet id.
    pub packet: u64,
    /// Traffic class of the packet.
    pub class: PacketClass,
    /// Whether the packet was created during the measurement window.
    pub measured: bool,
    /// Creation cycle (entering the source queue).
    pub created_at: u64,
    /// Tail-flit ejection cycle (0 until the journey closes).
    pub ejected_at: u64,
    /// Cycles waiting in the source queue before the head flit entered
    /// the injection router's buffer.
    pub source_queue: u64,
    /// Cycles between the head flit's ejection and the tail flit's
    /// (wormhole serialization of the packet body).
    pub serialization: u64,
    /// One span per router visited, in order.
    pub hops: Vec<HopSpan>,
}

impl PacketJourney {
    /// Measured end-to-end latency (creation to tail ejection).
    pub fn latency(&self) -> u64 {
        self.ejected_at - self.created_at
    }

    /// Sum of every span — equals [`PacketJourney::latency`] exactly
    /// (the invariant the property tests enforce).
    pub fn span_sum(&self) -> u64 {
        self.source_queue
            + self.serialization
            + self.hops.iter().map(|h| h.residency() + h.link_cycles + h.arq_cycles).sum::<u64>()
    }

    /// Total stall cycles across every hop, by cause — head and body
    /// stalls combined (everything the routers charged this packet).
    pub fn stall_total(&self) -> StallCounters {
        let mut t = StallCounters::new();
        for h in &self.hops {
            t.merge(&h.stalls);
            t.merge(&h.body_stalls);
        }
        t
    }
}

/// Attribution component names, in the order [`AttributionShare`] lists
/// them.
pub const COMPONENTS: [&str; 10] = [
    "source_queue",
    "no_credit",
    "va_loss",
    "sa_loss",
    "route_busy",
    "link_fault",
    "pipeline",
    "link",
    "arq_replay",
    "serialization",
];

/// Mean cycles per latency component over a set of journeys.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct AttributionShare {
    /// Source-queue wait before injection.
    pub source_queue: f64,
    /// Buffer residency stalled on missing downstream credits.
    pub no_credit: f64,
    /// Buffer residency stalled on lost VC allocation.
    pub va_loss: f64,
    /// Buffer residency stalled on lost switch allocation.
    pub sa_loss: f64,
    /// Buffer residency stalled on a busy output VC.
    pub route_busy: f64,
    /// Buffer residency stalled on a link in retransmission backoff.
    pub link_fault: f64,
    /// RC/VA/SA/ST pipeline occupancy.
    pub pipeline: f64,
    /// Nominal link traversal (includes LT when separate).
    pub link: f64,
    /// ARQ replay delay on the wire.
    pub arq_replay: f64,
    /// Wormhole serialization of the packet body at the destination.
    pub serialization: f64,
}

impl AttributionShare {
    /// The components as `(name, cycles)` pairs, in [`COMPONENTS`] order.
    pub fn parts(&self) -> [(&'static str, f64); 10] {
        [
            ("source_queue", self.source_queue),
            ("no_credit", self.no_credit),
            ("va_loss", self.va_loss),
            ("sa_loss", self.sa_loss),
            ("route_busy", self.route_busy),
            ("link_fault", self.link_fault),
            ("pipeline", self.pipeline),
            ("link", self.link),
            ("arq_replay", self.arq_replay),
            ("serialization", self.serialization),
        ]
    }

    /// Sum of every component (the bucket's mean latency).
    pub fn total(&self) -> f64 {
        self.parts().iter().map(|(_, v)| v).sum()
    }

    /// The largest component, as `(name, mean cycles)`.
    pub fn dominant(&self) -> (&'static str, f64) {
        self.parts()
            .into_iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("attribution shares are finite"))
            .expect("parts is non-empty")
    }

    fn accumulate(&mut self, j: &PacketJourney) {
        self.source_queue += j.source_queue as f64;
        self.serialization += j.serialization as f64;
        for h in &j.hops {
            self.no_credit += h.stalls.no_credit as f64;
            self.va_loss += h.stalls.va_loss as f64;
            self.sa_loss += h.stalls.sa_loss as f64;
            self.route_busy += h.stalls.route_busy as f64;
            self.link_fault += h.stalls.link_fault as f64;
            self.pipeline += h.pipeline_cycles() as f64;
            self.link += h.link_cycles as f64;
            self.arq_replay += h.arq_cycles as f64;
        }
    }

    fn scale(&mut self, factor: f64) {
        self.source_queue *= factor;
        self.no_credit *= factor;
        self.va_loss *= factor;
        self.sa_loss *= factor;
        self.route_busy *= factor;
        self.link_fault *= factor;
        self.pipeline *= factor;
        self.link *= factor;
        self.arq_replay *= factor;
        self.serialization *= factor;
    }

    /// Mean attribution over `journeys` (zero when empty).
    pub fn mean_over<'a>(journeys: impl Iterator<Item = &'a PacketJourney>) -> (u64, Self) {
        let mut share = AttributionShare::default();
        let mut count = 0u64;
        for j in journeys {
            share.accumulate(j);
            count += 1;
        }
        if count > 0 {
            share.scale(1.0 / count as f64);
        }
        (count, share)
    }
}

/// Attribution of one traffic class within a tail bucket.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassAttribution {
    /// Traffic-class name ([`PacketClass::name`]).
    pub class: String,
    /// Journeys of this class in the bucket.
    pub count: u64,
    /// Mean per-component cycles for those journeys.
    pub mean: AttributionShare,
}

/// Mean latency attribution for the packets at or above one latency
/// quantile (`p50` covers the slower half, `p99.9` the extreme tail).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TailBucket {
    /// Bucket label (`"p50"`, `"p95"`, `"p99"`, `"p99.9"`).
    pub label: String,
    /// The quantile defining the bucket.
    pub quantile: f64,
    /// Latency threshold (cycles): journeys at or above it are in the
    /// bucket.
    pub threshold: u64,
    /// Journeys in the bucket.
    pub count: u64,
    /// Mean end-to-end latency of the bucket (cycles).
    pub mean_latency: f64,
    /// Mean per-component breakdown (components sum to `mean_latency`).
    pub mean: AttributionShare,
    /// The same breakdown split by traffic class (classes present in the
    /// bucket only).
    pub per_class: Vec<ClassAttribution>,
}

/// Aggregated journey statistics for a run, serialized into report JSON.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JourneyReport {
    /// Sampling rate, parts per million.
    pub sample_ppm: u32,
    /// Journeys closed (tail ejected) — measured-window packets only
    /// feed the buckets, but this counts every sampled packet.
    pub sampled: u64,
    /// Sampled packets still open when the run ended (in flight or
    /// dropped).
    pub pending: u64,
    /// Order-independent hash of the closed sampled packet-id set; equal
    /// hashes across runs mean the sampled sets are identical (the
    /// runner-determinism test compares these across worker counts).
    pub packets_hash: u64,
    /// Tail-latency attribution buckets over measured journeys, for
    /// p50/p95/p99/p99.9.
    pub buckets: Vec<TailBucket>,
}

impl JourneyReport {
    /// The bucket with the given label, if present.
    pub fn bucket(&self, label: &str) -> Option<&TailBucket> {
        self.buckets.iter().find(|b| b.label == label)
    }
}

/// The tail quantiles every report aggregates.
pub const TAIL_QUANTILES: [(&str, f64); 4] =
    [("p50", 0.50), ("p95", 0.95), ("p99", 0.99), ("p99.9", 0.999)];

/// Records journeys for sampled packets. Owned by the network, fed by
/// the NIC/link/router hooks, finalized by the simulator at tail
/// ejection. Purely observational.
#[derive(Debug)]
pub struct JourneyRecorder {
    sampler: JourneySampler,
    /// Full sender-to-receiver nominal link latency (`1 + LT cycles`);
    /// wire time beyond it is attributed to ARQ replay.
    nominal_link_cycles: u64,
    active: HashMap<u64, PacketJourney>,
    finished: Vec<PacketJourney>,
}

impl JourneyRecorder {
    /// Creates a recorder sampling `sample_ppm` parts-per-million of
    /// packets with the given hash seed. `nominal_link_cycles` is the
    /// fault-free sender-to-receiver link latency (`1 + LT cycles`).
    pub fn new(sample_ppm: u32, seed: u64, nominal_link_cycles: u64) -> Self {
        JourneyRecorder {
            sampler: JourneySampler::new(sample_ppm, seed),
            nominal_link_cycles: nominal_link_cycles.max(1),
            active: HashMap::new(),
            finished: Vec::new(),
        }
    }

    /// The sampler deciding which packets are traced.
    pub fn sampler(&self) -> &JourneySampler {
        &self.sampler
    }

    /// Journeys closed so far, in ejection order.
    pub fn finished(&self) -> &[PacketJourney] {
        &self.finished
    }

    /// Removes and returns the closed journeys.
    pub fn take_finished(&mut self) -> Vec<PacketJourney> {
        std::mem::take(&mut self.finished)
    }

    /// Sampled packets still open (in flight or dropped).
    pub fn pending(&self) -> usize {
        self.active.len()
    }

    /// The still-open journey of `packet`, if it is sampled and in
    /// flight (the black-box dump attaches these to stuck packets).
    pub fn open(&self, packet: PacketId) -> Option<&PacketJourney> {
        self.active.get(&packet.0)
    }

    /// A packet was created: opens a journey if it is sampled.
    pub fn on_created(&mut self, packet: PacketId, cycle: u64, class: PacketClass, measured: bool) {
        if !self.sampler.sampled(packet) {
            return;
        }
        self.active.insert(
            packet.0,
            PacketJourney {
                packet: packet.0,
                class,
                measured,
                created_at: cycle,
                ejected_at: 0,
                source_queue: 0,
                serialization: 0,
                hops: Vec::new(),
            },
        );
    }

    /// The head flit entered the injection router's buffer: the source
    /// queue span closes and the first hop opens.
    pub fn on_nic_inject(&mut self, packet: PacketId, router: NodeId, cycle: u64) {
        if let Some(j) = self.active.get_mut(&packet.0) {
            j.source_queue = cycle - j.created_at;
            j.hops.push(HopSpan {
                router: router.index(),
                in_port: PortId::LOCAL.index(),
                out_port: PortId::LOCAL.index(),
                arrived: cycle,
                departed: cycle,
                link_cycles: 0,
                arq_cycles: 0,
                stalls: StallCounters::new(),
                body_stalls: StallCounters::new(),
            });
        }
    }

    /// The head flit was delivered into a downstream router's buffer:
    /// the wire span closes (split into nominal link time and ARQ
    /// excess) and the next hop opens.
    pub fn on_link_arrival(&mut self, packet: PacketId, router: NodeId, port: PortId, cycle: u64) {
        if let Some(j) = self.active.get_mut(&packet.0) {
            let Some(prev) = j.hops.last() else { return };
            let wire = cycle - prev.departed;
            let link = wire.min(self.nominal_link_cycles);
            j.hops.push(HopSpan {
                router: router.index(),
                in_port: port.index(),
                out_port: PortId::LOCAL.index(),
                arrived: cycle,
                departed: cycle,
                link_cycles: link,
                arq_cycles: wire - link,
                stalls: StallCounters::new(),
                body_stalls: StallCounters::new(),
            });
        }
    }

    /// A flit of the packet stalled at `router` this cycle. Head-flit
    /// stalls split the open hop's residency; body/tail stalls are kept
    /// per hop but outside the decomposition (they overlap the head's
    /// progress downstream).
    #[inline]
    pub fn on_stall(&mut self, packet: PacketId, router: NodeId, cause: StallCause, is_head: bool) {
        if let Some(j) = self.active.get_mut(&packet.0) {
            if is_head {
                if let Some(h) = j.hops.last_mut() {
                    debug_assert_eq!(h.router, router.index(), "head stalls land on the open hop");
                    h.stalls.record(cause);
                }
            } else if let Some(h) = j.hops.iter_mut().rev().find(|h| h.router == router.index()) {
                h.body_stalls.record(cause);
            }
        }
    }

    /// The head flit traversed the switch at its current router: the
    /// hop's residency closes.
    pub fn on_st(&mut self, packet: PacketId, out_port: PortId, cycle: u64) {
        if let Some(j) = self.active.get_mut(&packet.0) {
            if let Some(h) = j.hops.last_mut() {
                h.departed = cycle;
                h.out_port = out_port.index();
            }
        }
    }

    /// The tail flit ejected: closes the journey (serialization is the
    /// gap between head and tail ejection).
    pub fn on_ejected(&mut self, packet: PacketId, cycle: u64) {
        if let Some(mut j) = self.active.remove(&packet.0) {
            j.ejected_at = cycle;
            j.serialization = cycle - j.hops.last().map_or(cycle, |h| h.departed);
            debug_assert_eq!(
                j.span_sum(),
                j.latency(),
                "journey spans must tile the packet's latency exactly (packet {})",
                j.packet
            );
            self.finished.push(j);
        }
    }

    /// Per-hop stall cycles summed over every journey (closed and still
    /// open), grouped by router. With a 100% sample rate these equal the
    /// per-router `StallCounters` exactly — the property tests compare
    /// them.
    pub fn stalls_by_router(&self) -> HashMap<usize, StallCounters> {
        let mut map: HashMap<usize, StallCounters> = HashMap::new();
        for j in self.finished.iter().chain(self.active.values()) {
            for h in &j.hops {
                if h.stalls.stalled == 0 && h.body_stalls.stalled == 0 {
                    continue;
                }
                let e = map.entry(h.router).or_default();
                e.merge(&h.stalls);
                e.merge(&h.body_stalls);
            }
        }
        map
    }

    /// Aggregates the closed journeys into the tail-attribution report.
    pub fn report(&self) -> JourneyReport {
        let mut packets_hash = 0u64;
        for j in &self.finished {
            packets_hash ^= splitmix64(j.packet);
        }
        let mut latencies: Vec<u64> =
            self.finished.iter().filter(|j| j.measured).map(PacketJourney::latency).collect();
        latencies.sort_unstable();
        let mut buckets = Vec::new();
        if !latencies.is_empty() {
            let n = latencies.len();
            for (label, q) in TAIL_QUANTILES {
                // Nearest-rank threshold, matching LatencyHistogram.
                let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
                let threshold = latencies[rank - 1];
                let in_bucket = |j: &&PacketJourney| j.measured && j.latency() >= threshold;
                let (count, mean) =
                    AttributionShare::mean_over(self.finished.iter().filter(in_bucket));
                let mean_latency =
                    self.finished.iter().filter(in_bucket).map(|j| j.latency() as f64).sum::<f64>()
                        / count.max(1) as f64;
                let mut per_class = Vec::new();
                for class in PacketClass::ALL {
                    let (ccount, cmean) = AttributionShare::mean_over(
                        self.finished.iter().filter(in_bucket).filter(|j| j.class == class),
                    );
                    if ccount > 0 {
                        per_class.push(ClassAttribution {
                            class: class.name().to_string(),
                            count: ccount,
                            mean: cmean,
                        });
                    }
                }
                buckets.push(TailBucket {
                    label: label.to_string(),
                    quantile: q,
                    threshold,
                    count,
                    mean_latency,
                    mean,
                    per_class,
                });
            }
        }
        JourneyReport {
            sample_ppm: self.sampler.sample_ppm(),
            sampled: self.finished.len() as u64,
            pending: self.active.len() as u64,
            packets_hash,
            buckets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_is_deterministic_and_monotone_in_rate() {
        let s_lo = JourneySampler::new(10_000, 7); // 1%
        let s_hi = JourneySampler::new(500_000, 7); // 50%
        let mut lo = 0usize;
        let mut hi = 0usize;
        for id in 0..10_000u64 {
            let a = s_lo.sampled(PacketId(id));
            assert_eq!(a, s_lo.sampled(PacketId(id)), "sampling is a pure function");
            if a {
                // A packet sampled at the low rate is sampled at every
                // higher rate with the same seed (nested head samples).
                assert!(s_hi.sampled(PacketId(id)));
                lo += 1;
            }
            if s_hi.sampled(PacketId(id)) {
                hi += 1;
            }
        }
        assert!(lo > 20 && lo < 400, "1% of 10k ≈ 100, got {lo}");
        assert!(hi > 4_000 && hi < 6_000, "50% of 10k ≈ 5000, got {hi}");
    }

    #[test]
    fn sampler_edge_rates() {
        let never = JourneySampler::new(0, 1);
        let always = JourneySampler::new(1_000_000, 1);
        for id in 0..1_000u64 {
            assert!(!never.sampled(PacketId(id)));
            assert!(always.sampled(PacketId(id)));
        }
        // Over-range rates clamp to "always".
        assert_eq!(JourneySampler::new(2_000_000, 1).sample_ppm(), 1_000_000);
    }

    #[test]
    fn journey_spans_tile_latency() {
        let mut r = JourneyRecorder::new(1_000_000, 0, 2);
        let pid = PacketId(9);
        r.on_created(pid, 100, PacketClass::DataResponse, true);
        r.on_nic_inject(pid, NodeId(0), 104);
        r.on_stall(pid, NodeId(0), StallCause::SaLoss, true);
        r.on_stall(pid, NodeId(0), StallCause::NoCredit, true);
        r.on_st(pid, PortId(1), 110);
        // Wire takes 5 cycles against a nominal 2: 3 cycles of ARQ delay.
        r.on_link_arrival(pid, NodeId(1), PortId(2), 115);
        // A body flit stalls back at router 0 while the head advances.
        r.on_stall(pid, NodeId(0), StallCause::NoCredit, false);
        r.on_st(pid, PortId::LOCAL, 119);
        r.on_ejected(pid, 123);

        let j = &r.finished()[0];
        assert_eq!(j.latency(), 23);
        assert_eq!(j.span_sum(), j.latency());
        assert_eq!(j.source_queue, 4);
        assert_eq!(j.serialization, 4);
        assert_eq!(j.hops.len(), 2);
        assert_eq!(j.hops[0].residency(), 6);
        assert_eq!(j.hops[0].stalls.stalled, 2);
        assert_eq!(j.hops[0].pipeline_cycles(), 4);
        assert_eq!(j.hops[1].link_cycles, 2);
        assert_eq!(j.hops[1].arq_cycles, 3);
        assert_eq!(j.stall_total().sa_loss, 1);
        assert_eq!(j.hops[0].body_stalls.no_credit, 1, "body stall lands on the closed hop");
        assert_eq!(j.stall_total().no_credit, 2, "head and body stalls both counted");
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn report_buckets_nest_and_account_fully() {
        let mut r = JourneyRecorder::new(1_000_000, 0, 1);
        for i in 0..100u64 {
            let pid = PacketId(i);
            r.on_created(pid, 0, PacketClass::ReadRequest, true);
            r.on_nic_inject(pid, NodeId(0), 1);
            // Latency grows with the id: packet i ejects at 10 + i.
            r.on_st(pid, PortId::LOCAL, 10 + i);
            r.on_ejected(pid, 10 + i);
        }
        let rep = r.report();
        assert_eq!(rep.sampled, 100);
        assert_eq!(rep.pending, 0);
        assert_eq!(rep.buckets.len(), 4);
        let p50 = rep.bucket("p50").unwrap();
        let p99 = rep.bucket("p99").unwrap();
        let p999 = rep.bucket("p99.9").unwrap();
        assert!(p50.count >= p99.count && p99.count >= p999.count, "buckets nest");
        assert_eq!(p999.count, 1, "the extreme tail is the slowest packet");
        for b in &rep.buckets {
            assert!(
                (b.mean.total() - b.mean_latency).abs() < 1e-9,
                "{}: components sum to the bucket's mean latency",
                b.label
            );
            assert_eq!(b.per_class.len(), 1);
            assert_eq!(b.per_class[0].class, "read-req");
        }
        assert_eq!(p50.mean.dominant().0, "pipeline");
    }

    #[test]
    fn packets_hash_is_order_independent() {
        let run = |ids: &[u64]| {
            let mut r = JourneyRecorder::new(1_000_000, 0, 1);
            for &i in ids {
                let pid = PacketId(i);
                r.on_created(pid, 0, PacketClass::Ack, false);
                r.on_nic_inject(pid, NodeId(0), 1);
                r.on_st(pid, PortId::LOCAL, 4);
                r.on_ejected(pid, 4);
            }
            r.report().packets_hash
        };
        assert_eq!(run(&[1, 2, 3]), run(&[3, 1, 2]));
        assert_ne!(run(&[1, 2, 3]), run(&[1, 2, 4]));
    }

    #[test]
    fn unsampled_and_unfinished_packets_are_inert() {
        let mut r = JourneyRecorder::new(0, 0, 1);
        r.on_created(PacketId(1), 0, PacketClass::Ack, true);
        r.on_stall(PacketId(1), NodeId(0), StallCause::SaLoss, true);
        r.on_ejected(PacketId(1), 10);
        assert!(r.finished().is_empty());

        let mut r = JourneyRecorder::new(1_000_000, 0, 1);
        r.on_created(PacketId(2), 0, PacketClass::Ack, true);
        r.on_nic_inject(PacketId(2), NodeId(0), 1);
        assert_eq!(r.pending(), 1, "unfinished journeys stay pending");
        assert_eq!(r.report().pending, 1);
        assert_eq!(r.stalls_by_router().len(), 0);
    }
}
