//! Multi-layer structure of the 3DM router (paper §3.2).
//!
//! The paper classifies router modules as *separable* (input buffers,
//! crossbar, inter-router links — these bit-slice cleanly across layers)
//! and *non-separable* (routing and arbitration logic). The non-separable
//! modules are placed whole: RC, SA and VA stage 1 on the layer closest to
//! the heat sink, VA stage 2 spread across the remaining layers
//! (paper §3.2.7). This module captures that assignment plus the
//! inter-layer via accounting of Table 1 and the bandwidth bookkeeping of
//! Fig. 6 — quantities consumed by the area/power models and validated by
//! tests.

use serde::{Deserialize, Serialize};

/// Which router modules sit on which layer in the 3DM organisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerAssignment {
    /// Number of stacked layers (4 in the paper).
    pub layers: usize,
}

impl LayerAssignment {
    /// The paper's four-layer stack.
    pub const fn four_layer() -> Self {
        LayerAssignment { layers: 4 }
    }

    /// Layer index of the heat sink side (we use 0 = top, closest to the
    /// sink, following the paper's "top layer" language).
    pub const fn sink_layer(&self) -> usize {
        0
    }

    /// Layers hosting VA stage-2 arbiters: all except the sink layer
    /// (paper §3.2.7: "distributed evenly among the bottom 3 layers").
    pub fn va2_layers(&self) -> impl Iterator<Item = usize> {
        1..self.layers
    }

    /// Fraction of the crossbar/buffer datapath on each layer (an even
    /// word slice).
    pub fn datapath_fraction_per_layer(&self) -> f64 {
        1.0 / self.layers as f64
    }
}

impl Default for LayerAssignment {
    fn default() -> Self {
        LayerAssignment::four_layer()
    }
}

/// Inter-layer via count for the multi-layered router, from Table 1:
/// `2P + PV + Vk` vias, where `P` is the number of physical channels, `V`
/// the VCs per channel, and `k` the buffer depth in flits per VC.
///
/// * `2P` — crossbar tri-state enable signals driven from the top layer
///   (P×P enables are encoded/propagated per the matrix organisation; the
///   paper accounts two per port),
/// * `PV` — distribution of VA2 request inputs across layers,
/// * `Vk` — buffer word-lines spanning the layers (one per buffer slot
///   per VC).
pub fn via_count(ports: usize, vcs: usize, buffer_depth: usize) -> usize {
    2 * ports + ports * vcs + vcs * buffer_depth
}

/// Per-node wire bandwidth multiplier of the 3DM organisation relative to
/// 3DB (paper §3.2.3 / Fig. 6).
///
/// With `layers` stacked layers, the 3DB design spreads `layers` nodes
/// over the same footprint that 3DM covers with `layers / footprint_ratio`
/// nodes; the total cross-section wiring `layers × W` is shared by half as
/// many nodes in the 3DM case, doubling each node's available bandwidth
/// when `layers = 4`.
pub fn bandwidth_multiplier(layers: usize) -> f64 {
    // 3DB: one node per layer over a full-size footprint → `layers` nodes
    // share `layers·W` wires (1× each). 3DM: each node has a quarter-area
    // footprint, so a full-size footprint column holds 2 nodes (not 4 —
    // the other 2 quarter-footprints belong to neighbouring columns in
    // the halved-pitch grid) sharing the same `layers·W` wires.
    layers as f64 / (layers as f64 / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_layer_assignment() {
        let a = LayerAssignment::four_layer();
        assert_eq!(a.layers, 4);
        assert_eq!(a.sink_layer(), 0);
        let va2: Vec<_> = a.va2_layers().collect();
        assert_eq!(va2, vec![1, 2, 3]);
        assert!((a.datapath_fraction_per_layer() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn via_count_matches_table1_formula() {
        // 3DM: P=5, V=2, k=4 → 2·5 + 5·2 + 2·4 = 28 vias.
        assert_eq!(via_count(5, 2, 4), 28);
        // 3DM-E: P=9, V=2, k=4 → 18 + 18 + 8 = 44 vias.
        assert_eq!(via_count(9, 2, 4), 44);
    }

    #[test]
    fn bandwidth_doubles_for_four_layers() {
        assert!((bandwidth_multiplier(4) - 2.0).abs() < 1e-12);
    }
}
