#![warn(missing_docs)]
//! # mira-noc — a cycle-accurate Network-on-Chip simulator
//!
//! This crate is the simulation substrate for the MIRA reproduction
//! (Park et al., *"MIRA: A Multi-Layered On-Chip Interconnect Router
//! Architecture"*, ISCA 2008). It implements a cycle-accurate,
//! credit-based wormhole router with virtual channels, two-stage virtual
//! channel allocation, two-stage switch allocation, deterministic
//! dimension-ordered routing, and the MIRA-specific mechanisms:
//!
//! * **multi-layer bit-sliced datapaths** — flits are split word-wise
//!   across stacked silicon layers ([`layers`]),
//! * **short-flit layer shutdown** — a zero-detector gates the lower
//!   layers of the separable datapath (buffer, crossbar, link) when the
//!   upper words of a flit carry redundant data ([`flit`]),
//! * **pipeline combining** — the switch-traversal and link-traversal
//!   stages merge into a single cycle when wire lengths permit
//!   ([`config::PipelineConfig`]),
//! * **express channels** — Dally-style multi-hop links on a 2D mesh
//!   ([`topology::ExpressMesh2D`]),
//! * **fault injection and recovery** — deterministic seed-driven link
//!   faults with per-slice parity detection, go-back-N link-level
//!   retransmission, and fault-aware rerouting ([`fault`]).
//!
//! The simulator is deterministic: identical configurations and seeds
//! produce identical results, cycle for cycle.
//!
//! ## Quick example
//!
//! ```
//! use mira_noc::config::{NetworkConfig, PipelineConfig};
//! use mira_noc::sim::{SimConfig, Simulator};
//! use mira_noc::topology::Mesh2D;
//! use mira_noc::traffic::UniformRandom;
//!
//! let topo = Mesh2D::new(4, 4);
//! let net = NetworkConfig::builder()
//!     .pipeline(PipelineConfig::separate_lt())
//!     .build();
//! let mut sim = Simulator::new(Box::new(topo), net, SimConfig::default());
//! let workload = UniformRandom::new(0.05, 5, 7);
//! let report = sim.run(Box::new(workload));
//! assert!(report.packets_ejected > 0);
//! ```

pub mod adaptive;
pub mod anomaly;
pub mod arbiter;
pub mod arena;
pub mod buffer;
pub mod config;
pub mod error;
pub mod fault;
pub mod flit;
pub mod ids;
pub mod journey;
pub mod layers;
pub mod link;
pub mod network;
pub mod packet;
pub mod recorder;
pub mod router;
pub mod routing;
pub(crate) mod shard;
pub mod sim;
pub mod stats;
pub mod telemetry;
pub mod topology;
pub mod traffic;
pub mod vc;

pub use adaptive::{AdaptiveMesh2D, TurnModel};
pub use anomaly::{AnomalyAbort, AnomalyConfig, AnomalyCounts, AnomalyKind, FiredDetector};
pub use arena::{FlitArena, FlitRef};
pub use config::{NetworkConfig, PipelineConfig, RouterConfig};
pub use error::NocError;
pub use fault::{FaultConfig, FaultCounters, FaultPlan, LinkKill, Verdict};
pub use flit::{Flit, FlitData, FlitKind};
pub use ids::{NodeId, PortId, VcId};
pub use journey::{
    AttributionShare, HopSpan, JourneyRecorder, JourneyReport, JourneySampler, PacketJourney,
    TailBucket,
};
pub use packet::{Packet, PacketClass, PacketId};
pub use recorder::{BlackBox, FlightRecorder};
pub use sim::{SimConfig, SimReport, Simulator};
pub use stats::{ActivityCounters, LatencyStats};
pub use telemetry::{
    EventSink, MetricsWindow, NullSink, StallCause, StallCounters, TelemetryConfig, TraceEvent,
    TraceEventKind, TraceSink,
};
pub use topology::{ExpressMesh2D, Mesh2D, Mesh3D, Topology};
