//! Inter-router links: flit transport forward, credit returns backward.
//!
//! A link models one unidirectional physical channel (the reverse credit
//! wire rides along). Delivery times are assigned by the sender according
//! to the pipeline configuration: with ST+LT combining the flit is
//! available at the downstream router on the cycle after switch traversal;
//! with a separate LT stage it spends one extra cycle on the wire
//! (paper Fig. 8).
//!
//! In the multi-layered designs the link is bit-sliced like the rest of
//! the datapath (paper §3.2.3); the slice accounting happens in the
//! activity counters, keyed by the per-flit active-layer fraction.

use std::collections::VecDeque;

use crate::flit::Flit;
use crate::ids::{NodeId, PortId, VcId};

/// A flit in flight on a link.
#[derive(Debug, Clone)]
pub struct FlitInFlight {
    /// Cycle at which the flit becomes visible to the downstream router.
    pub deliver_at: u64,
    /// Downstream input VC the flit was allocated to.
    pub vc: VcId,
    /// The flit itself.
    pub flit: Flit,
}

/// A credit return in flight on a link (towards the upstream router).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CreditInFlight {
    /// Cycle at which the credit reaches the upstream router.
    pub deliver_at: u64,
    /// Output VC (on the upstream router) being credited.
    pub vc: VcId,
}

/// One unidirectional link between two router ports.
#[derive(Debug, Clone)]
pub struct Link {
    /// Upstream endpoint: (router, output port).
    pub from: (NodeId, PortId),
    /// Downstream endpoint: (router, input port).
    pub to: (NodeId, PortId),
    /// Physical wire length in millimetres (drives power/delay models).
    pub length_mm: f64,
    flits: VecDeque<FlitInFlight>,
    credits: VecDeque<CreditInFlight>,
}

impl Link {
    /// Creates an empty link.
    pub fn new(from: (NodeId, PortId), to: (NodeId, PortId), length_mm: f64) -> Self {
        Link { from, to, length_mm, flits: VecDeque::new(), credits: VecDeque::new() }
    }

    /// Sends a flit downstream, to be delivered at `deliver_at`.
    ///
    /// Delivery times must be non-decreasing across calls (links are
    /// FIFOs); this holds by construction because the per-link latency is
    /// constant and senders call this once per cycle at most.
    pub fn send_flit(&mut self, flit: Flit, vc: VcId, deliver_at: u64) {
        debug_assert!(
            self.flits.back().is_none_or(|f| f.deliver_at <= deliver_at),
            "link is not a FIFO"
        );
        self.flits.push_back(FlitInFlight { deliver_at, vc, flit });
    }

    /// Sends a credit upstream, to be delivered at `deliver_at`.
    pub fn send_credit(&mut self, vc: VcId, deliver_at: u64) {
        self.credits.push_back(CreditInFlight { deliver_at, vc });
    }

    /// Removes and returns the next flit due at or before `cycle`.
    pub fn take_due_flit(&mut self, cycle: u64) -> Option<FlitInFlight> {
        if self.flits.front().is_some_and(|f| f.deliver_at <= cycle) {
            self.flits.pop_front()
        } else {
            None
        }
    }

    /// Removes and returns the next credit due at or before `cycle`.
    pub fn take_due_credit(&mut self, cycle: u64) -> Option<CreditInFlight> {
        if self.credits.front().is_some_and(|c| c.deliver_at <= cycle) {
            self.credits.pop_front()
        } else {
            None
        }
    }

    /// Number of flits currently in flight.
    pub fn flits_in_flight(&self) -> usize {
        self.flits.len()
    }

    /// Returns `true` if no flits or credits are in flight.
    pub fn is_quiescent(&self) -> bool {
        self.flits.is_empty() && self.credits.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{FlitData, FlitKind};
    use crate::packet::{PacketClass, PacketId};

    fn mk_flit() -> Flit {
        Flit {
            packet: PacketId(1),
            seq: 0,
            kind: FlitKind::HeadTail,
            src: NodeId(0),
            dst: NodeId(1),
            class: PacketClass::Ack,
            data: FlitData::zeroed(4),
            created_at: 0,
            hops: 0,
        }
    }

    fn mk_link() -> Link {
        Link::new((NodeId(0), PortId(1)), (NodeId(1), PortId(2)), 3.1)
    }

    #[test]
    fn flit_delivery_respects_time() {
        let mut l = mk_link();
        l.send_flit(mk_flit(), VcId(0), 5);
        assert!(l.take_due_flit(4).is_none());
        let f = l.take_due_flit(5).unwrap();
        assert_eq!(f.vc, VcId(0));
        assert!(l.take_due_flit(6).is_none());
    }

    #[test]
    fn credit_delivery_respects_time() {
        let mut l = mk_link();
        l.send_credit(VcId(1), 3);
        assert!(l.take_due_credit(2).is_none());
        assert_eq!(l.take_due_credit(3), Some(CreditInFlight { deliver_at: 3, vc: VcId(1) }));
    }

    #[test]
    fn quiescence() {
        let mut l = mk_link();
        assert!(l.is_quiescent());
        l.send_flit(mk_flit(), VcId(0), 1);
        assert!(!l.is_quiescent());
        assert_eq!(l.flits_in_flight(), 1);
        let _ = l.take_due_flit(1);
        assert!(l.is_quiescent());
    }

    #[test]
    fn fifo_order_preserved() {
        let mut l = mk_link();
        let mut f0 = mk_flit();
        f0.seq = 0;
        let mut f1 = mk_flit();
        f1.seq = 1;
        l.send_flit(f0, VcId(0), 2);
        l.send_flit(f1, VcId(0), 3);
        assert_eq!(l.take_due_flit(3).unwrap().flit.seq, 0);
        assert_eq!(l.take_due_flit(3).unwrap().flit.seq, 1);
    }
}
