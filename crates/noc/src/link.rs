//! Inter-router links: flit transport forward, credit returns backward.
//!
//! A link models one unidirectional physical channel (the reverse credit
//! wire rides along). Delivery times are assigned by the sender according
//! to the pipeline configuration: with ST+LT combining the flit is
//! available at the downstream router on the cycle after switch traversal;
//! with a separate LT stage it spends one extra cycle on the wire
//! (paper Fig. 8).
//!
//! In the multi-layered designs the link is bit-sliced like the rest of
//! the datapath (paper §3.2.3); the slice accounting happens in the
//! activity counters, keyed by the per-flit active-layer fraction.
//!
//! Since the data-oriented core rewrite (DESIGN.md §14) the wire carries
//! [`FlitRef`] arena indices, not owned flits — sending a flit moves a
//! 4-byte index. The only place a link clones payloads is the ARQ
//! retransmit window, which by design must hold a pristine copy that
//! survives corruption of the in-flight original; ARQ is off unless
//! fault injection enables it, so the default path stays copy-free.

use std::collections::VecDeque;

use crate::arena::{FlitArena, FlitRef};
use crate::flit::Flit;
use crate::ids::{NodeId, PortId, VcId};
use crate::packet::PacketId;

/// A flit in flight on a link.
///
/// # Invariant
///
/// `deliver_at` is always computed through [`Link::delivery_cycle`],
/// which checks the `cycle + 1 + extra` arithmetic against `u64`
/// overflow. Simulations run for at most a few billion cycles, so the
/// counter stays far below `u64::MAX`; the checked arithmetic turns a
/// hypothetical wrap (which would silently violate the FIFO ordering
/// below) into a panic at the injection seam.
#[derive(Debug, Clone, Copy)]
pub struct FlitInFlight {
    /// Cycle at which the flit becomes visible to the downstream router.
    pub deliver_at: u64,
    /// Downstream input VC the flit was allocated to.
    pub vc: VcId,
    /// Link-level sequence number stamped by the sender-side
    /// retransmission logic (0 when ARQ is off).
    pub seq: u64,
    /// Sender-computed slice parity ([`crate::flit::FlitData::slice_parity`]);
    /// only meaningful when ARQ is on.
    pub parity: u8,
    /// Arena reference to the flit itself.
    pub flit: FlitRef,
}

/// A credit return in flight on a link (towards the upstream router).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CreditInFlight {
    /// Cycle at which the credit reaches the upstream router.
    pub deliver_at: u64,
    /// Output VC (on the upstream router) being credited.
    pub vc: VcId,
}

/// One unacknowledged flit held by the sender-side retransmit buffer.
///
/// The window owns a full [`Flit`] copy rather than a [`FlitRef`]: a
/// resend must replay the *pristine* payload even after the in-flight
/// original was corrupted, delivered, or freed.
#[derive(Debug, Clone)]
struct ArqEntry {
    seq: u64,
    vc: VcId,
    flit: Flit,
}

/// Sender-side go-back-N retransmission state for one link.
///
/// Every flit sent while ARQ is on gets a link-level sequence number
/// and a pristine copy in the `window` until the receiver acknowledges
/// it (clean delivery). On a parity NACK the physical wire is purged
/// and, after a bounded exponential backoff, the *whole* window is
/// resent in order — which is what keeps the wire a FIFO and makes
/// duplicates impossible (each sequence number is on the wire at most
/// once).
#[derive(Debug, Clone)]
struct LinkArq {
    window: VecDeque<ArqEntry>,
    next_seq: u64,
    /// When `Some`, a resend is scheduled: new sends go to the window
    /// only (they ride the resend), so the wire never reorders.
    resend_at: Option<u64>,
    /// Consecutive failed attempts for the current window head; reset
    /// on acknowledged progress.
    retries: u32,
    /// Full sender-to-receiver latency in cycles (`1 + LT cycles`).
    latency: u64,
}

/// One unidirectional link between two router ports.
#[derive(Debug, Clone)]
pub struct Link {
    /// Upstream endpoint: (router, output port).
    pub from: (NodeId, PortId),
    /// Downstream endpoint: (router, input port).
    pub to: (NodeId, PortId),
    /// Physical wire length in millimetres (drives power/delay models).
    pub length_mm: f64,
    flits: VecDeque<FlitInFlight>,
    credits: VecDeque<CreditInFlight>,
    /// Retransmission state, boxed and absent unless fault injection
    /// enables it — the default path carries only a null pointer.
    arq: Option<Box<LinkArq>>,
}

impl Link {
    /// Creates an empty link.
    pub fn new(from: (NodeId, PortId), to: (NodeId, PortId), length_mm: f64) -> Self {
        Link { from, to, length_mm, flits: VecDeque::new(), credits: VecDeque::new(), arq: None }
    }

    /// Computes the delivery cycle `cycle + 1 + extra`, panicking on
    /// `u64` overflow instead of silently wrapping.
    ///
    /// A wrapped `deliver_at` would schedule a flit in the distant past
    /// and corrupt the FIFO invariant of [`Link::send_flit`]; every
    /// scheduled delivery (switch traversal and ARQ resend alike) goes
    /// through this check.
    pub fn delivery_cycle(cycle: u64, extra: u64) -> u64 {
        cycle
            .checked_add(Link::nominal_latency(extra))
            .expect("cycle counter overflow: scheduled deliver_at would wrap")
    }

    /// Fault-free sender-to-receiver latency in cycles for a link with
    /// `extra` additional LT cycles: `1 + extra`. This is the latency the
    /// ARQ retransmitter replays at and the budget the journey recorder
    /// charges to plain link traversal (anything beyond it is ARQ replay
    /// time).
    pub const fn nominal_latency(extra: u64) -> u64 {
        1 + extra
    }

    /// Enables sender-side go-back-N retransmission with the given
    /// sender-to-receiver latency in cycles (`1 + LT cycles`).
    pub fn enable_arq(&mut self, latency: u64) {
        self.arq = Some(Box::new(LinkArq {
            window: VecDeque::new(),
            next_seq: 0,
            resend_at: None,
            retries: 0,
            latency,
        }));
    }

    /// `true` when retransmission is enabled on this link.
    pub fn arq_enabled(&self) -> bool {
        self.arq.is_some()
    }

    /// Sends the flit at `fref` downstream, to be delivered at
    /// `deliver_at`. Ownership of the reference moves to the link (and
    /// back out through [`Link::take_due_flit`]).
    ///
    /// Delivery times must be non-decreasing across calls (links are
    /// FIFOs); this holds by construction because the per-link latency is
    /// constant and senders call this once per cycle at most. With ARQ
    /// on, a NACK purges the wire before any resend is pushed, and new
    /// sends during a pending resend go to the window only, so the
    /// invariant survives retransmission too.
    pub fn send_flit(&mut self, arena: &mut FlitArena, fref: FlitRef, vc: VcId, deliver_at: u64) {
        let (seq, parity) = match &mut self.arq {
            None => (0, 0),
            Some(a) => {
                let seq = a.next_seq;
                a.next_seq += 1;
                let flit = arena.get(fref);
                let parity = flit.data.slice_parity();
                a.window.push_back(ArqEntry { seq, vc, flit: flit.clone() });
                if a.resend_at.is_some() {
                    // A resend is scheduled: the wire was purged and
                    // will be repopulated (including this flit) when
                    // the backoff expires. Pushing now would deliver
                    // this flit ahead of its predecessors.
                    arena.free(fref);
                    return;
                }
                (seq, parity)
            }
        };
        debug_assert!(
            self.flits.back().is_none_or(|f| f.deliver_at <= deliver_at),
            "link is not a FIFO"
        );
        self.flits.push_back(FlitInFlight { deliver_at, vc, seq, parity, flit: fref });
    }

    /// Cumulative acknowledgement: drops every retransmit-window entry
    /// with sequence number `<= seq` (the receiver took the flit
    /// cleanly) and resets the retry counter — progress was made.
    pub fn arq_ack(&mut self, seq: u64) {
        if let Some(a) = &mut self.arq {
            while a.window.front().is_some_and(|e| e.seq <= seq) {
                a.window.pop_front();
            }
            a.retries = 0;
        }
    }

    /// Negative acknowledgement: the receiver detected corruption.
    /// Purges the physical wire (go-back-N: everything after the bad
    /// flit is dropped and will be resent in order; their arena slots
    /// are freed — the window clones are authoritative) and schedules a
    /// full-window resend after an exponential backoff capped at 64
    /// cycles. Returns the consecutive-retry count for the current
    /// window head.
    pub fn arq_nack(&mut self, cycle: u64, arena: &mut FlitArena) -> u32 {
        let a = self.arq.as_mut().expect("NACK on a link without ARQ");
        for f in self.flits.drain(..) {
            arena.free(f.flit);
        }
        a.retries += 1;
        let backoff = 1u64 << a.retries.min(6);
        a.resend_at = Some(Link::delivery_cycle(cycle, backoff));
        a.retries
    }

    /// Drops the packet owning the window head (retry budget
    /// exhausted): removes every window entry of that packet and
    /// returns the packet id plus the downstream VC of each removed
    /// entry (the caller refluxes one credit per entry, because the
    /// downstream buffer slots those flits reserved will never fill).
    pub fn arq_drop_front_packet(&mut self) -> Option<(PacketId, Vec<VcId>)> {
        let a = self.arq.as_mut()?;
        let pid = a.window.front()?.flit.packet;
        let mut vcs = Vec::new();
        a.window.retain(|e| {
            if e.flit.packet == pid {
                vcs.push(e.vc);
                false
            } else {
                true
            }
        });
        a.retries = 0;
        if a.window.is_empty() {
            a.resend_at = None;
        }
        Some((pid, vcs))
    }

    /// Executes a due scheduled resend: pushes every window entry back
    /// onto the wire in order (re-allocating each pristine copy into
    /// the arena). Returns the number of flits resent (0 when no resend
    /// was due).
    pub fn arq_service(&mut self, cycle: u64, arena: &mut FlitArena) -> u64 {
        let Some(a) = &mut self.arq else { return 0 };
        if a.resend_at.is_none_or(|at| at > cycle) {
            return 0;
        }
        a.resend_at = None;
        debug_assert!(self.flits.is_empty(), "wire must be purged before a resend");
        let deliver_at = Link::delivery_cycle(cycle, a.latency - 1);
        for e in &a.window {
            self.flits.push_back(FlitInFlight {
                deliver_at,
                vc: e.vc,
                seq: e.seq,
                parity: e.flit.data.slice_parity(),
                flit: arena.alloc(e.flit.clone()),
            });
        }
        a.window.len() as u64
    }

    /// `true` while a resend is scheduled but not yet executed — the
    /// window during which the upstream router pauses new grants
    /// toward this link (surfaced as the `LinkFault` stall cause).
    pub fn arq_resend_pending(&self) -> bool {
        self.arq.as_ref().is_some_and(|a| a.resend_at.is_some())
    }

    /// Unacknowledged flits in the retransmit window.
    pub fn arq_window_len(&self) -> usize {
        self.arq.as_ref().map_or(0, |a| a.window.len())
    }

    /// Permanently kills the link: purges the wire and the retransmit
    /// window (freeing the arena slots of everything on the wire),
    /// returning the `(packet, downstream VC)` of every lost
    /// unacknowledged flit so the caller can account the drops. With
    /// ARQ on, the window is a superset of the wire, so the returned
    /// list covers every in-flight flit exactly once.
    pub fn kill(&mut self, arena: &mut FlitArena) -> Vec<(PacketId, VcId)> {
        let mut lost: Vec<(PacketId, VcId)> = Vec::new();
        match &mut self.arq {
            Some(a) => {
                lost.extend(a.window.drain(..).map(|e| (e.flit.packet, e.vc)));
                a.resend_at = None;
                a.retries = 0;
            }
            None => lost.extend(self.flits.iter().map(|f| (arena.get(f.flit).packet, f.vc))),
        }
        for f in self.flits.drain(..) {
            arena.free(f.flit);
        }
        lost
    }

    /// Sends a credit upstream, to be delivered at `deliver_at`.
    pub fn send_credit(&mut self, vc: VcId, deliver_at: u64) {
        self.credits.push_back(CreditInFlight { deliver_at, vc });
    }

    /// Removes and returns the next flit due at or before `cycle`.
    pub fn take_due_flit(&mut self, cycle: u64) -> Option<FlitInFlight> {
        if self.flits.front().is_some_and(|f| f.deliver_at <= cycle) {
            self.flits.pop_front()
        } else {
            None
        }
    }

    /// Removes and returns the next credit due at or before `cycle`.
    pub fn take_due_credit(&mut self, cycle: u64) -> Option<CreditInFlight> {
        if self.credits.front().is_some_and(|c| c.deliver_at <= cycle) {
            self.credits.pop_front()
        } else {
            None
        }
    }

    /// Number of flits currently in flight. With ARQ on this is the
    /// unacknowledged window (a superset of the wire: a NACK moves
    /// flits off the wire but they remain logically in flight at the
    /// sender's retransmit buffer until acknowledged).
    pub fn flits_in_flight(&self) -> usize {
        match &self.arq {
            Some(a) => a.window.len(),
            None => self.flits.len(),
        }
    }

    /// Number of credit returns currently in flight (the flight
    /// recorder's wire-state dump).
    pub fn credits_in_flight(&self) -> usize {
        self.credits.len()
    }

    /// Returns `true` if no flits or credits are in flight and (with
    /// ARQ) no flit awaits acknowledgement or resend.
    pub fn is_quiescent(&self) -> bool {
        self.flits.is_empty()
            && self.credits.is_empty()
            && self.arq.as_ref().is_none_or(|a| a.window.is_empty() && a.resend_at.is_none())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{FlitData, FlitKind};
    use crate::packet::{PacketClass, PacketId};

    fn mk_flit() -> Flit {
        Flit {
            packet: PacketId(1),
            seq: 0,
            kind: FlitKind::HeadTail,
            src: NodeId(0),
            dst: NodeId(1),
            class: PacketClass::Ack,
            data: FlitData::zeroed(4),
            created_at: 0,
            hops: 0,
        }
    }

    fn mk_link() -> Link {
        Link::new((NodeId(0), PortId(1)), (NodeId(1), PortId(2)), 3.1)
    }

    fn send(l: &mut Link, a: &mut FlitArena, flit: Flit, vc: VcId, deliver_at: u64) {
        let fref = a.alloc(flit);
        l.send_flit(a, fref, vc, deliver_at);
    }

    #[test]
    fn flit_delivery_respects_time() {
        let mut a = FlitArena::new();
        let mut l = mk_link();
        send(&mut l, &mut a, mk_flit(), VcId(0), 5);
        assert!(l.take_due_flit(4).is_none());
        let f = l.take_due_flit(5).expect("flit is due at its delivery cycle");
        assert_eq!(f.vc, VcId(0));
        assert!(a.is_live(f.flit), "delivered ref is live until the receiver consumes it");
        assert!(l.take_due_flit(6).is_none());
    }

    #[test]
    fn credit_delivery_respects_time() {
        let mut l = mk_link();
        l.send_credit(VcId(1), 3);
        assert!(l.take_due_credit(2).is_none());
        assert_eq!(l.take_due_credit(3), Some(CreditInFlight { deliver_at: 3, vc: VcId(1) }));
    }

    #[test]
    fn quiescence() {
        let mut a = FlitArena::new();
        let mut l = mk_link();
        assert!(l.is_quiescent());
        send(&mut l, &mut a, mk_flit(), VcId(0), 1);
        assert!(!l.is_quiescent());
        assert_eq!(l.flits_in_flight(), 1);
        let _ = l.take_due_flit(1);
        assert!(l.is_quiescent());
    }

    #[test]
    fn fifo_order_preserved() {
        let mut a = FlitArena::new();
        let mut l = mk_link();
        let mut f0 = mk_flit();
        f0.seq = 0;
        let mut f1 = mk_flit();
        f1.seq = 1;
        send(&mut l, &mut a, f0, VcId(0), 2);
        send(&mut l, &mut a, f1, VcId(0), 3);
        assert_eq!(a.get(l.take_due_flit(3).expect("first flit is due").flit).seq, 0);
        assert_eq!(a.get(l.take_due_flit(3).expect("second flit is due").flit).seq, 1);
    }

    #[test]
    fn delivery_cycle_is_checked() {
        assert_eq!(Link::delivery_cycle(10, 1), 12);
        assert_eq!(Link::delivery_cycle(0, 0), 1);
    }

    #[test]
    #[should_panic(expected = "cycle counter overflow")]
    fn delivery_cycle_overflow_panics() {
        let _ = Link::delivery_cycle(u64::MAX - 1, 1);
    }

    #[test]
    fn arq_stamps_sequence_numbers_and_parity() {
        let mut ar = FlitArena::new();
        let mut l = mk_link();
        l.enable_arq(1);
        send(&mut l, &mut ar, mk_flit(), VcId(0), 1);
        send(&mut l, &mut ar, mk_flit(), VcId(1), 2);
        let a = l.take_due_flit(1).expect("first ARQ flit is due");
        let b = l.take_due_flit(2).expect("second ARQ flit is due");
        assert_eq!((a.seq, b.seq), (0, 1));
        assert_eq!(a.parity, ar.get(a.flit).data.slice_parity());
        assert_eq!(l.arq_window_len(), 2, "unacked flits stay in the window");
        l.arq_ack(0);
        assert_eq!(l.arq_window_len(), 1);
        l.arq_ack(1);
        assert!(l.is_quiescent());
    }

    #[test]
    fn nack_purges_wire_and_resend_replays_in_order() {
        let mut ar = FlitArena::new();
        let mut l = mk_link();
        l.enable_arq(1);
        let mut f0 = mk_flit();
        f0.seq = 10;
        let mut f1 = mk_flit();
        f1.seq = 11;
        send(&mut l, &mut ar, f0, VcId(0), 5);
        send(&mut l, &mut ar, f1, VcId(0), 6);
        let retries = l.arq_nack(5, &mut ar);
        assert_eq!(retries, 1);
        assert!(l.take_due_flit(100).is_none(), "wire was purged");
        assert_eq!(ar.allocated(), 0, "purged wire refs were freed");
        assert!(l.arq_resend_pending());
        assert!(!l.is_quiescent(), "unacked flits keep the link busy");
        // A new send during backoff must not jump the queue.
        let mut f2 = mk_flit();
        f2.seq = 12;
        send(&mut l, &mut ar, f2, VcId(0), 6);
        assert!(l.take_due_flit(100).is_none(), "send during backoff rides the resend");
        assert_eq!(ar.allocated(), 0, "backoff send is swallowed into the window");
        // Backoff = 1 << 1 = 2 cycles: due at cycle 5 + 1 + 2 = 8.
        assert_eq!(l.arq_service(7, &mut ar), 0, "not due yet");
        assert_eq!(l.arq_service(8, &mut ar), 3, "whole window resent");
        let seqs: Vec<u64> = std::iter::from_fn(|| l.take_due_flit(100))
            .map(|f| ar.get(f.flit).seq as u64)
            .collect();
        assert_eq!(seqs, vec![10, 11, 12], "resend preserves order");
    }

    #[test]
    fn drop_front_packet_strips_the_window() {
        let mut ar = FlitArena::new();
        let mut l = mk_link();
        l.enable_arq(1);
        let mut f0 = mk_flit();
        f0.packet = PacketId(1);
        let mut other = mk_flit();
        other.packet = PacketId(2);
        let mut f1 = mk_flit();
        f1.packet = PacketId(1);
        send(&mut l, &mut ar, f0, VcId(0), 1);
        send(&mut l, &mut ar, other, VcId(1), 2);
        send(&mut l, &mut ar, f1, VcId(0), 3);
        l.arq_nack(3, &mut ar);
        let (pid, vcs) = l.arq_drop_front_packet().expect("the NACKed window holds a packet");
        assert_eq!(pid, PacketId(1));
        assert_eq!(vcs, vec![VcId(0), VcId(0)], "both entries of the packet stripped");
        assert_eq!(l.arq_window_len(), 1, "the other packet survives");
        assert!(l.arq_resend_pending(), "survivors still get resent");
    }

    #[test]
    fn kill_returns_every_unacked_flit_once() {
        let mut ar = FlitArena::new();
        let mut l = mk_link();
        l.enable_arq(1);
        send(&mut l, &mut ar, mk_flit(), VcId(0), 1);
        send(&mut l, &mut ar, mk_flit(), VcId(1), 2);
        let _ = l.take_due_flit(1); // one delivered but not acked
        let lost = l.kill(&mut ar);
        assert_eq!(lost.len(), 2, "window covers wire and delivered-unacked alike");
        assert!(l.is_quiescent());
    }
}
