//! The network: routers wired by a topology, plus the network interfaces.
//!
//! [`Network`] owns the routers, the links, and per-node network
//! interfaces (NICs) with unbounded source queues. Packets enter through
//! [`Network::enqueue_packet`]; each cycle the NIC moves flits into the
//! local input buffers as space permits, routers advance one cycle, and
//! ejected flits accumulate for the simulator to collect.

use std::collections::VecDeque;

use crate::config::NetworkConfig;
use crate::flit::Flit;
use crate::ids::{NodeId, PortId, VcId};
use crate::link::Link;
use crate::packet::Packet;
use crate::router::{EjectedFlit, Router};
use crate::stats::{ActivityCounters, RouterActivity};
use crate::telemetry::{
    EventSink, MetricsCollector, MetricsWindow, NullSink, StallCounters, TelemetryConfig,
    TraceEvent, TraceEventKind, TraceSink,
};
use crate::topology::Topology;

/// Per-node network interface: one unbounded source queue per VC.
#[derive(Debug)]
struct Nic {
    queues: Vec<VecDeque<Flit>>,
}

impl Nic {
    fn new(vcs: usize) -> Self {
        Nic { queues: (0..vcs).map(|_| VecDeque::new()).collect() }
    }

    fn queued_flits(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }
}

/// A complete network instance.
pub struct Network {
    topo: Box<dyn Topology>,
    cfg: NetworkConfig,
    routers: Vec<Router>,
    links: Vec<Link>,
    nics: Vec<Nic>,
    ejected: Vec<EjectedFlit>,
    counters: ActivityCounters,
    activity: Vec<RouterActivity>,
    /// Telemetry event receiver ([`NullSink`] unless tracing is enabled;
    /// purely observational either way).
    sink: Box<dyn EventSink>,
    /// Windowed metrics collector, present when a metrics window is
    /// configured.
    metrics: Option<MetricsCollector>,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("topology", &self.topo.name())
            .field("routers", &self.routers.len())
            .field("links", &self.links.len())
            .finish_non_exhaustive()
    }
}

impl Network {
    /// Builds the network for `topo` under `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid (see [`NetworkConfig::validate`]).
    pub fn new(topo: Box<dyn Topology>, cfg: NetworkConfig) -> Self {
        cfg.validate().expect("invalid network configuration");
        let n = topo.num_nodes();
        let radix = topo.radix();
        let mut routers: Vec<Router> =
            (0..n).map(|i| Router::new(NodeId(i), radix, &cfg)).collect();

        // Wire every existing (node, out-port) pair with a unidirectional
        // link to the neighbour's opposite input port.
        let mut links = Vec::new();
        for node in 0..n {
            for p in 1..radix {
                let out_port = PortId(p);
                if let Some(dst) = topo.neighbor(NodeId(node), out_port) {
                    let in_port = topo.opposite_port(out_port);
                    let length = topo.link_length_mm(NodeId(node), out_port);
                    let li = links.len();
                    links.push(Link::new((NodeId(node), out_port), (dst, in_port), length));
                    routers[node].set_out_link(out_port, li);
                    routers[dst.index()].set_in_link(in_port, li);
                }
            }
        }

        let vcs = cfg.router.vcs_per_port;
        Network {
            topo,
            cfg,
            routers,
            links,
            nics: (0..n).map(|_| Nic::new(vcs)).collect(),
            ejected: Vec::new(),
            counters: ActivityCounters::new(),
            activity: vec![RouterActivity::default(); n],
            sink: Box::new(NullSink),
            metrics: None,
        }
    }

    /// Applies a telemetry configuration: installs a [`TraceSink`] when a
    /// trace capacity is set and a [`MetricsCollector`] when a metrics
    /// window is set. Call before stepping; telemetry never affects
    /// simulation behaviour.
    pub fn set_telemetry(&mut self, cfg: TelemetryConfig) {
        if cfg.trace_capacity > 0 {
            self.sink = Box::new(TraceSink::new(cfg.trace_capacity));
        }
        if cfg.metrics_window > 0 {
            let coords: Vec<(usize, usize)> = (0..self.routers.len())
                .map(|i| {
                    let c = self.topo.coords(NodeId(i));
                    (c.x, c.y)
                })
                .collect();
            self.metrics = Some(MetricsCollector::new(cfg.metrics_window, coords));
        }
    }

    /// Installs a custom event sink (replaces the current one).
    pub fn install_sink(&mut self, sink: Box<dyn EventSink>) {
        self.sink = sink;
    }

    /// The installed sink as a [`TraceSink`], when tracing is enabled.
    pub fn trace_sink(&self) -> Option<&TraceSink> {
        self.sink.as_trace()
    }

    /// Metrics windows closed so far (empty when windows are disabled).
    pub fn metrics_windows(&self) -> &[MetricsWindow] {
        self.metrics.as_ref().map_or(&[], |m| m.windows())
    }

    /// Cumulative stall-cause counters summed over every router.
    pub fn stall_totals(&self) -> StallCounters {
        let mut t = StallCounters::new();
        for r in &self.routers {
            t.merge(r.stall_counters());
        }
        t
    }

    /// Per-router cumulative stall-cause counters.
    pub fn router_stalls(&self) -> Vec<StallCounters> {
        self.routers.iter().map(|r| *r.stall_counters()).collect()
    }

    /// The topology driving this network.
    pub fn topology(&self) -> &dyn Topology {
        &*self.topo
    }

    /// The network configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.cfg
    }

    /// Cumulative activity counters since construction.
    pub fn counters(&self) -> &ActivityCounters {
        &self.counters
    }

    /// Cumulative per-router activity since construction (spatial power
    /// distribution for the thermal analysis).
    pub fn router_activity(&self) -> &[RouterActivity] {
        &self.activity
    }

    /// Splits `packet` into flits and appends them to the source queue at
    /// its source node.
    ///
    /// # Panics
    ///
    /// Panics if the packet's source or destination node is outside the
    /// topology.
    pub fn enqueue_packet(&mut self, packet: Packet) {
        assert!(packet.src.index() < self.routers.len(), "unknown source {}", packet.src);
        assert!(packet.dst.index() < self.routers.len(), "unknown destination {}", packet.dst);
        let vc = packet.class.vc_index().min(self.cfg.router.vcs_per_port - 1);
        let nic = &mut self.nics[packet.src.index()];
        for flit in packet.into_flits() {
            nic.queues[vc].push_back(flit);
        }
    }

    /// Advances the whole network by one cycle.
    pub fn step(&mut self, cycle: u64) {
        self.counters.cycles += 1;
        let traced = self.sink.enabled();

        // 1. Deliver due flits and credits from the links.
        for li in 0..self.links.len() {
            while let Some(f) = self.links[li].take_due_flit(cycle) {
                let (dst, port) = self.links[li].to;
                if traced {
                    self.sink.record(TraceEvent {
                        cycle,
                        router: dst,
                        port,
                        vc: f.vc,
                        kind: TraceEventKind::BufferWrite,
                        packet: f.flit.packet.0,
                        detail: 0,
                    });
                }
                self.routers[dst.index()].receive_flit(
                    port,
                    f.vc,
                    f.flit,
                    cycle,
                    &mut self.counters,
                    &mut self.activity[dst.index()],
                );
            }
            while let Some(c) = self.links[li].take_due_credit(cycle) {
                let (src, port) = self.links[li].from;
                if traced {
                    self.sink.record(TraceEvent {
                        cycle,
                        router: src,
                        port,
                        vc: c.vc,
                        kind: TraceEventKind::CreditReturn,
                        packet: 0,
                        detail: 0,
                    });
                }
                self.routers[src.index()].receive_credit(port, c.vc);
            }
        }

        // 2. Router pipelines.
        for (i, r) in self.routers.iter_mut().enumerate() {
            r.step(
                cycle,
                &*self.topo,
                &mut self.links,
                &mut self.counters,
                &mut self.activity[i],
                &mut self.ejected,
                self.sink.as_mut(),
            );
        }

        // 3. Occupancy accounting: buffered flits this cycle (globally
        // for the energy model, per router for the metrics windows).
        let mut occupancy_total = 0u64;
        for (i, r) in self.routers.iter().enumerate() {
            let buffered = r.buffered_flits() as u64;
            occupancy_total += buffered;
            if let Some(m) = &mut self.metrics {
                m.record_occupancy(i, buffered);
            }
        }
        self.counters.buffer_occupancy_flit_cycles += occupancy_total;

        // 4. NIC injection: move queued flits into local input buffers.
        // This runs after the router phase so that a slot freed by ST in
        // this cycle is immediately refillable — the NIC plays the role of
        // an upstream pipeline latch, keeping wormhole streaming gapless.
        for node in 0..self.nics.len() {
            for vc in 0..self.cfg.router.vcs_per_port {
                while !self.nics[node].queues[vc].is_empty()
                    && self.routers[node].local_free_slots(VcId(vc)) > 0
                {
                    let flit = self.nics[node].queues[vc].pop_front().expect("non-empty queue");
                    self.counters.flits_injected += 1;
                    if traced {
                        self.sink.record(TraceEvent {
                            cycle,
                            router: NodeId(node),
                            port: PortId::LOCAL,
                            vc: VcId(vc),
                            kind: TraceEventKind::BufferWrite,
                            packet: flit.packet.0,
                            detail: 0,
                        });
                    }
                    self.routers[node].receive_flit(
                        PortId::LOCAL,
                        VcId(vc),
                        flit,
                        cycle,
                        &mut self.counters,
                        &mut self.activity[node],
                    );
                }
            }
        }

        // 5. Close a metrics window on its boundary cycle.
        if let Some(m) = &mut self.metrics {
            let routers = &self.routers;
            m.end_cycle(cycle, |i| routers[i].telemetry());
        }
    }

    /// Removes and returns the flits ejected so far.
    pub fn take_ejected(&mut self) -> Vec<EjectedFlit> {
        std::mem::take(&mut self.ejected)
    }

    /// Flits inside the network fabric (router buffers + links), excluding
    /// source queues.
    pub fn flits_in_fabric(&self) -> usize {
        self.routers.iter().map(Router::buffered_flits).sum::<usize>()
            + self.links.iter().map(Link::flits_in_flight).sum::<usize>()
    }

    /// Flits waiting in source queues.
    pub fn flits_in_source_queues(&self) -> usize {
        self.nics.iter().map(Nic::queued_flits).sum()
    }

    /// Returns `true` when no flit remains anywhere (fabric and sources).
    pub fn is_drained(&self) -> bool {
        self.flits_in_fabric() == 0
            && self.flits_in_source_queues() == 0
            && self.links.iter().all(Link::is_quiescent)
            && self.routers.iter().all(Router::is_quiescent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::FlitData;
    use crate::packet::{PacketClass, PacketId};
    use crate::topology::Mesh2D;

    fn mk_net() -> Network {
        Network::new(Box::new(Mesh2D::new(4, 4)), NetworkConfig::default())
    }

    fn mk_packet(id: u64, src: usize, dst: usize, len: usize) -> Packet {
        Packet {
            id: PacketId(id),
            src: NodeId(src),
            dst: NodeId(dst),
            class: if len > 1 { PacketClass::DataResponse } else { PacketClass::ReadRequest },
            payload: (0..len).map(|_| FlitData::dense(4)).collect(),
            created_at: 0,
        }
    }

    fn run_until_drained(net: &mut Network, max_cycles: u64) -> Vec<EjectedFlit> {
        let mut out = Vec::new();
        for c in 0..max_cycles {
            net.step(c);
            out.extend(net.take_ejected());
            if net.is_drained() {
                return out;
            }
        }
        panic!("network did not drain within {max_cycles} cycles");
    }

    #[test]
    fn link_count_matches_mesh() {
        let net = mk_net();
        // 4x4 mesh: 2 * (3*4 + 4*3) = 48 unidirectional links.
        assert_eq!(net.links.len(), 48);
    }

    #[test]
    fn single_packet_delivery() {
        let mut net = mk_net();
        net.enqueue_packet(mk_packet(1, 0, 15, 5));
        let ejected = run_until_drained(&mut net, 200);
        assert_eq!(ejected.len(), 5);
        assert!(ejected.iter().all(|e| e.node == NodeId(15)));
        // 4x4 corner to corner: 6 hops.
        assert!(ejected.iter().all(|e| e.flit.hops == 6));
        // Flits of one packet eject in order, essentially back to back.
        // A single bubble before the tail is legitimate: with 4-flit
        // buffers, a 5-flit packet and a 3-cycle credit round trip, the
        // tail waits once for the first returned credit.
        let cycles: Vec<_> = ejected.iter().map(|e| e.cycle).collect();
        for w in cycles.windows(2) {
            assert!(w[1] > w[0], "flits eject in order");
            assert!(w[1] - w[0] <= 2, "at most one bubble between flits: {cycles:?}");
        }
        assert!(cycles[4] - cycles[0] <= 5, "5 flits must eject within 6 cycles: {cycles:?}");
    }

    #[test]
    fn zero_load_latency_matches_pipeline_model() {
        // Enqueue at cycle 0 → NIC writes the buffer at the end of step 0
        // → RC at cycle 1, then 5 cycles per hop with a separate LT stage
        // and 4 at the final router before ejection:
        //   eject_cycle = hops*5 + 4.
        let mut net = mk_net();
        net.enqueue_packet(mk_packet(1, 0, 3, 1)); // 3 hops east
        let ejected = run_until_drained(&mut net, 100);
        assert_eq!(ejected.len(), 1);
        let hops = 3u64;
        let expected = hops * 5 + 4;
        assert_eq!(ejected[0].cycle, expected, "got {}", ejected[0].cycle);
    }

    #[test]
    fn combined_pipeline_saves_one_cycle_per_hop() {
        let cfg_sep = NetworkConfig::default();
        let mut cfg_comb = NetworkConfig::default();
        cfg_comb.router.pipeline = crate::config::PipelineConfig::combined_st_lt();

        let mut latencies = Vec::new();
        for cfg in [cfg_sep, cfg_comb] {
            let mut net = Network::new(Box::new(Mesh2D::new(4, 4)), cfg);
            net.enqueue_packet(mk_packet(1, 0, 3, 1));
            let ejected = run_until_drained(&mut net, 100);
            latencies.push(ejected[0].cycle);
        }
        assert_eq!(latencies[0] - latencies[1], 3, "one cycle saved per hop over 3 hops");
    }

    #[test]
    fn flit_conservation() {
        let mut net = mk_net();
        for i in 0..20 {
            net.enqueue_packet(mk_packet(i, (i as usize) % 16, (3 * i as usize + 1) % 16, 3));
        }
        let mut ejected = 0usize;
        for c in 0..500 {
            net.step(c);
            ejected += net.take_ejected().len();
            let in_queues = net.flits_in_source_queues();
            let in_fabric = net.flits_in_fabric();
            assert_eq!(
                in_queues + in_fabric + ejected,
                20 * 3,
                "flits must be conserved at cycle {c}"
            );
            if net.is_drained() {
                break;
            }
        }
        assert_eq!(ejected, 60);
    }

    #[test]
    fn self_addressed_packets_eject_locally() {
        let mut net = mk_net();
        net.enqueue_packet(mk_packet(1, 5, 5, 2));
        let ejected = run_until_drained(&mut net, 100);
        assert_eq!(ejected.len(), 2);
        assert!(ejected.iter().all(|e| e.flit.hops == 0));
    }

    #[test]
    fn heavy_random_exchange_drains() {
        let mut net = mk_net();
        let mut id = 0;
        for src in 0..16 {
            for dst in 0..16 {
                if src != dst {
                    id += 1;
                    net.enqueue_packet(mk_packet(id, src, dst, 2));
                }
            }
        }
        let ejected = run_until_drained(&mut net, 20_000);
        assert_eq!(ejected.len(), 16 * 15 * 2);
    }
}

#[cfg(test)]
mod pipeline_depth_network_tests {
    use super::*;
    use crate::config::{NetworkConfig, PipelineConfig, PipelineDepth};
    use crate::flit::FlitData;
    use crate::packet::{PacketClass, PacketId};
    use crate::topology::Mesh2D;

    fn zero_load_eject(depth: PipelineDepth, combined: bool) -> u64 {
        let base =
            if combined { PipelineConfig::combined_st_lt() } else { PipelineConfig::separate_lt() };
        let mut cfg = NetworkConfig::default();
        cfg.router.pipeline = base.with_depth(depth);
        let mut net = Network::new(Box::new(Mesh2D::new(4, 4)), cfg);
        net.enqueue_packet(Packet {
            id: PacketId(1),
            src: NodeId(0),
            dst: NodeId(3), // 3 hops east
            class: PacketClass::Ack,
            payload: vec![FlitData::dense(4)],
            created_at: 0,
        });
        for c in 0..200 {
            net.step(c);
            let ejected = net.take_ejected();
            if let Some(e) = ejected.first() {
                return e.cycle;
            }
        }
        panic!("packet never delivered");
    }

    /// End-to-end zero-load latency = hops × cycles_per_hop + final
    /// router pipeline, for all six pipeline organisations.
    #[test]
    fn zero_load_latency_all_pipelines() {
        for depth in [
            PipelineDepth::FourStage,
            PipelineDepth::ThreeStageSpeculative,
            PipelineDepth::TwoStageLookahead,
        ] {
            for combined in [false, true] {
                let cfg = if combined {
                    PipelineConfig::combined_st_lt().with_depth(depth)
                } else {
                    PipelineConfig::separate_lt().with_depth(depth)
                };
                let hops = 3;
                let expected = hops * cfg.cycles_per_hop() + depth.stages() - 1 + 1;
                // hops full hops + the final router's stages; the +1 is
                // the NIC injection cycle (flit visible the cycle after
                // enqueue).
                let got = zero_load_eject(depth, combined);
                assert_eq!(got, expected, "{depth:?} combined={combined}");
            }
        }
    }

    /// Shallower pipelines are strictly faster, per-hop, end to end.
    #[test]
    fn shallower_pipelines_strictly_faster() {
        let four = zero_load_eject(PipelineDepth::FourStage, false);
        let three = zero_load_eject(PipelineDepth::ThreeStageSpeculative, false);
        let two = zero_load_eject(PipelineDepth::TwoStageLookahead, false);
        assert!(four > three && three > two, "{four} {three} {two}");
        // One cycle per hop+1 saved per removed stage over 3 hops + final.
        assert_eq!(four - three, 4);
        assert_eq!(three - two, 4);
    }
}
