//! The network: routers wired by a topology, plus the network interfaces.
//!
//! [`Network`] owns the routers, the links, and per-node network
//! interfaces (NICs) with unbounded source queues. Packets enter through
//! [`Network::enqueue_packet`]; each cycle the NIC moves flits into the
//! local input buffers as space permits, routers advance one cycle, and
//! ejected flits accumulate for the simulator to collect.

use std::collections::{HashSet, VecDeque};

use mira_obs::phase::{scope as obs_scope, Phase as ObsPhase};

use crate::arena::{FlitArena, FlitRef};
use crate::config::NetworkConfig;
use crate::error::NocError;
use crate::fault::{FaultConfig, FaultCounters, FaultPlan, Verdict};
use crate::ids::{NodeId, PortId, VcId};
use crate::journey::JourneyRecorder;
use crate::link::Link;
use crate::packet::{Packet, PacketId};
use crate::router::{EjectedFlit, Router, StepScratch};
use crate::shard::{
    DeferredFx, DirectFx, Effect, NicEntry, P1Credit, P1Flit, ShardRuntime, SyncConstPtr, SyncPtr,
    MAX_SHARDS,
};
use crate::stats::{ActivityCounters, RouterActivity};
use crate::telemetry::{
    EventSink, MetricsCollector, MetricsWindow, NullSink, StallCounters, TelemetryConfig,
    TraceEvent, TraceEventKind, TraceSink,
};
use crate::topology::Topology;

/// Per-node network interface: one unbounded source queue per VC. The
/// queues hold [`FlitRef`]s into the network's arena, so moving a flit
/// from the queue into a router buffer moves a 4-byte index.
#[derive(Debug)]
struct Nic {
    queues: Vec<VecDeque<FlitRef>>,
}

impl Nic {
    fn new(vcs: usize) -> Self {
        Nic { queues: (0..vcs).map(|_| VecDeque::new()).collect() }
    }

    fn queued_flits(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }
}

/// Cap on [`NocError`] records retained by the fault machinery (the
/// first few diagnose a run; unbounded growth would leak under long
/// fault storms).
const MAX_FAULT_ERRORS: usize = 64;

/// Live fault-injection state: the compiled plan plus everything the
/// network mutates while executing it. Boxed and absent unless
/// [`Network::set_faults`] engaged it — the default path only ever
/// checks the `Option`.
#[derive(Debug)]
struct FaultRuntime {
    plan: FaultPlan,
    /// Per-link dead flags (permanent kills that already fired).
    dead: Vec<bool>,
    /// Index of the next not-yet-fired entry in the plan's sorted kills.
    next_kill: usize,
    /// Packets severed by a drop: their remaining flits are discarded
    /// wherever they surface (wire, buffers, source queues).
    severed: HashSet<PacketId>,
    /// Drop notifications not yet collected by the simulator.
    dropped: Vec<PacketId>,
    counters: FaultCounters,
    /// Retry-exhaustion errors, capped at [`MAX_FAULT_ERRORS`].
    errors: Vec<NocError>,
}

/// Host-side high-water marks of the network's core data structures
/// (arena and router buffer slabs). Maintained unconditionally — a
/// compare and a store on paths that already mutate the structures —
/// and read only by the observability layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabricWatermarks {
    /// Peak live flits in the [`FlitArena`].
    pub arena_live_peak: usize,
    /// Arena slot-table size (live + free; peak footprint in slots).
    pub arena_slots: usize,
    /// Peak total buffer occupancy of any single router, flits.
    pub router_buffer_peak: usize,
}

/// A complete network instance.
pub struct Network {
    topo: Box<dyn Topology>,
    cfg: NetworkConfig,
    routers: Vec<Router>,
    links: Vec<Link>,
    nics: Vec<Nic>,
    /// The single flit store: every flit anywhere in the network (source
    /// queues, router buffers, link wires) lives in one slot here and
    /// moves as a [`FlitRef`].
    arena: FlitArena,
    /// Reusable per-step scratch space shared by every router (router
    /// steps are sequential, so one set suffices for the whole network).
    scratch: StepScratch,
    ejected: Vec<EjectedFlit>,
    counters: ActivityCounters,
    activity: Vec<RouterActivity>,
    /// Telemetry event receiver ([`NullSink`] unless tracing is enabled;
    /// purely observational either way).
    sink: Box<dyn EventSink>,
    /// Windowed metrics collector, present when a metrics window is
    /// configured.
    metrics: Option<MetricsCollector>,
    /// Packet-journey recorder, present when journey sampling is
    /// configured; purely observational.
    journeys: Option<Box<JourneyRecorder>>,
    /// Fault-injection runtime, absent (and zero-cost) by default.
    faults: Option<Box<FaultRuntime>>,
    /// Sharded-stepping runtime (worker pool + partition + per-shard
    /// effect logs), absent unless [`Network::set_shards`] engaged it.
    /// With it absent — or with fault injection engaged — every step
    /// takes the sequential path.
    shard_rt: Option<Box<ShardRuntime>>,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("topology", &self.topo.name())
            .field("routers", &self.routers.len())
            .field("links", &self.links.len())
            .finish_non_exhaustive()
    }
}

impl Network {
    /// Builds the network for `topo` under `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid (see [`NetworkConfig::validate`]).
    pub fn new(topo: Box<dyn Topology>, cfg: NetworkConfig) -> Self {
        cfg.validate().expect("invalid network configuration");
        let n = topo.num_nodes();
        let radix = topo.radix();
        let mut routers: Vec<Router> =
            (0..n).map(|i| Router::new(NodeId(i), radix, &cfg)).collect();

        // Wire every existing (node, out-port) pair with a unidirectional
        // link to the neighbour's opposite input port.
        let mut links = Vec::new();
        for node in 0..n {
            for p in 1..radix {
                let out_port = PortId(p);
                if let Some(dst) = topo.neighbor(NodeId(node), out_port) {
                    let in_port = topo.opposite_port(out_port);
                    let length = topo.link_length_mm(NodeId(node), out_port);
                    let li = links.len();
                    links.push(Link::new((NodeId(node), out_port), (dst, in_port), length));
                    routers[node].set_out_link(out_port, li);
                    routers[dst.index()].set_in_link(in_port, li);
                }
            }
        }

        let vcs = cfg.router.vcs_per_port;
        // Pre-size the arena for the fabric's worst case (every buffer
        // slot full) plus headroom for wires and source queues; it still
        // grows on demand past this.
        let fabric_slots = n * radix * vcs * cfg.router.buffer_depth;
        let mut net = Network {
            scratch: StepScratch::new(radix, vcs),
            arena: FlitArena::with_capacity(2 * fabric_slots),
            topo,
            cfg,
            routers,
            links,
            nics: (0..n).map(|_| Nic::new(vcs)).collect(),
            ejected: Vec::new(),
            counters: ActivityCounters::new(),
            activity: vec![RouterActivity::default(); n],
            sink: Box::new(NullSink),
            metrics: None,
            journeys: None,
            faults: None,
            shard_rt: None,
        };
        let env_shards = crate::config::shards_from_env();
        if env_shards > 1 {
            net.set_shards(env_shards);
        }
        net
    }

    /// Engages sharded stepping with `shards` workers (DESIGN.md §18):
    /// the routers are partitioned into contiguous spatial tiles, each
    /// cycle's phases run tile-parallel on a persistent pool, and every
    /// globally ordered effect replays in canonical order — the run
    /// stays bit-identical at any shard count. `shards <= 1` returns to
    /// sequential stepping; the count is clamped to the router count
    /// and an internal cap. Fault-injection runs always step
    /// sequentially regardless of this setting.
    pub fn set_shards(&mut self, shards: usize) {
        let n = self.routers.len();
        let shards = shards.clamp(1, n.min(MAX_SHARDS));
        if shards <= 1 {
            self.shard_rt = None;
            return;
        }
        if self.shard_rt.as_ref().is_some_and(|rt| rt.shards == shards) {
            return;
        }
        self.shard_rt = Some(Box::new(ShardRuntime::new(
            shards,
            n,
            &self.links,
            self.topo.radix(),
            self.cfg.router.vcs_per_port,
            self.cfg.router.buffer_depth,
        )));
    }

    /// The engaged shard count (1 when stepping sequentially).
    pub fn shards(&self) -> usize {
        self.shard_rt.as_ref().map_or(1, |rt| rt.shards)
    }

    /// Engages fault injection per `cfg`: compiles the fault plan
    /// against this network's link table, arms link-level
    /// retransmission on every link, and (when `cfg.reroute`) switches
    /// the routers to fault-aware route computation.
    ///
    /// A disabled config ([`FaultConfig::enabled`] is `false`) is a
    /// no-op: the network stays on the fault-free fast path, which is
    /// bit-identical to a build without the fault subsystem.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::LinkFault`] when an explicit kill addresses
    /// a `(node, port)` with no outgoing link.
    pub fn set_faults(&mut self, cfg: FaultConfig) -> Result<(), NocError> {
        if !cfg.enabled() {
            return Ok(());
        }
        let endpoints: Vec<(usize, usize)> =
            self.links.iter().map(|l| (l.from.0.index(), l.from.1.index())).collect();
        let words = (self.cfg.flit_bits / 32).max(1);
        let plan = FaultPlan::compile(cfg, &endpoints, words)?;
        let latency = 1 + self.cfg.router.pipeline.link_extra_cycles();
        for l in &mut self.links {
            l.enable_arq(latency);
        }
        if cfg.reroute {
            for r in &mut self.routers {
                r.set_fault_routing(true);
            }
        }
        self.faults = Some(Box::new(FaultRuntime {
            dead: vec![false; self.links.len()],
            next_kill: 0,
            severed: HashSet::new(),
            dropped: Vec::new(),
            counters: FaultCounters::new(),
            errors: Vec::new(),
            plan,
        }));
        Ok(())
    }

    /// `true` when fault injection is engaged.
    pub fn faults_enabled(&self) -> bool {
        self.faults.is_some()
    }

    /// Drains the ids of packets dropped (severed) by the fault
    /// machinery since the last call.
    pub fn take_dropped(&mut self) -> Vec<PacketId> {
        self.faults.as_mut().map_or_else(Vec::new, |f| std::mem::take(&mut f.dropped))
    }

    /// Cumulative fault and recovery counters (all zero when fault
    /// injection is off), with reroutes summed over the routers.
    pub fn fault_counters(&self) -> FaultCounters {
        let mut c = self.faults.as_ref().map_or_else(FaultCounters::new, |f| f.counters);
        c.reroutes = self.routers.iter().map(Router::reroutes).sum();
        c
    }

    /// Errors recorded by the fault machinery (retry exhaustion),
    /// capped at the first [`MAX_FAULT_ERRORS`].
    pub fn fault_errors(&self) -> &[NocError] {
        self.faults.as_ref().map_or(&[], |f| &f.errors)
    }

    /// Applies a telemetry configuration: installs a [`TraceSink`] when a
    /// trace capacity is set and a [`MetricsCollector`] when a metrics
    /// window is set. Call before stepping; telemetry never affects
    /// simulation behaviour.
    pub fn set_telemetry(&mut self, cfg: TelemetryConfig) {
        if cfg.trace_capacity > 0 {
            self.sink = Box::new(TraceSink::new(cfg.trace_capacity));
        }
        if cfg.metrics_window > 0 {
            let coords: Vec<(usize, usize)> = (0..self.routers.len())
                .map(|i| {
                    let c = self.topo.coords(NodeId(i));
                    (c.x, c.y)
                })
                .collect();
            self.metrics = Some(MetricsCollector::new(cfg.metrics_window, coords));
        }
        if cfg.journey_sample_ppm > 0 {
            // Nominal fault-free link latency: send at ST, deliver
            // `1 + LT cycles` later (the same latency ARQ replays at).
            let nominal = Link::nominal_latency(self.cfg.router.pipeline.link_extra_cycles());
            self.journeys = Some(Box::new(JourneyRecorder::new(
                cfg.journey_sample_ppm,
                cfg.journey_seed,
                nominal,
            )));
        }
    }

    /// Installs a custom event sink (replaces the current one).
    pub fn install_sink(&mut self, sink: Box<dyn EventSink>) {
        self.sink = sink;
    }

    /// The installed sink as a [`TraceSink`], when tracing is enabled.
    pub fn trace_sink(&self) -> Option<&TraceSink> {
        self.sink.as_trace()
    }

    /// Metrics windows closed so far (empty when windows are disabled).
    pub fn metrics_windows(&self) -> &[MetricsWindow] {
        self.metrics.as_ref().map_or(&[], |m| m.windows())
    }

    /// The journey recorder, when journey sampling is enabled.
    pub fn journeys(&self) -> Option<&JourneyRecorder> {
        self.journeys.as_deref()
    }

    /// Mutable access to the journey recorder (the simulator feeds it
    /// packet creations and ejections).
    pub fn journeys_mut(&mut self) -> Option<&mut JourneyRecorder> {
        self.journeys.as_deref_mut()
    }

    /// Cumulative stall-cause counters summed over every router.
    pub fn stall_totals(&self) -> StallCounters {
        let mut t = StallCounters::new();
        for r in &self.routers {
            t.merge(r.stall_counters());
        }
        t
    }

    /// Per-router cumulative stall-cause counters.
    pub fn router_stalls(&self) -> Vec<StallCounters> {
        self.routers.iter().map(|r| *r.stall_counters()).collect()
    }

    /// The topology driving this network.
    pub fn topology(&self) -> &dyn Topology {
        &*self.topo
    }

    /// The network configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.cfg
    }

    /// Cumulative activity counters since construction.
    pub fn counters(&self) -> &ActivityCounters {
        &self.counters
    }

    /// Cumulative per-router activity since construction (spatial power
    /// distribution for the thermal analysis).
    pub fn router_activity(&self) -> &[RouterActivity] {
        &self.activity
    }

    /// Splits `packet` into flits and appends them to the source queue at
    /// its source node.
    ///
    /// # Panics
    ///
    /// Panics if the packet's source or destination node is outside the
    /// topology.
    pub fn enqueue_packet(&mut self, packet: Packet) {
        assert!(packet.src.index() < self.routers.len(), "unknown source {}", packet.src);
        assert!(packet.dst.index() < self.routers.len(), "unknown destination {}", packet.dst);
        let vc = packet.class.vc_index().min(self.cfg.router.vcs_per_port - 1);
        let src = packet.src.index();
        for flit in packet.into_flit_iter() {
            let fref = self.arena.alloc(flit);
            self.nics[src].queues[vc].push_back(fref);
        }
    }

    /// Advances the whole network by one cycle.
    ///
    /// Each numbered section sits under a `mira-obs` phase scope; the
    /// five sections tile the whole body under
    /// [`Phase::StepTotal`](mira_obs::phase::Phase), which is what makes
    /// the profiler's ≥95 % coverage claim checkable. With observability
    /// off (the default) every scope is one relaxed atomic load.
    pub fn step(&mut self, cycle: u64) {
        // Fault injection mutates links and the arena from inside the
        // delivery loop in ways the shard partition does not isolate, so
        // fault runs always take the (bit-identical) sequential path.
        if self.shard_rt.is_some() && self.faults.is_none() {
            self.step_sharded(cycle);
        } else {
            self.step_sequential(cycle);
        }
    }

    /// The sequential cycle: every phase on the calling thread, effects
    /// applied inline through [`DirectFx`].
    fn step_sequential(&mut self, cycle: u64) {
        let _step = obs_scope(ObsPhase::StepTotal);
        self.counters.cycles += 1;
        let traced = self.sink.enabled();

        // 1. Deliver due flits and credits from the links — through the
        // fault layer when fault injection is engaged.
        let link_scope = obs_scope(ObsPhase::LinkDelivery);
        if self.faults.is_some() {
            let mut fr = self.faults.take().expect("checked above");
            self.fault_link_phase(cycle, &mut fr, traced);
            self.faults = Some(fr);
        } else {
            for li in 0..self.links.len() {
                while let Some(f) = self.links[li].take_due_flit(cycle) {
                    let (dst, port) = self.links[li].to;
                    let (packet, is_head) = {
                        let flit = self.arena.get(f.flit);
                        (flit.packet, flit.is_head())
                    };
                    if traced {
                        self.sink.record(TraceEvent {
                            cycle,
                            router: dst,
                            port,
                            vc: f.vc,
                            kind: TraceEventKind::BufferWrite,
                            packet: packet.0,
                            detail: 0,
                        });
                    }
                    if is_head {
                        if let Some(j) = &mut self.journeys {
                            j.on_link_arrival(packet, dst, port, cycle);
                        }
                    }
                    let fraction = self.routers[dst.index()].receive_flit(
                        port,
                        f.vc,
                        f.flit,
                        &self.arena,
                        cycle,
                    );
                    self.counters.record_buffer_write(fraction);
                    self.activity[dst.index()].buffer_events += fraction;
                }
                while let Some(c) = self.links[li].take_due_credit(cycle) {
                    let (src, port) = self.links[li].from;
                    if traced {
                        self.sink.record(TraceEvent {
                            cycle,
                            router: src,
                            port,
                            vc: c.vc,
                            kind: TraceEventKind::CreditReturn,
                            packet: 0,
                            detail: 0,
                        });
                    }
                    self.routers[src.index()].receive_credit(port, c.vc);
                }
            }
        }
        drop(link_scope);

        // 2. Router pipelines. Quiescent routers (no buffered flit, no
        // pending switch grant) are provably no-ops — no counter, stall,
        // trace, or arbiter state can change — so the active-set skip
        // costs nothing in fidelity and most of the fabric at low load.
        let pipeline_scope = obs_scope(ObsPhase::RouterPipeline);
        {
            let Network {
                topo,
                routers,
                links,
                arena,
                scratch,
                counters,
                activity,
                ejected,
                sink,
                journeys,
                ..
            } = self;
            for (i, r) in routers.iter_mut().enumerate() {
                if r.is_quiescent() {
                    continue;
                }
                let mut fx = DirectFx {
                    arena: &mut *arena,
                    links: links.as_mut_slice(),
                    counters: &mut *counters,
                    ejected: &mut *ejected,
                    sink: sink.as_mut(),
                    journeys: journeys.as_deref_mut(),
                };
                r.step(cycle, &**topo, &mut *scratch, &mut activity[i], &mut fx);
            }
        }
        drop(pipeline_scope);

        // 3. Occupancy accounting: buffered flits this cycle (globally
        // for the energy model, per router for the metrics windows).
        let occupancy_scope = obs_scope(ObsPhase::Occupancy);
        let mut occupancy_total = 0u64;
        for (i, r) in self.routers.iter().enumerate() {
            let buffered = r.buffered_flits() as u64;
            occupancy_total += buffered;
            if let Some(m) = &mut self.metrics {
                m.record_occupancy(i, buffered);
            }
        }
        self.counters.buffer_occupancy_flit_cycles += occupancy_total;
        drop(occupancy_scope);

        // 4. NIC injection: move queued flits into local input buffers.
        // This runs after the router phase so that a slot freed by ST in
        // this cycle is immediately refillable — the NIC plays the role of
        // an upstream pipeline latch, keeping wormhole streaming gapless.
        let nic_scope = obs_scope(ObsPhase::NicInject);
        for node in 0..self.nics.len() {
            for vc in 0..self.cfg.router.vcs_per_port {
                while let Some(&fref) = self.nics[node].queues[vc].front() {
                    // Flits of a severed packet die at the source: the
                    // packet can no longer be delivered whole.
                    if let Some(fr) = &mut self.faults {
                        if fr.severed.contains(&self.arena.get(fref).packet) {
                            self.nics[node].queues[vc].pop_front();
                            self.arena.free(fref);
                            fr.counters.flits_dropped += 1;
                            continue;
                        }
                    }
                    if self.routers[node].local_free_slots(VcId(vc)) == 0 {
                        break;
                    }
                    self.nics[node].queues[vc].pop_front();
                    self.counters.flits_injected += 1;
                    let (packet, is_head) = {
                        let flit = self.arena.get(fref);
                        (flit.packet, flit.is_head())
                    };
                    if is_head {
                        if let Some(j) = &mut self.journeys {
                            j.on_nic_inject(packet, NodeId(node), cycle);
                        }
                    }
                    if traced {
                        self.sink.record(TraceEvent {
                            cycle,
                            router: NodeId(node),
                            port: PortId::LOCAL,
                            vc: VcId(vc),
                            kind: TraceEventKind::BufferWrite,
                            packet: packet.0,
                            detail: 0,
                        });
                    }
                    let fraction = self.routers[node].receive_flit(
                        PortId::LOCAL,
                        VcId(vc),
                        fref,
                        &self.arena,
                        cycle,
                    );
                    self.counters.record_buffer_write(fraction);
                    self.activity[node].buffer_events += fraction;
                }
            }
        }

        drop(nic_scope);

        // 5. Close a metrics window on its boundary cycle.
        let _telemetry_scope = obs_scope(ObsPhase::Telemetry);
        if let Some(m) = &mut self.metrics {
            let routers = &self.routers;
            m.end_cycle(cycle, |i| routers[i].telemetry());
        }
    }

    /// The sharded cycle (DESIGN.md §18). Three pool dispatches — link
    /// delivery, router pipelines, NIC injection — each followed by an
    /// ordered replay of the deferred effects on this thread, so every
    /// seam (counters, sink, journeys, link queues, arena free list)
    /// sees the exact sequential order. Soundness of the raw-pointer
    /// sharing: within each dispatch a shard touches only the routers,
    /// NICs, and activity rows of its own contiguous range, the links it
    /// owns (partitioned by destination router), and its own `ShardCtx`;
    /// the arena, topology, and foreign links are accessed read-only.
    fn step_sharded(&mut self, cycle: u64) {
        let _step = obs_scope(ObsPhase::StepTotal);
        self.counters.cycles += 1;
        let traced = self.sink.enabled();
        let journeys_on = self.journeys.is_some();
        let mut rt = self.shard_rt.take().expect("sharded step without a runtime");
        let shards = rt.shards;

        // 1. Link delivery. Workers pop due flits off their owned links
        // straight into their owned routers (the buffer push is
        // shard-local) and log the ordered remainder; due credits are
        // log-only, because a credit targets the link's *upstream*
        // router, which may belong to another shard.
        let link_scope = obs_scope(ObsPhase::LinkDelivery);
        {
            let plan = &rt.plan;
            let ctx_ptr = SyncPtr(rt.ctxs.as_mut_ptr());
            let routers_ptr = SyncPtr(self.routers.as_mut_ptr());
            let links_ptr = SyncPtr(self.links.as_mut_ptr());
            let activity_ptr = SyncPtr(self.activity.as_mut_ptr());
            let arena_ptr = SyncConstPtr(std::ptr::from_ref(&self.arena));
            rt.pool.run(&move |s| {
                // SAFETY: `s` indexes ctxs (one per shard); every link in
                // `links_of[s]` — and therefore every destination router
                // and activity row reached through it — is owned by
                // exactly this shard; the arena is shared read-only.
                let ctx = unsafe { &mut *ctx_ptr.get().add(s) };
                ctx.clear();
                let arena = unsafe { &*arena_ptr.get() };
                for &li in &plan.links_of[s] {
                    let link = unsafe { &mut *links_ptr.get().add(li as usize) };
                    while let Some(f) = link.take_due_flit(cycle) {
                        let (dst, port) = link.to;
                        let (packet, head) = {
                            let flit = arena.get(f.flit);
                            (flit.packet, flit.is_head())
                        };
                        let router = unsafe { &mut *routers_ptr.get().add(dst.index()) };
                        let fraction = router.receive_flit(port, f.vc, f.flit, arena, cycle);
                        let act = unsafe { &mut *activity_ptr.get().add(dst.index()) };
                        act.buffer_events += fraction;
                        ctx.p1_flits.push(P1Flit {
                            li,
                            fraction,
                            packet,
                            dst,
                            port,
                            vc: f.vc,
                            head,
                        });
                    }
                    while let Some(c) = link.take_due_credit(cycle) {
                        ctx.p1_credits.push(P1Credit { li, vc: c.vc });
                    }
                }
            });
        }
        // Replay in global link order — per link, flits then credits —
        // which is exactly the sequential loop's order. Each shard's
        // logs are already li-ascending, so a cursor per shard suffices.
        let mut fcur = [0usize; MAX_SHARDS];
        let mut ccur = [0usize; MAX_SHARDS];
        for li in 0..self.links.len() {
            let s = rt.plan.link_owner[li] as usize;
            let ctx = &rt.ctxs[s];
            while fcur[s] < ctx.p1_flits.len() && ctx.p1_flits[fcur[s]].li as usize == li {
                let e = ctx.p1_flits[fcur[s]];
                fcur[s] += 1;
                if traced {
                    self.sink.record(TraceEvent {
                        cycle,
                        router: e.dst,
                        port: e.port,
                        vc: e.vc,
                        kind: TraceEventKind::BufferWrite,
                        packet: e.packet.0,
                        detail: 0,
                    });
                }
                if e.head {
                    if let Some(j) = &mut self.journeys {
                        j.on_link_arrival(e.packet, e.dst, e.port, cycle);
                    }
                }
                self.counters.record_buffer_write(e.fraction);
            }
            while ccur[s] < ctx.p1_credits.len() && ctx.p1_credits[ccur[s]].li as usize == li {
                let e = ctx.p1_credits[ccur[s]];
                ccur[s] += 1;
                let (src, port) = self.links[li].from;
                if traced {
                    self.sink.record(TraceEvent {
                        cycle,
                        router: src,
                        port,
                        vc: e.vc,
                        kind: TraceEventKind::CreditReturn,
                        packet: 0,
                        detail: 0,
                    });
                }
                self.routers[src.index()].receive_credit(port, e.vc);
            }
        }
        drop(link_scope);

        // 2. Router pipelines, tile-parallel. Within a cycle the routers
        // are mutually isolated — cross-router traffic only moves over
        // links with future delivery cycles — so each shard steps its
        // range with a logging effect seam and the logs replay here in
        // router-ascending order (shard ranges are contiguous and
        // ascending, so shard order *is* router order).
        let pipeline_scope = obs_scope(ObsPhase::RouterPipeline);
        {
            let plan = &rt.plan;
            let ctx_ptr = SyncPtr(rt.ctxs.as_mut_ptr());
            let routers_ptr = SyncPtr(self.routers.as_mut_ptr());
            let activity_ptr = SyncPtr(self.activity.as_mut_ptr());
            let arena_ptr = SyncConstPtr(std::ptr::from_ref(&self.arena));
            let links_ptr = SyncConstPtr(self.links.as_ptr());
            let nlinks = self.links.len();
            let topo: &dyn Topology = &*self.topo;
            rt.pool.run(&move |s| {
                // SAFETY: shard `s` steps only routers (and activity
                // rows) in its own half-open range; the arena and link
                // table are read-only inside `DeferredFx`.
                let ctx = unsafe { &mut *ctx_ptr.get().add(s) };
                let arena = unsafe { &*arena_ptr.get() };
                let links = unsafe { std::slice::from_raw_parts(links_ptr.get(), nlinks) };
                let (start, end) = plan.ranges[s];
                for i in start..end {
                    let r = unsafe { &mut *routers_ptr.get().add(i) };
                    if r.is_quiescent() {
                        continue;
                    }
                    let act = unsafe { &mut *activity_ptr.get().add(i) };
                    let mut fx = DeferredFx {
                        arena,
                        links,
                        traced,
                        journeys_on,
                        log: &mut ctx.fx_log,
                        t: &mut ctx.tallies,
                    };
                    r.step(cycle, topo, &mut ctx.scratch, act, &mut fx);
                }
            });
        }
        for s in 0..shards {
            let ctx = &mut rt.ctxs[s];
            ctx.tallies.merge_into(&mut self.counters);
            for ei in 0..ctx.fx_log.len() {
                match ctx.fx_log[ei] {
                    Effect::JourneySt { packet, out_port } => {
                        if let Some(j) = &mut self.journeys {
                            j.on_st(packet, out_port, cycle);
                        }
                    }
                    Effect::JourneyStall { packet, router, cause, head } => {
                        if let Some(j) = &mut self.journeys {
                            j.on_stall(packet, router, cause, head);
                        }
                    }
                    Effect::StRead { fraction } => {
                        self.counters.record_buffer_read(fraction);
                        self.counters.record_xbar(fraction);
                    }
                    Effect::Trace(ev) => self.sink.record(ev),
                    Effect::SendCredit { li, vc, at } => {
                        self.links[li as usize].send_credit(vc, at);
                    }
                    Effect::Eject { fref, node, tail } => {
                        self.counters.flits_ejected += 1;
                        if tail {
                            self.counters.packets_ejected += 1;
                        }
                        self.ejected.push(EjectedFlit { flit: self.arena.take(fref), node, cycle });
                    }
                    Effect::Forward { li, fref, vc, at, fraction } => {
                        self.arena.get_mut(fref).hops += 1;
                        self.counters.record_link(self.links[li as usize].length_mm, fraction);
                        self.links[li as usize].send_flit(&mut self.arena, fref, vc, at);
                    }
                }
            }
        }
        drop(pipeline_scope);

        // 3. Occupancy accounting (sequential; a sum over routers).
        let occupancy_scope = obs_scope(ObsPhase::Occupancy);
        let mut occupancy_total = 0u64;
        for (i, r) in self.routers.iter().enumerate() {
            let buffered = r.buffered_flits() as u64;
            occupancy_total += buffered;
            if let Some(m) = &mut self.metrics {
                m.record_occupancy(i, buffered);
            }
        }
        self.counters.buffer_occupancy_flit_cycles += occupancy_total;
        drop(occupancy_scope);

        // 4. NIC injection, tile-parallel: the NIC queue, destination
        // router, and activity row are all shard-local (node ranges
        // coincide with router ranges); the global counter, journey,
        // and trace records replay in node order. The fault-severance
        // check is absent here by construction — fault runs never take
        // the sharded path.
        let nic_scope = obs_scope(ObsPhase::NicInject);
        {
            let plan = &rt.plan;
            let vcs = self.cfg.router.vcs_per_port;
            let ctx_ptr = SyncPtr(rt.ctxs.as_mut_ptr());
            let routers_ptr = SyncPtr(self.routers.as_mut_ptr());
            let nics_ptr = SyncPtr(self.nics.as_mut_ptr());
            let activity_ptr = SyncPtr(self.activity.as_mut_ptr());
            let arena_ptr = SyncConstPtr(std::ptr::from_ref(&self.arena));
            rt.pool.run(&move |s| {
                // SAFETY: shard `s` touches only the NICs, routers, and
                // activity rows of its own node range; the arena is
                // shared read-only.
                let ctx = unsafe { &mut *ctx_ptr.get().add(s) };
                let arena = unsafe { &*arena_ptr.get() };
                let (start, end) = plan.ranges[s];
                for node in start..end {
                    let nic = unsafe { &mut *nics_ptr.get().add(node) };
                    let router = unsafe { &mut *routers_ptr.get().add(node) };
                    let act = unsafe { &mut *activity_ptr.get().add(node) };
                    for vc in 0..vcs {
                        while let Some(&fref) = nic.queues[vc].front() {
                            if router.local_free_slots(VcId(vc)) == 0 {
                                break;
                            }
                            nic.queues[vc].pop_front();
                            let (packet, head) = {
                                let flit = arena.get(fref);
                                (flit.packet, flit.is_head())
                            };
                            let fraction =
                                router.receive_flit(PortId::LOCAL, VcId(vc), fref, arena, cycle);
                            act.buffer_events += fraction;
                            ctx.nic_log.push(NicEntry {
                                node: NodeId(node),
                                vc: VcId(vc),
                                packet,
                                head,
                                fraction,
                            });
                        }
                    }
                }
            });
        }
        for s in 0..shards {
            for ei in 0..rt.ctxs[s].nic_log.len() {
                let e = rt.ctxs[s].nic_log[ei];
                self.counters.flits_injected += 1;
                if e.head {
                    if let Some(j) = &mut self.journeys {
                        j.on_nic_inject(e.packet, e.node, cycle);
                    }
                }
                if traced {
                    self.sink.record(TraceEvent {
                        cycle,
                        router: e.node,
                        port: PortId::LOCAL,
                        vc: e.vc,
                        kind: TraceEventKind::BufferWrite,
                        packet: e.packet.0,
                        detail: 0,
                    });
                }
                self.counters.record_buffer_write(e.fraction);
            }
        }
        drop(nic_scope);

        // 5. Close a metrics window on its boundary cycle.
        let telemetry_scope = obs_scope(ObsPhase::Telemetry);
        if let Some(m) = &mut self.metrics {
            let routers = &self.routers;
            m.end_cycle(cycle, |i| routers[i].telemetry());
        }
        drop(telemetry_scope);
        self.shard_rt = Some(rt);
    }

    /// Host-side high-water marks of the core data structures, for the
    /// observability layer (`mira-obs`): these measure the *simulator's*
    /// memory behaviour, not the simulated network's.
    pub fn watermarks(&self) -> FabricWatermarks {
        FabricWatermarks {
            arena_live_peak: self.arena.live_peak(),
            arena_slots: self.arena.capacity_slots(),
            router_buffer_peak: self.routers.iter().map(Router::buffer_peak).max().unwrap_or(0),
        }
    }

    /// Marks `pid` severed (dropped): its remaining flits are discarded
    /// wherever they surface and the simulator is notified once.
    fn sever(&mut self, fr: &mut FaultRuntime, pid: PacketId, site: (NodeId, PortId), cycle: u64) {
        if fr.severed.insert(pid) {
            fr.counters.packets_dropped += 1;
            fr.dropped.push(pid);
            if self.sink.enabled() {
                self.sink.record(TraceEvent {
                    cycle,
                    router: site.0,
                    port: site.1,
                    vc: VcId(0),
                    kind: TraceEventKind::PacketDrop,
                    packet: pid.0,
                    detail: 0,
                });
            }
        }
    }

    /// The fault-aware replacement for the link-delivery phase: fires
    /// due permanent kills, reaps severed-packet stubs out of router
    /// buffers, services scheduled retransmissions, applies the fault
    /// plan's verdict to every delivery, and keeps the per-router
    /// link-paused flags current.
    fn fault_link_phase(&mut self, cycle: u64, fr: &mut FaultRuntime, traced: bool) {
        // (a) Fire scheduled permanent kills. The forward wire dies (the
        // reverse credit wire is modelled as surviving — credits are an
        // abstraction of buffer state, not a physical channel here);
        // every unacknowledged flit is lost, its packet severed, and its
        // reserved downstream slot credited back so upstream streaming
        // into the black hole does not wedge.
        while fr.next_kill < fr.plan.kills().len() && fr.plan.kills()[fr.next_kill].cycle <= cycle {
            let li = fr.plan.kills()[fr.next_kill].link;
            fr.next_kill += 1;
            if fr.dead[li] {
                continue;
            }
            fr.dead[li] = true;
            fr.counters.links_killed += 1;
            let (node, port) = self.links[li].from;
            for (pid, vc) in self.links[li].kill(&mut self.arena) {
                fr.counters.flits_dropped += 1;
                self.links[li].send_credit(vc, Link::delivery_cycle(cycle, 0));
                self.sever(fr, pid, (node, port), cycle);
            }
            self.routers[node.index()].on_port_death(port);
            if traced {
                self.sink.record(TraceEvent {
                    cycle,
                    router: node,
                    port,
                    vc: VcId(0),
                    kind: TraceEventKind::FaultInject,
                    packet: 0,
                    detail: li as u32,
                });
            }
        }

        // (b) Reap buffered stubs of severed packets (skipping VCs with
        // a pending switch grant; they purge next cycle).
        if !fr.severed.is_empty() {
            for r in &mut self.routers {
                fr.counters.flits_dropped +=
                    r.purge_severed(&fr.severed, cycle, &mut self.arena, &mut self.links);
            }
        }

        // (c) Per link: execute due retransmissions, then deliver.
        for li in 0..self.links.len() {
            let resent = self.links[li].arq_service(cycle, &mut self.arena);
            if resent > 0 {
                fr.counters.retransmissions += resent;
                if traced {
                    let (node, port) = self.links[li].from;
                    self.sink.record(TraceEvent {
                        cycle,
                        router: node,
                        port,
                        vc: VcId(0),
                        kind: TraceEventKind::Retransmit,
                        packet: 0,
                        detail: resent as u32,
                    });
                }
            }
            'deliver: while let Some(f) = self.links[li].take_due_flit(cycle) {
                let (dst, port) = self.links[li].to;
                let upstream = self.links[li].from;
                let pid = self.arena.get(f.flit).packet;
                if fr.dead[li] || fr.severed.contains(&pid) {
                    // Black hole (the link died under the flit) or a
                    // stub of an already-dropped packet: swallow it,
                    // acknowledge so the window drains, and credit the
                    // reserved slot back.
                    self.links[li].arq_ack(f.seq);
                    fr.counters.flits_dropped += 1;
                    self.links[li].send_credit(f.vc, Link::delivery_cycle(cycle, 0));
                    self.arena.free(f.flit);
                    if fr.dead[li] {
                        self.sever(fr, pid, upstream, cycle);
                    }
                    continue;
                }
                let (num_words, active_words) = {
                    let data = &self.arena.get(f.flit).data;
                    (data.num_words(), data.active_words())
                };
                let verdict = fr.plan.verdict(
                    li,
                    f.seq,
                    cycle,
                    num_words,
                    active_words,
                    self.cfg.layer_shutdown,
                );
                match verdict {
                    Verdict::Clean => self.links[li].arq_ack(f.seq),
                    Verdict::Masked => {
                        // The flip landed on a slice the short-flit
                        // shutdown gated off: never transported, so the
                        // flit arrives pristine.
                        fr.counters.transient_faults += 1;
                        fr.counters.masked += 1;
                        self.links[li].arq_ack(f.seq);
                    }
                    Verdict::Escaped { word, mask } => {
                        fr.counters.transient_faults += 1;
                        fr.counters.escaped += 1;
                        self.arena.get_mut(f.flit).data.flip_bits(word, mask);
                        self.links[li].arq_ack(f.seq);
                        if traced {
                            self.sink.record(TraceEvent {
                                cycle,
                                router: dst,
                                port,
                                vc: f.vc,
                                kind: TraceEventKind::FaultInject,
                                packet: pid.0,
                                detail: li as u32,
                            });
                        }
                    }
                    Verdict::Detected => {
                        let stuck = fr.plan.stuck_gate(li).is_some_and(|(onset, healthy)| {
                            cycle >= onset && active_words > healthy
                        });
                        if stuck {
                            fr.counters.stuck_faults += 1;
                        } else {
                            fr.counters.transient_faults += 1;
                        }
                        fr.counters.detected += 1;
                        if traced {
                            self.sink.record(TraceEvent {
                                cycle,
                                router: dst,
                                port,
                                vc: f.vc,
                                kind: TraceEventKind::FaultInject,
                                packet: pid.0,
                                detail: li as u32,
                            });
                        }
                        // The popped copy is discarded (the pristine
                        // window clone replays later); its slot dies here.
                        self.arena.free(f.flit);
                        let retries = self.links[li].arq_nack(cycle, &mut self.arena);
                        let budget = fr.plan.config().max_retries;
                        if budget > 0 && retries > budget {
                            if let Some((pid, vcs)) = self.links[li].arq_drop_front_packet() {
                                fr.counters.flits_dropped += vcs.len() as u64;
                                for vc in vcs {
                                    self.links[li].send_credit(vc, Link::delivery_cycle(cycle, 0));
                                }
                                self.sever(fr, pid, upstream, cycle);
                                if fr.errors.len() < MAX_FAULT_ERRORS {
                                    fr.errors.push(NocError::RetryExhausted {
                                        node: upstream.0,
                                        port: upstream.1,
                                        packet: pid,
                                    });
                                }
                            }
                        }
                        // The NACK purged the wire; nothing further is
                        // due on this link this cycle.
                        break 'deliver;
                    }
                }
                if traced {
                    self.sink.record(TraceEvent {
                        cycle,
                        router: dst,
                        port,
                        vc: f.vc,
                        kind: TraceEventKind::BufferWrite,
                        packet: pid.0,
                        detail: 0,
                    });
                }
                if self.arena.get(f.flit).is_head() {
                    if let Some(j) = &mut self.journeys {
                        j.on_link_arrival(pid, dst, port, cycle);
                    }
                }
                let fraction =
                    self.routers[dst.index()].receive_flit(port, f.vc, f.flit, &self.arena, cycle);
                self.counters.record_buffer_write(fraction);
                self.activity[dst.index()].buffer_events += fraction;
            }
            while let Some(c) = self.links[li].take_due_credit(cycle) {
                let (src, port) = self.links[li].from;
                if traced {
                    self.sink.record(TraceEvent {
                        cycle,
                        router: src,
                        port,
                        vc: c.vc,
                        kind: TraceEventKind::CreditReturn,
                        packet: 0,
                        detail: 0,
                    });
                }
                self.routers[src.index()].receive_credit(port, c.vc);
            }
        }

        // (d) Refresh the per-router pause flags: a link replaying its
        // window admits no new grants. Dead links are never paused —
        // upstream VCs already streaming must keep draining into the
        // black hole to free themselves.
        for li in 0..self.links.len() {
            let (node, port) = self.links[li].from;
            let paused = !fr.dead[li] && self.links[li].arq_resend_pending();
            self.routers[node.index()].set_link_paused(port, paused);
        }
    }

    /// Removes and returns the flits ejected so far.
    pub fn take_ejected(&mut self) -> Vec<EjectedFlit> {
        std::mem::take(&mut self.ejected)
    }

    /// Moves the flits ejected so far into `out`, reusing its capacity —
    /// the allocation-free alternative to [`Network::take_ejected`].
    pub fn drain_ejected(&mut self, out: &mut Vec<EjectedFlit>) {
        out.append(&mut self.ejected);
    }

    /// Read access to the flit arena (slot-conservation checks in tests
    /// and diagnostics; the simulation itself never needs this).
    pub fn arena(&self) -> &FlitArena {
        &self.arena
    }

    /// Flits inside the network fabric (router buffers + links), excluding
    /// source queues.
    pub fn flits_in_fabric(&self) -> usize {
        self.routers.iter().map(Router::buffered_flits).sum::<usize>()
            + self.links.iter().map(Link::flits_in_flight).sum::<usize>()
    }

    /// Flits waiting in source queues.
    pub fn flits_in_source_queues(&self) -> usize {
        self.nics.iter().map(Nic::queued_flits).sum()
    }

    /// Runs [`Router::assert_worklists_consistent`] on every router —
    /// the active-set invariant check the property-test suite applies
    /// after every simulated cycle.
    pub fn assert_worklists_consistent(&self) {
        for r in &self.routers {
            r.assert_worklists_consistent();
        }
    }

    /// Returns `true` when no flit remains anywhere (fabric and sources).
    pub fn is_drained(&self) -> bool {
        self.flits_in_fabric() == 0
            && self.flits_in_source_queues() == 0
            && self.links.iter().all(Link::is_quiescent)
            && self.routers.iter().all(Router::is_quiescent)
    }

    /// Read access to the routers (black-box dumps and tests).
    pub(crate) fn routers(&self) -> &[Router] {
        &self.routers
    }

    /// Read access to the links (black-box dumps and tests).
    pub(crate) fn links(&self) -> &[Link] {
        &self.links
    }

    /// An FNV-1a hash over the fabric's structural state: every
    /// router's work-list masks, buffer occupancy and pending switch
    /// grants, plus every link's wire contents. Any flit movement or
    /// pipeline-state transition changes it; a truly wedged fabric
    /// (deadlock, frozen allocator) keeps it constant cycle after
    /// cycle — which is exactly what the no-progress watchdog samples.
    /// Source queues are deliberately excluded: continued injection
    /// into a deadlocked fabric must not read as progress.
    pub fn progress_signature(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut feed = |word: u64| {
            for byte in word.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        for r in &self.routers {
            for w in r.progress_word() {
                feed(w);
            }
        }
        for l in &self.links {
            feed(l.flits_in_flight() as u64);
            feed(l.credits_in_flight() as u64);
        }
        h
    }

    /// Chaos hook: permanently freezes `node`'s switch allocator (see
    /// [`crate::recorder`]). Flits keep arriving and buffering at the
    /// frozen router but never leave it — the deterministic stall
    /// behind `MIRA_CHAOS_STALL_AT`.
    ///
    /// # Panics
    ///
    /// Panics when `node` is out of range.
    pub fn freeze_router_sa(&mut self, node: usize) {
        self.routers[node].freeze_sa();
    }

    /// Age in cycles of the oldest head-of-FIFO flit anywhere in the
    /// fabric (0 when empty) — the starvation detector's subject.
    pub fn max_head_age(&self, cycle: u64) -> u64 {
        self.routers.iter().map(|r| r.max_head_age(cycle)).max().unwrap_or(0)
    }

    /// Total output VCs across the fabric holding more downstream
    /// credits than the buffer depth they track. Always 0 unless credit
    /// conservation is broken.
    pub fn credit_overflows(&self) -> u64 {
        self.routers.iter().map(Router::credit_overflows).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::FlitData;
    use crate::packet::{PacketClass, PacketId};
    use crate::topology::Mesh2D;

    fn mk_net() -> Network {
        Network::new(Box::new(Mesh2D::new(4, 4)), NetworkConfig::default())
    }

    fn mk_packet(id: u64, src: usize, dst: usize, len: usize) -> Packet {
        Packet {
            id: PacketId(id),
            src: NodeId(src),
            dst: NodeId(dst),
            class: if len > 1 { PacketClass::DataResponse } else { PacketClass::ReadRequest },
            payload: (0..len).map(|_| FlitData::dense(4)).collect(),
            created_at: 0,
        }
    }

    fn run_until_drained(net: &mut Network, max_cycles: u64) -> Vec<EjectedFlit> {
        let mut out = Vec::new();
        for c in 0..max_cycles {
            net.step(c);
            out.extend(net.take_ejected());
            if net.is_drained() {
                return out;
            }
        }
        panic!("network did not drain within {max_cycles} cycles");
    }

    #[test]
    fn link_count_matches_mesh() {
        let net = mk_net();
        // 4x4 mesh: 2 * (3*4 + 4*3) = 48 unidirectional links.
        assert_eq!(net.links.len(), 48);
    }

    #[test]
    fn single_packet_delivery() {
        let mut net = mk_net();
        net.enqueue_packet(mk_packet(1, 0, 15, 5));
        let ejected = run_until_drained(&mut net, 200);
        assert_eq!(ejected.len(), 5);
        assert!(ejected.iter().all(|e| e.node == NodeId(15)));
        // 4x4 corner to corner: 6 hops.
        assert!(ejected.iter().all(|e| e.flit.hops == 6));
        // Flits of one packet eject in order, essentially back to back.
        // A single bubble before the tail is legitimate: with 4-flit
        // buffers, a 5-flit packet and a 3-cycle credit round trip, the
        // tail waits once for the first returned credit.
        let cycles: Vec<_> = ejected.iter().map(|e| e.cycle).collect();
        for w in cycles.windows(2) {
            assert!(w[1] > w[0], "flits eject in order");
            assert!(w[1] - w[0] <= 2, "at most one bubble between flits: {cycles:?}");
        }
        assert!(cycles[4] - cycles[0] <= 5, "5 flits must eject within 6 cycles: {cycles:?}");
    }

    #[test]
    fn zero_load_latency_matches_pipeline_model() {
        // Enqueue at cycle 0 → NIC writes the buffer at the end of step 0
        // → RC at cycle 1, then 5 cycles per hop with a separate LT stage
        // and 4 at the final router before ejection:
        //   eject_cycle = hops*5 + 4.
        let mut net = mk_net();
        net.enqueue_packet(mk_packet(1, 0, 3, 1)); // 3 hops east
        let ejected = run_until_drained(&mut net, 100);
        assert_eq!(ejected.len(), 1);
        let hops = 3u64;
        let expected = hops * 5 + 4;
        assert_eq!(ejected[0].cycle, expected, "got {}", ejected[0].cycle);
    }

    #[test]
    fn combined_pipeline_saves_one_cycle_per_hop() {
        let cfg_sep = NetworkConfig::default();
        let mut cfg_comb = NetworkConfig::default();
        cfg_comb.router.pipeline = crate::config::PipelineConfig::combined_st_lt();

        let mut latencies = Vec::new();
        for cfg in [cfg_sep, cfg_comb] {
            let mut net = Network::new(Box::new(Mesh2D::new(4, 4)), cfg);
            net.enqueue_packet(mk_packet(1, 0, 3, 1));
            let ejected = run_until_drained(&mut net, 100);
            latencies.push(ejected[0].cycle);
        }
        assert_eq!(latencies[0] - latencies[1], 3, "one cycle saved per hop over 3 hops");
    }

    #[test]
    fn flit_conservation() {
        let mut net = mk_net();
        for i in 0..20 {
            net.enqueue_packet(mk_packet(i, (i as usize) % 16, (3 * i as usize + 1) % 16, 3));
        }
        let mut ejected = 0usize;
        for c in 0..500 {
            net.step(c);
            ejected += net.take_ejected().len();
            let in_queues = net.flits_in_source_queues();
            let in_fabric = net.flits_in_fabric();
            assert_eq!(
                in_queues + in_fabric + ejected,
                20 * 3,
                "flits must be conserved at cycle {c}"
            );
            if net.is_drained() {
                break;
            }
        }
        assert_eq!(ejected, 60);
    }

    #[test]
    fn self_addressed_packets_eject_locally() {
        let mut net = mk_net();
        net.enqueue_packet(mk_packet(1, 5, 5, 2));
        let ejected = run_until_drained(&mut net, 100);
        assert_eq!(ejected.len(), 2);
        assert!(ejected.iter().all(|e| e.flit.hops == 0));
    }

    #[test]
    fn heavy_random_exchange_drains() {
        let mut net = mk_net();
        let mut id = 0;
        for src in 0..16 {
            for dst in 0..16 {
                if src != dst {
                    id += 1;
                    net.enqueue_packet(mk_packet(id, src, dst, 2));
                }
            }
        }
        let ejected = run_until_drained(&mut net, 20_000);
        assert_eq!(ejected.len(), 16 * 15 * 2);
    }
}

#[cfg(test)]
mod pipeline_depth_network_tests {
    use super::*;
    use crate::config::{NetworkConfig, PipelineConfig, PipelineDepth};
    use crate::flit::FlitData;
    use crate::packet::{PacketClass, PacketId};
    use crate::topology::Mesh2D;

    fn zero_load_eject(depth: PipelineDepth, combined: bool) -> u64 {
        let base =
            if combined { PipelineConfig::combined_st_lt() } else { PipelineConfig::separate_lt() };
        let mut cfg = NetworkConfig::default();
        cfg.router.pipeline = base.with_depth(depth);
        let mut net = Network::new(Box::new(Mesh2D::new(4, 4)), cfg);
        net.enqueue_packet(Packet {
            id: PacketId(1),
            src: NodeId(0),
            dst: NodeId(3), // 3 hops east
            class: PacketClass::Ack,
            payload: vec![FlitData::dense(4)],
            created_at: 0,
        });
        for c in 0..200 {
            net.step(c);
            let ejected = net.take_ejected();
            if let Some(e) = ejected.first() {
                return e.cycle;
            }
        }
        panic!("packet never delivered");
    }

    /// End-to-end zero-load latency = hops × cycles_per_hop + final
    /// router pipeline, for all six pipeline organisations.
    #[test]
    fn zero_load_latency_all_pipelines() {
        for depth in [
            PipelineDepth::FourStage,
            PipelineDepth::ThreeStageSpeculative,
            PipelineDepth::TwoStageLookahead,
        ] {
            for combined in [false, true] {
                let cfg = if combined {
                    PipelineConfig::combined_st_lt().with_depth(depth)
                } else {
                    PipelineConfig::separate_lt().with_depth(depth)
                };
                let hops = 3;
                let expected = hops * cfg.cycles_per_hop() + depth.stages() - 1 + 1;
                // hops full hops + the final router's stages; the +1 is
                // the NIC injection cycle (flit visible the cycle after
                // enqueue).
                let got = zero_load_eject(depth, combined);
                assert_eq!(got, expected, "{depth:?} combined={combined}");
            }
        }
    }

    /// Shallower pipelines are strictly faster, per-hop, end to end.
    #[test]
    fn shallower_pipelines_strictly_faster() {
        let four = zero_load_eject(PipelineDepth::FourStage, false);
        let three = zero_load_eject(PipelineDepth::ThreeStageSpeculative, false);
        let two = zero_load_eject(PipelineDepth::TwoStageLookahead, false);
        assert!(four > three && three > two, "{four} {three} {two}");
        // One cycle per hop+1 saved per removed stage over 3 hops + final.
        assert_eq!(four - three, 4);
        assert_eq!(three - two, 4);
    }
}
