//! Packets and message classes.
//!
//! The simulator moves *flits*; packets exist at the network interface
//! (segmentation on injection, reassembly bookkeeping on ejection) and in
//! the statistics. The NUCA protocol messages of the paper's Fig. 2 map
//! onto [`PacketClass`] values; the class also selects the virtual channel
//! (the paper fixes V = 2, "one VC per control and data traffic").

use serde::{Deserialize, Serialize};

use crate::flit::{Flit, FlitData, FlitKind};
use crate::ids::NodeId;

/// Globally unique packet identifier.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PacketId(pub u64);

impl PacketId {
    /// Returns the raw id.
    #[inline]
    pub const fn value(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for PacketId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pkt{}", self.0)
    }
}

/// Message classes observed in NUCA CMP traffic (paper Fig. 2).
///
/// The first group are short *control* messages (single-flit); the second
/// are *data* messages carrying a cache line. The class determines the
/// virtual channel: control classes ride VC 0, data classes VC 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PacketClass {
    /// Read request (GetS) — control.
    ReadRequest,
    /// Write/ownership request (GetX) — control.
    WriteRequest,
    /// Invalidate — control.
    Invalidate,
    /// Acknowledgement — control.
    Ack,
    /// Data response carrying a cache line — data.
    DataResponse,
    /// Dirty-line writeback carrying a cache line — data.
    WriteBack,
}

impl PacketClass {
    /// All classes, in a stable order (used for per-class statistics).
    pub const ALL: [PacketClass; 6] = [
        PacketClass::ReadRequest,
        PacketClass::WriteRequest,
        PacketClass::Invalidate,
        PacketClass::Ack,
        PacketClass::DataResponse,
        PacketClass::WriteBack,
    ];

    /// Returns `true` for short address/coherence-control messages.
    #[inline]
    pub fn is_control(self) -> bool {
        !self.is_data()
    }

    /// Returns `true` for cache-line-carrying data messages.
    #[inline]
    pub fn is_data(self) -> bool {
        matches!(self, PacketClass::DataResponse | PacketClass::WriteBack)
    }

    /// The virtual channel this class travels on (paper §3.2.4: one VC for
    /// control traffic, one for data).
    #[inline]
    pub fn vc_index(self) -> usize {
        usize::from(self.is_data())
    }

    /// Stable index into [`PacketClass::ALL`] for stats tables.
    pub fn table_index(self) -> usize {
        PacketClass::ALL.iter().position(|&c| c == self).expect("class listed in ALL")
    }

    /// Short lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            PacketClass::ReadRequest => "read-req",
            PacketClass::WriteRequest => "write-req",
            PacketClass::Invalidate => "inv",
            PacketClass::Ack => "ack",
            PacketClass::DataResponse => "data-resp",
            PacketClass::WriteBack => "writeback",
        }
    }
}

impl std::fmt::Display for PacketClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A packet to be injected into the network.
///
/// `payload` holds one [`FlitData`] per flit; its length defines the packet
/// length in flits. Control packets are single-flit; data packets in the
/// MIRA configuration are five flits (1 header + 64-byte line over 128-bit
/// flits).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Unique id (assigned by the simulator on injection).
    pub id: PacketId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Message class.
    pub class: PacketClass,
    /// Per-flit payloads; `payload.len()` is the packet length in flits.
    pub payload: Vec<FlitData>,
    /// Cycle at which the packet was created (enters the source queue).
    pub created_at: u64,
}

impl Packet {
    /// Packet length in flits.
    #[inline]
    pub fn len_flits(&self) -> usize {
        self.payload.len()
    }

    /// Splits the packet into its flits, in order.
    pub fn into_flits(self) -> Vec<Flit> {
        self.into_flit_iter().collect()
    }

    /// Iterates the packet's flits in order without collecting them —
    /// the allocation-free path the injection fast path uses.
    pub fn into_flit_iter(self) -> impl Iterator<Item = Flit> {
        let Packet { id, src, dst, class, payload, created_at } = self;
        let n = payload.len();
        assert!(n > 0, "packet must have at least one flit");
        payload.into_iter().enumerate().map(move |(i, data)| {
            let kind = match (n, i) {
                (1, _) => FlitKind::HeadTail,
                (_, 0) => FlitKind::Head,
                (_, i) if i == n - 1 => FlitKind::Tail,
                _ => FlitKind::Body,
            };
            Flit { packet: id, seq: i as u32, kind, src, dst, class, data, created_at, hops: 0 }
        })
    }

    /// Average active-layer fraction across the packet's flits (1.0 when
    /// every flit needs the full datapath width).
    pub fn active_fraction(&self) -> f64 {
        let sum: f64 = self.payload.iter().map(FlitData::active_fraction).sum();
        sum / self.payload.len() as f64
    }
}

/// A packet specification produced by a traffic source; the simulator
/// assigns the [`PacketId`] and creation cycle on injection.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketSpec {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Message class.
    pub class: PacketClass,
    /// Per-flit payloads.
    pub payload: Vec<FlitData>,
}

impl PacketSpec {
    /// Convenience constructor for a single-flit control packet.
    pub fn control(src: NodeId, dst: NodeId, class: PacketClass, num_words: usize) -> Self {
        PacketSpec { src, dst, class, payload: vec![FlitData::with_active_words(num_words, 1)] }
    }

    /// Convenience constructor for a data packet of `len_flits` flits whose
    /// payloads all use the full datapath width.
    pub fn data_dense(
        src: NodeId,
        dst: NodeId,
        class: PacketClass,
        len_flits: usize,
        num_words: usize,
    ) -> Self {
        PacketSpec {
            src,
            dst,
            class,
            payload: (0..len_flits).map(|_| FlitData::dense(num_words)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_packet(n: usize) -> Packet {
        Packet {
            id: PacketId(1),
            src: NodeId(0),
            dst: NodeId(5),
            class: PacketClass::DataResponse,
            payload: (0..n).map(|_| FlitData::dense(4)).collect(),
            created_at: 10,
        }
    }

    #[test]
    fn class_vc_assignment_matches_paper() {
        assert_eq!(PacketClass::ReadRequest.vc_index(), 0);
        assert_eq!(PacketClass::Invalidate.vc_index(), 0);
        assert_eq!(PacketClass::Ack.vc_index(), 0);
        assert_eq!(PacketClass::DataResponse.vc_index(), 1);
        assert_eq!(PacketClass::WriteBack.vc_index(), 1);
    }

    #[test]
    fn control_vs_data_partition() {
        let control: Vec<_> = PacketClass::ALL.iter().filter(|c| c.is_control()).collect();
        let data: Vec<_> = PacketClass::ALL.iter().filter(|c| c.is_data()).collect();
        assert_eq!(control.len(), 4);
        assert_eq!(data.len(), 2);
    }

    #[test]
    fn single_flit_packet_is_headtail() {
        let p = mk_packet(1);
        let flits = p.into_flits();
        assert_eq!(flits.len(), 1);
        assert_eq!(flits[0].kind, FlitKind::HeadTail);
        assert!(flits[0].is_head() && flits[0].is_tail());
    }

    #[test]
    fn multi_flit_packet_kinds() {
        let flits = mk_packet(5).into_flits();
        assert_eq!(flits[0].kind, FlitKind::Head);
        assert_eq!(flits[1].kind, FlitKind::Body);
        assert_eq!(flits[3].kind, FlitKind::Body);
        assert_eq!(flits[4].kind, FlitKind::Tail);
        assert!(flits.iter().enumerate().all(|(i, f)| f.seq == i as u32));
    }

    #[test]
    fn table_index_is_consistent() {
        for (i, c) in PacketClass::ALL.iter().enumerate() {
            assert_eq!(c.table_index(), i);
        }
    }

    #[test]
    fn active_fraction_averages_flits() {
        let p = Packet {
            id: PacketId(2),
            src: NodeId(0),
            dst: NodeId(1),
            class: PacketClass::DataResponse,
            payload: vec![FlitData::dense(4), FlitData::zeroed(4)],
            created_at: 0,
        };
        assert!((p.active_fraction() - (1.0 + 0.25) / 2.0).abs() < 1e-12);
    }
}
