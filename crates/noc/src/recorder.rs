//! Flight recorder: always-on anomaly detectors with triggered
//! black-box dumps (DESIGN.md §17).
//!
//! The [`FlightRecorder`] is the simulator's black box. While a run is
//! in flight it does two cheap things every cycle:
//!
//! 1. keeps a fixed-size ring of recent compact events — this is just a
//!    [`TraceSink`](crate::telemetry::TraceSink) installed on the
//!    existing `EventSink` seam, so an armed ring obeys the same
//!    observational-purity contract as the
//!    [`NullSink`](crate::telemetry::NullSink): a run with the ring on
//!    is bit-identical to a run without it;
//! 2. evaluates the deterministic detectors configured in
//!    [`AnomalyConfig`]: a per-cycle no-progress watchdog and, on the
//!    window cadence, credit-conservation, starvation, fault-storm and
//!    latency-spike checks.
//!
//! On a halting trigger the simulator calls [`capture`] to freeze the
//! whole network — VC occupancy, work-list masks, in-flight arena
//! slots, wire state, the event ring, and the journeys of the packets
//! that were still in flight — into a [`BlackBox`] value, renders it to
//! JSON, and unwinds with an
//! [`AnomalyAbort`](crate::anomaly::AnomalyAbort) carrying the text.
//! The experiment runner persists it as `blackbox.json`;
//! `trace_tool blackbox` pretty-prints it.
//!
//! Everything here is pure observation over existing state: no detector
//! or dump path mutates the network, and a disabled config never
//! constructs a recorder at all.

use serde::{Deserialize, Serialize};

use crate::anomaly::{
    fault_event_total, AnomalyConfig, AnomalyCounts, AnomalyKind, FiredDetector, WindowStats,
};
use crate::flit::FlitKind;
use crate::journey::PacketJourney;
use crate::network::Network;
use crate::telemetry::TraceEvent;

/// Schema version stamped into every dump (`docs/blackbox.schema.json`
/// tracks the same number).
pub const BLACKBOX_VERSION: u64 = 1;

/// One non-idle input VC in a router dump.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VcDump {
    /// Flat `(port, vc)` index (`port * vcs + vc`).
    pub pv: u64,
    /// Input port.
    pub port: u64,
    /// Virtual channel within the port.
    pub vc: u64,
    /// Pipeline state: `idle`, `routing`, `waiting_vc` or `active`.
    pub state: String,
    /// Granted/requested output port (`waiting_vc` and `active` states).
    pub out_port: Option<u64>,
    /// Granted output VC (`active` state only).
    pub out_vc: Option<u64>,
    /// Packet currently serviced by this VC.
    pub packet: Option<u64>,
    /// Flits buffered in this VC's FIFO.
    pub occupancy: u64,
    /// Age in cycles of the head flit (time since it became ready at
    /// the FIFO front), when one is buffered.
    pub head_age: Option<u64>,
    /// Downstream credits held for the *output* VC at the same flat
    /// index (the credit-conservation detector's subject).
    pub credits: u64,
}

/// One router's SoA state at capture time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RouterDump {
    /// Router node index.
    pub router: u64,
    /// Grid column (for heatmaps, same convention as metrics windows).
    pub x: u64,
    /// Grid row.
    pub y: u64,
    /// Total flits buffered across every input VC.
    pub buffered: u64,
    /// Work-list bitmask of VCs in `Routing` state.
    pub routing_mask: u64,
    /// Work-list bitmask of VCs in `WaitingVc` state.
    pub waiting_mask: u64,
    /// Work-list bitmask of VCs in `Active` state.
    pub active_mask: u64,
    /// Whether the chaos hook froze this router's switch allocator.
    pub sa_frozen: bool,
    /// Every VC that is non-idle or holds flits (idle empty VCs are
    /// omitted — they carry no information).
    pub vcs: Vec<VcDump>,
}

/// One link with flits or credits still on the wire.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinkDump {
    /// Upstream router.
    pub from_node: u64,
    /// Upstream output port.
    pub from_port: u64,
    /// Downstream router.
    pub to_node: u64,
    /// Downstream input port.
    pub to_port: u64,
    /// Flits in flight (with ARQ: the unacknowledged window).
    pub flits: u64,
    /// Credit returns in flight.
    pub credits: u64,
}

/// One live [`FlitArena`](crate::arena::FlitArena) slot at capture time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ArenaSlot {
    /// Arena slot index.
    pub slot: u64,
    /// Owning packet.
    pub packet: u64,
    /// Flit sequence number within the packet (0 = head).
    pub seq: u64,
    /// Flit kind: `head`, `body`, `tail` or `head_tail`.
    pub kind: String,
    /// Packet source node.
    pub src: u64,
    /// Packet destination node.
    pub dst: u64,
    /// Router-to-router hops taken so far.
    pub hops: u64,
    /// Age in cycles since the owning packet was created.
    pub age: u64,
}

/// One packet that was still in flight when the dump was captured.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StuckPacket {
    /// Packet id.
    pub packet: u64,
    /// Traffic class name.
    pub class: String,
    /// Source node.
    pub src: u64,
    /// Destination node.
    pub dst: u64,
    /// Creation cycle.
    pub created_at: u64,
    /// Age in cycles at capture time.
    pub age: u64,
    /// Packet length in flits.
    pub len_flits: u64,
    /// Hop-by-hop journey, when the packet was journey-sampled.
    pub journey: Option<PacketJourney>,
}

/// The complete black-box snapshot serialized on a trigger.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BlackBox {
    /// Dump schema version ([`BLACKBOX_VERSION`]).
    pub version: u64,
    /// Cycle the dump was captured on.
    pub cycle: u64,
    /// The detector that triggered the dump.
    pub trigger: FiredDetector,
    /// Every detector firing so far this run, in order.
    pub fired: Vec<FiredDetector>,
    /// Per-kind firing counts.
    pub counts: AnomalyCounts,
    /// Per-router SoA state.
    pub routers: Vec<RouterDump>,
    /// Links with in-flight flits or credits (quiet links omitted).
    pub links: Vec<LinkDump>,
    /// Every live flit in the arena, with position implied by the
    /// router/link dumps that reference its packet.
    pub arena: Vec<ArenaSlot>,
    /// The flight-recorder event ring, oldest first (empty when the
    /// ring was off).
    pub events: Vec<TraceEvent>,
    /// Events evicted from the ring before capture.
    pub events_dropped: u64,
    /// Packets injected but not yet ejected, with journeys where
    /// sampled.
    pub stuck_packets: Vec<StuckPacket>,
}

const fn flit_kind_name(kind: FlitKind) -> &'static str {
    match kind {
        FlitKind::Head => "head",
        FlitKind::Body => "body",
        FlitKind::Tail => "tail",
        FlitKind::HeadTail => "head_tail",
    }
}

/// Freezes the network's full state into a [`BlackBox`].
///
/// `stuck` is supplied by the driver (it owns the in-flight packet
/// table); everything else is read straight off the network. Pure
/// observation: `&Network` only.
pub fn capture(
    net: &Network,
    cycle: u64,
    trigger: FiredDetector,
    fired: &[FiredDetector],
    counts: AnomalyCounts,
    stuck_packets: Vec<StuckPacket>,
) -> BlackBox {
    let topo = net.topology();
    let routers = net
        .routers()
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let c = topo.coords(crate::ids::NodeId(i));
            r.dump(cycle, c.x as u64, c.y as u64)
        })
        .collect();
    let links = net
        .links()
        .iter()
        .filter(|l| l.flits_in_flight() > 0 || l.credits_in_flight() > 0)
        .map(|l| LinkDump {
            from_node: l.from.0.index() as u64,
            from_port: l.from.1.index() as u64,
            to_node: l.to.0.index() as u64,
            to_port: l.to.1.index() as u64,
            flits: l.flits_in_flight() as u64,
            credits: l.credits_in_flight() as u64,
        })
        .collect();
    let arena = net
        .arena()
        .iter_live()
        .map(|(slot, f)| ArenaSlot {
            slot: u64::from(slot),
            packet: f.packet.0,
            seq: u64::from(f.seq),
            kind: flit_kind_name(f.kind).to_string(),
            src: f.src.index() as u64,
            dst: f.dst.index() as u64,
            hops: u64::from(f.hops),
            age: cycle.saturating_sub(f.created_at),
        })
        .collect();
    let (events, events_dropped) = match net.trace_sink() {
        Some(t) => (t.events().copied().collect(), t.dropped()),
        None => (Vec::new(), 0),
    };
    BlackBox {
        version: BLACKBOX_VERSION,
        cycle,
        trigger,
        fired: fired.to_vec(),
        counts,
        routers,
        links,
        arena,
        events,
        events_dropped,
        stuck_packets,
    }
}

/// The in-flight anomaly evaluator.
///
/// One recorder per run, constructed only when
/// [`AnomalyConfig::is_enabled`] — the disabled path never allocates.
/// [`FlightRecorder::evaluate`] runs once per cycle after the network
/// stepped and ejections were processed; it performs the per-cycle
/// no-progress check every call and the windowed checks on the
/// configured cadence.
#[derive(Debug)]
pub struct FlightRecorder {
    cfg: AnomalyConfig,
    counts: AnomalyCounts,
    fired: Vec<FiredDetector>,
    /// Consecutive cycles without ejection progress or a fabric-state
    /// transition.
    stall_cycles: u64,
    /// Fabric-state signature of the previous cycle.
    last_signature: u64,
    /// Cumulative ejected-flit count of the previous cycle.
    last_ejected: u64,
    /// Fault-event total at the end of the previous window.
    last_fault_total: u64,
    /// Measured ejection latencies observed in the current window.
    window_latencies: Vec<u64>,
    /// Sum of prior windows' p99s (the trailing baseline numerator).
    baseline_p99_sum: f64,
    /// Prior windows contributing to the baseline.
    baseline_windows: u64,
}

impl FlightRecorder {
    /// Creates a recorder for `cfg` (which should be enabled — a
    /// disabled config simply never fires).
    pub fn new(cfg: AnomalyConfig) -> Self {
        FlightRecorder {
            cfg,
            counts: AnomalyCounts::default(),
            fired: Vec::new(),
            stall_cycles: 0,
            last_signature: 0,
            last_ejected: 0,
            last_fault_total: 0,
            window_latencies: Vec::new(),
            baseline_p99_sum: 0.0,
            baseline_windows: 0,
        }
    }

    /// The thresholds this recorder evaluates.
    pub fn config(&self) -> &AnomalyConfig {
        &self.cfg
    }

    /// Per-kind firing counts so far.
    pub fn counts(&self) -> AnomalyCounts {
        self.counts
    }

    /// Every firing so far, in order.
    pub fn fired(&self) -> &[FiredDetector] {
        &self.fired
    }

    /// Feeds one measured packet's end-to-end latency (the driver calls
    /// this from its ejection path; the latency-spike detector windows
    /// these samples).
    pub fn record_latency(&mut self, latency: u64) {
        if self.cfg.latency_spike_pct > 0 {
            self.window_latencies.push(latency);
        }
    }

    fn fire(&mut self, kind: AnomalyKind, cycle: u64, detail: String, stats: WindowStats) {
        self.counts.record(kind);
        self.fired.push(FiredDetector { kind: kind.name().to_string(), cycle, detail, stats });
    }

    /// Runs every armed detector for `cycle`. Returns `Some(kind)` when
    /// a halting-class detector (currently only
    /// [`AnomalyKind::NoProgress`]) fired *this* cycle; the driver
    /// decides whether to abort based on
    /// [`AnomalyConfig::halt_on_no_progress`].
    pub fn evaluate(&mut self, net: &Network, cycle: u64) -> Option<AnomalyKind> {
        let mut halting = None;
        if self.cfg.no_progress_cycles > 0 {
            halting = self.check_no_progress(net, cycle);
        }
        if cycle > 0 && cycle.is_multiple_of(self.cfg.window) {
            self.end_window(net, cycle);
        }
        halting
    }

    /// The per-cycle no-progress/deadlock watchdog: progress is a flit
    /// ejection *or* any fabric-state transition (the signature covers
    /// every router's work-list masks, buffer occupancy and pending
    /// switch grants, plus every link's wire state). While the network
    /// holds flits and neither happens for the configured number of
    /// consecutive cycles, the watchdog fires.
    fn check_no_progress(&mut self, net: &Network, cycle: u64) -> Option<AnomalyKind> {
        let ejected = net.counters().flits_ejected;
        let signature = net.progress_signature();
        let progressed = ejected != self.last_ejected || signature != self.last_signature;
        self.last_ejected = ejected;
        self.last_signature = signature;
        if progressed || net.is_drained() {
            self.stall_cycles = 0;
            return None;
        }
        self.stall_cycles += 1;
        if self.stall_cycles < self.cfg.no_progress_cycles {
            return None;
        }
        let stats = WindowStats {
            observed: self.stall_cycles,
            threshold: self.cfg.no_progress_cycles,
            samples: 0,
        };
        let detail = format!(
            "no flit ejected and no fabric-state transition for {} cycles with {} flits in fabric",
            self.stall_cycles,
            net.flits_in_fabric()
        );
        self.fire(AnomalyKind::NoProgress, cycle, detail, stats);
        // Restart the count so a non-halting configuration records one
        // firing per stalled period, not one per cycle.
        self.stall_cycles = 0;
        Some(AnomalyKind::NoProgress)
    }

    /// The windowed detectors, evaluated on the window cadence.
    fn end_window(&mut self, net: &Network, cycle: u64) {
        if self.cfg.starvation_age > 0 {
            let age = net.max_head_age(cycle);
            if age > self.cfg.starvation_age {
                let stats =
                    WindowStats { observed: age, threshold: self.cfg.starvation_age, samples: 0 };
                let detail = format!("a head flit has been parked for {age} cycles at a VC front");
                self.fire(AnomalyKind::Starvation, cycle, detail, stats);
            }
        }
        // Credit conservation is an invariant, not a tuning question:
        // it is armed whenever the recorder exists.
        let overflows = net.credit_overflows();
        if overflows > 0 {
            let stats = WindowStats { observed: overflows, threshold: 0, samples: 0 };
            let detail = format!(
                "{overflows} output VCs hold more downstream credits than the buffer depth"
            );
            self.fire(AnomalyKind::CreditViolation, cycle, detail, stats);
        }
        if self.cfg.fault_storm_budget > 0 {
            let total = fault_event_total(&net.fault_counters());
            let delta = total - self.last_fault_total;
            self.last_fault_total = total;
            if delta > self.cfg.fault_storm_budget {
                let stats = WindowStats {
                    observed: delta,
                    threshold: self.cfg.fault_storm_budget,
                    samples: 0,
                };
                let detail = format!("{delta} fault events landed in one window");
                self.fire(AnomalyKind::FaultStorm, cycle, detail, stats);
            }
        }
        if self.cfg.latency_spike_pct > 0 {
            self.end_latency_window(cycle);
        }
    }

    /// Closes the latency window: compares its p99 against the trailing
    /// baseline (mean of prior windows' p99s), then folds it into the
    /// baseline.
    fn end_latency_window(&mut self, cycle: u64) {
        let samples = self.window_latencies.len() as u64;
        if samples == 0 {
            return;
        }
        self.window_latencies.sort_unstable();
        let idx = ((self.window_latencies.len() - 1) * 99) / 100;
        let p99 = self.window_latencies[idx];
        self.window_latencies.clear();
        if samples >= self.cfg.latency_spike_min_samples && self.baseline_windows > 0 {
            let baseline = self.baseline_p99_sum / self.baseline_windows as f64;
            let threshold = baseline * f64::from(self.cfg.latency_spike_pct) / 100.0;
            if p99 as f64 > threshold {
                let stats = WindowStats { observed: p99, threshold: threshold as u64, samples };
                let detail = format!(
                    "window p99 of {p99} cycles exceeds {}% of the trailing baseline p99 ({baseline:.1} cycles)",
                    self.cfg.latency_spike_pct
                );
                self.fire(AnomalyKind::LatencySpike, cycle, detail, stats);
            }
        }
        self.baseline_p99_sum += p99 as f64;
        self.baseline_windows += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetworkConfig;
    use crate::topology::Mesh2D;

    fn quiet_net() -> Network {
        Network::new(Box::new(Mesh2D::new(2, 2)), NetworkConfig::default())
    }

    #[test]
    fn no_progress_ignores_a_drained_network() {
        let net = quiet_net();
        let mut rec = FlightRecorder::new(AnomalyConfig::disabled().with_no_progress(3));
        for cycle in 0..100 {
            assert_eq!(rec.evaluate(&net, cycle), None, "idle network must never trip");
        }
        assert_eq!(rec.counts().total(), 0);
    }

    #[test]
    fn latency_spike_needs_baseline_and_samples() {
        let mut rec = FlightRecorder::new(
            AnomalyConfig::disabled().with_latency_spike(200, 3).with_window(10),
        );
        let net = quiet_net();
        // First window establishes the baseline; no firing possible.
        for l in [10, 11, 12, 13] {
            rec.record_latency(l);
        }
        rec.evaluate(&net, 10);
        assert_eq!(rec.counts().latency_spike, 0);
        // Second window doubles-plus the p99 -> fires at 200%.
        for l in [40, 41, 42, 43] {
            rec.record_latency(l);
        }
        rec.evaluate(&net, 20);
        assert_eq!(rec.counts().latency_spike, 1);
        let f = &rec.fired()[0];
        assert_eq!(f.kind, "latency_spike");
        assert!(f.stats.observed >= 40);
    }

    #[test]
    fn latency_spike_respects_min_samples() {
        let mut rec = FlightRecorder::new(
            AnomalyConfig::disabled().with_latency_spike(200, 50).with_window(10),
        );
        let net = quiet_net();
        rec.record_latency(10);
        rec.evaluate(&net, 10);
        rec.record_latency(1000);
        rec.evaluate(&net, 20);
        assert_eq!(rec.counts().latency_spike, 0, "tiny windows must not fire");
    }

    #[test]
    fn capture_of_an_idle_network_is_empty_but_valid() {
        let net = quiet_net();
        let trigger = FiredDetector {
            kind: "no_progress".into(),
            cycle: 7,
            detail: "test".into(),
            stats: WindowStats::default(),
        };
        let bb = capture(&net, 7, trigger.clone(), &[trigger], AnomalyCounts::default(), vec![]);
        assert_eq!(bb.version, BLACKBOX_VERSION);
        assert_eq!(bb.routers.len(), 4);
        assert!(bb.links.is_empty() && bb.arena.is_empty() && bb.stuck_packets.is_empty());
        let json = serde_json::to_string(&bb).expect("dump serializes");
        let back: BlackBox = serde_json::from_str(&json).expect("dump round-trips");
        assert_eq!(back.cycle, 7);
        assert_eq!(back.trigger.kind, "no_progress");
    }
}
