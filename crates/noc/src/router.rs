//! The cycle-accurate virtual-channel wormhole router.
//!
//! Implements the canonical four-stage pipeline of the paper's Fig. 8(a):
//!
//! ```text
//! RC  → VA  → SA  → ST [→ LT]
//! ```
//!
//! * **RC** — route computation on the head flit (dimension-ordered,
//!   delegated to the topology),
//! * **VA** — two-stage virtual-channel allocation: VA1 picks the desired
//!   output VC (one VC per traffic class, paper §3.2.4), VA2 arbitrates
//!   among the input VCs contending for it (paper §3.2.5),
//! * **SA** — two-stage separable switch allocation: SA1 picks one VC per
//!   input port, SA2 one input port per output port (paper §3.2.6),
//! * **ST** — switch traversal; with the multi-layered design's short
//!   wires the link traversal **LT** merges into the same cycle
//!   (paper §3.4.1, Table 3), otherwise it takes one more.
//!
//! Flow control is credit-based: credits are debited at SA grant (so a
//! grant can never overflow the downstream buffer) and returned one cycle
//! after the downstream buffer slot frees.
//!
//! Every energy-relevant event is reported to [`ActivityCounters`]; events
//! on the separable datapath carry the flit's active-layer fraction when
//! short-flit shutdown is enabled (paper §3.2.1).
//!
//! # Data-oriented layout (DESIGN.md §14)
//!
//! Router state is struct-of-arrays: per-VC pipeline state, serviced
//! packet, buffered flits, output-VC ownership, and credits all live in
//! flat arrays keyed by the `(port, vc)` index `pv = port*vcs + vc`.
//! Flits themselves live in the network's [`FlitArena`]; the router's
//! buffers hold [`BufSlot`]s (a [`crate::arena::FlitRef`] plus
//! denormalised header fields), so the allocation stages never chase a
//! pointer into payload data. The per-cycle transient vectors the
//! stages need are borrowed from a caller-owned [`StepScratch`] and
//! reach a steady capacity after warmup — the pipeline allocates
//! nothing per cycle.

use std::collections::HashSet;

use mira_obs::phase::{scope as obs_scope, Phase as ObsPhase};

use crate::arbiter::RoundRobinArbiter;
use crate::arena::{FlitArena, FlitRef};
use crate::buffer::{BufSlot, FlitSlab};
use crate::config::{NetworkConfig, PipelineConfig};
use crate::flit::Flit;
use crate::ids::{NodeId, PortId, VcId};
use crate::link::Link;
use crate::packet::PacketId;
use crate::routing::apply_fault_mask;
use crate::shard::StepFx;
use crate::stats::RouterActivity;
use crate::telemetry::{RouterTelemetry, StallCause, StallCounters, TraceEvent, TraceEventKind};
use crate::topology::Topology;
use crate::vc::VcState;

/// A flit that reached its destination, with arrival metadata.
#[derive(Debug, Clone)]
pub struct EjectedFlit {
    /// The flit (hop count and timestamps inside).
    pub flit: Flit,
    /// Node at which it ejected.
    pub node: NodeId,
    /// Cycle of ejection (its ST cycle at the destination router).
    pub cycle: u64,
}

/// A granted crossbar traversal, scheduled at SA time and executed at ST.
#[derive(Debug, Clone, Copy)]
struct StGrant {
    in_port: PortId,
    in_vc: VcId,
    out_port: PortId,
    out_vc: VcId,
}

/// Reusable per-cycle working memory for [`Router::step`].
///
/// Every transient collection the pipeline stages need lives here and is
/// cleared (capacity kept) instead of reallocated, which is what makes
/// the steady-state step loop allocation-free. One scratch, sized for
/// the largest router, is shared across all routers of a network.
#[derive(Debug)]
pub struct StepScratch {
    /// SA1 winners: one candidate `(vc, out_port, out_vc)` per input port.
    sa1: Vec<Option<(VcId, PortId, VcId)>>,
    /// All switch-eligible `(port, vc)` pairs, for SA-loss attribution.
    eligible_all: Vec<(usize, usize)>,
    /// `(port, vc)` pairs granted the switch this cycle.
    granted: Vec<(usize, usize)>,
    /// SA2 request masks bucketed by output port: bit `ip` requests on
    /// behalf of input port `ip` (set by SA1 winners, drained and
    /// re-zeroed by SA2).
    sa2_req: Vec<u64>,
    /// VA requests bucketed by flat `(out_port, out_vc)` index.
    va_requests: Vec<Vec<(PortId, VcId)>>,
    /// Arbiter line masks mirroring `va_requests`: bit `pv` requests on
    /// behalf of input VC `pv`.
    va_line_masks: Vec<u64>,
    /// Route candidates of the head flit under consideration.
    candidates: Vec<PortId>,
}

impl StepScratch {
    /// Creates scratch space for routers of up to `ports` ports and
    /// `vcs` VCs per port.
    pub fn new(ports: usize, vcs: usize) -> Self {
        StepScratch {
            sa1: Vec::with_capacity(ports),
            eligible_all: Vec::with_capacity(ports * vcs),
            granted: Vec::with_capacity(ports),
            sa2_req: vec![0; ports],
            va_requests: (0..ports * vcs).map(|_| Vec::with_capacity(ports * vcs)).collect(),
            va_line_masks: vec![0; ports * vcs],
            candidates: Vec::with_capacity(8),
        }
    }
}

/// One router: input VCs, output VC state, allocators, and the pipeline.
#[derive(Debug)]
pub struct Router {
    id: NodeId,
    ports: usize,
    vcs: usize,
    pipeline: PipelineConfig,
    layer_shutdown: bool,
    /// Pipeline state per input VC, keyed by `pv = port*vcs + vc`.
    vc_state: Box<[VcState]>,
    /// Bit per `pv` in `Routing` state — the RC stage iterates set bits
    /// instead of scanning every VC (see [`Router::set_state`]).
    routing_mask: u64,
    /// Bit per `pv` in `WaitingVc` state (VA1 work list).
    waiting_mask: u64,
    /// Bit per `pv` in `Active` state (SA1 work list).
    active_mask: u64,
    /// Packet currently serviced per input VC (same key).
    vc_packet: Box<[Option<PacketId>]>,
    /// Every input-VC FIFO, as one flat ring-buffer slab (same key).
    buf: FlitSlab,
    /// Output-VC ownership, keyed by `out_port*vcs + out_vc`.
    out_owner: Box<[Option<(PortId, VcId)>]>,
    /// Downstream credits per output VC (same key).
    out_credits: Box<[usize]>,
    /// Link index carrying flits *out of* each output port (`None` for the
    /// local port and edge ports).
    out_links: Vec<Option<usize>>,
    /// Link index feeding each input port (`None` for the local port),
    /// used for upstream credit returns.
    in_links: Vec<Option<usize>>,
    /// VA2 arbiters, keyed by `out_port*vcs + out_vc`; lines are flat
    /// input `pv` indices.
    va2_arbiters: Box<[RoundRobinArbiter]>,
    sa1_arbiters: Vec<RoundRobinArbiter>,
    sa2_arbiters: Vec<RoundRobinArbiter>,
    st_grants: Vec<StGrant>,
    /// Number of physical datapath layers (duty-cycle denominator).
    layers: usize,
    /// Stall cycles attributed by cause (telemetry; never read by the
    /// pipeline itself).
    stalls: StallCounters,
    /// Cumulative flits sent per output port (telemetry).
    port_flits_out: Vec<u64>,
    /// Per-layer count of switch traversals in which the layer was
    /// powered (telemetry for the shutdown duty cycle).
    layer_active: Vec<u64>,
    /// Total switch traversals (denominator for `layer_active`).
    layer_events: u64,
    /// Fault-aware routing enabled: RC masks dead output ports and
    /// detours around them. Off (and free) unless fault injection with
    /// rerouting is configured.
    fault_routing: bool,
    /// Output ports whose link has permanently died.
    dead_out: Vec<bool>,
    /// Output ports whose link is in retransmission backoff this cycle
    /// (set by the network; SA pauses grants toward them and charges
    /// the `LinkFault` stall cause).
    link_paused: Vec<bool>,
    /// Route computations diverted around a dead link (fault
    /// telemetry).
    reroutes: u64,
    /// Chaos hook: when set, the switch allocator issues no grants, so
    /// every flit entering this router parks forever — a deterministic
    /// way to exercise the no-progress watchdog. Never set outside
    /// chaos testing.
    sa_frozen: bool,
}

impl Router {
    /// Creates a router with `ports` ports (including local) configured
    /// per `cfg`. Link wiring is attached afterwards by the network.
    pub fn new(id: NodeId, ports: usize, cfg: &NetworkConfig) -> Self {
        let vcs = cfg.router.vcs_per_port;
        let depth = cfg.router.buffer_depth;
        let pvs = ports * vcs;
        assert!(pvs <= 64, "router supports at most 64 (port, vc) pairs");
        Router {
            id,
            ports,
            vcs,
            pipeline: cfg.router.pipeline,
            layer_shutdown: cfg.layer_shutdown,
            vc_state: vec![VcState::Idle; pvs].into_boxed_slice(),
            routing_mask: 0,
            waiting_mask: 0,
            active_mask: 0,
            vc_packet: vec![None; pvs].into_boxed_slice(),
            buf: FlitSlab::new(pvs, depth),
            out_owner: vec![None; pvs].into_boxed_slice(),
            out_credits: vec![depth; pvs].into_boxed_slice(),
            out_links: vec![None; ports],
            in_links: vec![None; ports],
            va2_arbiters: (0..pvs).map(|_| RoundRobinArbiter::new(pvs)).collect(),
            sa1_arbiters: (0..ports).map(|_| RoundRobinArbiter::new(vcs)).collect(),
            sa2_arbiters: (0..ports).map(|_| RoundRobinArbiter::new(ports)).collect(),
            st_grants: Vec::with_capacity(ports),
            layers: cfg.layers,
            stalls: StallCounters::new(),
            port_flits_out: vec![0; ports],
            layer_active: vec![0; cfg.layers],
            layer_events: 0,
            fault_routing: false,
            dead_out: vec![false; ports],
            link_paused: vec![false; ports],
            reroutes: 0,
            sa_frozen: false,
        }
    }

    /// This router's node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Number of ports (including local).
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// Flat `(port, vc)` index into the per-VC parallel arrays.
    #[inline]
    fn pv(&self, port: PortId, vc: VcId) -> usize {
        port.index() * self.vcs + vc.index()
    }

    /// Attaches the outgoing link at `port` (wiring pass).
    pub(crate) fn set_out_link(&mut self, port: PortId, link: usize) {
        self.out_links[port.index()] = Some(link);
    }

    /// Attaches the incoming link at `port` (wiring pass).
    pub(crate) fn set_in_link(&mut self, port: PortId, link: usize) {
        self.in_links[port.index()] = Some(link);
    }

    fn layer_fraction(&self, flit: &Flit) -> f64 {
        if self.layer_shutdown {
            flit.data.active_fraction()
        } else {
            1.0
        }
    }

    /// The single write path for per-VC pipeline state: keeps the
    /// per-state bitmasks (the stage work lists) exactly in sync with
    /// `vc_state`.
    #[inline]
    fn set_state(&mut self, pv: usize, state: VcState) {
        let bit = 1u64 << pv;
        self.routing_mask &= !bit;
        self.waiting_mask &= !bit;
        self.active_mask &= !bit;
        match state {
            VcState::Idle => {}
            VcState::Routing => self.routing_mask |= bit,
            VcState::WaitingVc { .. } => self.waiting_mask |= bit,
            VcState::Active { .. } => self.active_mask |= bit,
        }
        self.vc_state[pv] = state;
    }

    /// A head flit buffered into an idle VC starts the next packet's
    /// pipeline occupancy: the VC enters `Routing` and records the
    /// packet it now services.
    fn on_flit_buffered(&mut self, pv: usize) {
        if self.vc_state[pv] == VcState::Idle {
            if let Some(front) = self.buf.front(pv) {
                debug_assert!(front.head, "an idle VC must only receive head flits first");
                self.vc_packet[pv] = Some(front.packet);
                self.set_state(pv, VcState::Routing);
            }
        }
    }

    /// The tail's switch traversal frees the VC; if the next packet's
    /// head is already buffered the VC re-enters `Routing` immediately.
    fn on_tail_departed(&mut self, pv: usize) {
        self.set_state(pv, VcState::Idle);
        self.vc_packet[pv] = None;
        self.on_flit_buffered(pv);
    }

    /// Accepts the flit at `fref` into the input buffer at (`port`, `vc`),
    /// returning the active-layer fraction of the buffer write. The
    /// caller owns the global accounting (`record_buffer_write` and the
    /// per-router `buffer_events` fraction) — under sharded stepping the
    /// buffer push happens on the owning worker while the f64 counter
    /// addition replays on the main thread in canonical order.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is full (credit-accounting violation).
    pub fn receive_flit(
        &mut self,
        port: PortId,
        vc: VcId,
        fref: FlitRef,
        arena: &FlitArena,
        cycle: u64,
    ) -> f64 {
        let flit = arena.get(fref);
        let fraction = self.layer_fraction(flit);
        let slot = BufSlot {
            fref,
            ready_at: cycle,
            packet: flit.packet,
            dst: flit.dst,
            class: flit.class,
            head: flit.is_head(),
            tail: flit.is_tail(),
        };
        let pv = self.pv(port, vc);
        self.buf.push(pv, slot);
        self.on_flit_buffered(pv);
        fraction
    }

    /// Accepts a returned credit for output VC (`port`, `vc`).
    pub fn receive_credit(&mut self, port: PortId, vc: VcId) {
        let pv = self.pv(port, vc);
        self.out_credits[pv] += 1;
    }

    /// Free slots in the local input buffer for VC `vc` (used by the
    /// network interface to pace injection).
    pub fn local_free_slots(&self, vc: VcId) -> usize {
        self.buf.free_slots(self.pv(PortId::LOCAL, vc))
    }

    /// Total flits currently buffered in this router (conservation
    /// checks; O(1) — the slab tracks occupancy incrementally).
    pub fn buffered_flits(&self) -> usize {
        self.buf.occupied()
    }

    /// Highest total buffer occupancy this router ever reached
    /// (host-side watermark; see `mira-obs`).
    pub fn buffer_peak(&self) -> usize {
        self.buf.occupied_peak()
    }

    /// Returns `true` if the router holds no flits and has no pending
    /// switch grants. A quiescent router's [`Router::step`] is a
    /// provable no-op — no counter, stall, trace, or arbiter mutation —
    /// which is what lets the network skip it entirely (the active-set
    /// optimisation; see DESIGN.md §14).
    pub fn is_quiescent(&self) -> bool {
        self.buf.occupied() == 0 && self.st_grants.is_empty()
    }

    /// Verifies the data-oriented core's work-list invariants, panicking
    /// with a diagnostic on the first violation. Checked properties:
    ///
    /// * each per-state mask (`routing`/`waiting`/`active`) holds exactly
    ///   the VCs whose `vc_state` carries that state — the stages iterate
    ///   the masks, so a desync would silently skip pipeline work;
    /// * `Routing` and `WaitingVc` VCs hold a buffered head flit (which
    ///   is what makes the quiescence skip sound: an empty router can
    ///   have no routable or waiting VC);
    /// * a quiescent router has empty routing and waiting masks.
    ///
    /// This is a test/debug facility; it walks every VC and is not meant
    /// for per-cycle production use.
    pub fn assert_worklists_consistent(&self) {
        for pv in 0..self.vc_state.len() {
            let bit = 1u64 << pv;
            let (r, w, a) = (
                self.routing_mask & bit != 0,
                self.waiting_mask & bit != 0,
                self.active_mask & bit != 0,
            );
            let expect = match self.vc_state[pv] {
                VcState::Idle => (false, false, false),
                VcState::Routing => (true, false, false),
                VcState::WaitingVc { .. } => (false, true, false),
                VcState::Active { .. } => (false, false, true),
            };
            assert_eq!(
                (r, w, a),
                expect,
                "router {}: pv {pv} state {:?} disagrees with work-list masks",
                self.id,
                self.vc_state[pv]
            );
            if matches!(self.vc_state[pv], VcState::Routing | VcState::WaitingVc { .. }) {
                let front = self.buf.front(pv);
                assert!(
                    front.is_some_and(|t| t.head),
                    "router {}: pv {pv} is {:?} without a buffered head flit",
                    self.id,
                    self.vc_state[pv]
                );
            }
        }
        if self.is_quiescent() {
            assert_eq!(
                self.routing_mask | self.waiting_mask,
                0,
                "router {}: quiescent but holds routable or waiting VCs",
                self.id
            );
        }
    }

    /// Cumulative stall-cause counters since construction.
    pub fn stall_counters(&self) -> &StallCounters {
        &self.stalls
    }

    /// Live view of this router's cumulative telemetry counters (the
    /// metrics collector diffs successive views to form windows).
    pub fn telemetry(&self) -> RouterTelemetry<'_> {
        RouterTelemetry {
            stalls: self.stalls,
            port_flits_out: &self.port_flits_out,
            layer_active: &self.layer_active,
            layer_events: self.layer_events,
        }
    }

    /// Enables fault-aware route computation: dead output ports are
    /// masked out of the candidate set and detoured around.
    pub(crate) fn set_fault_routing(&mut self, enabled: bool) {
        self.fault_routing = enabled;
    }

    /// Marks an output port's link as permanently dead. Any VC whose
    /// computed route crosses the port but has not yet been granted an
    /// output VC is sent back to route computation so the mask (or the
    /// detour fallback) can pick a live port. VCs already streaming
    /// (`Active`) keep their route; the network black-holes their flits
    /// at the dead link and refluxes the credits.
    pub(crate) fn on_port_death(&mut self, port: PortId) {
        self.dead_out[port.index()] = true;
        for pv in 0..self.vc_state.len() {
            if self.vc_state[pv] == (VcState::WaitingVc { out_port: port }) {
                self.set_state(pv, VcState::Routing);
            }
        }
    }

    /// Marks an output port's link as paused (retransmission backoff in
    /// progress) or live again. SA skips paused ports and charges the
    /// [`StallCause::LinkFault`] cause.
    pub(crate) fn set_link_paused(&mut self, port: PortId, paused: bool) {
        self.link_paused[port.index()] = paused;
    }

    /// Route computations diverted around dead links so far.
    pub fn reroutes(&self) -> u64 {
        self.reroutes
    }

    /// Chaos hook: freezes the switch allocator permanently, so this
    /// router accepts flits but never grants the switch — the
    /// deterministic stall the no-progress watchdog is tested against.
    pub(crate) fn freeze_sa(&mut self) {
        self.sa_frozen = true;
    }

    /// A compact word summarising this router's fabric-facing state:
    /// the three work-list masks, the buffer occupancy and the pending
    /// switch grants. Any flit movement, state transition or grant
    /// changes it, so the no-progress watchdog can hash it per cycle
    /// instead of comparing full state.
    pub(crate) fn progress_word(&self) -> [u64; 5] {
        [
            self.routing_mask,
            self.waiting_mask,
            self.active_mask,
            self.buf.occupied() as u64,
            self.st_grants.len() as u64,
        ]
    }

    /// Age in cycles of the oldest ready head-of-FIFO flit at this
    /// router (0 when every FIFO is empty) — the starvation detector's
    /// subject.
    pub(crate) fn max_head_age(&self, cycle: u64) -> u64 {
        (0..self.vc_state.len())
            .filter_map(|pv| self.buf.front(pv))
            .map(|s| cycle.saturating_sub(s.ready_at))
            .max()
            .unwrap_or(0)
    }

    /// Number of output VCs holding more downstream credits than the
    /// buffer depth they track — any non-zero value is a
    /// credit-conservation violation.
    pub(crate) fn credit_overflows(&self) -> u64 {
        let depth = self.buf.depth();
        self.out_credits.iter().filter(|&&c| c > depth).count() as u64
    }

    /// Freezes this router's SoA state into a
    /// [`RouterDump`](crate::recorder::RouterDump) for the black box.
    /// `x`/`y` are the topology coordinates (passed in because the
    /// router does not know where it sits).
    pub(crate) fn dump(&self, cycle: u64, x: u64, y: u64) -> crate::recorder::RouterDump {
        let mut vcs = Vec::new();
        for pv in 0..self.vc_state.len() {
            let state = self.vc_state[pv];
            let occupancy = self.buf.len(pv);
            if state == VcState::Idle && occupancy == 0 {
                continue;
            }
            let (out_port, out_vc) = match state {
                VcState::Idle | VcState::Routing => (None, None),
                VcState::WaitingVc { out_port } => (Some(out_port.index() as u64), None),
                VcState::Active { out_port, out_vc } => {
                    (Some(out_port.index() as u64), Some(out_vc.index() as u64))
                }
            };
            vcs.push(crate::recorder::VcDump {
                pv: pv as u64,
                port: (pv / self.vcs) as u64,
                vc: (pv % self.vcs) as u64,
                state: match state {
                    VcState::Idle => "idle",
                    VcState::Routing => "routing",
                    VcState::WaitingVc { .. } => "waiting_vc",
                    VcState::Active { .. } => "active",
                }
                .to_string(),
                out_port,
                out_vc,
                packet: self.vc_packet[pv].map(|p| p.0),
                occupancy: occupancy as u64,
                head_age: self.buf.front(pv).map(|s| cycle.saturating_sub(s.ready_at)),
                credits: self.out_credits[pv] as u64,
            });
        }
        crate::recorder::RouterDump {
            router: self.id.index() as u64,
            x,
            y,
            buffered: self.buf.occupied() as u64,
            routing_mask: self.routing_mask,
            waiting_mask: self.waiting_mask,
            active_mask: self.active_mask,
            sa_frozen: self.sa_frozen,
            vcs,
        }
    }

    /// Minimal-detour fallback when the fault mask empties the candidate
    /// set: among the live, wired output ports (excluding the u-turn back
    /// out of the input port, which could ping-pong forever), pick the
    /// one whose neighbour minimises the remaining hop distance, lowest
    /// port on ties. Falls back to allowing the u-turn if it is the only
    /// live port left.
    fn detour_port(&self, topo: &dyn Topology, in_port: PortId, dst: NodeId) -> PortId {
        let best = |allow_uturn: bool| -> Option<PortId> {
            (1..self.ports)
                .filter(|&p| !self.dead_out[p] && self.out_links[p].is_some())
                .filter(|&p| allow_uturn || PortId(p) != in_port)
                .filter_map(|p| {
                    topo.neighbor(self.id, PortId(p)).map(|n| (topo.min_hops(n, dst), p))
                })
                .min()
                .map(|(_, p)| PortId(p))
        };
        best(false)
            .or_else(|| best(true))
            .expect("no live output port left for detour: node is fully disconnected")
    }

    /// Returns `true` when (`ip`, `iv`) holds a switch grant scheduled
    /// for the coming ST phase (the reaper must not purge such a VC —
    /// ST would pop an empty buffer).
    fn has_st_grant(&self, ip: usize, iv: usize) -> bool {
        self.st_grants.iter().any(|g| g.in_port.index() == ip && g.in_vc.index() == iv)
    }

    /// Purges buffered flits belonging to severed (dropped) packets and
    /// refluxes their credits upstream, releasing any held output VC.
    /// Returns the number of flits purged. Called by the network's fault
    /// layer before the router phase each cycle; VCs holding a pending
    /// switch grant are skipped until the grant drains.
    pub(crate) fn purge_severed(
        &mut self,
        severed: &HashSet<PacketId>,
        cycle: u64,
        arena: &mut FlitArena,
        links: &mut [Link],
    ) -> u64 {
        let mut purged = 0u64;
        for ip in 0..self.ports {
            for iv in 0..self.vcs {
                let pv = ip * self.vcs + iv;
                let Some(pid) = self.vc_packet[pv] else { continue };
                if !severed.contains(&pid) || self.has_st_grant(ip, iv) {
                    continue;
                }
                let state = self.vc_state[pv];
                let mut popped = 0u64;
                while self.buf.front(pv).is_some_and(|s| s.packet == pid) {
                    let slot = self.buf.pop(pv).expect("front exists");
                    arena.free(slot.fref);
                    popped += 1;
                }
                // Each popped flit frees a slot the upstream router
                // already paid a credit for.
                if let Some(li) = self.in_links[ip] {
                    for _ in 0..popped {
                        links[li].send_credit(VcId(iv), Link::delivery_cycle(cycle, 0));
                    }
                }
                if let VcState::Active { out_port, out_vc } = state {
                    let ov = self.pv(out_port, out_vc);
                    debug_assert_eq!(self.out_owner[ov], Some((PortId(ip), VcId(iv))));
                    self.out_owner[ov] = None;
                }
                purged += popped;
                self.set_state(pv, VcState::Idle);
                self.vc_packet[pv] = None;
                self.on_flit_buffered(pv);
            }
        }
        purged
    }

    /// Advances the router by one cycle.
    ///
    /// The phase order within the cycle realises the configured pipeline
    /// depth (paper Fig. 8): running a later stage *after* an earlier one
    /// lets a flit advance two stages in the same cycle, which is how the
    /// speculative organisations shorten the pipeline:
    ///
    /// * **four-stage** — ST → SA → VA → RC: every grant takes effect the
    ///   next cycle (one cycle per stage; 5 per hop with separate LT);
    /// * **three-stage speculative** — ST → VA → SA → RC: a head flit
    ///   that wins VA arbitrates for the switch in the same cycle
    ///   (speculative SA; failure degenerates into a retry);
    /// * **two-stage look-ahead** — ST → RC → VA → SA: the route is also
    ///   available in the arrival cycle, modelling look-ahead routing.
    ///
    /// Every mutation of shared (cross-router) state goes through the
    /// [`StepFx`] seam: [`crate::shard::DirectFx`] applies it inline
    /// (sequential path, byte-identical to the pre-shard code) while
    /// [`crate::shard::DeferredFx`] logs it for ordered replay (sharded
    /// path). Monomorphisation keeps the sequential path free of
    /// virtual-call overhead.
    pub(crate) fn step<F: StepFx>(
        &mut self,
        cycle: u64,
        topo: &dyn Topology,
        scratch: &mut StepScratch,
        activity: &mut RouterActivity,
        fx: &mut F,
    ) {
        self.stage_st(cycle, activity, &mut *fx);
        match self.pipeline.depth {
            crate::config::PipelineDepth::FourStage => {
                self.stage_sa(cycle, scratch, &mut *fx);
                self.stage_va(cycle, scratch, &mut *fx);
                self.stage_rc(cycle, topo, scratch, &mut *fx);
            }
            crate::config::PipelineDepth::ThreeStageSpeculative => {
                self.stage_va(cycle, scratch, &mut *fx);
                self.stage_sa(cycle, scratch, &mut *fx);
                self.stage_rc(cycle, topo, scratch, &mut *fx);
            }
            crate::config::PipelineDepth::TwoStageLookahead => {
                self.stage_rc(cycle, topo, scratch, &mut *fx);
                self.stage_va(cycle, scratch, &mut *fx);
                self.stage_sa(cycle, scratch, fx);
            }
        }
    }

    /// ST: execute last cycle's switch grants.
    ///
    /// ST always runs first within the cycle, and SA (which is what
    /// refills `st_grants`) always runs after it, so iterating the grant
    /// list by index and clearing it at the end is safe and keeps the
    /// vector's capacity.
    fn stage_st<F: StepFx>(&mut self, cycle: u64, activity: &mut RouterActivity, fx: &mut F) {
        let _obs = obs_scope(ObsPhase::StageSt);
        if self.st_grants.is_empty() {
            return;
        }
        let traced = fx.traced();
        for gi in 0..self.st_grants.len() {
            let g = self.st_grants[gi];
            let pv = self.pv(g.in_port, g.in_vc);
            let slot = self.buf.pop(pv).expect("SA granted an empty VC");
            if slot.head {
                fx.journey_st(slot.packet, g.out_port, cycle);
            }
            // The only payload touch on the traversal path: one arena
            // read for the activity fractions.
            let (fraction, active_layers) = {
                let data = &fx.arena().get(slot.fref).data;
                if self.layer_shutdown {
                    let words = data.num_words();
                    let active =
                        (data.active_words() * self.layers).div_ceil(words).min(self.layers);
                    (data.active_fraction(), active)
                } else {
                    (1.0, self.layers)
                }
            };
            fx.st_read(fraction);
            activity.buffer_events += fraction;
            activity.xbar_events += fraction;
            activity.xbar_events_raw += 1;

            // Duty-cycle accounting: which datapath layers powered this
            // traversal. Flit words map onto layers MSB-down, so the
            // first `active_layers` layers carry the active words.
            self.port_flits_out[g.out_port.index()] += 1;
            for l in &mut self.layer_active[..active_layers] {
                *l += 1;
            }
            self.layer_events += 1;
            if traced {
                fx.trace(TraceEvent {
                    cycle,
                    router: self.id,
                    port: g.in_port,
                    vc: g.in_vc,
                    kind: TraceEventKind::SwitchTraversal,
                    packet: slot.packet.0,
                    detail: g.out_port.index() as u32,
                });
                if active_layers < self.layers {
                    fx.trace(TraceEvent {
                        cycle,
                        router: self.id,
                        port: g.out_port,
                        vc: g.out_vc,
                        kind: TraceEventKind::LayerGate,
                        packet: slot.packet.0,
                        detail: (self.layers - active_layers) as u32,
                    });
                }
            }

            // Return a credit upstream for the freed buffer slot.
            if let Some(li) = self.in_links[g.in_port.index()] {
                fx.send_credit(li, g.in_vc, cycle + 1);
            }

            if g.out_port.is_local() {
                fx.eject(slot.fref, self.id, cycle, slot.tail);
            } else {
                let li = self.out_links[g.out_port.index()]
                    .expect("route led through a port with no link");
                activity.link_flit_mm += fx.link_length_mm(li) * fraction;
                let deliver = Link::delivery_cycle(cycle, self.pipeline.link_extra_cycles());
                fx.forward(li, slot.fref, g.out_vc, deliver, fraction);
            }

            if slot.tail {
                let ov = self.pv(g.out_port, g.out_vc);
                self.out_owner[ov] = None;
                self.on_tail_departed(pv);
            }
        }
        self.st_grants.clear();
    }

    /// SA: separable two-stage switch allocation; winners traverse next
    /// cycle. Credits are debited here so grants never overcommit.
    ///
    /// Stall attribution happens here for switch-ready flits: an active
    /// VC whose downstream buffer holds no credit is charged `NoCredit`;
    /// an eligible VC that fails to receive an ST grant (lost SA1 or SA2)
    /// is charged `SaLoss`. The two sets are disjoint, so each stalled
    /// VC-cycle carries exactly one cause.
    fn stage_sa<F: StepFx>(&mut self, cycle: u64, scratch: &mut StepScratch, fx: &mut F) {
        let _obs = obs_scope(ObsPhase::StageSa);
        if self.active_mask == 0 || self.sa_frozen {
            // No VC holds the switch (or the chaos hook froze the
            // allocator): both allocation stages are no-ops.
            return;
        }
        let traced = fx.traced();
        // SA1: one candidate VC per input port. Only ports with an
        // `Active` VC (a set bit in the work-list mask) do any work.
        scratch.sa1.clear();
        scratch.sa1.resize(self.ports, None);
        scratch.eligible_all.clear();
        let vc_bits = (1u64 << self.vcs) - 1;
        let mut sa2_used: u64 = 0;
        for ip in 0..self.ports {
            let mut port_active = (self.active_mask >> (ip * self.vcs)) & vc_bits;
            if port_active == 0 {
                continue;
            }
            let mut elig_mask: u64 = 0;
            while port_active != 0 {
                let iv = port_active.trailing_zeros() as usize;
                port_active &= port_active - 1;
                let pv = ip * self.vcs + iv;
                let VcState::Active { out_port, out_vc } = self.vc_state[pv] else {
                    debug_assert!(false, "active_mask out of sync with vc_state");
                    continue;
                };
                if !self.buf.front_ready(pv, cycle) {
                    continue;
                }
                if !out_port.is_local() && self.link_paused[out_port.index()] {
                    // The outgoing link is replaying its window; new
                    // traffic would interleave into the resent stream.
                    self.stalls.record(StallCause::LinkFault);
                    if fx.journeys_on() {
                        if let Some(t) = self.buf.front(pv) {
                            fx.journey_stall(t.packet, self.id, StallCause::LinkFault, t.head);
                        }
                    }
                    continue;
                }
                if out_port.is_local() || self.out_credits[self.pv(out_port, out_vc)] > 0 {
                    elig_mask |= 1u64 << iv;
                } else {
                    self.stalls.record(StallCause::NoCredit);
                    if fx.journeys_on() {
                        if let Some(t) = self.buf.front(pv) {
                            fx.journey_stall(t.packet, self.id, StallCause::NoCredit, t.head);
                        }
                    }
                }
            }
            if elig_mask == 0 {
                continue;
            }
            fx.count_sa1();
            if let Some(iv) = self.sa1_arbiters[ip].arbitrate_mask(elig_mask) {
                if let VcState::Active { out_port, out_vc } = self.vc_state[ip * self.vcs + iv] {
                    scratch.sa1[ip] = Some((VcId(iv), out_port, out_vc));
                    scratch.sa2_req[out_port.index()] |= 1u64 << ip;
                    sa2_used |= 1u64 << out_port.index();
                }
            }
            while elig_mask != 0 {
                let iv = elig_mask.trailing_zeros() as usize;
                elig_mask &= elig_mask - 1;
                scratch.eligible_all.push((ip, iv));
            }
        }

        // SA2: one input port per output port, over the requested output
        // ports only (ascending, via the bucket-usage mask).
        scratch.granted.clear();
        while sa2_used != 0 {
            let op = sa2_used.trailing_zeros() as usize;
            sa2_used &= sa2_used - 1;
            fx.count_sa2();
            if let Some(ip) = self.sa2_arbiters[op].arbitrate_mask(scratch.sa2_req[op]) {
                let (iv, out_port, out_vc) = scratch.sa1[ip].expect("requester has an SA1 grant");
                if !out_port.is_local() {
                    let ov = self.pv(out_port, out_vc);
                    debug_assert!(self.out_credits[ov] > 0, "SA granted without credit");
                    self.out_credits[ov] -= 1;
                }
                if traced {
                    let packet =
                        self.buf.front(ip * self.vcs + iv.index()).map_or(0, |t| t.packet.0);
                    fx.trace(TraceEvent {
                        cycle,
                        router: self.id,
                        port: PortId(ip),
                        vc: iv,
                        kind: TraceEventKind::SwitchAlloc,
                        packet,
                        detail: out_port.index() as u32,
                    });
                }
                scratch.granted.push((ip, iv.index()));
                self.st_grants.push(StGrant { in_port: PortId(ip), in_vc: iv, out_port, out_vc });
            }
            scratch.sa2_req[op] = 0;
        }

        // Every eligible VC that did not get the switch stalled on
        // arbitration this cycle.
        for &pair in &scratch.eligible_all {
            if !scratch.granted.contains(&pair) {
                self.stalls.record(StallCause::SaLoss);
                if fx.journeys_on() {
                    if let Some(t) = self.buf.front(pair.0 * self.vcs + pair.1) {
                        fx.journey_stall(t.packet, self.id, StallCause::SaLoss, t.head);
                    }
                }
            }
        }
    }

    /// VA: two-stage virtual-channel allocation for VCs holding a routed
    /// head flit.
    ///
    /// Stall attribution for head flits waiting on a VC: requesters of an
    /// output VC still owned by another packet are charged `RouteBusy`;
    /// losers of the arbitration for a free VC are charged `VaLoss`.
    fn stage_va<F: StepFx>(&mut self, cycle: u64, scratch: &mut StepScratch, fx: &mut F) {
        let _obs = obs_scope(ObsPhase::StageVa);
        if self.waiting_mask == 0 {
            return;
        }
        let traced = fx.traced();
        // VA1: each waiting input VC (a set bit in the work-list mask)
        // selects its desired output VC — one VC per traffic class
        // (control / data), clamped to the available VC count. Buckets
        // are left empty by VA2, so no clearing pass is needed here.
        let mut waiting = self.waiting_mask;
        let mut va2_used: u64 = 0;
        while waiting != 0 {
            let pv = waiting.trailing_zeros() as usize;
            waiting &= waiting - 1;
            let VcState::WaitingVc { out_port } = self.vc_state[pv] else {
                debug_assert!(false, "waiting_mask out of sync with vc_state");
                continue;
            };
            if !self.buf.front_ready(pv, cycle) {
                continue;
            }
            let class = self.buf.front(pv).expect("waiting VC holds a head flit").class;
            let out_vc = class.vc_index().min(self.vcs - 1);
            fx.count_va1();
            let b = out_port.index() * self.vcs + out_vc;
            scratch.va_requests[b].push((PortId(pv / self.vcs), VcId(pv % self.vcs)));
            scratch.va_line_masks[b] |= 1u64 << pv;
            va2_used |= 1u64 << b;
        }

        // VA2: arbitrate per (output port, output VC) among requesters —
        // requested buckets only, ascending flat index.
        while va2_used != 0 {
            let b = va2_used.trailing_zeros() as usize;
            va2_used &= va2_used - 1;
            let (op, ov) = (b / self.vcs, b % self.vcs);
            fx.count_va2();
            if self.out_owner[b].is_some() {
                // The target VC is held by an in-flight packet: every
                // requester stalls on route occupancy this cycle.
                for ri in 0..scratch.va_requests[b].len() {
                    let (rip, riv) = scratch.va_requests[b][ri];
                    self.stalls.record(StallCause::RouteBusy);
                    if fx.journeys_on() {
                        let front = self.buf.front(rip.index() * self.vcs + riv.index());
                        if let Some(t) = front {
                            fx.journey_stall(t.packet, self.id, StallCause::RouteBusy, true);
                        }
                    }
                }
                scratch.va_requests[b].clear();
                scratch.va_line_masks[b] = 0;
                continue;
            }
            if let Some(line) = self.va2_arbiters[b].arbitrate_mask(scratch.va_line_masks[b]) {
                let (ip, iv) = (PortId(line / self.vcs), VcId(line % self.vcs));
                self.out_owner[b] = Some((ip, iv));
                self.set_state(line, VcState::Active { out_port: PortId(op), out_vc: VcId(ov) });
                if traced {
                    let packet = self.buf.front(line).map_or(0, |t| t.packet.0);
                    fx.trace(TraceEvent {
                        cycle,
                        router: self.id,
                        port: ip,
                        vc: iv,
                        kind: TraceEventKind::VcAlloc,
                        packet,
                        detail: op as u32,
                    });
                }
                // The remaining requesters lost the arbitration.
                for ri in 0..scratch.va_requests[b].len() {
                    let (rip, riv) = scratch.va_requests[b][ri];
                    if (rip, riv) != (ip, iv) {
                        self.stalls.record(StallCause::VaLoss);
                        if fx.journeys_on() {
                            let front = self.buf.front(rip.index() * self.vcs + riv.index());
                            if let Some(t) = front {
                                fx.journey_stall(t.packet, self.id, StallCause::VaLoss, true);
                            }
                        }
                    }
                }
            }
            scratch.va_requests[b].clear();
            scratch.va_line_masks[b] = 0;
        }
    }

    /// RC: route computation for VCs holding an unrouted head flit.
    ///
    /// With an adaptive topology ([`Topology::route_candidates_into`]
    /// yields more than one port) the stage selects the candidate whose
    /// output VCs hold the most credits — congestion-aware selection —
    /// with the model's preference order breaking ties.
    fn stage_rc<F: StepFx>(
        &mut self,
        cycle: u64,
        topo: &dyn Topology,
        scratch: &mut StepScratch,
        fx: &mut F,
    ) {
        let _obs = obs_scope(ObsPhase::StageRc);
        if self.routing_mask == 0 {
            return;
        }
        let traced = fx.traced();
        let mut routing = self.routing_mask;
        while routing != 0 {
            let pv = routing.trailing_zeros() as usize;
            routing &= routing - 1;
            {
                let (ip, iv) = (pv / self.vcs, pv % self.vcs);
                if !self.buf.front_ready(pv, cycle) {
                    continue;
                }
                let (packet, dst) = {
                    let head = self.buf.front(pv).expect("routing VC holds a head flit");
                    debug_assert!(head.head, "routing state without a head flit");
                    (head.packet.0, head.dst)
                };
                let candidates = &mut scratch.candidates;
                candidates.clear();
                topo.route_candidates_into(self.id, dst, candidates);
                debug_assert!(!candidates.is_empty(), "routing produced no candidates");
                if self.fault_routing {
                    let masked = apply_fault_mask(candidates, &self.dead_out);
                    // Also mask the backtrack port (the reverse of the
                    // edge the flit arrived on). Dimension-ordered routes
                    // are monotone and never backtrack, so this only
                    // fires for packets already detoured around a dead
                    // link — and for those it is what breaks the
                    // detour/return ping-pong livelock: the neighbour of
                    // a dead link would otherwise XY-route the packet
                    // straight back at the fault forever.
                    let backtracked = if ip != PortId::LOCAL.index() {
                        let before = candidates.len();
                        candidates.retain(|p| p.index() != ip);
                        candidates.len() != before
                    } else {
                        false
                    };
                    if candidates.is_empty() {
                        candidates.push(self.detour_port(topo, PortId(ip), dst));
                    }
                    if masked || backtracked {
                        self.reroutes += 1;
                    }
                }
                let out_port = if candidates.len() == 1 {
                    candidates[0]
                } else {
                    let credits_of = |p: PortId| -> usize {
                        let base = p.index() * self.vcs;
                        self.out_credits[base..base + self.vcs].iter().sum()
                    };
                    // max_by_key returns the *last* maximum; iterate in
                    // reverse so ties resolve to the earliest (preferred)
                    // candidate.
                    candidates
                        .iter()
                        .rev()
                        .copied()
                        .max_by_key(|&p| credits_of(p))
                        .expect("non-empty candidates")
                };
                fx.count_rc();
                self.set_state(pv, VcState::WaitingVc { out_port });
                if traced {
                    fx.trace(TraceEvent {
                        cycle,
                        router: self.id,
                        port: PortId(ip),
                        vc: VcId(iv),
                        kind: TraceEventKind::RouteCompute,
                        packet,
                        detail: out_port.index() as u32,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetworkConfig;
    use crate::flit::{FlitData, FlitKind};
    use crate::packet::{PacketClass, PacketId};
    use crate::stats::ActivityCounters;
    use crate::telemetry::NullSink;
    use crate::topology::Mesh2D;

    fn mk_cfg() -> NetworkConfig {
        NetworkConfig::default()
    }

    fn mk_head(dst: NodeId, class: PacketClass) -> Flit {
        Flit {
            packet: PacketId(1),
            seq: 0,
            kind: FlitKind::HeadTail,
            src: NodeId(0),
            dst,
            class,
            data: FlitData::dense(4),
            created_at: 0,
            hops: 0,
        }
    }

    /// Per-test harness bundling the caller-owned state `Router::step`
    /// borrows (arena, scratch, links, counters).
    struct Ctx {
        topo: Mesh2D,
        arena: FlitArena,
        scratch: StepScratch,
        counters: ActivityCounters,
        activity: RouterActivity,
        ejected: Vec<EjectedFlit>,
        links: Vec<Link>,
    }

    impl Ctx {
        fn new(cfg: &NetworkConfig) -> Self {
            Ctx {
                topo: Mesh2D::new(2, 2),
                arena: FlitArena::new(),
                scratch: StepScratch::new(5, cfg.router.vcs_per_port),
                counters: ActivityCounters::new(),
                activity: RouterActivity::default(),
                ejected: Vec::new(),
                links: Vec::new(),
            }
        }

        fn recv(&mut self, r: &mut Router, port: PortId, vc: VcId, flit: Flit, cycle: u64) {
            let fref = self.arena.alloc(flit);
            let fraction = r.receive_flit(port, vc, fref, &self.arena, cycle);
            self.counters.record_buffer_write(fraction);
            self.activity.buffer_events += fraction;
        }

        fn step(&mut self, r: &mut Router, cycle: u64) {
            let mut sink = NullSink;
            let mut fx = crate::shard::DirectFx {
                arena: &mut self.arena,
                links: &mut self.links,
                counters: &mut self.counters,
                ejected: &mut self.ejected,
                sink: &mut sink,
                journeys: None,
            };
            r.step(cycle, &self.topo, &mut self.scratch, &mut self.activity, &mut fx);
        }
    }

    /// A single-flit packet destined for the local node must traverse
    /// RC → VA → SA → ST in four successive cycles and then eject.
    #[test]
    fn single_flit_ejects_after_four_stages() {
        let cfg = mk_cfg();
        let mut r = Router::new(NodeId(0), 5, &cfg);
        let mut c = Ctx::new(&cfg);

        c.recv(&mut r, PortId::LOCAL, VcId(0), mk_head(NodeId(0), PacketClass::Ack), 0);

        for cycle in 0..=3 {
            c.step(&mut r, cycle);
        }
        assert_eq!(c.ejected.len(), 1, "RC@0, VA@1, SA@2, ST@3");
        assert_eq!(c.ejected[0].cycle, 3);
        assert_eq!(c.ejected[0].flit.hops, 0);
        assert!(r.is_quiescent());
        assert_eq!(c.arena.allocated(), 0, "ejection frees the arena slot");
        assert_eq!(c.counters.flits_ejected, 1);
        assert_eq!(c.counters.packets_ejected, 1);
        assert_eq!(c.counters.rc_computations, 1);
    }

    /// Two head flits contending for the same output VC are granted in
    /// successive cycles, not simultaneously.
    #[test]
    fn output_vc_is_exclusive() {
        let cfg = mk_cfg();
        let mut r = Router::new(NodeId(0), 5, &cfg);
        let mut c = Ctx::new(&cfg);

        // Two packets on different input VCs, both local-bound, same class
        // → same output VC.
        let mut f0 = mk_head(NodeId(0), PacketClass::Ack);
        f0.packet = PacketId(10);
        let mut f1 = mk_head(NodeId(0), PacketClass::Ack);
        f1.packet = PacketId(11);
        c.recv(&mut r, PortId::LOCAL, VcId(0), f0, 0);
        c.recv(&mut r, PortId(1), VcId(0), f1, 0);

        for cycle in 0..=5 {
            c.step(&mut r, cycle);
        }
        assert_eq!(c.ejected.len(), 2);
        // Ejections happen in different cycles (the single ejection VC
        // serialises the packets).
        assert_ne!(c.ejected[0].cycle, c.ejected[1].cycle);
    }

    /// Credits throttle forwarding: with a full downstream VC, nothing is
    /// granted until a credit returns.
    #[test]
    fn credits_gate_switch_allocation() {
        let cfg = mk_cfg();
        let mut r = Router::new(NodeId(0), 5, &cfg);
        let mut c = Ctx::new(&cfg);
        // One outgoing link east (to node 1).
        c.links = vec![Link::new((NodeId(0), PortId(1)), (NodeId(1), PortId(2)), 3.1)];
        r.set_out_link(PortId(1), 0);

        // Exhaust all credits on (east, vc0).
        r.out_credits[r.pv(PortId(1), VcId(0))] = 0;

        let f = mk_head(NodeId(1), PacketClass::Ack);
        c.recv(&mut r, PortId::LOCAL, VcId(0), f, 0);
        for cycle in 0..10 {
            c.step(&mut r, cycle);
        }
        assert_eq!(c.links[0].flits_in_flight(), 0, "no credit, no traversal");

        // Return one credit; the flit must now flow.
        r.receive_credit(PortId(1), VcId(0));
        for cycle in 10..15 {
            c.step(&mut r, cycle);
        }
        assert_eq!(c.links[0].flits_in_flight(), 1);
        assert!(r.is_quiescent());
    }

    /// Layer shutdown scales the separable-module activity by the active
    /// fraction of the flit.
    #[test]
    fn shutdown_weights_separable_activity() {
        let mut cfg = mk_cfg();
        cfg.layer_shutdown = true;
        let mut r = Router::new(NodeId(0), 5, &cfg);
        let mut c = Ctx::new(&cfg);

        let mut f = mk_head(NodeId(0), PacketClass::Ack);
        f.data = FlitData::with_active_words(4, 1); // short flit
        c.recv(&mut r, PortId::LOCAL, VcId(0), f, 0);
        for cycle in 0..=3 {
            c.step(&mut r, cycle);
        }
        assert_eq!(c.counters.buffer_writes_raw, 1);
        assert!((c.counters.buffer_writes - 0.25).abs() < 1e-12);
        assert!((c.counters.buffer_reads - 0.25).abs() < 1e-12);
        assert!((c.counters.xbar_traversals - 0.25).abs() < 1e-12);
        // Non-separable logic is not gated: RC ran at full weight.
        assert_eq!(c.counters.rc_computations, 1);
    }

    /// With fault routing on, RC masks a dead output port and detours
    /// through the best live neighbour instead.
    #[test]
    fn dead_port_detours_route_computation() {
        let cfg = mk_cfg();
        let mut r = Router::new(NodeId(0), 5, &cfg);
        let mut c = Ctx::new(&cfg);
        // Node 0 of the 2x2 mesh is wired east (port 1) and north (port 3).
        c.links = vec![
            Link::new((NodeId(0), PortId(1)), (NodeId(1), PortId(2)), 3.1),
            Link::new((NodeId(0), PortId(3)), (NodeId(2), PortId(4)), 3.1),
        ];
        r.set_out_link(PortId(1), 0);
        r.set_out_link(PortId(3), 1);
        r.set_fault_routing(true);
        r.on_port_death(PortId(1));

        // Destination east of us: the deterministic route is through the
        // dead port, so the detour must pick north.
        let f = mk_head(NodeId(1), PacketClass::Ack);
        c.recv(&mut r, PortId::LOCAL, VcId(0), f, 0);
        c.step(&mut r, 0);
        assert_eq!(
            r.vc_state[r.pv(PortId::LOCAL, VcId(0))],
            VcState::WaitingVc { out_port: PortId(3) },
            "masked route falls back to the live north port"
        );
        assert_eq!(r.reroutes(), 1);
    }

    /// A dead port invalidates already-computed-but-not-granted routes:
    /// the VC is sent back to RC.
    #[test]
    fn port_death_restarts_waiting_vcs() {
        let cfg = mk_cfg();
        let mut r = Router::new(NodeId(0), 5, &cfg);
        let pv00 = r.pv(PortId(0), VcId(0));
        let pv21 = r.pv(PortId(2), VcId(1));
        r.set_state(pv00, VcState::WaitingVc { out_port: PortId(1) });
        r.set_state(pv21, VcState::WaitingVc { out_port: PortId(3) });
        r.on_port_death(PortId(1));
        assert_eq!(r.vc_state[pv00], VcState::Routing, "route through dead port recomputed");
        assert_eq!(
            r.vc_state[pv21],
            VcState::WaitingVc { out_port: PortId(3) },
            "routes through live ports keep their grant request"
        );
    }

    /// A paused link (retransmission backoff) blocks switch allocation
    /// toward it and charges the LinkFault stall cause.
    #[test]
    fn paused_link_stalls_sa_with_link_fault_cause() {
        let cfg = mk_cfg();
        let mut r = Router::new(NodeId(0), 5, &cfg);
        let mut c = Ctx::new(&cfg);
        c.links = vec![Link::new((NodeId(0), PortId(1)), (NodeId(1), PortId(2)), 3.1)];
        r.set_out_link(PortId(1), 0);
        r.set_link_paused(PortId(1), true);

        let f = mk_head(NodeId(1), PacketClass::Ack);
        c.recv(&mut r, PortId::LOCAL, VcId(0), f, 0);
        for cycle in 0..6 {
            c.step(&mut r, cycle);
        }
        assert_eq!(c.links[0].flits_in_flight(), 0, "paused link admits no traffic");
        assert!(r.stall_counters().link_fault > 0, "stall attributed to the link fault");

        r.set_link_paused(PortId(1), false);
        for cycle in 6..10 {
            c.step(&mut r, cycle);
        }
        assert_eq!(c.links[0].flits_in_flight(), 1, "unpausing releases the flit");
    }

    /// The severed-packet reaper drains buffered flits of a dropped
    /// packet, refluxes their credits upstream, and releases the held
    /// output VC.
    #[test]
    fn reaper_purges_severed_packet_and_refluxes_credits() {
        let cfg = mk_cfg();
        let mut r = Router::new(NodeId(0), 5, &cfg);
        let mut c = Ctx::new(&cfg);
        // Incoming link feeding port 2 (west side), for credit reflux.
        c.links = vec![Link::new((NodeId(1), PortId(2)), (NodeId(0), PortId(1)), 3.1)];
        r.set_in_link(PortId(1), 0);

        let mut head = mk_head(NodeId(3), PacketClass::ReadRequest);
        head.kind = FlitKind::Head;
        head.packet = PacketId(42);
        let mut body = head.clone();
        body.kind = FlitKind::Body;
        body.seq = 1;
        c.recv(&mut r, PortId(1), VcId(0), head, 0);
        c.recv(&mut r, PortId(1), VcId(0), body, 0);
        let pv = r.pv(PortId(1), VcId(0));
        // Pretend VA granted the east output VC to this packet.
        r.set_state(pv, VcState::Active { out_port: PortId(1), out_vc: VcId(0) });
        r.out_owner[r.pv(PortId(1), VcId(0))] = Some((PortId(1), VcId(0)));

        let severed: HashSet<PacketId> = [PacketId(42)].into_iter().collect();
        let purged = r.purge_severed(&severed, 5, &mut c.arena, &mut c.links);
        assert_eq!(purged, 2);
        assert_eq!(r.buffered_flits(), 0);
        assert_eq!(c.arena.allocated(), 0, "purged flits freed their arena slots");
        assert_eq!(r.vc_state[pv], VcState::Idle);
        assert_eq!(r.vc_packet[pv], None);
        assert!(r.out_owner[r.pv(PortId(1), VcId(0))].is_none(), "held output VC released");
        assert_eq!(
            c.links[0].take_due_credit(6).map(|cr| cr.vc),
            Some(VcId(0)),
            "credit refluxed per flit"
        );
        assert_eq!(c.links[0].take_due_credit(6).map(|cr| cr.vc), Some(VcId(0)));
        assert!(c.links[0].take_due_credit(6).is_none());
    }
}

#[cfg(test)]
mod pipeline_depth_tests {
    use super::*;
    use crate::config::{NetworkConfig, PipelineConfig, PipelineDepth};
    use crate::flit::{FlitData, FlitKind};
    use crate::packet::{PacketClass, PacketId};
    use crate::stats::ActivityCounters;
    use crate::telemetry::NullSink;
    use crate::topology::Mesh2D;

    fn eject_cycle(depth: PipelineDepth) -> u64 {
        let topo = Mesh2D::new(2, 2);
        let mut cfg = NetworkConfig::default();
        cfg.router.pipeline = PipelineConfig::separate_lt().with_depth(depth);
        let mut r = Router::new(NodeId(0), 5, &cfg);
        let mut arena = FlitArena::new();
        let mut scratch = StepScratch::new(5, cfg.router.vcs_per_port);
        let mut counters = ActivityCounters::new();
        let mut activity = RouterActivity::default();
        let mut ejected = Vec::new();
        let mut links: Vec<Link> = Vec::new();
        let flit = Flit {
            packet: PacketId(1),
            seq: 0,
            kind: FlitKind::HeadTail,
            src: NodeId(0),
            dst: NodeId(0),
            class: PacketClass::Ack,
            data: FlitData::dense(4),
            created_at: 0,
            hops: 0,
        };
        let fref = arena.alloc(flit);
        let fraction = r.receive_flit(PortId::LOCAL, VcId(0), fref, &arena, 0);
        counters.record_buffer_write(fraction);
        activity.buffer_events += fraction;
        for cycle in 0..10 {
            let mut sink = NullSink;
            let mut fx = crate::shard::DirectFx {
                arena: &mut arena,
                links: &mut links,
                counters: &mut counters,
                ejected: &mut ejected,
                sink: &mut sink,
                journeys: None,
            };
            r.step(cycle, &topo, &mut scratch, &mut activity, &mut fx);
            if let Some(e) = ejected.first() {
                return e.cycle;
            }
        }
        panic!("flit never ejected");
    }

    /// Uncontended head-flit pipeline occupancy matches Fig. 8: four,
    /// three, and two cycles from visibility to switch traversal.
    #[test]
    fn stage_counts_match_fig8() {
        assert_eq!(eject_cycle(PipelineDepth::FourStage), 3, "RC@0 VA@1 SA@2 ST@3");
        assert_eq!(eject_cycle(PipelineDepth::ThreeStageSpeculative), 2, "RC@0 VA+SA@1 ST@2");
        assert_eq!(eject_cycle(PipelineDepth::TwoStageLookahead), 1, "RC+VA+SA@0 ST@1");
    }
}
