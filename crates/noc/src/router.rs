//! The cycle-accurate virtual-channel wormhole router.
//!
//! Implements the canonical four-stage pipeline of the paper's Fig. 8(a):
//!
//! ```text
//! RC  → VA  → SA  → ST [→ LT]
//! ```
//!
//! * **RC** — route computation on the head flit (dimension-ordered,
//!   delegated to the topology),
//! * **VA** — two-stage virtual-channel allocation: VA1 picks the desired
//!   output VC (one VC per traffic class, paper §3.2.4), VA2 arbitrates
//!   among the input VCs contending for it (paper §3.2.5),
//! * **SA** — two-stage separable switch allocation: SA1 picks one VC per
//!   input port, SA2 one input port per output port (paper §3.2.6),
//! * **ST** — switch traversal; with the multi-layered design's short
//!   wires the link traversal **LT** merges into the same cycle
//!   (paper §3.4.1, Table 3), otherwise it takes one more.
//!
//! Flow control is credit-based: credits are debited at SA grant (so a
//! grant can never overflow the downstream buffer) and returned one cycle
//! after the downstream buffer slot frees.
//!
//! Every energy-relevant event is reported to [`ActivityCounters`]; events
//! on the separable datapath carry the flit's active-layer fraction when
//! short-flit shutdown is enabled (paper §3.2.1).

use std::collections::HashSet;

use crate::arbiter::RoundRobinArbiter;
use crate::config::{NetworkConfig, PipelineConfig};
use crate::flit::Flit;
use crate::ids::{NodeId, PortId, VcId};
use crate::journey::JourneyRecorder;
use crate::link::Link;
use crate::packet::PacketId;
use crate::routing::apply_fault_mask;
use crate::stats::{ActivityCounters, RouterActivity};
use crate::telemetry::{
    EventSink, RouterTelemetry, StallCause, StallCounters, TraceEvent, TraceEventKind,
};
use crate::topology::Topology;
use crate::vc::{InputVc, OutputVc, VcState};

/// A flit that reached its destination, with arrival metadata.
#[derive(Debug, Clone)]
pub struct EjectedFlit {
    /// The flit (hop count and timestamps inside).
    pub flit: Flit,
    /// Node at which it ejected.
    pub node: NodeId,
    /// Cycle of ejection (its ST cycle at the destination router).
    pub cycle: u64,
}

/// A granted crossbar traversal, scheduled at SA time and executed at ST.
#[derive(Debug, Clone, Copy)]
struct StGrant {
    in_port: PortId,
    in_vc: VcId,
    out_port: PortId,
    out_vc: VcId,
}

/// One router: input VCs, output VC state, allocators, and the pipeline.
#[derive(Debug)]
pub struct Router {
    id: NodeId,
    ports: usize,
    vcs: usize,
    pipeline: PipelineConfig,
    layer_shutdown: bool,
    inputs: Vec<Vec<InputVc>>,
    outputs: Vec<Vec<OutputVc>>,
    /// Link index carrying flits *out of* each output port (`None` for the
    /// local port and edge ports).
    out_links: Vec<Option<usize>>,
    /// Link index feeding each input port (`None` for the local port),
    /// used for upstream credit returns.
    in_links: Vec<Option<usize>>,
    va2_arbiters: Vec<Vec<RoundRobinArbiter>>,
    sa1_arbiters: Vec<RoundRobinArbiter>,
    sa2_arbiters: Vec<RoundRobinArbiter>,
    st_grants: Vec<StGrant>,
    /// Number of physical datapath layers (duty-cycle denominator).
    layers: usize,
    /// Stall cycles attributed by cause (telemetry; never read by the
    /// pipeline itself).
    stalls: StallCounters,
    /// Cumulative flits sent per output port (telemetry).
    port_flits_out: Vec<u64>,
    /// Per-layer count of switch traversals in which the layer was
    /// powered (telemetry for the shutdown duty cycle).
    layer_active: Vec<u64>,
    /// Total switch traversals (denominator for `layer_active`).
    layer_events: u64,
    /// Fault-aware routing enabled: RC masks dead output ports and
    /// detours around them. Off (and free) unless fault injection with
    /// rerouting is configured.
    fault_routing: bool,
    /// Output ports whose link has permanently died.
    dead_out: Vec<bool>,
    /// Output ports whose link is in retransmission backoff this cycle
    /// (set by the network; SA pauses grants toward them and charges
    /// the `LinkFault` stall cause).
    link_paused: Vec<bool>,
    /// Route computations diverted around a dead link (fault
    /// telemetry).
    reroutes: u64,
}

impl Router {
    /// Creates a router with `ports` ports (including local) configured
    /// per `cfg`. Link wiring is attached afterwards by the network.
    pub fn new(id: NodeId, ports: usize, cfg: &NetworkConfig) -> Self {
        let vcs = cfg.router.vcs_per_port;
        let depth = cfg.router.buffer_depth;
        Router {
            id,
            ports,
            vcs,
            pipeline: cfg.router.pipeline,
            layer_shutdown: cfg.layer_shutdown,
            inputs: (0..ports).map(|_| (0..vcs).map(|_| InputVc::new(depth)).collect()).collect(),
            outputs: (0..ports).map(|_| (0..vcs).map(|_| OutputVc::new(depth)).collect()).collect(),
            out_links: vec![None; ports],
            in_links: vec![None; ports],
            va2_arbiters: (0..ports)
                .map(|_| (0..vcs).map(|_| RoundRobinArbiter::new(ports * vcs)).collect())
                .collect(),
            sa1_arbiters: (0..ports).map(|_| RoundRobinArbiter::new(vcs)).collect(),
            sa2_arbiters: (0..ports).map(|_| RoundRobinArbiter::new(ports)).collect(),
            st_grants: Vec::new(),
            layers: cfg.layers,
            stalls: StallCounters::new(),
            port_flits_out: vec![0; ports],
            layer_active: vec![0; cfg.layers],
            layer_events: 0,
            fault_routing: false,
            dead_out: vec![false; ports],
            link_paused: vec![false; ports],
            reroutes: 0,
        }
    }

    /// This router's node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Number of ports (including local).
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// Attaches the outgoing link at `port` (wiring pass).
    pub(crate) fn set_out_link(&mut self, port: PortId, link: usize) {
        self.out_links[port.index()] = Some(link);
    }

    /// Attaches the incoming link at `port` (wiring pass).
    pub(crate) fn set_in_link(&mut self, port: PortId, link: usize) {
        self.in_links[port.index()] = Some(link);
    }

    fn layer_fraction(&self, flit: &Flit) -> f64 {
        if self.layer_shutdown {
            flit.data.active_fraction()
        } else {
            1.0
        }
    }

    /// Accepts a flit into the input buffer at (`port`, `vc`).
    ///
    /// # Panics
    ///
    /// Panics if the buffer is full (credit-accounting violation).
    pub fn receive_flit(
        &mut self,
        port: PortId,
        vc: VcId,
        flit: Flit,
        cycle: u64,
        counters: &mut ActivityCounters,
        activity: &mut RouterActivity,
    ) {
        let fraction = self.layer_fraction(&flit);
        counters.record_buffer_write(fraction);
        activity.buffer_events += fraction;
        let ivc = &mut self.inputs[port.index()][vc.index()];
        ivc.buffer.push(flit, cycle);
        ivc.on_flit_buffered();
    }

    /// Accepts a returned credit for output VC (`port`, `vc`).
    pub fn receive_credit(&mut self, port: PortId, vc: VcId) {
        self.outputs[port.index()][vc.index()].credits += 1;
    }

    /// Free slots in the local input buffer for VC `vc` (used by the
    /// network interface to pace injection).
    pub fn local_free_slots(&self, vc: VcId) -> usize {
        self.inputs[PortId::LOCAL.index()][vc.index()].buffer.free_slots()
    }

    /// Total flits currently buffered in this router (conservation
    /// checks).
    pub fn buffered_flits(&self) -> usize {
        self.inputs.iter().flatten().map(|vc| vc.buffer.len()).sum()
    }

    /// Returns `true` if the router holds no flits and has no pending
    /// switch grants.
    pub fn is_quiescent(&self) -> bool {
        self.buffered_flits() == 0 && self.st_grants.is_empty()
    }

    /// Cumulative stall-cause counters since construction.
    pub fn stall_counters(&self) -> &StallCounters {
        &self.stalls
    }

    /// Live view of this router's cumulative telemetry counters (the
    /// metrics collector diffs successive views to form windows).
    pub fn telemetry(&self) -> RouterTelemetry<'_> {
        RouterTelemetry {
            stalls: self.stalls,
            port_flits_out: &self.port_flits_out,
            layer_active: &self.layer_active,
            layer_events: self.layer_events,
        }
    }

    /// Enables fault-aware route computation: dead output ports are
    /// masked out of the candidate set and detoured around.
    pub(crate) fn set_fault_routing(&mut self, enabled: bool) {
        self.fault_routing = enabled;
    }

    /// Marks an output port's link as permanently dead. Any VC whose
    /// computed route crosses the port but has not yet been granted an
    /// output VC is sent back to route computation so the mask (or the
    /// detour fallback) can pick a live port. VCs already streaming
    /// (`Active`) keep their route; the network black-holes their flits
    /// at the dead link and refluxes the credits.
    pub(crate) fn on_port_death(&mut self, port: PortId) {
        self.dead_out[port.index()] = true;
        for pvcs in &mut self.inputs {
            for ivc in pvcs {
                if ivc.state == (VcState::WaitingVc { out_port: port }) {
                    ivc.state = VcState::Routing;
                }
            }
        }
    }

    /// Marks an output port's link as paused (retransmission backoff in
    /// progress) or live again. SA skips paused ports and charges the
    /// [`StallCause::LinkFault`] cause.
    pub(crate) fn set_link_paused(&mut self, port: PortId, paused: bool) {
        self.link_paused[port.index()] = paused;
    }

    /// Route computations diverted around dead links so far.
    pub fn reroutes(&self) -> u64 {
        self.reroutes
    }

    /// Minimal-detour fallback when the fault mask empties the candidate
    /// set: among the live, wired output ports (excluding the u-turn back
    /// out of the input port, which could ping-pong forever), pick the
    /// one whose neighbour minimises the remaining hop distance, lowest
    /// port on ties. Falls back to allowing the u-turn if it is the only
    /// live port left.
    fn detour_port(&self, topo: &dyn Topology, in_port: PortId, dst: NodeId) -> PortId {
        let best = |allow_uturn: bool| -> Option<PortId> {
            (1..self.ports)
                .filter(|&p| !self.dead_out[p] && self.out_links[p].is_some())
                .filter(|&p| allow_uturn || PortId(p) != in_port)
                .filter_map(|p| {
                    topo.neighbor(self.id, PortId(p)).map(|n| (topo.min_hops(n, dst), p))
                })
                .min()
                .map(|(_, p)| PortId(p))
        };
        best(false)
            .or_else(|| best(true))
            .expect("no live output port left for detour: node is fully disconnected")
    }

    /// Returns `true` when (`ip`, `iv`) holds a switch grant scheduled
    /// for the coming ST phase (the reaper must not purge such a VC —
    /// ST would pop an empty buffer).
    fn has_st_grant(&self, ip: usize, iv: usize) -> bool {
        self.st_grants.iter().any(|g| g.in_port.index() == ip && g.in_vc.index() == iv)
    }

    /// Purges buffered flits belonging to severed (dropped) packets and
    /// refluxes their credits upstream, releasing any held output VC.
    /// Returns the number of flits purged. Called by the network's fault
    /// layer before the router phase each cycle; VCs holding a pending
    /// switch grant are skipped until the grant drains.
    pub(crate) fn purge_severed(
        &mut self,
        severed: &HashSet<PacketId>,
        cycle: u64,
        links: &mut [Link],
    ) -> u64 {
        let mut purged = 0u64;
        for ip in 0..self.ports {
            for iv in 0..self.vcs {
                let Some(pid) = self.inputs[ip][iv].current_packet else { continue };
                if !severed.contains(&pid) || self.has_st_grant(ip, iv) {
                    continue;
                }
                let state = self.inputs[ip][iv].state;
                let mut popped = 0u64;
                while self.inputs[ip][iv].buffer.front().is_some_and(|t| t.flit.packet == pid) {
                    self.inputs[ip][iv].buffer.pop();
                    popped += 1;
                }
                // Each popped flit frees a slot the upstream router
                // already paid a credit for.
                if let Some(li) = self.in_links[ip] {
                    for _ in 0..popped {
                        links[li].send_credit(VcId(iv), Link::delivery_cycle(cycle, 0));
                    }
                }
                if let VcState::Active { out_port, out_vc } = state {
                    let ovc = &mut self.outputs[out_port.index()][out_vc.index()];
                    debug_assert_eq!(ovc.owner, Some((PortId(ip), VcId(iv))));
                    ovc.owner = None;
                }
                purged += popped;
                self.inputs[ip][iv].state = VcState::Idle;
                self.inputs[ip][iv].current_packet = None;
                self.inputs[ip][iv].on_flit_buffered();
            }
        }
        purged
    }

    /// Advances the router by one cycle.
    ///
    /// The phase order within the cycle realises the configured pipeline
    /// depth (paper Fig. 8): running a later stage *after* an earlier one
    /// lets a flit advance two stages in the same cycle, which is how the
    /// speculative organisations shorten the pipeline:
    ///
    /// * **four-stage** — ST → SA → VA → RC: every grant takes effect the
    ///   next cycle (one cycle per stage; 5 per hop with separate LT);
    /// * **three-stage speculative** — ST → VA → SA → RC: a head flit
    ///   that wins VA arbitrates for the switch in the same cycle
    ///   (speculative SA; failure degenerates into a retry);
    /// * **two-stage look-ahead** — ST → RC → VA → SA: the route is also
    ///   available in the arrival cycle, modelling look-ahead routing.
    #[allow(clippy::too_many_arguments)]
    pub fn step(
        &mut self,
        cycle: u64,
        topo: &dyn Topology,
        links: &mut [Link],
        counters: &mut ActivityCounters,
        activity: &mut RouterActivity,
        ejected: &mut Vec<EjectedFlit>,
        sink: &mut dyn EventSink,
        mut journeys: Option<&mut JourneyRecorder>,
    ) {
        self.stage_st(cycle, links, counters, activity, ejected, sink, journeys.as_deref_mut());
        match self.pipeline.depth {
            crate::config::PipelineDepth::FourStage => {
                self.stage_sa(cycle, counters, sink, journeys.as_deref_mut());
                self.stage_va(cycle, counters, sink, journeys.as_deref_mut());
                self.stage_rc(cycle, topo, counters, sink);
            }
            crate::config::PipelineDepth::ThreeStageSpeculative => {
                self.stage_va(cycle, counters, sink, journeys.as_deref_mut());
                self.stage_sa(cycle, counters, sink, journeys.as_deref_mut());
                self.stage_rc(cycle, topo, counters, sink);
            }
            crate::config::PipelineDepth::TwoStageLookahead => {
                self.stage_rc(cycle, topo, counters, sink);
                self.stage_va(cycle, counters, sink, journeys.as_deref_mut());
                self.stage_sa(cycle, counters, sink, journeys);
            }
        }
    }

    /// ST: execute last cycle's switch grants.
    #[allow(clippy::too_many_arguments)]
    fn stage_st(
        &mut self,
        cycle: u64,
        links: &mut [Link],
        counters: &mut ActivityCounters,
        activity: &mut RouterActivity,
        ejected: &mut Vec<EjectedFlit>,
        sink: &mut dyn EventSink,
        mut journeys: Option<&mut JourneyRecorder>,
    ) {
        let traced = sink.enabled();
        let grants = std::mem::take(&mut self.st_grants);
        for g in grants {
            let ivc = &mut self.inputs[g.in_port.index()][g.in_vc.index()];
            let timed = ivc.buffer.pop().expect("SA granted an empty VC");
            let mut flit = timed.flit;
            if flit.is_head() {
                if let Some(rec) = journeys.as_deref_mut() {
                    rec.on_st(flit.packet, g.out_port, cycle);
                }
            }
            let fraction = if self.layer_shutdown { flit.data.active_fraction() } else { 1.0 };
            counters.record_buffer_read(fraction);
            counters.record_xbar(fraction);
            activity.buffer_events += fraction;
            activity.xbar_events += fraction;
            activity.xbar_events_raw += 1;

            // Duty-cycle accounting: which datapath layers powered this
            // traversal. Flit words map onto layers MSB-down, so the
            // first `active_layers` layers carry the active words.
            self.port_flits_out[g.out_port.index()] += 1;
            let active_layers = if self.layer_shutdown {
                let words = flit.data.num_words();
                (flit.data.active_words() * self.layers).div_ceil(words).min(self.layers)
            } else {
                self.layers
            };
            for l in &mut self.layer_active[..active_layers] {
                *l += 1;
            }
            self.layer_events += 1;
            if traced {
                sink.record(TraceEvent {
                    cycle,
                    router: self.id,
                    port: g.in_port,
                    vc: g.in_vc,
                    kind: TraceEventKind::SwitchTraversal,
                    packet: flit.packet.0,
                    detail: g.out_port.index() as u32,
                });
                if active_layers < self.layers {
                    sink.record(TraceEvent {
                        cycle,
                        router: self.id,
                        port: g.out_port,
                        vc: g.out_vc,
                        kind: TraceEventKind::LayerGate,
                        packet: flit.packet.0,
                        detail: (self.layers - active_layers) as u32,
                    });
                }
            }

            let is_tail = flit.is_tail();

            // Return a credit upstream for the freed buffer slot.
            if let Some(li) = self.in_links[g.in_port.index()] {
                links[li].send_credit(g.in_vc, cycle + 1);
            }

            if g.out_port.is_local() {
                counters.flits_ejected += 1;
                if is_tail {
                    counters.packets_ejected += 1;
                }
                ejected.push(EjectedFlit { flit, node: self.id, cycle });
            } else {
                flit.hops += 1;
                let li = self.out_links[g.out_port.index()]
                    .expect("route led through a port with no link");
                counters.record_link(links[li].length_mm, fraction);
                activity.link_flit_mm += links[li].length_mm * fraction;
                let deliver = Link::delivery_cycle(cycle, self.pipeline.link_extra_cycles());
                links[li].send_flit(flit, g.out_vc, deliver);
            }

            if is_tail {
                self.outputs[g.out_port.index()][g.out_vc.index()].owner = None;
                ivc.on_tail_departed();
            }
        }
    }

    /// SA: separable two-stage switch allocation; winners traverse next
    /// cycle. Credits are debited here so grants never overcommit.
    ///
    /// Stall attribution happens here for switch-ready flits: an active
    /// VC whose downstream buffer holds no credit is charged `NoCredit`;
    /// an eligible VC that fails to receive an ST grant (lost SA1 or SA2)
    /// is charged `SaLoss`. The two sets are disjoint, so each stalled
    /// VC-cycle carries exactly one cause.
    fn stage_sa(
        &mut self,
        cycle: u64,
        counters: &mut ActivityCounters,
        sink: &mut dyn EventSink,
        mut journeys: Option<&mut JourneyRecorder>,
    ) {
        let traced = sink.enabled();
        // SA1: one candidate VC per input port.
        let mut sa1: Vec<Option<(VcId, PortId, VcId)>> = vec![None; self.ports];
        // All switch-eligible (input port, input VC) pairs, for SA-loss
        // attribution after SA2 resolves.
        let mut eligible_all: Vec<(usize, usize)> = Vec::new();
        #[allow(clippy::needless_range_loop)] // ip indexes three parallel arrays
        for ip in 0..self.ports {
            let mut eligible: Vec<usize> = Vec::new();
            for iv in 0..self.vcs {
                let ivc = &self.inputs[ip][iv];
                if let VcState::Active { out_port, out_vc } = ivc.state {
                    if !ivc.buffer.front_ready(cycle) {
                        continue;
                    }
                    if !out_port.is_local() && self.link_paused[out_port.index()] {
                        // The outgoing link is replaying its window; new
                        // traffic would interleave into the resent stream.
                        self.stalls.record(StallCause::LinkFault);
                        if let Some(rec) = journeys.as_deref_mut() {
                            if let Some(t) = ivc.buffer.front() {
                                rec.on_stall(
                                    t.flit.packet,
                                    self.id,
                                    StallCause::LinkFault,
                                    t.flit.is_head(),
                                );
                            }
                        }
                        continue;
                    }
                    if out_port.is_local()
                        || self.outputs[out_port.index()][out_vc.index()].credits > 0
                    {
                        eligible.push(iv);
                    } else {
                        self.stalls.record(StallCause::NoCredit);
                        if let Some(rec) = journeys.as_deref_mut() {
                            if let Some(t) = ivc.buffer.front() {
                                rec.on_stall(
                                    t.flit.packet,
                                    self.id,
                                    StallCause::NoCredit,
                                    t.flit.is_head(),
                                );
                            }
                        }
                    }
                }
            }
            if eligible.is_empty() {
                continue;
            }
            counters.sa1_arbitrations += 1;
            if let Some(iv) = self.sa1_arbiters[ip].arbitrate_among(&eligible) {
                if let VcState::Active { out_port, out_vc } = self.inputs[ip][iv].state {
                    sa1[ip] = Some((VcId(iv), out_port, out_vc));
                }
            }
            eligible_all.extend(eligible.into_iter().map(|iv| (ip, iv)));
        }

        // SA2: one input port per output port.
        let mut granted: Vec<(usize, usize)> = Vec::new();
        for op in 0..self.ports {
            let requesters: Vec<usize> = (0..self.ports)
                .filter(|&ip| sa1[ip].is_some_and(|(_, p, _)| p.index() == op))
                .collect();
            if requesters.is_empty() {
                continue;
            }
            counters.sa2_arbitrations += 1;
            if let Some(ip) = self.sa2_arbiters[op].arbitrate_among(&requesters) {
                let (iv, out_port, out_vc) = sa1[ip].expect("requester has an SA1 grant");
                if !out_port.is_local() {
                    let ovc = &mut self.outputs[out_port.index()][out_vc.index()];
                    debug_assert!(ovc.credits > 0, "SA granted without credit");
                    ovc.credits -= 1;
                }
                if traced {
                    let packet =
                        self.inputs[ip][iv.index()].buffer.front().map_or(0, |t| t.flit.packet.0);
                    sink.record(TraceEvent {
                        cycle,
                        router: self.id,
                        port: PortId(ip),
                        vc: iv,
                        kind: TraceEventKind::SwitchAlloc,
                        packet,
                        detail: out_port.index() as u32,
                    });
                }
                granted.push((ip, iv.index()));
                self.st_grants.push(StGrant { in_port: PortId(ip), in_vc: iv, out_port, out_vc });
            }
        }

        // Every eligible VC that did not get the switch stalled on
        // arbitration this cycle.
        for pair in eligible_all {
            if !granted.contains(&pair) {
                self.stalls.record(StallCause::SaLoss);
                if let Some(rec) = journeys.as_deref_mut() {
                    if let Some(t) = self.inputs[pair.0][pair.1].buffer.front() {
                        rec.on_stall(t.flit.packet, self.id, StallCause::SaLoss, t.flit.is_head());
                    }
                }
            }
        }
    }

    /// VA: two-stage virtual-channel allocation for VCs holding a routed
    /// head flit.
    ///
    /// Stall attribution for head flits waiting on a VC: requesters of an
    /// output VC still owned by another packet are charged `RouteBusy`;
    /// losers of the arbitration for a free VC are charged `VaLoss`.
    fn stage_va(
        &mut self,
        cycle: u64,
        counters: &mut ActivityCounters,
        sink: &mut dyn EventSink,
        mut journeys: Option<&mut JourneyRecorder>,
    ) {
        let traced = sink.enabled();
        // VA1: each waiting input VC selects its desired output VC — one
        // VC per traffic class (control / data), clamped to the available
        // VC count.
        let mut requests: Vec<Vec<(PortId, VcId)>> = vec![Vec::new(); self.ports * self.vcs];
        for ip in 0..self.ports {
            for iv in 0..self.vcs {
                let ivc = &self.inputs[ip][iv];
                if let VcState::WaitingVc { out_port } = ivc.state {
                    if !ivc.buffer.front_ready(cycle) {
                        continue;
                    }
                    let class =
                        ivc.buffer.front().expect("waiting VC holds a head flit").flit.class;
                    let out_vc = class.vc_index().min(self.vcs - 1);
                    counters.va1_arbitrations += 1;
                    requests[out_port.index() * self.vcs + out_vc].push((PortId(ip), VcId(iv)));
                }
            }
        }

        // VA2: arbitrate per (output port, output VC) among requesters.
        for op in 0..self.ports {
            for ov in 0..self.vcs {
                let reqs = &requests[op * self.vcs + ov];
                if reqs.is_empty() {
                    continue;
                }
                counters.va2_arbitrations += 1;
                if !self.outputs[op][ov].is_free() {
                    // The target VC is held by an in-flight packet: every
                    // requester stalls on route occupancy this cycle.
                    for &(rip, riv) in reqs {
                        self.stalls.record(StallCause::RouteBusy);
                        if let Some(rec) = journeys.as_deref_mut() {
                            let front = self.inputs[rip.index()][riv.index()].buffer.front();
                            if let Some(t) = front {
                                rec.on_stall(t.flit.packet, self.id, StallCause::RouteBusy, true);
                            }
                        }
                    }
                    continue;
                }
                let lines: Vec<usize> =
                    reqs.iter().map(|(ip, iv)| ip.index() * self.vcs + iv.index()).collect();
                if let Some(line) = self.va2_arbiters[op][ov].arbitrate_among(&lines) {
                    let (ip, iv) = (PortId(line / self.vcs), VcId(line % self.vcs));
                    self.outputs[op][ov].owner = Some((ip, iv));
                    self.inputs[ip.index()][iv.index()].state =
                        VcState::Active { out_port: PortId(op), out_vc: VcId(ov) };
                    if traced {
                        let packet = self.inputs[ip.index()][iv.index()]
                            .buffer
                            .front()
                            .map_or(0, |t| t.flit.packet.0);
                        sink.record(TraceEvent {
                            cycle,
                            router: self.id,
                            port: ip,
                            vc: iv,
                            kind: TraceEventKind::VcAlloc,
                            packet,
                            detail: op as u32,
                        });
                    }
                    // The remaining requesters lost the arbitration.
                    for &(rip, riv) in reqs {
                        if (rip, riv) != (ip, iv) {
                            self.stalls.record(StallCause::VaLoss);
                            if let Some(rec) = journeys.as_deref_mut() {
                                let front = self.inputs[rip.index()][riv.index()].buffer.front();
                                if let Some(t) = front {
                                    rec.on_stall(t.flit.packet, self.id, StallCause::VaLoss, true);
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// RC: route computation for VCs holding an unrouted head flit.
    ///
    /// With an adaptive topology ([`Topology::route_candidates`] returns
    /// more than one port) the stage selects the candidate whose output
    /// VCs hold the most credits — congestion-aware selection — with the
    /// model's preference order breaking ties.
    fn stage_rc(
        &mut self,
        cycle: u64,
        topo: &dyn Topology,
        counters: &mut ActivityCounters,
        sink: &mut dyn EventSink,
    ) {
        let traced = sink.enabled();
        for ip in 0..self.ports {
            for iv in 0..self.vcs {
                let ivc = &self.inputs[ip][iv];
                if ivc.state != VcState::Routing || !ivc.buffer.front_ready(cycle) {
                    continue;
                }
                let (packet, dst) = {
                    let head = &ivc.buffer.front().expect("routing VC holds a head flit").flit;
                    debug_assert!(head.is_head(), "routing state without a head flit");
                    (head.packet.0, head.dst)
                };
                let mut candidates = topo.route_candidates(self.id, dst);
                debug_assert!(!candidates.is_empty(), "routing produced no candidates");
                if self.fault_routing {
                    let masked = apply_fault_mask(&mut candidates, &self.dead_out);
                    // Also mask the backtrack port (the reverse of the
                    // edge the flit arrived on). Dimension-ordered routes
                    // are monotone and never backtrack, so this only
                    // fires for packets already detoured around a dead
                    // link — and for those it is what breaks the
                    // detour/return ping-pong livelock: the neighbour of
                    // a dead link would otherwise XY-route the packet
                    // straight back at the fault forever.
                    let backtracked = if ip != PortId::LOCAL.index() {
                        let before = candidates.len();
                        candidates.retain(|p| p.index() != ip);
                        candidates.len() != before
                    } else {
                        false
                    };
                    if candidates.is_empty() {
                        candidates.push(self.detour_port(topo, PortId(ip), dst));
                    }
                    if masked || backtracked {
                        self.reroutes += 1;
                    }
                }
                let out_port = if candidates.len() == 1 {
                    candidates[0]
                } else {
                    let credits_of = |p: PortId| -> usize {
                        self.outputs[p.index()].iter().map(|ovc| ovc.credits).sum()
                    };
                    // max_by_key returns the *last* maximum; iterate in
                    // reverse so ties resolve to the earliest (preferred)
                    // candidate.
                    candidates
                        .iter()
                        .rev()
                        .copied()
                        .max_by_key(|&p| credits_of(p))
                        .expect("non-empty candidates")
                };
                counters.rc_computations += 1;
                self.inputs[ip][iv].state = VcState::WaitingVc { out_port };
                if traced {
                    sink.record(TraceEvent {
                        cycle,
                        router: self.id,
                        port: PortId(ip),
                        vc: VcId(iv),
                        kind: TraceEventKind::RouteCompute,
                        packet,
                        detail: out_port.index() as u32,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetworkConfig;
    use crate::flit::{FlitData, FlitKind};
    use crate::packet::{PacketClass, PacketId};
    use crate::telemetry::NullSink;
    use crate::topology::Mesh2D;

    fn mk_cfg() -> NetworkConfig {
        NetworkConfig::default()
    }

    fn mk_head(dst: NodeId, class: PacketClass) -> Flit {
        Flit {
            packet: PacketId(1),
            seq: 0,
            kind: FlitKind::HeadTail,
            src: NodeId(0),
            dst,
            class,
            data: FlitData::dense(4),
            created_at: 0,
            hops: 0,
        }
    }

    /// A single-flit packet destined for the local node must traverse
    /// RC → VA → SA → ST in four successive cycles and then eject.
    #[test]
    fn single_flit_ejects_after_four_stages() {
        let topo = Mesh2D::new(2, 2);
        let cfg = mk_cfg();
        let mut r = Router::new(NodeId(0), 5, &cfg);
        let mut counters = ActivityCounters::new();
        let mut activity = RouterActivity::default();
        let mut ejected = Vec::new();
        let mut links: Vec<Link> = Vec::new();

        r.receive_flit(
            PortId::LOCAL,
            VcId(0),
            mk_head(NodeId(0), PacketClass::Ack),
            0,
            &mut counters,
            &mut activity,
        );

        for cycle in 0..=3 {
            r.step(
                cycle,
                &topo,
                &mut links,
                &mut counters,
                &mut activity,
                &mut ejected,
                &mut NullSink,
                None,
            );
        }
        assert_eq!(ejected.len(), 1, "RC@0, VA@1, SA@2, ST@3");
        assert_eq!(ejected[0].cycle, 3);
        assert_eq!(ejected[0].flit.hops, 0);
        assert!(r.is_quiescent());
        assert_eq!(counters.flits_ejected, 1);
        assert_eq!(counters.packets_ejected, 1);
        assert_eq!(counters.rc_computations, 1);
    }

    /// Two head flits contending for the same output VC are granted in
    /// successive cycles, not simultaneously.
    #[test]
    fn output_vc_is_exclusive() {
        let topo = Mesh2D::new(2, 2);
        let cfg = mk_cfg();
        let mut r = Router::new(NodeId(0), 5, &cfg);
        let mut counters = ActivityCounters::new();
        let mut activity = RouterActivity::default();
        let mut ejected = Vec::new();
        let mut links: Vec<Link> = Vec::new();

        // Two packets on different input VCs, both local-bound, same class
        // → same output VC.
        let mut f0 = mk_head(NodeId(0), PacketClass::Ack);
        f0.packet = PacketId(10);
        let mut f1 = mk_head(NodeId(0), PacketClass::Ack);
        f1.packet = PacketId(11);
        r.receive_flit(PortId::LOCAL, VcId(0), f0, 0, &mut counters, &mut activity);
        r.receive_flit(PortId(1), VcId(0), f1, 0, &mut counters, &mut activity);

        for cycle in 0..=5 {
            r.step(
                cycle,
                &topo,
                &mut links,
                &mut counters,
                &mut activity,
                &mut ejected,
                &mut NullSink,
                None,
            );
        }
        assert_eq!(ejected.len(), 2);
        // Ejections happen in different cycles (the single ejection VC
        // serialises the packets).
        assert_ne!(ejected[0].cycle, ejected[1].cycle);
    }

    /// Credits throttle forwarding: with a full downstream VC, nothing is
    /// granted until a credit returns.
    #[test]
    fn credits_gate_switch_allocation() {
        let topo = Mesh2D::new(2, 2);
        let cfg = mk_cfg();
        let mut r = Router::new(NodeId(0), 5, &cfg);
        let mut counters = ActivityCounters::new();
        let mut activity = RouterActivity::default();
        let mut ejected = Vec::new();
        // One outgoing link east (to node 1).
        let mut links = vec![Link::new((NodeId(0), PortId(1)), (NodeId(1), PortId(2)), 3.1)];
        r.set_out_link(PortId(1), 0);

        // Exhaust all credits on (east, vc0).
        r.outputs[1][0].credits = 0;

        let f = mk_head(NodeId(1), PacketClass::Ack);
        r.receive_flit(PortId::LOCAL, VcId(0), f, 0, &mut counters, &mut activity);
        for cycle in 0..10 {
            r.step(
                cycle,
                &topo,
                &mut links,
                &mut counters,
                &mut activity,
                &mut ejected,
                &mut NullSink,
                None,
            );
        }
        assert_eq!(links[0].flits_in_flight(), 0, "no credit, no traversal");

        // Return one credit; the flit must now flow.
        r.receive_credit(PortId(1), VcId(0));
        for cycle in 10..15 {
            r.step(
                cycle,
                &topo,
                &mut links,
                &mut counters,
                &mut activity,
                &mut ejected,
                &mut NullSink,
                None,
            );
        }
        assert_eq!(links[0].flits_in_flight(), 1);
        assert!(r.is_quiescent());
    }

    /// Layer shutdown scales the separable-module activity by the active
    /// fraction of the flit.
    #[test]
    fn shutdown_weights_separable_activity() {
        let topo = Mesh2D::new(2, 2);
        let mut cfg = mk_cfg();
        cfg.layer_shutdown = true;
        let mut r = Router::new(NodeId(0), 5, &cfg);
        let mut counters = ActivityCounters::new();
        let mut activity = RouterActivity::default();
        let mut ejected = Vec::new();
        let mut links: Vec<Link> = Vec::new();

        let mut f = mk_head(NodeId(0), PacketClass::Ack);
        f.data = FlitData::with_active_words(4, 1); // short flit
        r.receive_flit(PortId::LOCAL, VcId(0), f, 0, &mut counters, &mut activity);
        for cycle in 0..=3 {
            r.step(
                cycle,
                &topo,
                &mut links,
                &mut counters,
                &mut activity,
                &mut ejected,
                &mut NullSink,
                None,
            );
        }
        assert_eq!(counters.buffer_writes_raw, 1);
        assert!((counters.buffer_writes - 0.25).abs() < 1e-12);
        assert!((counters.buffer_reads - 0.25).abs() < 1e-12);
        assert!((counters.xbar_traversals - 0.25).abs() < 1e-12);
        // Non-separable logic is not gated: RC ran at full weight.
        assert_eq!(counters.rc_computations, 1);
    }

    /// With fault routing on, RC masks a dead output port and detours
    /// through the best live neighbour instead.
    #[test]
    fn dead_port_detours_route_computation() {
        let topo = Mesh2D::new(2, 2);
        let cfg = mk_cfg();
        let mut r = Router::new(NodeId(0), 5, &cfg);
        let mut counters = ActivityCounters::new();
        let mut activity = RouterActivity::default();
        let mut ejected = Vec::new();
        // Node 0 of the 2x2 mesh is wired east (port 1) and north (port 3).
        let mut links = vec![
            Link::new((NodeId(0), PortId(1)), (NodeId(1), PortId(2)), 3.1),
            Link::new((NodeId(0), PortId(3)), (NodeId(2), PortId(4)), 3.1),
        ];
        r.set_out_link(PortId(1), 0);
        r.set_out_link(PortId(3), 1);
        r.set_fault_routing(true);
        r.on_port_death(PortId(1));

        // Destination east of us: the deterministic route is through the
        // dead port, so the detour must pick north.
        let f = mk_head(NodeId(1), PacketClass::Ack);
        r.receive_flit(PortId::LOCAL, VcId(0), f, 0, &mut counters, &mut activity);
        r.step(
            0,
            &topo,
            &mut links,
            &mut counters,
            &mut activity,
            &mut ejected,
            &mut NullSink,
            None,
        );
        assert_eq!(
            r.inputs[0][0].state,
            VcState::WaitingVc { out_port: PortId(3) },
            "masked route falls back to the live north port"
        );
        assert_eq!(r.reroutes(), 1);
    }

    /// A dead port invalidates already-computed-but-not-granted routes:
    /// the VC is sent back to RC.
    #[test]
    fn port_death_restarts_waiting_vcs() {
        let cfg = mk_cfg();
        let mut r = Router::new(NodeId(0), 5, &cfg);
        r.inputs[0][0].state = VcState::WaitingVc { out_port: PortId(1) };
        r.inputs[2][1].state = VcState::WaitingVc { out_port: PortId(3) };
        r.on_port_death(PortId(1));
        assert_eq!(r.inputs[0][0].state, VcState::Routing, "route through dead port recomputed");
        assert_eq!(
            r.inputs[2][1].state,
            VcState::WaitingVc { out_port: PortId(3) },
            "routes through live ports keep their grant request"
        );
    }

    /// A paused link (retransmission backoff) blocks switch allocation
    /// toward it and charges the LinkFault stall cause.
    #[test]
    fn paused_link_stalls_sa_with_link_fault_cause() {
        let topo = Mesh2D::new(2, 2);
        let cfg = mk_cfg();
        let mut r = Router::new(NodeId(0), 5, &cfg);
        let mut counters = ActivityCounters::new();
        let mut activity = RouterActivity::default();
        let mut ejected = Vec::new();
        let mut links = vec![Link::new((NodeId(0), PortId(1)), (NodeId(1), PortId(2)), 3.1)];
        r.set_out_link(PortId(1), 0);
        r.set_link_paused(PortId(1), true);

        let f = mk_head(NodeId(1), PacketClass::Ack);
        r.receive_flit(PortId::LOCAL, VcId(0), f, 0, &mut counters, &mut activity);
        for cycle in 0..6 {
            r.step(
                cycle,
                &topo,
                &mut links,
                &mut counters,
                &mut activity,
                &mut ejected,
                &mut NullSink,
                None,
            );
        }
        assert_eq!(links[0].flits_in_flight(), 0, "paused link admits no traffic");
        assert!(r.stall_counters().link_fault > 0, "stall attributed to the link fault");

        r.set_link_paused(PortId(1), false);
        for cycle in 6..10 {
            r.step(
                cycle,
                &topo,
                &mut links,
                &mut counters,
                &mut activity,
                &mut ejected,
                &mut NullSink,
                None,
            );
        }
        assert_eq!(links[0].flits_in_flight(), 1, "unpausing releases the flit");
    }

    /// The severed-packet reaper drains buffered flits of a dropped
    /// packet, refluxes their credits upstream, and releases the held
    /// output VC.
    #[test]
    fn reaper_purges_severed_packet_and_refluxes_credits() {
        let cfg = mk_cfg();
        let mut r = Router::new(NodeId(0), 5, &cfg);
        let mut counters = ActivityCounters::new();
        let mut activity = RouterActivity::default();
        // Incoming link feeding port 2 (west side), for credit reflux.
        let mut links = vec![Link::new((NodeId(1), PortId(2)), (NodeId(0), PortId(1)), 3.1)];
        r.set_in_link(PortId(1), 0);

        let mut head = mk_head(NodeId(3), PacketClass::ReadRequest);
        head.kind = FlitKind::Head;
        head.packet = PacketId(42);
        let mut body = head.clone();
        body.kind = FlitKind::Body;
        body.seq = 1;
        r.receive_flit(PortId(1), VcId(0), head, 0, &mut counters, &mut activity);
        r.receive_flit(PortId(1), VcId(0), body, 0, &mut counters, &mut activity);
        // Pretend VA granted the east output VC to this packet.
        r.inputs[1][0].state = VcState::Active { out_port: PortId(1), out_vc: VcId(0) };
        r.outputs[1][0].owner = Some((PortId(1), VcId(0)));

        let severed: HashSet<PacketId> = [PacketId(42)].into_iter().collect();
        let purged = r.purge_severed(&severed, 5, &mut links);
        assert_eq!(purged, 2);
        assert_eq!(r.buffered_flits(), 0);
        assert_eq!(r.inputs[1][0].state, VcState::Idle);
        assert_eq!(r.inputs[1][0].current_packet, None);
        assert!(r.outputs[1][0].is_free(), "held output VC released");
        assert_eq!(
            links[0].take_due_credit(6).map(|c| c.vc),
            Some(VcId(0)),
            "credit refluxed per flit"
        );
        assert_eq!(links[0].take_due_credit(6).map(|c| c.vc), Some(VcId(0)));
        assert!(links[0].take_due_credit(6).is_none());
    }
}

#[cfg(test)]
mod pipeline_depth_tests {
    use super::*;
    use crate::config::{NetworkConfig, PipelineConfig, PipelineDepth};
    use crate::flit::{FlitData, FlitKind};
    use crate::packet::{PacketClass, PacketId};
    use crate::telemetry::NullSink;
    use crate::topology::Mesh2D;

    fn eject_cycle(depth: PipelineDepth) -> u64 {
        let topo = Mesh2D::new(2, 2);
        let mut cfg = NetworkConfig::default();
        cfg.router.pipeline = PipelineConfig::separate_lt().with_depth(depth);
        let mut r = Router::new(NodeId(0), 5, &cfg);
        let mut counters = ActivityCounters::new();
        let mut activity = RouterActivity::default();
        let mut ejected = Vec::new();
        let mut links: Vec<Link> = Vec::new();
        let flit = Flit {
            packet: PacketId(1),
            seq: 0,
            kind: FlitKind::HeadTail,
            src: NodeId(0),
            dst: NodeId(0),
            class: PacketClass::Ack,
            data: FlitData::dense(4),
            created_at: 0,
            hops: 0,
        };
        r.receive_flit(PortId::LOCAL, VcId(0), flit, 0, &mut counters, &mut activity);
        for cycle in 0..10 {
            r.step(
                cycle,
                &topo,
                &mut links,
                &mut counters,
                &mut activity,
                &mut ejected,
                &mut NullSink,
                None,
            );
            if let Some(e) = ejected.first() {
                return e.cycle;
            }
        }
        panic!("flit never ejected");
    }

    /// Uncontended head-flit pipeline occupancy matches Fig. 8: four,
    /// three, and two cycles from visibility to switch traversal.
    #[test]
    fn stage_counts_match_fig8() {
        assert_eq!(eject_cycle(PipelineDepth::FourStage), 3, "RC@0 VA@1 SA@2 ST@3");
        assert_eq!(eject_cycle(PipelineDepth::ThreeStageSpeculative), 2, "RC@0 VA+SA@1 ST@2");
        assert_eq!(eject_cycle(PipelineDepth::TwoStageLookahead), 1, "RC+VA+SA@0 ST@1");
    }
}
