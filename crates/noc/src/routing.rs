//! Deterministic dimension-ordered routing functions.
//!
//! All MIRA experiments use X-Y (2D) or X-Y-Z (3D) deterministic routing
//! (paper §4). Dimension-ordered routing on a mesh is deadlock-free
//! because the port-to-port dependence relation is acyclic: a packet only
//! ever turns from a lower-ordered dimension to a higher-ordered one, and
//! within a dimension it moves monotonically. The express variant keeps
//! the same dimension order and monotone progress, so the argument is
//! unchanged (express and regular channels of the same direction form a
//! DAG ordered by position).
//!
//! These functions are pure; the topologies in [`crate::topology`]
//! delegate to them.
//!
//! ## Fault-aware degradation
//!
//! Under fault injection ([`crate::fault`]) the router threads a
//! per-port liveness mask through route computation:
//! [`apply_fault_mask`] first strips dead output ports from the
//! candidate set; when that empties the set (the deterministic route
//! crossed the dead link, or an express channel died with no cardinal
//! candidate offered), the router falls back to a minimal detour over
//! the remaining live ports. Express links that die therefore degrade
//! to the baseline mesh path automatically: the cardinal port whose
//! neighbour minimises the remaining distance wins the detour.
//!
//! With a single failed link, the detour preserves deadlock freedom:
//! the only routers that can introduce a turn outside the X-before-Y
//! order are the (at most two) endpoints of the dead link, and a cycle
//! in the channel-dependence graph would require at least two distinct
//! illegal-turn sites in the same direction.

/// One routing step along a single dimension: the signed distance to
/// travel, reduced to a direction choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DimStep {
    /// Already aligned in this dimension.
    Done,
    /// Move in the positive direction.
    Positive,
    /// Move in the negative direction.
    Negative,
}

/// Chooses the step for one dimension given current and destination
/// coordinates.
#[inline]
pub fn dim_step(cur: usize, dst: usize) -> DimStep {
    use std::cmp::Ordering;
    match dst.cmp(&cur) {
        Ordering::Equal => DimStep::Done,
        Ordering::Greater => DimStep::Positive,
        Ordering::Less => DimStep::Negative,
    }
}

/// Whether an express channel of the given span should be taken for a
/// remaining absolute distance `dist` in a dimension.
///
/// The greedy rule from Dally's express cubes: ride the express channel
/// while the remaining distance is at least the span, then finish on
/// regular channels. This minimises hop count for a fixed span.
#[inline]
pub fn use_express(dist: usize, span: usize) -> bool {
    span > 1 && dist >= span
}

/// Minimum hop count along one dimension of length `dist` when an express
/// channel of `span` is available (span = 1 means no express channels).
#[inline]
pub fn dim_hops_with_express(dist: usize, span: usize) -> usize {
    if span <= 1 {
        dist
    } else {
        dist / span + dist % span
    }
}

/// Removes route candidates whose output port is dead (`dead_out[p]`).
///
/// Returns `true` when the mask removed at least one candidate — the
/// router counts these as reroutes and, when the set empties, engages
/// its detour fallback. Candidate order (the model's preference order)
/// is preserved.
pub fn apply_fault_mask(candidates: &mut Vec<crate::ids::PortId>, dead_out: &[bool]) -> bool {
    let before = candidates.len();
    candidates.retain(|p| !dead_out[p.index()]);
    candidates.len() != before
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim_step_directions() {
        assert_eq!(dim_step(2, 2), DimStep::Done);
        assert_eq!(dim_step(1, 4), DimStep::Positive);
        assert_eq!(dim_step(4, 1), DimStep::Negative);
    }

    #[test]
    fn express_threshold() {
        assert!(!use_express(1, 2));
        assert!(use_express(2, 2));
        assert!(use_express(5, 2));
        assert!(!use_express(10, 1), "span 1 means no express channels");
    }

    #[test]
    fn express_hop_counts() {
        // span 2 on distances 0..=5: 0,1,1,2,2,3
        let hops: Vec<_> = (0..=5).map(|d| dim_hops_with_express(d, 2)).collect();
        assert_eq!(hops, vec![0, 1, 1, 2, 2, 3]);
        // no express: identity
        assert_eq!(dim_hops_with_express(4, 1), 4);
    }

    #[test]
    fn fault_mask_strips_dead_ports_in_order() {
        use crate::ids::PortId;
        let dead = vec![false, true, false, false, true];
        let mut c = vec![PortId(1), PortId(3), PortId(4)];
        assert!(apply_fault_mask(&mut c, &dead));
        assert_eq!(c, vec![PortId(3)], "dead ports removed, order preserved");
        let mut c = vec![PortId(2), PortId(3)];
        assert!(!apply_fault_mask(&mut c, &dead), "no live candidate removed");
        assert_eq!(c.len(), 2);
        let mut c = vec![PortId(1)];
        assert!(apply_fault_mask(&mut c, &dead));
        assert!(c.is_empty(), "a fully dead set empties — the detour case");
    }

    #[test]
    fn greedy_express_matches_min_hops() {
        // Simulate the greedy walk and compare against the closed form.
        for span in 2..=3usize {
            for dist in 0..=12usize {
                let mut remaining = dist;
                let mut hops = 0;
                while remaining > 0 {
                    if use_express(remaining, span) {
                        remaining -= span;
                    } else {
                        remaining -= 1;
                    }
                    hops += 1;
                }
                assert_eq!(hops, dim_hops_with_express(dist, span), "span={span} dist={dist}");
            }
        }
    }
}
