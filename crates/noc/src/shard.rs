//! Intra-run sharded stepping (DESIGN.md §18): parallel cycle execution
//! of a single mesh, bit-identical at any worker count.
//!
//! The mesh is partitioned into contiguous spatial tiles of routers
//! (shard 0 runs on the calling thread, shards 1..N on a persistent
//! [`WorkerPool`]). Within one `Network::step`, each barrier-separated
//! phase runs the shard-local work in parallel and defers every
//! *globally ordered* effect — f64 activity-counter accumulation, trace
//! events, journey records, link sends, ejections — into a per-shard
//! log that the main thread replays in canonical (router- or link-
//! ascending) order. Commutative `u64` counters are summed from
//! per-shard [`PipelineTallies`] instead. The result is byte-identical
//! to the sequential path at every seam: the same f64 additions in the
//! same order, the same trace/journey event sequence, the same arena
//! free-list history.
//!
//! The seam itself is the [`StepFx`] trait: `Router::step` reports
//! every cross-router effect through it. [`DirectFx`] (the sequential
//! path) applies each effect immediately, reproducing the pre-shard
//! code exactly; [`DeferredFx`] (shard workers) appends [`Effect`]s to
//! the shard's log for ordered replay.

use std::any::Any;
use std::cell::UnsafeCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use crate::arena::{FlitArena, FlitRef};
use crate::ids::{NodeId, PortId, VcId};
use crate::journey::JourneyRecorder;
use crate::link::Link;
use crate::router::{EjectedFlit, StepScratch};
use crate::stats::ActivityCounters;
use crate::telemetry::{EventSink, StallCause, TraceEvent};

/// Hard cap on shard count (stack-allocated replay cursors; far above
/// any core count this simulator targets).
pub(crate) const MAX_SHARDS: usize = 64;

/// Commutative `u64` pipeline counters accumulated per shard and summed
/// into the global [`ActivityCounters`] after the barrier (integer
/// addition is order-free, so summing per-shard partials is
/// bit-identical to sequential accumulation).
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct PipelineTallies {
    pub rc: u64,
    pub va1: u64,
    pub va2: u64,
    pub sa1: u64,
    pub sa2: u64,
}

impl PipelineTallies {
    pub(crate) fn merge_into(&mut self, counters: &mut ActivityCounters) {
        counters.rc_computations += self.rc;
        counters.va1_arbitrations += self.va1;
        counters.va2_arbitrations += self.va2;
        counters.sa1_arbitrations += self.sa1;
        counters.sa2_arbitrations += self.sa2;
        *self = PipelineTallies::default();
    }
}

/// The effect seam of `Router::step`: every mutation of *shared* state
/// (arena, links, global counters, sink, journeys, ejection queue) goes
/// through these methods. Router-local state (VC pipeline, arbiter
/// state, stall counters, per-router activity) stays direct — it is
/// shard-owned either way.
pub(crate) trait StepFx {
    /// `true` when the event sink wants trace events.
    fn traced(&self) -> bool;
    /// `true` when a journey recorder is attached.
    fn journeys_on(&self) -> bool;
    /// Read access to the flit arena (the ST payload touch).
    fn arena(&self) -> &FlitArena;
    /// Length of link `li` in millimetres (read-only link access).
    fn link_length_mm(&self, li: usize) -> f64;
    /// Emits a trace event.
    fn trace(&mut self, ev: TraceEvent);
    /// Journey: head flit won the switch toward `out_port`.
    fn journey_st(&mut self, packet: crate::packet::PacketId, out_port: PortId, cycle: u64);
    /// Journey: flit stalled at `router` for `cause`.
    fn journey_stall(
        &mut self,
        packet: crate::packet::PacketId,
        router: NodeId,
        cause: StallCause,
        head: bool,
    );
    /// ST's buffer read + crossbar traversal (layer-weighted f64s —
    /// replay order matters).
    fn st_read(&mut self, fraction: f64);
    /// RC computation performed (u64 — commutative).
    fn count_rc(&mut self);
    /// VA1 arbitration performed.
    fn count_va1(&mut self);
    /// VA2 arbitration performed.
    fn count_va2(&mut self);
    /// SA1 arbitration performed.
    fn count_sa1(&mut self);
    /// SA2 arbitration performed.
    fn count_sa2(&mut self);
    /// Returns a credit upstream on link `li`.
    fn send_credit(&mut self, li: usize, vc: VcId, at: u64);
    /// Ejects the flit at `fref` at `node` (frees its arena slot).
    fn eject(&mut self, fref: FlitRef, node: NodeId, cycle: u64, tail: bool);
    /// Forwards the flit at `fref` onto link `li` (hop count, link
    /// energy, wire send).
    fn forward(&mut self, li: usize, fref: FlitRef, vc: VcId, at: u64, fraction: f64);
}

/// Immediate-application [`StepFx`]: the sequential path. Reproduces
/// the pre-shard `Router::step` side-effect order exactly — the golden
/// bit suites pin this.
pub(crate) struct DirectFx<'a> {
    pub arena: &'a mut FlitArena,
    pub links: &'a mut [Link],
    pub counters: &'a mut ActivityCounters,
    pub ejected: &'a mut Vec<EjectedFlit>,
    pub sink: &'a mut dyn EventSink,
    pub journeys: Option<&'a mut JourneyRecorder>,
}

impl StepFx for DirectFx<'_> {
    #[inline]
    fn traced(&self) -> bool {
        self.sink.enabled()
    }

    #[inline]
    fn journeys_on(&self) -> bool {
        self.journeys.is_some()
    }

    #[inline]
    fn arena(&self) -> &FlitArena {
        self.arena
    }

    #[inline]
    fn link_length_mm(&self, li: usize) -> f64 {
        self.links[li].length_mm
    }

    #[inline]
    fn trace(&mut self, ev: TraceEvent) {
        self.sink.record(ev);
    }

    #[inline]
    fn journey_st(&mut self, packet: crate::packet::PacketId, out_port: PortId, cycle: u64) {
        if let Some(rec) = self.journeys.as_deref_mut() {
            rec.on_st(packet, out_port, cycle);
        }
    }

    #[inline]
    fn journey_stall(
        &mut self,
        packet: crate::packet::PacketId,
        router: NodeId,
        cause: StallCause,
        head: bool,
    ) {
        if let Some(rec) = self.journeys.as_deref_mut() {
            rec.on_stall(packet, router, cause, head);
        }
    }

    #[inline]
    fn st_read(&mut self, fraction: f64) {
        self.counters.record_buffer_read(fraction);
        self.counters.record_xbar(fraction);
    }

    #[inline]
    fn count_rc(&mut self) {
        self.counters.rc_computations += 1;
    }

    #[inline]
    fn count_va1(&mut self) {
        self.counters.va1_arbitrations += 1;
    }

    #[inline]
    fn count_va2(&mut self) {
        self.counters.va2_arbitrations += 1;
    }

    #[inline]
    fn count_sa1(&mut self) {
        self.counters.sa1_arbitrations += 1;
    }

    #[inline]
    fn count_sa2(&mut self) {
        self.counters.sa2_arbitrations += 1;
    }

    #[inline]
    fn send_credit(&mut self, li: usize, vc: VcId, at: u64) {
        self.links[li].send_credit(vc, at);
    }

    #[inline]
    fn eject(&mut self, fref: FlitRef, node: NodeId, cycle: u64, tail: bool) {
        self.counters.flits_ejected += 1;
        if tail {
            self.counters.packets_ejected += 1;
        }
        self.ejected.push(EjectedFlit { flit: self.arena.take(fref), node, cycle });
    }

    #[inline]
    fn forward(&mut self, li: usize, fref: FlitRef, vc: VcId, at: u64, fraction: f64) {
        self.arena.get_mut(fref).hops += 1;
        self.counters.record_link(self.links[li].length_mm, fraction);
        self.links[li].send_flit(self.arena, fref, vc, at);
    }
}

/// One deferred pipeline effect, replayed by the main thread in shard
/// (= router-ascending) order. The replay applies exactly the sequence
/// of shared-state mutations [`DirectFx`] would have applied inline.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Effect {
    JourneySt { packet: crate::packet::PacketId, out_port: PortId },
    JourneyStall { packet: crate::packet::PacketId, router: NodeId, cause: StallCause, head: bool },
    StRead { fraction: f64 },
    Trace(TraceEvent),
    SendCredit { li: u32, vc: VcId, at: u64 },
    Eject { fref: FlitRef, node: NodeId, tail: bool },
    Forward { li: u32, fref: FlitRef, vc: VcId, at: u64, fraction: f64 },
}

/// Logging [`StepFx`] for shard workers: shared-state effects are
/// appended to the shard's log; commutative counters accumulate in the
/// shard's [`PipelineTallies`]. The arena and links are read-only here
/// (lengths and ST payload reads), which is what makes sharing them
/// across workers sound.
pub(crate) struct DeferredFx<'a> {
    pub arena: &'a FlitArena,
    pub links: &'a [Link],
    pub traced: bool,
    pub journeys_on: bool,
    pub log: &'a mut Vec<Effect>,
    pub t: &'a mut PipelineTallies,
}

impl StepFx for DeferredFx<'_> {
    #[inline]
    fn traced(&self) -> bool {
        self.traced
    }

    #[inline]
    fn journeys_on(&self) -> bool {
        self.journeys_on
    }

    #[inline]
    fn arena(&self) -> &FlitArena {
        self.arena
    }

    #[inline]
    fn link_length_mm(&self, li: usize) -> f64 {
        self.links[li].length_mm
    }

    #[inline]
    fn trace(&mut self, ev: TraceEvent) {
        self.log.push(Effect::Trace(ev));
    }

    #[inline]
    fn journey_st(&mut self, packet: crate::packet::PacketId, out_port: PortId, _cycle: u64) {
        if self.journeys_on {
            self.log.push(Effect::JourneySt { packet, out_port });
        }
    }

    #[inline]
    fn journey_stall(
        &mut self,
        packet: crate::packet::PacketId,
        router: NodeId,
        cause: StallCause,
        head: bool,
    ) {
        if self.journeys_on {
            self.log.push(Effect::JourneyStall { packet, router, cause, head });
        }
    }

    #[inline]
    fn st_read(&mut self, fraction: f64) {
        self.log.push(Effect::StRead { fraction });
    }

    #[inline]
    fn count_rc(&mut self) {
        self.t.rc += 1;
    }

    #[inline]
    fn count_va1(&mut self) {
        self.t.va1 += 1;
    }

    #[inline]
    fn count_va2(&mut self) {
        self.t.va2 += 1;
    }

    #[inline]
    fn count_sa1(&mut self) {
        self.t.sa1 += 1;
    }

    #[inline]
    fn count_sa2(&mut self) {
        self.t.sa2 += 1;
    }

    #[inline]
    fn send_credit(&mut self, li: usize, vc: VcId, at: u64) {
        self.log.push(Effect::SendCredit { li: li as u32, vc, at });
    }

    #[inline]
    fn eject(&mut self, fref: FlitRef, node: NodeId, _cycle: u64, tail: bool) {
        self.log.push(Effect::Eject { fref, node, tail });
    }

    #[inline]
    fn forward(&mut self, li: usize, fref: FlitRef, vc: VcId, at: u64, fraction: f64) {
        self.log.push(Effect::Forward { li: li as u32, fref, vc, at, fraction });
    }
}

/// A flit delivered off a link by a phase-1 worker: the buffer push
/// happened in place (the destination router is shard-owned); the
/// globally ordered remainder — trace event, journey arrival, the f64
/// buffer-write counter — replays from this entry in link order.
#[derive(Debug, Clone, Copy)]
pub(crate) struct P1Flit {
    pub li: u32,
    pub fraction: f64,
    pub packet: crate::packet::PacketId,
    pub dst: NodeId,
    pub port: PortId,
    pub vc: VcId,
    pub head: bool,
}

/// A credit popped off a link by a phase-1 worker; the upstream
/// `receive_credit` (and its trace event) replays in link order.
#[derive(Debug, Clone, Copy)]
pub(crate) struct P1Credit {
    pub li: u32,
    pub vc: VcId,
}

/// A flit injected by a phase-4 (NIC) worker; the `flits_injected`
/// count, journey record, trace event, and f64 buffer-write counter
/// replay in node order.
#[derive(Debug, Clone, Copy)]
pub(crate) struct NicEntry {
    pub node: NodeId,
    pub vc: VcId,
    pub packet: crate::packet::PacketId,
    pub head: bool,
    pub fraction: f64,
}

/// Static shard partition: contiguous router ranges plus the link
/// ownership derived from them. A link is *owned* (popped) by the shard
/// of its destination router, so a phase-1 worker delivers flits only
/// into routers it owns and every link is touched by exactly one
/// worker.
#[derive(Debug)]
pub(crate) struct ShardPlan {
    /// Half-open router ranges `[start, end)`, one per shard,
    /// contiguous and balanced.
    pub ranges: Vec<(usize, usize)>,
    /// Owning shard per link (shard of `link.to`), ascending link id
    /// within each shard's list.
    pub link_owner: Vec<u32>,
    /// Links owned by each shard, ascending.
    pub links_of: Vec<Vec<u32>>,
}

impl ShardPlan {
    pub(crate) fn new(routers: usize, links: &[Link], shards: usize) -> Self {
        let ranges: Vec<(usize, usize)> =
            (0..shards).map(|s| (s * routers / shards, (s + 1) * routers / shards)).collect();
        let owner_of = |node: usize| -> u32 {
            ranges
                .iter()
                .position(|&(a, b)| node >= a && node < b)
                .expect("router outside every shard range") as u32
        };
        let mut link_owner = Vec::with_capacity(links.len());
        let mut links_of: Vec<Vec<u32>> = vec![Vec::new(); shards];
        for (li, l) in links.iter().enumerate() {
            let w = owner_of(l.to.0.index());
            link_owner.push(w);
            links_of[w as usize].push(li as u32);
        }
        ShardPlan { ranges, link_owner, links_of }
    }
}

/// Per-shard working memory, reused every cycle (cleared keeping
/// capacity — the steady-state step loop stays allocation-free).
#[derive(Debug)]
pub(crate) struct ShardCtx {
    pub scratch: StepScratch,
    pub tallies: PipelineTallies,
    pub fx_log: Vec<Effect>,
    pub p1_flits: Vec<P1Flit>,
    pub p1_credits: Vec<P1Credit>,
    pub nic_log: Vec<NicEntry>,
}

impl ShardCtx {
    fn new(range_len: usize, owned_links: usize, radix: usize, vcs: usize, depth: usize) -> Self {
        ShardCtx {
            scratch: StepScratch::new(radix, vcs),
            tallies: PipelineTallies::default(),
            // Upper bounds with headroom: one ST grant per output port
            // per router per cycle, each producing a handful of effects
            // (plus stall/trace records under contention).
            fx_log: Vec::with_capacity(range_len * radix * 8),
            // At most one due flit and a couple of credits per link per
            // fault-free cycle.
            p1_flits: Vec::with_capacity(owned_links * 2 + 8),
            p1_credits: Vec::with_capacity(owned_links * 2 + 8),
            nic_log: Vec::with_capacity(range_len * vcs * depth + 8),
        }
    }

    pub(crate) fn clear(&mut self) {
        self.fx_log.clear();
        self.p1_flits.clear();
        self.p1_credits.clear();
        self.nic_log.clear();
    }
}

type JobPtr = *const (dyn Fn(usize) + Sync);

/// State shared between the dispatching thread and the pool workers.
struct PoolShared {
    /// Bumped once per dispatch; workers spin on it.
    epoch: AtomicU64,
    /// Workers that finished the current epoch (every worker bumps it,
    /// panicking or not — the join must never deadlock).
    done: AtomicU64,
    /// The current job, valid for the duration of one epoch.
    job: UnsafeCell<Option<JobPtr>>,
    shutdown: AtomicBool,
    /// Set when `panic` holds a payload (checked without locking on the
    /// per-dispatch fast path).
    panicked: AtomicBool,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Busy-wait iterations before falling back to `yield_now`. Zero on
    /// oversubscribed hosts (fewer CPUs than pool threads), where
    /// spinning only steals the core the other threads need.
    spin_limit: u32,
}

// The job pointer is only written between epochs (before the Release
// bump) and only read after the Acquire load of the new epoch; the
// pointee outlives the epoch because `run` joins before returning.
unsafe impl Send for PoolShared {}
unsafe impl Sync for PoolShared {}

/// A persistent spin-then-yield worker pool. Shard 0 is the calling
/// thread; workers carry shard indices `1..=N-1`. Dispatch and join are
/// allocation-free (the zero-alloc suite covers the sharded step).
pub(crate) struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool").field("workers", &self.handles.len()).finish()
    }
}

const SPIN_LIMIT: u32 = 1 << 14;

impl WorkerPool {
    /// Spawns `workers` threads carrying shard indices `1..=workers`.
    pub(crate) fn new(workers: usize) -> Self {
        // The pool runs `workers + 1` threads per dispatch (the caller
        // is shard 0). With at least that many CPUs, spinning keeps the
        // barrier latency in the nanoseconds; with fewer, every spin
        // iteration delays the very thread the barrier is waiting on.
        let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
        let spin_limit = if cpus > workers { SPIN_LIMIT } else { 0 };
        let shared = Arc::new(PoolShared {
            epoch: AtomicU64::new(0),
            done: AtomicU64::new(0),
            job: UnsafeCell::new(None),
            shutdown: AtomicBool::new(false),
            panicked: AtomicBool::new(false),
            panic: Mutex::new(None),
            spin_limit,
        });
        let handles = (1..=workers)
            .map(|idx| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("mira-shard-{idx}"))
                    .spawn(move || worker_loop(&shared, idx))
                    .expect("spawn shard worker")
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Runs `f(shard)` for every shard: `f(0)` on the calling thread,
    /// `f(1..=workers)` on the pool, and returns after all complete. A
    /// panic on any shard is re-raised here (the caller's panic first)
    /// after the barrier, so the pool never deadlocks on a poisoned
    /// epoch.
    pub(crate) fn run(&self, f: &(dyn Fn(usize) + Sync)) {
        let shared = &*self.shared;
        shared.done.store(0, Ordering::Relaxed);
        // Erase the borrow lifetime: the job pointer is only dereferenced
        // between the epoch bump below and the join, while `f` is live.
        let erased: JobPtr = unsafe { std::mem::transmute(std::ptr::from_ref(f)) };
        unsafe { *shared.job.get() = Some(erased) };
        shared.epoch.fetch_add(1, Ordering::Release);

        let main_result = catch_unwind(AssertUnwindSafe(|| f(0)));

        let workers = self.handles.len() as u64;
        let mut spins = 0u32;
        while shared.done.load(Ordering::Acquire) != workers {
            spins += 1;
            if spins < shared.spin_limit {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        if let Err(p) = main_result {
            resume_unwind(p);
        }
        if shared.panicked.swap(false, Ordering::Acquire) {
            let payload = shared
                .panic
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .take()
                .expect("panicked flag set without a payload");
            resume_unwind(payload);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.shared.epoch.fetch_add(1, Ordering::Release);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &PoolShared, idx: usize) {
    // Worker-side phase scopes must not double-charge the sections the
    // main thread already times around dispatch + join.
    mira_obs::phase::set_worker_thread(true);
    let mut seen = 0u64;
    loop {
        let mut spins = 0u32;
        loop {
            let e = shared.epoch.load(Ordering::Acquire);
            if e != seen {
                seen = e;
                break;
            }
            spins += 1;
            if spins < shared.spin_limit {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        let job = unsafe { (*shared.job.get()).expect("epoch bumped without a job") };
        let f = unsafe { &*job };
        if let Err(p) = catch_unwind(AssertUnwindSafe(|| f(idx))) {
            *shared.panic.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = Some(p);
            shared.panicked.store(true, Ordering::Release);
        }
        shared.done.fetch_add(1, Ordering::Release);
    }
}

/// Everything the sharded step needs, built once by
/// `Network::set_shards` and reused every cycle.
#[derive(Debug)]
pub(crate) struct ShardRuntime {
    pub shards: usize,
    pub plan: ShardPlan,
    pub pool: WorkerPool,
    pub ctxs: Vec<ShardCtx>,
}

impl ShardRuntime {
    pub(crate) fn new(
        shards: usize,
        routers: usize,
        links: &[Link],
        radix: usize,
        vcs: usize,
        depth: usize,
    ) -> Self {
        assert!((2..=MAX_SHARDS).contains(&shards), "shard count out of range");
        let plan = ShardPlan::new(routers, links, shards);
        let ctxs = (0..shards)
            .map(|s| {
                let (a, b) = plan.ranges[s];
                ShardCtx::new(b - a, plan.links_of[s].len(), radix, vcs, depth)
            })
            .collect();
        ShardRuntime { shards, plan, pool: WorkerPool::new(shards - 1), ctxs }
    }
}

/// A raw pointer that asserts cross-thread shareability. Soundness is
/// the dispatcher's obligation: every sharded phase hands each worker a
/// disjoint slice of the pointee (routers, activity, NICs, contexts, or
/// links partitioned by owner).
pub(crate) struct SyncPtr<T: ?Sized>(pub *mut T);

// Manual impls: the derives would bound on `T: Copy`, but the wrapper
// copies the pointer, not the pointee.
impl<T: ?Sized> Clone for SyncPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: ?Sized> Copy for SyncPtr<T> {}

unsafe impl<T: ?Sized> Send for SyncPtr<T> {}
unsafe impl<T: ?Sized> Sync for SyncPtr<T> {}

impl<T: ?Sized> SyncPtr<T> {
    /// The wrapped pointer. A method (not field access) so closures
    /// capture the `Sync` wrapper rather than disjointly capturing the
    /// raw pointer, which is `!Sync`.
    #[inline]
    pub(crate) fn get(self) -> *mut T {
        self.0
    }
}

/// Shared-read twin of [`SyncPtr`].
pub(crate) struct SyncConstPtr<T: ?Sized>(pub *const T);

impl<T: ?Sized> Clone for SyncConstPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: ?Sized> Copy for SyncConstPtr<T> {}

unsafe impl<T: ?Sized> Send for SyncConstPtr<T> {}
unsafe impl<T: ?Sized> Sync for SyncConstPtr<T> {}

impl<T: ?Sized> SyncConstPtr<T> {
    /// The wrapped pointer (see [`SyncPtr::get`] for why a method).
    #[inline]
    pub(crate) fn get(self) -> *const T {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn pool_runs_every_shard_and_joins() {
        let pool = WorkerPool::new(3);
        let hits = [const { AtomicUsize::new(0) }; 4];
        for round in 1..=5usize {
            pool.run(&|s| {
                hits[s].fetch_add(s + 1, Ordering::Relaxed);
            });
            for (s, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), (s + 1) * round, "shard {s} round {round}");
            }
        }
    }

    #[test]
    fn pool_propagates_worker_panic_without_deadlock() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(&|s| {
                if s == 2 {
                    panic!("shard 2 exploded");
                }
            });
        }));
        assert!(result.is_err(), "worker panic must surface on the dispatcher");
        // The pool survives the panic: the next dispatch still works.
        let ok = AtomicUsize::new(0);
        pool.run(&|_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn plan_partitions_routers_and_links_exactly_once() {
        use crate::ids::{NodeId, PortId};
        let links: Vec<Link> = (0..12)
            .map(|i| Link::new((NodeId(i % 9), PortId(1)), (NodeId((i + 1) % 9), PortId(2)), 1.0))
            .collect();
        let plan = ShardPlan::new(9, &links, 4);
        assert_eq!(plan.ranges.first(), Some(&(0, 2)));
        assert_eq!(plan.ranges.last(), Some(&(6, 9)));
        let covered: usize = plan.ranges.iter().map(|(a, b)| b - a).sum();
        assert_eq!(covered, 9, "every router in exactly one shard");
        let mut seen = vec![0u32; links.len()];
        for (w, ls) in plan.links_of.iter().enumerate() {
            let mut prev = None;
            for &li in ls {
                assert_eq!(plan.link_owner[li as usize], w as u32);
                assert!(prev.is_none_or(|p| p < li), "per-shard link list ascending");
                prev = Some(li);
                seen[li as usize] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "every link owned exactly once");
    }
}
