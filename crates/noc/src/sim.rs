//! The simulation driver: warm-up, measurement, and drain phases.
//!
//! [`Simulator`] owns a [`Network`] and drives it against a [`Workload`]:
//!
//! 1. **warm-up** — traffic flows but nothing is recorded, letting the
//!    network reach steady state;
//! 2. **measurement** — packets created in this window are tracked; their
//!    latency, hop counts and the datapath activity feed the report;
//! 3. **drain** — generation stops and the simulator runs until every
//!    measured packet has ejected or the drain budget is exhausted
//!    (the latter indicates saturation).
//!
//! Latency is measured from packet creation (entering the source queue)
//! to the tail flit's ejection, so source queueing delay is included —
//! matching how latency-vs-injection curves in the paper blow up at
//! saturation.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use serde::{Deserialize, Serialize};

use crate::anomaly::{AnomalyAbort, AnomalyConfig, AnomalyCounts, AnomalyKind};
use crate::config::NetworkConfig;
use crate::fault::{FaultConfig, FaultCounters};
use crate::journey::{JourneyReport, PacketJourney};
use crate::network::Network;
use crate::packet::{Packet, PacketClass, PacketId, PacketSpec};
use crate::recorder::{self, FlightRecorder, StuckPacket};
use crate::stats::{
    ActivityCounters, LatencyHistogram, LatencyStats, PerClassLatency, RouterActivity,
};
use crate::telemetry::{MetricsWindow, StallCounters, TelemetryConfig, TraceSink};
use crate::topology::Topology;
use crate::traffic::{EjectedPacket, Workload};

/// Phase lengths for a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Cycles before measurement starts.
    pub warmup_cycles: u64,
    /// Cycles during which created packets are measured.
    pub measure_cycles: u64,
    /// Maximum extra cycles to wait for measured packets to drain.
    pub drain_cycles: u64,
    /// Telemetry switches (event tracing and windowed metrics; both off
    /// by default — the zero-overhead path).
    pub telemetry: TelemetryConfig,
    /// Fault-injection switches (off by default — the zero-overhead
    /// path, bit-identical to a build without the fault subsystem).
    pub faults: FaultConfig,
    /// Anomaly-detector thresholds (all off by default — the
    /// zero-overhead path: no recorder is constructed and the run is
    /// bit-identical to a build without the anomaly subsystem).
    pub anomaly: AnomalyConfig,
    /// Intra-run shard count for parallel cycle execution (DESIGN.md
    /// §18). `0` defers to the `MIRA_SHARDS` environment default applied
    /// by `Network::new`; any other value overrides it (`1` forces
    /// sequential stepping). Bit-identical at every count.
    pub shards: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            warmup_cycles: 1_000,
            measure_cycles: 5_000,
            drain_cycles: 20_000,
            telemetry: TelemetryConfig::disabled(),
            faults: FaultConfig::disabled(),
            anomaly: AnomalyConfig::disabled(),
            shards: 0,
        }
    }
}

impl SimConfig {
    /// A short configuration for unit tests.
    pub fn short() -> Self {
        SimConfig {
            warmup_cycles: 200,
            measure_cycles: 1_000,
            drain_cycles: 5_000,
            telemetry: TelemetryConfig::disabled(),
            faults: FaultConfig::disabled(),
            anomaly: AnomalyConfig::disabled(),
            shards: 0,
        }
    }

    /// The same phase lengths with different telemetry switches.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The same phase lengths with fault injection configured.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// The same phase lengths with anomaly detection configured.
    #[must_use]
    pub fn with_anomaly(mut self, anomaly: AnomalyConfig) -> Self {
        self.anomaly = anomaly;
        self
    }

    /// The same phase lengths with an explicit intra-run shard count.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }
}

/// Everything a run produces.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Mean packet latency in cycles over measured packets.
    pub avg_latency: f64,
    /// Mean hop count over measured packets.
    pub avg_hops: f64,
    /// Accepted throughput in flits/node/cycle during the measurement
    /// window.
    pub throughput: f64,
    /// Measured packets created.
    pub packets_created: u64,
    /// Measured packets that fully ejected.
    pub packets_ejected: u64,
    /// Measured packets dropped by the fault machinery (severed by a
    /// dead link or an exhausted retry budget). Zero when faults are
    /// off.
    pub packets_dropped: u64,
    /// `true` when the drain budget expired with measured packets still
    /// in flight — the network is past saturation at this load.
    pub saturated: bool,
    /// Fault and recovery accounting over the whole run (all zero when
    /// fault injection is off).
    pub faults: FaultCounters,
    /// Datapath activity during the measurement window only.
    pub counters: ActivityCounters,
    /// Latency statistics per packet class.
    pub per_class: PerClassLatency,
    /// Per-router datapath activity during the measurement window
    /// (spatial power distribution).
    pub per_router: Vec<RouterActivity>,
    /// Full latency distribution of measured packets.
    pub histogram: LatencyHistogram,
    /// Total cycles simulated (all phases).
    pub cycles_simulated: u64,
    /// Stall-cause counters over the measurement window, summed across
    /// routers (per-cause values sum to `stalls.stalled`).
    pub stalls: StallCounters,
    /// Closed metrics windows, when `SimConfig::telemetry` enabled them
    /// (covers all phases, not just measurement).
    pub windows: Vec<MetricsWindow>,
    /// Tail-latency attribution over sampled packet journeys, when
    /// `SimConfig::telemetry` enabled span sampling (covers all phases).
    pub journeys: Option<JourneyReport>,
    /// Per-kind anomaly-detector firing counts (all zero when detection
    /// is off or the run was clean).
    pub anomalies: AnomalyCounts,
}

impl SimReport {
    /// Latency statistics aggregated over all classes.
    pub fn latency(&self) -> LatencyStats {
        self.per_class.total()
    }
}

// Hand-written so a clean report's JSON stays byte-identical to the
// pre-anomaly format: `anomalies` is appended only when a detector
// actually fired (the golden-bits suites pin this).
impl Serialize for SimReport {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("avg_latency".to_string(), self.avg_latency.to_value()),
            ("avg_hops".to_string(), self.avg_hops.to_value()),
            ("throughput".to_string(), self.throughput.to_value()),
            ("packets_created".to_string(), self.packets_created.to_value()),
            ("packets_ejected".to_string(), self.packets_ejected.to_value()),
            ("packets_dropped".to_string(), self.packets_dropped.to_value()),
            ("saturated".to_string(), self.saturated.to_value()),
            ("faults".to_string(), self.faults.to_value()),
            ("counters".to_string(), self.counters.to_value()),
            ("per_class".to_string(), self.per_class.to_value()),
            ("per_router".to_string(), self.per_router.to_value()),
            ("histogram".to_string(), self.histogram.to_value()),
            ("cycles_simulated".to_string(), self.cycles_simulated.to_value()),
            ("stalls".to_string(), self.stalls.to_value()),
            ("windows".to_string(), self.windows.to_value()),
            ("journeys".to_string(), self.journeys.to_value()),
        ];
        if self.anomalies.total() > 0 {
            fields.push(("anomalies".to_string(), self.anomalies.to_value()));
        }
        serde::Value::Object(fields)
    }
}

impl Deserialize for SimReport {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        Ok(SimReport {
            avg_latency: f64::from_value(v.field("avg_latency"))?,
            avg_hops: f64::from_value(v.field("avg_hops"))?,
            throughput: f64::from_value(v.field("throughput"))?,
            packets_created: u64::from_value(v.field("packets_created"))?,
            packets_ejected: u64::from_value(v.field("packets_ejected"))?,
            packets_dropped: u64::from_value(v.field("packets_dropped"))?,
            saturated: bool::from_value(v.field("saturated"))?,
            faults: FaultCounters::from_value(v.field("faults"))?,
            counters: ActivityCounters::from_value(v.field("counters"))?,
            per_class: PerClassLatency::from_value(v.field("per_class"))?,
            per_router: Vec::from_value(v.field("per_router"))?,
            histogram: LatencyHistogram::from_value(v.field("histogram"))?,
            cycles_simulated: u64::from_value(v.field("cycles_simulated"))?,
            stalls: StallCounters::from_value(v.field("stalls"))?,
            windows: Vec::from_value(v.field("windows"))?,
            journeys: Option::from_value(v.field("journeys"))?,
            // Absent in pre-anomaly reports (and omitted for clean
            // runs): default to all-zero counts.
            anomalies: match v.field("anomalies") {
                serde::Value::Null => AnomalyCounts::default(),
                present => AnomalyCounts::from_value(present)?,
            },
        })
    }
}

#[derive(Debug, Clone)]
struct PacketMeta {
    class: PacketClass,
    src: crate::ids::NodeId,
    dst: crate::ids::NodeId,
    created_at: u64,
    len_flits: usize,
    measured: bool,
}

/// Pending closed-loop reply, ordered by due cycle (min-heap via
/// `Reverse`). The sequence number breaks ties deterministically.
type PendingReply = Reverse<(u64, u64)>;

/// Parses `MIRA_CHAOS_STALL_AT=<cycle>[:router]` — the chaos hook that
/// freezes one router's switch allocator at the given cycle, making
/// the no-progress watchdog deterministically testable. The router
/// defaults to the (roughly central) node `nodes / 2`, which uniform
/// traffic is guaranteed to cross. Malformed values are ignored: a
/// chaos hook must never turn a production run into a parse error.
fn chaos_stall_from_env(nodes: usize) -> Option<(u64, usize)> {
    let raw = std::env::var("MIRA_CHAOS_STALL_AT").ok()?;
    let (cycle_part, router_part) = match raw.split_once(':') {
        Some((c, r)) => (c, Some(r)),
        None => (raw.as_str(), None),
    };
    let cycle: u64 = cycle_part.trim().parse().ok()?;
    let router = match router_part {
        Some(r) => r.trim().parse().ok().filter(|&n: &usize| n < nodes)?,
        None => nodes / 2,
    };
    Some((cycle, router))
}

/// The simulation driver.
pub struct Simulator {
    network: Network,
    cfg: SimConfig,
    next_packet: u64,
    in_flight: HashMap<PacketId, PacketMeta>,
    pending_heap: BinaryHeap<PendingReply>,
    pending_specs: HashMap<(u64, u64), PacketSpec>,
    next_reply_seq: u64,
    /// Reused per-cycle ejection buffer (keeps the hot loop free of
    /// per-cycle `Vec` churn).
    eject_buf: Vec<crate::router::EjectedFlit>,
    /// The flight recorder, present only when `SimConfig::anomaly`
    /// arms a detector (the disabled path allocates nothing).
    recorder: Option<Box<FlightRecorder>>,
    /// Chaos hook: `(cycle, router)` at which to freeze one router's
    /// switch allocator (`MIRA_CHAOS_STALL_AT` or
    /// [`Simulator::set_chaos_stall`]).
    chaos_stall: Option<(u64, usize)>,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("network", &self.network)
            .field("config", &self.cfg)
            .finish_non_exhaustive()
    }
}

impl Simulator {
    /// Creates a simulator over `topo` with the given network and phase
    /// configuration.
    pub fn new(topo: Box<dyn Topology>, net_cfg: NetworkConfig, cfg: SimConfig) -> Self {
        let mut network = Network::new(topo, net_cfg);
        if cfg.shards > 0 {
            // An explicit count overrides the MIRA_SHARDS default that
            // Network::new may already have applied.
            network.set_shards(cfg.shards);
        }
        network.set_telemetry(cfg.telemetry);
        network.set_faults(cfg.faults).expect("invalid fault configuration");
        let recorder = if cfg.anomaly.is_enabled() {
            // The flight-recorder event ring is a plain TraceSink on
            // the existing sink seam; an explicitly configured trace
            // keeps priority (the recorder then reads that ring).
            if cfg.anomaly.ring_capacity > 0 && cfg.telemetry.trace_capacity == 0 {
                network.install_sink(Box::new(TraceSink::new(cfg.anomaly.ring_capacity)));
            }
            Some(Box::new(FlightRecorder::new(cfg.anomaly)))
        } else {
            None
        };
        let chaos_stall = chaos_stall_from_env(network.topology().num_nodes());
        Simulator {
            network,
            cfg,
            next_packet: 0,
            in_flight: HashMap::new(),
            pending_heap: BinaryHeap::new(),
            pending_specs: HashMap::new(),
            next_reply_seq: 0,
            eject_buf: Vec::new(),
            recorder,
            chaos_stall,
        }
    }

    /// Chaos hook: freezes `router`'s switch allocator at `cycle`
    /// (the programmatic twin of `MIRA_CHAOS_STALL_AT`, usable from
    /// parallel tests where env vars would race).
    pub fn set_chaos_stall(&mut self, cycle: u64, router: usize) {
        self.chaos_stall = Some((cycle, router));
    }

    /// Access to the underlying network (e.g. for counters).
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Mutable access to the underlying network (e.g. to install a
    /// custom event sink before running).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.network
    }

    /// The recorded event trace as Chrome trace-event JSON, when the run
    /// was configured with a non-zero trace capacity. When span sampling
    /// is also enabled, flow events linking each sampled packet's hops
    /// across routers are appended to the trace.
    pub fn trace_chrome_json(&self) -> Option<String> {
        let journeys = self.journeys();
        self.network.trace_sink().map(|t| {
            if journeys.is_empty() {
                t.to_chrome_trace()
            } else {
                t.to_chrome_trace_with_flows(journeys)
            }
        })
    }

    /// Completed journeys of sampled packets (empty when span sampling
    /// is off).
    pub fn journeys(&self) -> &[PacketJourney] {
        self.network.journeys().map_or(&[], |j| j.finished())
    }

    /// Packets injected but not yet fully ejected.
    pub fn in_flight_packets(&self) -> usize {
        self.in_flight.len()
    }

    /// In-flight packets that belong to the measurement window. After
    /// [`Simulator::run`] this is non-zero exactly when the report says
    /// `saturated` — the drain failed to empty the measured population.
    pub fn in_flight_measured(&self) -> usize {
        self.in_flight.values().filter(|m| m.measured).count()
    }

    /// Ids of every packet injected but not yet fully ejected, sorted —
    /// the set a black-box dump's stuck packets must match exactly.
    pub fn in_flight_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.in_flight.keys().map(|p| p.0).collect();
        ids.sort_unstable();
        ids
    }

    /// The flight recorder's per-kind firing counts (all zero when
    /// anomaly detection is off).
    pub fn anomaly_counts(&self) -> AnomalyCounts {
        self.recorder.as_ref().map(|r| r.counts()).unwrap_or_default()
    }

    /// Every detector firing so far, in order (empty when anomaly
    /// detection is off).
    pub fn anomalies_fired(&self) -> &[crate::anomaly::FiredDetector] {
        self.recorder.as_deref().map(FlightRecorder::fired).unwrap_or(&[])
    }

    fn inject(&mut self, spec: PacketSpec, cycle: u64, measured: bool) {
        let id = PacketId(self.next_packet);
        self.next_packet += 1;
        if let Some(j) = self.network.journeys_mut() {
            j.on_created(id, cycle, spec.class, measured);
        }
        self.in_flight.insert(
            id,
            PacketMeta {
                class: spec.class,
                src: spec.src,
                dst: spec.dst,
                created_at: cycle,
                len_flits: spec.payload.len(),
                measured,
            },
        );
        self.network.enqueue_packet(Packet {
            id,
            src: spec.src,
            dst: spec.dst,
            class: spec.class,
            payload: spec.payload,
            created_at: cycle,
        });
    }

    fn schedule_replies(&mut self, replies: Vec<(u64, PacketSpec)>, cycle: u64) {
        for (delay, spec) in replies {
            let due = cycle + delay.max(1);
            let seq = self.next_reply_seq;
            self.next_reply_seq += 1;
            self.pending_heap.push(Reverse((due, seq)));
            self.pending_specs.insert((due, seq), spec);
        }
    }

    fn inject_due_replies(&mut self, cycle: u64, measuring: bool) {
        while let Some(&Reverse((due, seq))) = self.pending_heap.peek() {
            if due > cycle {
                break;
            }
            self.pending_heap.pop();
            let spec = self.pending_specs.remove(&(due, seq)).expect("spec for pending reply");
            self.inject(spec, cycle, measuring);
        }
    }

    /// Processes ejections for one cycle; returns how many *measured*
    /// packets completed.
    fn process_ejections(
        &mut self,
        cycle: u64,
        workload: &mut dyn Workload,
        per_class: &mut PerClassLatency,
        histogram: &mut LatencyHistogram,
    ) -> u64 {
        let mut completed = 0;
        let mut ejected_flits = std::mem::take(&mut self.eject_buf);
        self.network.drain_ejected(&mut ejected_flits);
        for e in &ejected_flits {
            if e.flit.is_tail() {
                if let Some(j) = self.network.journeys_mut() {
                    j.on_ejected(e.flit.packet, e.cycle);
                }
            }
        }
        for e in &ejected_flits {
            if !e.flit.is_tail() {
                continue;
            }
            let Some(meta) = self.in_flight.remove(&e.flit.packet) else {
                // Only the fault machinery removes in-flight entries
                // early (packet drops); without it this is a bug.
                debug_assert!(self.network.faults_enabled(), "ejected packet was injected");
                continue;
            };
            let latency = e.cycle - meta.created_at;
            if meta.measured {
                per_class.record(meta.class, latency, e.flit.hops);
                histogram.record(latency);
                if let Some(rec) = self.recorder.as_deref_mut() {
                    rec.record_latency(latency);
                }
                completed += 1;
            }
            let ejected = EjectedPacket {
                id: e.flit.packet,
                src: meta.src,
                dst: meta.dst,
                class: meta.class,
                created_at: meta.created_at,
                ejected_at: e.cycle,
                hops: e.flit.hops,
                len_flits: meta.len_flits,
            };
            // Replies inherit measurement status from the window in
            // which they are eventually *injected* (see `run`), not the
            // window of this ejection.
            let replies = workload.on_ejected(e.cycle, &ejected);
            self.schedule_replies(replies, cycle);
        }
        ejected_flits.clear();
        self.eject_buf = ejected_flits;
        completed
    }

    /// Collects drop notifications from the fault machinery; returns
    /// how many *measured* packets were severed.
    fn process_drops(&mut self) -> u64 {
        let mut measured = 0;
        for pid in self.network.take_dropped() {
            if let Some(meta) = self.in_flight.remove(&pid) {
                if meta.measured {
                    measured += 1;
                }
            }
        }
        measured
    }

    /// Runs every armed anomaly detector for `cycle` and, when a
    /// halting no-progress trigger fires, captures the black box and
    /// unwinds with an [`AnomalyAbort`] carrying its rendered JSON.
    fn evaluate_anomalies(&mut self, cycle: u64) {
        let Some(rec) = self.recorder.as_deref_mut() else { return };
        let halting = rec.evaluate(&self.network, cycle);
        if halting != Some(AnomalyKind::NoProgress) || !rec.config().halt_on_no_progress {
            return;
        }
        // Stuck-packet set: everything injected but not yet ejected,
        // sorted by id so dumps are deterministic.
        let mut stuck: Vec<StuckPacket> = self
            .in_flight
            .iter()
            .map(|(pid, meta)| StuckPacket {
                packet: pid.0,
                class: format!("{:?}", meta.class),
                src: meta.src.index() as u64,
                dst: meta.dst.index() as u64,
                created_at: meta.created_at,
                age: cycle.saturating_sub(meta.created_at),
                len_flits: meta.len_flits as u64,
                journey: self.network.journeys().and_then(|j| j.open(*pid)).cloned(),
            })
            .collect();
        stuck.sort_unstable_by_key(|s| s.packet);
        let trigger = rec.fired().last().cloned().expect("no-progress fired without a record");
        let bb = recorder::capture(&self.network, cycle, trigger, rec.fired(), rec.counts(), stuck);
        let dump = serde_json::to_string_pretty(&bb).expect("black box serializes");
        std::panic::panic_any(AnomalyAbort { kind: AnomalyKind::NoProgress, cycle, dump });
    }

    /// Runs the workload through warm-up, measurement, and drain, and
    /// returns the report.
    pub fn run(&mut self, mut workload: Box<dyn Workload>) -> SimReport {
        workload.init(self.network.topology().num_nodes());

        let warm_end = self.cfg.warmup_cycles;
        let measure_end = warm_end + self.cfg.measure_cycles;
        let hard_end = measure_end + self.cfg.drain_cycles;

        let mut per_class = PerClassLatency::new();
        let mut histogram = LatencyHistogram::new();
        let mut counters_at_start = ActivityCounters::new();
        let mut activity_at_start: Vec<RouterActivity> = Vec::new();
        let mut stalls_at_start = StallCounters::new();
        let mut counters_at_measure_end: Option<ActivityCounters> = None;
        // warm_end == 0 means measurement starts immediately; the zeroed
        // defaults above are then the correct snapshot.
        let mut warm_snapshot_taken = warm_end == 0;
        let mut measured_created = 0u64;
        let mut measured_done = 0u64;
        let mut measured_dropped = 0u64;
        let mut cycle = 0u64;

        while cycle < hard_end {
            if !warm_snapshot_taken && cycle >= warm_end {
                counters_at_start = self.network.counters().clone();
                activity_at_start = self.network.router_activity().to_vec();
                stalls_at_start = self.network.stall_totals();
                warm_snapshot_taken = true;
            }
            if counters_at_measure_end.is_none() && cycle >= measure_end {
                counters_at_measure_end = Some(self.network.counters().clone());
            }
            let measuring = cycle >= warm_end && cycle < measure_end;

            {
                let _obs = mira_obs::phase::scope(mira_obs::phase::Phase::Workload);
                if cycle < measure_end {
                    for spec in workload.generate(cycle) {
                        self.inject(spec, cycle, measuring);
                        if measuring {
                            measured_created += 1;
                        }
                    }
                }
                // Replies due now are injected with the current window's
                // measurement status.
                self.inject_due_replies(cycle, measuring);
            }

            if let Some((at, node)) = self.chaos_stall {
                if cycle == at {
                    self.network.freeze_router_sa(node);
                }
            }

            self.network.step(cycle);
            {
                let _obs = mira_obs::phase::scope(mira_obs::phase::Phase::Ejection);
                measured_dropped += self.process_drops();
                measured_done +=
                    self.process_ejections(cycle, &mut *workload, &mut per_class, &mut histogram);
            }
            if self.recorder.is_some() {
                self.evaluate_anomalies(cycle);
            }

            cycle += 1;

            // Early exit once everything measured has drained (delivered
            // or dropped) and the measurement window is over.
            if cycle >= measure_end
                && measured_done + measured_dropped >= measured_created
                && self.network.is_drained()
            {
                break;
            }
        }

        if !warm_snapshot_taken {
            counters_at_start = self.network.counters().clone();
            activity_at_start = self.network.router_activity().to_vec();
            stalls_at_start = self.network.stall_totals();
        }
        let counters = self.network.counters().delta_since(&counters_at_start);
        let per_router: Vec<RouterActivity> = if activity_at_start.is_empty() {
            self.network.router_activity().to_vec()
        } else {
            self.network
                .router_activity()
                .iter()
                .zip(&activity_at_start)
                .map(|(now, then)| now.delta_since(then))
                .collect()
        };
        let total = per_class.total();
        let nodes = self.network.topology().num_nodes() as f64;
        // Accepted throughput: flits ejected during the *measurement
        // window only* (warm-end snapshot to measure-end snapshot), per
        // node per cycle — drain-phase activity is excluded so low-load
        // throughput is not biased down by idle drain cycles.
        let window = counters_at_measure_end
            .unwrap_or_else(|| self.network.counters().clone())
            .delta_since(&counters_at_start);
        let throughput = window.flits_ejected as f64 / ((window.cycles.max(1)) as f64 * nodes);

        SimReport {
            avg_latency: total.mean(),
            avg_hops: total.mean_hops(),
            throughput,
            packets_created: measured_created,
            packets_ejected: measured_done,
            packets_dropped: measured_dropped,
            saturated: measured_done + measured_dropped < measured_created,
            faults: self.network.fault_counters(),
            counters,
            per_class,
            per_router,
            histogram,
            cycles_simulated: cycle,
            stalls: self.network.stall_totals().delta_since(&stalls_at_start),
            windows: self.network.metrics_windows().to_vec(),
            journeys: self.network.journeys().map(|j| j.report()),
            anomalies: self.anomaly_counts(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use crate::topology::{ExpressMesh2D, Mesh2D};
    use crate::traffic::UniformRandom;

    fn run_ur(rate: f64, combined: bool) -> SimReport {
        let pipeline =
            if combined { PipelineConfig::combined_st_lt() } else { PipelineConfig::separate_lt() };
        let cfg = NetworkConfig::builder().pipeline(pipeline).build();
        let mut sim = Simulator::new(Box::new(Mesh2D::new(4, 4)), cfg, SimConfig::short());
        sim.run(Box::new(UniformRandom::new(rate, 5, 42)))
    }

    #[test]
    fn low_load_run_completes_and_measures() {
        let r = run_ur(0.02, false);
        assert!(!r.saturated, "2% load on a 4x4 mesh must not saturate");
        assert!(r.packets_created > 0);
        assert_eq!(r.packets_created, r.packets_ejected);
        assert!(r.avg_latency > 10.0, "got {}", r.avg_latency);
        assert!(r.avg_hops > 1.0 && r.avg_hops < 4.0, "got {}", r.avg_hops);
    }

    #[test]
    fn latency_monotone_in_load() {
        let lat_low = run_ur(0.02, false).avg_latency;
        let lat_mid = run_ur(0.15, false).avg_latency;
        assert!(lat_mid > lat_low, "latency must grow with load: {lat_low} vs {lat_mid}");
    }

    #[test]
    fn combined_pipeline_cuts_latency() {
        let sep = run_ur(0.05, false).avg_latency;
        let comb = run_ur(0.05, true).avg_latency;
        assert!(comb < sep, "combined {comb} must beat separate {sep}");
        // Roughly one cycle per hop: avg hops ≈ 2.5 on 4x4.
        assert!(sep - comb > 1.5, "saving too small: {}", sep - comb);
    }

    #[test]
    fn express_mesh_cuts_hops_and_latency() {
        let cfg = NetworkConfig::default();
        let mut mesh_sim = Simulator::new(Box::new(Mesh2D::new(6, 6)), cfg, SimConfig::short());
        let mesh = mesh_sim.run(Box::new(UniformRandom::new(0.05, 5, 42)));

        let mut exp_sim =
            Simulator::new(Box::new(ExpressMesh2D::new(6, 6)), cfg, SimConfig::short());
        let exp = exp_sim.run(Box::new(UniformRandom::new(0.05, 5, 42)));

        assert!(exp.avg_hops < mesh.avg_hops * 0.75, "{} vs {}", exp.avg_hops, mesh.avg_hops);
        assert!(exp.avg_latency < mesh.avg_latency, "{} vs {}", exp.avg_latency, mesh.avg_latency);
    }

    #[test]
    fn saturation_detected_at_overload() {
        // Offered load far above mesh capacity must be flagged.
        let mut sim = Simulator::new(
            Box::new(Mesh2D::new(4, 4)),
            NetworkConfig::default(),
            SimConfig {
                warmup_cycles: 100,
                measure_cycles: 500,
                drain_cycles: 300,
                ..SimConfig::default()
            },
        );
        let r = sim.run(Box::new(UniformRandom::new(0.9, 5, 42)));
        assert!(r.saturated);
        assert!(r.packets_ejected < r.packets_created);
    }

    #[test]
    fn throughput_tracks_offered_load_below_saturation() {
        let r = run_ur(0.1, false);
        assert!((r.throughput - 0.1).abs() < 0.02, "accepted {} vs offered 0.1", r.throughput);
    }

    #[test]
    fn deterministic_reports() {
        let a = run_ur(0.1, false);
        let b = run_ur(0.1, false);
        assert_eq!(a.avg_latency.to_bits(), b.avg_latency.to_bits());
        assert_eq!(a.counters, b.counters);
    }
}
