//! Simulation statistics: latency accounting and datapath activity
//! counters.
//!
//! The activity counters are the hand-off point to the Orion-style power
//! model (`mira-power`): every energy-relevant micro-architectural event
//! (buffer write/read, crossbar traversal, link traversal, arbitration) is
//! counted here. Events on the *separable* modules — buffer, crossbar,
//! link (paper §3.2) — are additionally accumulated with a **layer
//! weight**: the fraction of datapath layers the flit actually activated
//! under short-flit shutdown. With shutdown disabled the weight is 1.0 and
//! the weighted and raw counts coincide.

use serde::{Deserialize, Serialize};

use crate::packet::PacketClass;

/// Datapath activity accumulated over a simulation interval.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ActivityCounters {
    /// Cycles simulated.
    pub cycles: u64,
    /// Flits injected into the network (entered a local input buffer).
    pub flits_injected: u64,
    /// Flits ejected at their destination.
    pub flits_ejected: u64,
    /// Packets fully ejected (tail seen).
    pub packets_ejected: u64,

    /// Buffer write events, layer-weighted.
    pub buffer_writes: f64,
    /// Buffer write events, raw count.
    pub buffer_writes_raw: u64,
    /// Buffer read events, layer-weighted.
    pub buffer_reads: f64,
    /// Buffer read events, raw count.
    pub buffer_reads_raw: u64,
    /// Crossbar traversals, layer-weighted.
    pub xbar_traversals: f64,
    /// Crossbar traversals, raw count.
    pub xbar_traversals_raw: u64,
    /// Flit·millimetres travelled on inter-router links, layer-weighted.
    pub link_flit_mm: f64,
    /// Flit·millimetres travelled on inter-router links, raw.
    pub link_flit_mm_raw: f64,
    /// Link traversal events (flit crossing one link), raw.
    pub link_traversals_raw: u64,

    /// Route computations performed.
    pub rc_computations: u64,
    /// First-stage VC-allocation arbitrations.
    pub va1_arbitrations: u64,
    /// Second-stage VC-allocation arbitrations.
    pub va2_arbitrations: u64,
    /// First-stage switch-allocation arbitrations.
    pub sa1_arbitrations: u64,
    /// Second-stage switch-allocation arbitrations.
    pub sa2_arbitrations: u64,

    /// Sum over cycles of buffered flits network-wide (flit·cycles);
    /// divided by `cycles` and the total buffer capacity this is the
    /// mean buffer utilisation.
    pub buffer_occupancy_flit_cycles: u64,
}

impl ActivityCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a buffer write of a flit with the given active-layer
    /// fraction (1.0 when shutdown is off).
    pub fn record_buffer_write(&mut self, layer_fraction: f64) {
        self.buffer_writes += layer_fraction;
        self.buffer_writes_raw += 1;
    }

    /// Records a buffer read.
    pub fn record_buffer_read(&mut self, layer_fraction: f64) {
        self.buffer_reads += layer_fraction;
        self.buffer_reads_raw += 1;
    }

    /// Records a crossbar traversal.
    pub fn record_xbar(&mut self, layer_fraction: f64) {
        self.xbar_traversals += layer_fraction;
        self.xbar_traversals_raw += 1;
    }

    /// Records a flit crossing a link of `length_mm`.
    pub fn record_link(&mut self, length_mm: f64, layer_fraction: f64) {
        self.link_flit_mm += length_mm * layer_fraction;
        self.link_flit_mm_raw += length_mm;
        self.link_traversals_raw += 1;
    }

    /// Element-wise difference `self - earlier`, used to isolate the
    /// measurement window from warm-up activity.
    #[must_use]
    pub fn delta_since(&self, earlier: &ActivityCounters) -> ActivityCounters {
        ActivityCounters {
            cycles: self.cycles - earlier.cycles,
            flits_injected: self.flits_injected - earlier.flits_injected,
            flits_ejected: self.flits_ejected - earlier.flits_ejected,
            packets_ejected: self.packets_ejected - earlier.packets_ejected,
            buffer_writes: self.buffer_writes - earlier.buffer_writes,
            buffer_writes_raw: self.buffer_writes_raw - earlier.buffer_writes_raw,
            buffer_reads: self.buffer_reads - earlier.buffer_reads,
            buffer_reads_raw: self.buffer_reads_raw - earlier.buffer_reads_raw,
            xbar_traversals: self.xbar_traversals - earlier.xbar_traversals,
            xbar_traversals_raw: self.xbar_traversals_raw - earlier.xbar_traversals_raw,
            link_flit_mm: self.link_flit_mm - earlier.link_flit_mm,
            link_flit_mm_raw: self.link_flit_mm_raw - earlier.link_flit_mm_raw,
            link_traversals_raw: self.link_traversals_raw - earlier.link_traversals_raw,
            rc_computations: self.rc_computations - earlier.rc_computations,
            va1_arbitrations: self.va1_arbitrations - earlier.va1_arbitrations,
            va2_arbitrations: self.va2_arbitrations - earlier.va2_arbitrations,
            sa1_arbitrations: self.sa1_arbitrations - earlier.sa1_arbitrations,
            sa2_arbitrations: self.sa2_arbitrations - earlier.sa2_arbitrations,
            buffer_occupancy_flit_cycles: self.buffer_occupancy_flit_cycles
                - earlier.buffer_occupancy_flit_cycles,
        }
    }

    /// Mean network-wide buffer occupancy in flits (0.0 before any
    /// cycle ran).
    pub fn mean_buffer_occupancy_flits(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.buffer_occupancy_flit_cycles as f64 / self.cycles as f64
        }
    }

    /// Average active-layer fraction observed on buffer writes (1.0 when
    /// shutdown never gated anything).
    pub fn mean_layer_fraction(&self) -> f64 {
        if self.buffer_writes_raw == 0 {
            1.0
        } else {
            self.buffer_writes / self.buffer_writes_raw as f64
        }
    }
}

/// Online latency statistics (mean, extrema, count) for one packet class
/// or for all traffic.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    count: u64,
    sum: f64,
    min: u64,
    max: u64,
    hop_sum: u64,
}

impl LatencyStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        LatencyStats { count: 0, sum: 0.0, min: u64::MAX, max: 0, hop_sum: 0 }
    }

    /// Records one packet's latency (cycles) and hop count.
    pub fn record(&mut self, latency: u64, hops: u32) {
        self.count += 1;
        self.sum += latency as f64;
        self.min = self.min.min(latency);
        self.max = self.max.max(latency);
        self.hop_sum += u64::from(hops);
    }

    /// Number of packets recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in cycles (0.0 if nothing recorded).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Minimum latency (`None` if nothing recorded).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum latency (`None` if nothing recorded).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean hop count (0.0 if nothing recorded).
    pub fn mean_hops(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.hop_sum as f64 / self.count as f64
        }
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.hop_sum += other.hop_sum;
    }
}

/// Latency statistics broken out by packet class.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PerClassLatency {
    stats: Vec<LatencyStats>,
}

impl PerClassLatency {
    /// Creates accumulators for every [`PacketClass`].
    pub fn new() -> Self {
        PerClassLatency { stats: vec![LatencyStats::new(); PacketClass::ALL.len()] }
    }

    /// Records a packet.
    pub fn record(&mut self, class: PacketClass, latency: u64, hops: u32) {
        self.stats[class.table_index()].record(latency, hops);
    }

    /// Accumulator for one class.
    pub fn class(&self, class: PacketClass) -> &LatencyStats {
        &self.stats[class.table_index()]
    }

    /// Combined accumulator over all classes.
    pub fn total(&self) -> LatencyStats {
        let mut t = LatencyStats::new();
        for s in &self.stats {
            t.merge(s);
        }
        t
    }

    /// Merges another per-class accumulator into this one, class by
    /// class (aggregating parallel measurement windows).
    pub fn merge(&mut self, other: &PerClassLatency) {
        for (mine, theirs) in self.stats.iter_mut().zip(&other.stats) {
            mine.merge(theirs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_stats_mean_min_max() {
        let mut s = LatencyStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        s.record(10, 2);
        s.record(20, 4);
        s.record(30, 6);
        assert_eq!(s.count(), 3);
        assert!((s.mean() - 20.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(10));
        assert_eq!(s.max(), Some(30));
        assert!((s.mean_hops() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn merge_combines() {
        let mut a = LatencyStats::new();
        a.record(10, 1);
        let mut b = LatencyStats::new();
        b.record(30, 3);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.mean() - 20.0).abs() < 1e-12);
        assert_eq!(a.min(), Some(10));
        assert_eq!(a.max(), Some(30));
    }

    #[test]
    fn merge_empty_is_noop() {
        let mut a = LatencyStats::new();
        a.record(5, 1);
        let before = a.clone();
        a.merge(&LatencyStats::new());
        assert_eq!(a, before);
    }

    #[test]
    fn counters_layer_weighting() {
        let mut c = ActivityCounters::new();
        c.record_buffer_write(1.0);
        c.record_buffer_write(0.25);
        assert_eq!(c.buffer_writes_raw, 2);
        assert!((c.buffer_writes - 1.25).abs() < 1e-12);
        assert!((c.mean_layer_fraction() - 0.625).abs() < 1e-12);
    }

    #[test]
    fn counters_link_mm() {
        let mut c = ActivityCounters::new();
        c.record_link(3.1, 1.0);
        c.record_link(3.1, 0.25);
        assert_eq!(c.link_traversals_raw, 2);
        assert!((c.link_flit_mm - 3.1 * 1.25).abs() < 1e-12);
        assert!((c.link_flit_mm_raw - 6.2).abs() < 1e-12);
    }

    #[test]
    fn delta_isolates_window() {
        let mut c = ActivityCounters::new();
        c.record_xbar(1.0);
        c.cycles = 100;
        let snapshot = c.clone();
        c.record_xbar(0.5);
        c.record_xbar(0.5);
        c.cycles = 200;
        let d = c.delta_since(&snapshot);
        assert_eq!(d.cycles, 100);
        assert_eq!(d.xbar_traversals_raw, 2);
        assert!((d.xbar_traversals - 1.0).abs() < 1e-12);
    }

    #[test]
    fn per_class_totals() {
        let mut p = PerClassLatency::new();
        p.record(PacketClass::ReadRequest, 10, 2);
        p.record(PacketClass::DataResponse, 30, 4);
        assert_eq!(p.class(PacketClass::ReadRequest).count(), 1);
        assert_eq!(p.class(PacketClass::Ack).count(), 0);
        let t = p.total();
        assert_eq!(t.count(), 2);
        assert!((t.mean() - 20.0).abs() < 1e-12);
    }
}

/// Per-router activity (spatial breakdown of the global counters),
/// used to distribute network power over the chip floorplan for the
/// thermal analysis.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RouterActivity {
    /// Layer-weighted buffer accesses (writes + reads) at this router.
    pub buffer_events: f64,
    /// Layer-weighted crossbar traversals at this router.
    pub xbar_events: f64,
    /// Raw crossbar traversals (for the un-gated control overhead).
    pub xbar_events_raw: u64,
    /// Layer-weighted flit·mm driven onto this router's output links.
    pub link_flit_mm: f64,
}

impl RouterActivity {
    /// Element-wise difference `self - earlier` (measurement-window
    /// isolation, like [`ActivityCounters::delta_since`]).
    #[must_use]
    pub fn delta_since(&self, earlier: &RouterActivity) -> RouterActivity {
        RouterActivity {
            buffer_events: self.buffer_events - earlier.buffer_events,
            xbar_events: self.xbar_events - earlier.xbar_events,
            xbar_events_raw: self.xbar_events_raw - earlier.xbar_events_raw,
            link_flit_mm: self.link_flit_mm - earlier.link_flit_mm,
        }
    }

    /// A scalar proxy for this router's dynamic energy, used to compute
    /// relative power weights: component events priced with the given
    /// per-event energies.
    pub fn energy_proxy_j(
        &self,
        buffer_j: f64,
        xbar_j: f64,
        control_j: f64,
        link_j_per_mm: f64,
    ) -> f64 {
        self.buffer_events * buffer_j
            + self.xbar_events * xbar_j
            + self.xbar_events_raw as f64 * control_j
            + self.link_flit_mm * link_j_per_mm
    }
}

/// Normalises per-router energy proxies into power weights summing to 1
/// (uniform if the network saw no activity).
pub fn activity_weights(per_router: &[RouterActivity], energies: (f64, f64, f64, f64)) -> Vec<f64> {
    let (b, x, c, l) = energies;
    let proxies: Vec<f64> = per_router.iter().map(|a| a.energy_proxy_j(b, x, c, l)).collect();
    let total: f64 = proxies.iter().sum();
    if total <= 0.0 {
        vec![1.0 / per_router.len().max(1) as f64; per_router.len()]
    } else {
        proxies.iter().map(|p| p / total).collect()
    }
}

#[cfg(test)]
mod activity_tests {
    use super::*;

    #[test]
    fn energy_proxy_prices_components() {
        let a = RouterActivity {
            buffer_events: 2.0,
            xbar_events: 1.0,
            xbar_events_raw: 1,
            link_flit_mm: 3.0,
        };
        let e = a.energy_proxy_j(1.0, 10.0, 100.0, 1000.0);
        assert!((e - (2.0 + 10.0 + 100.0 + 3000.0)).abs() < 1e-12);
    }

    #[test]
    fn weights_sum_to_one() {
        let routers = vec![
            RouterActivity { buffer_events: 1.0, ..Default::default() },
            RouterActivity { buffer_events: 3.0, ..Default::default() },
        ];
        let w = activity_weights(&routers, (1.0, 1.0, 1.0, 1.0));
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((w[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn idle_network_gets_uniform_weights() {
        let routers = vec![RouterActivity::default(); 4];
        let w = activity_weights(&routers, (1.0, 1.0, 1.0, 1.0));
        assert!(w.iter().all(|&x| (x - 0.25).abs() < 1e-12));
    }
}

/// An exact latency histogram (cycle-resolution counts) with percentile
/// queries — the tail-latency view the mean hides near saturation.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    counts: std::collections::BTreeMap<u64, u64>,
    total: u64,
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: u64) {
        *self.counts.entry(latency).or_insert(0) += 1;
        self.total += 1;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by the nearest-rank method, `None`
    /// when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile in [0,1]");
        if self.total == 0 {
            return None;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0;
        for (&latency, &n) in &self.counts {
            seen += n;
            if seen >= rank {
                return Some(latency);
            }
        }
        unreachable!("rank {rank} within total {}", self.total)
    }

    /// Median latency.
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> Option<u64> {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> Option<u64> {
        self.quantile(0.999)
    }

    /// Mean of the samples.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: f64 = self.counts.iter().map(|(&l, &n)| l as f64 * n as f64).sum();
        sum / self.total as f64
    }

    /// Iterates `(latency, count)` in increasing latency order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().map(|(&l, &n)| (l, n))
    }

    /// Merges another histogram into this one (exact: bucket counts
    /// add, so quantiles over the merge equal quantiles over the
    /// concatenated samples).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (&latency, &n) in &other.counts {
            *self.counts.entry(latency).or_insert(0) += n;
        }
        self.total += other.total;
    }
}

#[cfg(test)]
mod histogram_tests {
    use super::*;

    #[test]
    fn quantiles_nearest_rank() {
        let mut h = LatencyHistogram::new();
        for v in [10, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.p50(), Some(50));
        assert_eq!(h.quantile(0.0), Some(10));
        assert_eq!(h.quantile(1.0), Some(100));
        assert_eq!(h.p95(), Some(100));
        assert_eq!(h.p99(), Some(100));
    }

    #[test]
    fn skewed_tail_shows_in_p99() {
        let mut h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(10);
        }
        h.record(1_000);
        assert_eq!(h.p50(), Some(10));
        assert_eq!(h.p99(), Some(10));
        assert_eq!(h.quantile(0.995), Some(1_000));
        assert!(h.mean() > 10.0);
    }

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::new();
        assert_eq!(h.p50(), None);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn duplicate_values_counted() {
        let mut h = LatencyHistogram::new();
        h.record(5);
        h.record(5);
        h.record(7);
        let pairs: Vec<_> = h.iter().collect();
        assert_eq!(pairs, vec![(5, 2), (7, 1)]);
        assert!((h.mean() - 17.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn invalid_quantile_panics() {
        let h = LatencyHistogram::new();
        let _ = h.quantile(1.5);
    }
}

/// Edge cases of the merge operations the parallel runner aggregates
/// with: empty inputs, single samples, and split-vs-serial windows.
#[cfg(test)]
mod merge_tests {
    use super::*;

    #[test]
    fn latency_stats_single_sample() {
        let mut s = LatencyStats::new();
        s.record(42, 3);
        assert_eq!(s.count(), 1);
        assert_eq!(s.min(), Some(42));
        assert_eq!(s.max(), Some(42));
        assert!((s.mean() - 42.0).abs() < 1e-12);
        assert!((s.mean_hops() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn merging_into_empty_equals_source() {
        let mut src = LatencyStats::new();
        src.record(7, 1);
        src.record(11, 2);
        let mut dst = LatencyStats::new();
        dst.merge(&src);
        assert_eq!(dst, src);
    }

    #[test]
    fn split_windows_merge_to_serial_stats() {
        // Record the same sample stream once serially and once split in
        // two windows; the merge must be exact, not approximate.
        let samples = [(3u64, 1u32), (9, 2), (27, 3), (81, 4), (5, 1)];
        let mut serial = LatencyStats::new();
        let (mut a, mut b) = (LatencyStats::new(), LatencyStats::new());
        for (i, &(lat, hops)) in samples.iter().enumerate() {
            serial.record(lat, hops);
            if i % 2 == 0 {
                a.record(lat, hops)
            } else {
                b.record(lat, hops)
            }
        }
        a.merge(&b);
        assert_eq!(a, serial);
    }

    #[test]
    fn per_class_merge_empty_and_split() {
        let mut serial = PerClassLatency::new();
        let (mut a, mut b) = (PerClassLatency::new(), PerClassLatency::new());
        serial.record(PacketClass::ReadRequest, 10, 2);
        a.record(PacketClass::ReadRequest, 10, 2);
        serial.record(PacketClass::DataResponse, 30, 4);
        b.record(PacketClass::DataResponse, 30, 4);
        // Merging an empty accumulator is a no-op.
        a.merge(&PerClassLatency::new());
        a.merge(&b);
        assert_eq!(a, serial);
        assert_eq!(a.total().count(), 2);
        assert_eq!(a.class(PacketClass::Ack).count(), 0);
    }

    #[test]
    fn histogram_merge_empty_single_and_split() {
        // Empty ⊕ empty stays empty.
        let mut empty = LatencyHistogram::new();
        empty.merge(&LatencyHistogram::new());
        assert_eq!(empty.count(), 0);
        assert_eq!(empty.p50(), None);

        // Empty ⊕ single-sample adopts the sample.
        let mut single = LatencyHistogram::new();
        single.record(17);
        empty.merge(&single);
        assert_eq!(empty.count(), 1);
        assert_eq!(empty.p50(), Some(17));
        assert_eq!(empty.quantile(1.0), Some(17));

        // Split windows merge to the serial histogram: same quantiles,
        // same buckets.
        let mut serial = LatencyHistogram::new();
        let (mut a, mut b) = (LatencyHistogram::new(), LatencyHistogram::new());
        for v in [10u64, 10, 20, 30, 30, 30, 90] {
            serial.record(v);
            if v < 25 {
                a.record(v)
            } else {
                b.record(v)
            }
        }
        a.merge(&b);
        assert_eq!(a, serial);
        assert_eq!(a.p50(), serial.p50());
        assert_eq!(a.quantile(0.99), serial.quantile(0.99));
        assert!((a.mean() - serial.mean()).abs() < 1e-12);
        let buckets: Vec<_> = a.iter().collect();
        assert_eq!(buckets, vec![(10, 2), (20, 1), (30, 3), (90, 1)]);
    }
}
