//! Cycle-level telemetry: pipeline event tracing, stall attribution, and
//! windowed per-router metrics.
//!
//! The simulator's end-of-run aggregates ([`crate::stats`]) say *how much*
//! a run cost; this module says *where the cycles went*. Three layers:
//!
//! 1. **Event tracing** — [`EventSink`] receives one [`TraceEvent`] per
//!    pipeline-stage occurrence (buffer write, RC, VA, SA, ST, credit
//!    return, layer gating). The default [`NullSink`] is inert and keeps
//!    the hot path identical to an untraced build; [`TraceSink`] records
//!    into a bounded ring buffer and exports Chrome trace-event JSON that
//!    Perfetto / `chrome://tracing` load directly (`pid` = router,
//!    `tid` = port, `ts` in cycles).
//!
//! 2. **Stall attribution** — every cycle in which a ready flit fails to
//!    advance is charged to exactly one [`StallCause`]: the head flit lost
//!    VC allocation (`VaLoss`), its target output VC was held by another
//!    packet (`RouteBusy`), the downstream buffer had no credit
//!    (`NoCredit`), or the flit lost switch allocation (`SaLoss`). The
//!    per-cause counters therefore sum to the total stalled VC-cycles —
//!    an invariant the property tests enforce.
//!
//! 3. **Windowed metrics** — with a non-zero
//!    [`TelemetryConfig::metrics_window`], the network closes a
//!    [`MetricsWindow`] every `W` cycles holding per-router buffer
//!    occupancy, per-port link utilisation, stall causes, and the
//!    per-layer shutdown duty cycle (the observable behind the paper's
//!    3DM short-flit gating claim).

use serde::{Deserialize, Serialize};

use crate::ids::{NodeId, PortId, VcId};
use crate::journey::PacketJourney;

/// What happened (one pipeline-stage occurrence).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEventKind {
    /// A flit was written into an input buffer (BW).
    BufferWrite,
    /// Route computation completed for a head flit (RC).
    RouteCompute,
    /// An output virtual channel was allocated (VA).
    VcAlloc,
    /// A switch-allocation grant was issued (SA).
    SwitchAlloc,
    /// A flit traversed the crossbar (ST; includes LT when combined).
    SwitchTraversal,
    /// A credit returned to an upstream output VC.
    CreditReturn,
    /// Layer shutdown gated one or more datapath layers for a flit.
    LayerGate,
    /// A fault fired: link corruption detected, a link died, or a stuck
    /// gate corrupted a delivery (`detail` = link index).
    FaultInject,
    /// The sender-side ARQ replayed its window (`detail` = flits
    /// resent).
    Retransmit,
    /// A packet was dropped: retries exhausted or lost to a dead link.
    PacketDrop,
}

impl TraceEventKind {
    /// Short display name (used as the trace-event `name`).
    pub const fn name(self) -> &'static str {
        match self {
            TraceEventKind::BufferWrite => "BW",
            TraceEventKind::RouteCompute => "RC",
            TraceEventKind::VcAlloc => "VA",
            TraceEventKind::SwitchAlloc => "SA",
            TraceEventKind::SwitchTraversal => "ST",
            TraceEventKind::CreditReturn => "credit",
            TraceEventKind::LayerGate => "layer_gate",
            TraceEventKind::FaultInject => "fault",
            TraceEventKind::Retransmit => "retransmit",
            TraceEventKind::PacketDrop => "drop",
        }
    }

    /// Trace-event category (`cat` field).
    const fn category(self) -> &'static str {
        match self {
            TraceEventKind::CreditReturn => "flow",
            TraceEventKind::LayerGate => "power",
            TraceEventKind::FaultInject
            | TraceEventKind::Retransmit
            | TraceEventKind::PacketDrop => "fault",
            _ => "pipeline",
        }
    }

    /// Whether the event occupies a cycle (rendered as a duration slice)
    /// or marks an instant.
    const fn is_duration(self) -> bool {
        !matches!(
            self,
            TraceEventKind::CreditReturn
                | TraceEventKind::LayerGate
                | TraceEventKind::FaultInject
                | TraceEventKind::Retransmit
                | TraceEventKind::PacketDrop
        )
    }
}

/// One telemetry event: a pipeline-stage occurrence at a (router, port,
/// VC) in a given cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Simulation cycle of the event.
    pub cycle: u64,
    /// Router at which it happened (trace `pid`).
    pub router: NodeId,
    /// Port involved (trace `tid`): the input port for pipeline stages,
    /// the output port for credit returns.
    pub port: PortId,
    /// Virtual channel involved.
    pub vc: VcId,
    /// Stage / occurrence kind.
    pub kind: TraceEventKind,
    /// Owning packet id (0 for events with no packet, e.g. credits).
    pub packet: u64,
    /// Kind-specific detail: output port for `SwitchTraversal`, number of
    /// gated layers for `LayerGate`, 0 otherwise.
    pub detail: u32,
}

/// Receiver of telemetry events.
///
/// Implementations must be purely observational: recording an event may
/// never influence simulation behaviour, so a run with any sink installed
/// is bit-identical to a [`NullSink`] run.
pub trait EventSink {
    /// `false` lets emitters skip event construction entirely — the
    /// hot-path guard that makes the [`NullSink`] free.
    fn enabled(&self) -> bool;
    /// Records one event.
    fn record(&mut self, event: TraceEvent);
    /// Downcast hook: the installed sink as a [`TraceSink`], if it is one.
    fn as_trace(&self) -> Option<&TraceSink> {
        None
    }
}

/// The inert default sink: records nothing, reports `enabled() == false`.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _event: TraceEvent) {}
}

/// A bounded ring buffer of trace events.
///
/// Once `capacity` events are held, each new event overwrites the oldest
/// — no reallocation ever happens past the cap, so tracing a saturated
/// network cannot blow up memory. [`TraceSink::to_chrome_trace`] exports
/// the retained window as Chrome trace-event JSON.
#[derive(Debug, Clone)]
pub struct TraceSink {
    ring: Vec<TraceEvent>,
    capacity: usize,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    /// Events overwritten because the ring was full.
    dropped: u64,
}

impl TraceSink {
    /// Creates a sink retaining the most recent `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        TraceSink { ring: Vec::with_capacity(capacity), capacity, head: 0, dropped: 0 }
    }

    /// Maximum events retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// `true` when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained events in chronological order (oldest first).
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.ring[self.head..].iter().chain(self.ring[..self.head].iter())
    }

    /// Renders the retained events as Chrome trace-event JSON
    /// (`{"traceEvents": [...]}`): `ph: "X"` slices of one cycle for the
    /// pipeline stages, `ph: "i"` instants for credits and layer gating,
    /// `ts` in cycles, `pid` = router, `tid` = port. Loads directly in
    /// Perfetto (ui.perfetto.dev) and `chrome://tracing`.
    pub fn to_chrome_trace(&self) -> String {
        self.chrome_trace_impl(&[])
    }

    /// Like [`TraceSink::to_chrome_trace`], but additionally renders each
    /// journey's hops as a Perfetto *flow* (`ph: "s"`/`"t"`/`"f"`, `id` =
    /// packet id) bound to the `ST` slices at the hop's (router, input
    /// port, cycle) — so a sampled packet's path lights up across router
    /// tracks when a flow arrow is clicked.
    pub fn to_chrome_trace_with_flows(&self, journeys: &[PacketJourney]) -> String {
        self.chrome_trace_impl(journeys)
    }

    fn chrome_trace_impl(&self, journeys: &[PacketJourney]) -> String {
        let mut out = String::with_capacity(self.ring.len() * 96 + 256);
        out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        // Metadata: name each router's process once.
        let mut routers: Vec<usize> = self.events().map(|e| e.router.index()).collect();
        routers.sort_unstable();
        routers.dedup();
        let mut first = true;
        for r in routers {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{r},\"tid\":0,\
                 \"args\":{{\"name\":\"router {r}\"}}}}"
            ));
        }
        for e in self.events() {
            if !first {
                out.push(',');
            }
            first = false;
            let (name, cat) = (e.kind.name(), e.kind.category());
            out.push_str(&format!(
                "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ts\":{},\"pid\":{},\"tid\":{}",
                e.cycle,
                e.router.index(),
                e.port.index()
            ));
            if e.kind.is_duration() {
                out.push_str(",\"ph\":\"X\",\"dur\":1");
            } else {
                out.push_str(",\"ph\":\"i\",\"s\":\"t\"");
            }
            out.push_str(&format!(
                ",\"args\":{{\"vc\":{},\"packet\":{},\"detail\":{}}}}}",
                e.vc.index(),
                e.packet,
                e.detail
            ));
        }
        // Flow events: one arrow chain per sampled journey, anchored to
        // the ST slice of each hop. Perfetto binds a flow phase to the
        // slice at the same (pid, tid) whose span covers `ts`.
        for j in journeys {
            let closed: Vec<_> = j.hops.iter().filter(|h| h.departed >= h.arrived).collect();
            if closed.len() < 2 {
                continue;
            }
            let last = closed.len() - 1;
            for (i, h) in closed.iter().enumerate() {
                if !first {
                    out.push(',');
                }
                first = false;
                let ph = if i == 0 {
                    "s"
                } else if i == last {
                    "f"
                } else {
                    "t"
                };
                out.push_str(&format!(
                    "{{\"name\":\"journey\",\"cat\":\"journey\",\"ph\":\"{ph}\",\"id\":{},\
                     \"pid\":{},\"tid\":{},\"ts\":{}",
                    j.packet, h.router, h.in_port, h.departed
                ));
                if ph == "f" {
                    out.push_str(",\"bp\":\"e\"");
                }
                out.push('}');
            }
        }
        out.push_str("]}");
        out
    }
}

impl EventSink for TraceSink {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, event: TraceEvent) {
        if self.ring.len() < self.capacity {
            self.ring.push(event);
        } else {
            self.ring[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    fn as_trace(&self) -> Option<&TraceSink> {
        Some(self)
    }
}

/// Why a ready flit failed to advance this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallCause {
    /// Active VC blocked: the downstream buffer holds no credit.
    NoCredit,
    /// Head flit lost virtual-channel allocation to another requester.
    VaLoss,
    /// Flit was switch-eligible but lost SA1 or SA2 arbitration.
    SaLoss,
    /// Head flit's target output VC is owned by another in-flight packet.
    RouteBusy,
    /// Active VC paused because its output link is in retransmission
    /// backoff after a detected fault (fault injection only).
    LinkFault,
}

/// Stall-cycle counters, attributed by cause.
///
/// `stalled` counts every (input VC, cycle) pair in which a ready flit
/// failed to advance; the router attributes exactly one cause per
/// stalled VC-cycle, so
/// `no_credit + va_loss + sa_loss + route_busy + link_fault == stalled`
/// holds at all times, across window splits, deltas, and merges (the
/// telemetry property tests assert it). `link_fault` stays zero unless
/// fault injection is enabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StallCounters {
    /// Stalled VC-cycles with no downstream credit.
    pub no_credit: u64,
    /// Stalled VC-cycles lost to VA arbitration.
    pub va_loss: u64,
    /// Stalled VC-cycles lost to switch arbitration.
    pub sa_loss: u64,
    /// Stalled VC-cycles waiting for a busy output VC.
    pub route_busy: u64,
    /// Stalled VC-cycles paused on a link in retransmission backoff.
    pub link_fault: u64,
    /// Total stalled VC-cycles (sum of the five causes).
    pub stalled: u64,
}

impl StallCounters {
    /// Zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges one stalled VC-cycle to `cause`.
    #[inline]
    pub fn record(&mut self, cause: StallCause) {
        match cause {
            StallCause::NoCredit => self.no_credit += 1,
            StallCause::VaLoss => self.va_loss += 1,
            StallCause::SaLoss => self.sa_loss += 1,
            StallCause::RouteBusy => self.route_busy += 1,
            StallCause::LinkFault => self.link_fault += 1,
        }
        self.stalled += 1;
    }

    /// Sum of the per-cause counters (must equal `stalled`).
    pub fn cause_sum(&self) -> u64 {
        self.no_credit + self.va_loss + self.sa_loss + self.route_busy + self.link_fault
    }

    /// Element-wise difference `self - earlier` (window isolation).
    #[must_use]
    pub fn delta_since(&self, earlier: &StallCounters) -> StallCounters {
        StallCounters {
            no_credit: self.no_credit - earlier.no_credit,
            va_loss: self.va_loss - earlier.va_loss,
            sa_loss: self.sa_loss - earlier.sa_loss,
            route_busy: self.route_busy - earlier.route_busy,
            link_fault: self.link_fault - earlier.link_fault,
            stalled: self.stalled - earlier.stalled,
        }
    }

    /// Element-wise accumulation (aggregating routers or windows).
    pub fn merge(&mut self, other: &StallCounters) {
        self.no_credit += other.no_credit;
        self.va_loss += other.va_loss;
        self.sa_loss += other.sa_loss;
        self.route_busy += other.route_busy;
        self.link_fault += other.link_fault;
        self.stalled += other.stalled;
    }
}

/// Telemetry switches carried by [`crate::sim::SimConfig`].
///
/// All default to `0` = disabled, which keeps the simulator on the
/// [`NullSink`] zero-overhead path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TelemetryConfig {
    /// Close a [`MetricsWindow`] every this many cycles (0 disables
    /// windowed metrics).
    pub metrics_window: u64,
    /// Install a [`TraceSink`] with this ring capacity (0 keeps the
    /// [`NullSink`]).
    pub trace_capacity: usize,
    /// Journey-trace this fraction of packets, in parts per million
    /// (`1_000_000` = every packet, 0 disables journey recording). The
    /// sampled set is a deterministic function of packet id and
    /// `journey_seed` (see [`crate::journey::JourneySampler`]).
    pub journey_sample_ppm: u32,
    /// Seed mixed into the journey-sampling hash.
    pub journey_seed: u64,
}

impl TelemetryConfig {
    /// Telemetry fully off (the default).
    pub const fn disabled() -> Self {
        TelemetryConfig {
            metrics_window: 0,
            trace_capacity: 0,
            journey_sample_ppm: 0,
            journey_seed: 0,
        }
    }

    /// Windowed metrics every `cycles` cycles, no event trace.
    pub const fn windows(cycles: u64) -> Self {
        TelemetryConfig {
            metrics_window: cycles,
            trace_capacity: 0,
            journey_sample_ppm: 0,
            journey_seed: 0,
        }
    }

    /// Returns `self` with journey sampling at `ppm` parts per million.
    #[must_use]
    pub const fn with_journeys(mut self, ppm: u32) -> Self {
        self.journey_sample_ppm = ppm;
        self
    }
}

/// One router's metrics over one window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouterWindowMetrics {
    /// Router node index.
    pub router: usize,
    /// Grid column of the router (for heatmaps).
    pub x: usize,
    /// Grid row of the router.
    pub y: usize,
    /// Mean flits buffered at this router over the window.
    pub occupancy_mean: f64,
    /// Per-output-port utilisation: flits sent / window cycles (index 0
    /// is the local ejection port).
    pub link_util: Vec<f64>,
    /// Stall cycles attributed at this router during the window.
    pub stalls: StallCounters,
    /// Per-layer duty cycle over the window: the fraction of switch
    /// traversals in which each datapath layer was powered (1.0 for every
    /// layer when shutdown never gated anything; empty when no flit
    /// traversed).
    pub layer_duty: Vec<f64>,
    /// Flits sent out of this router (all ports) during the window.
    pub flits_out: u64,
}

/// One closed metrics window: `[start_cycle, end_cycle)` across every
/// router.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsWindow {
    /// Zero-based window index.
    pub index: u64,
    /// First cycle covered.
    pub start_cycle: u64,
    /// One past the last cycle covered.
    pub end_cycle: u64,
    /// Per-router metrics, indexed by node id.
    pub routers: Vec<RouterWindowMetrics>,
}

impl MetricsWindow {
    /// Stall counters summed over every router in the window.
    pub fn stall_total(&self) -> StallCounters {
        let mut t = StallCounters::new();
        for r in &self.routers {
            t.merge(&r.stalls);
        }
        t
    }

    /// Mean buffer occupancy over the routers (flits).
    pub fn occupancy_mean(&self) -> f64 {
        if self.routers.is_empty() {
            return 0.0;
        }
        self.routers.iter().map(|r| r.occupancy_mean).sum::<f64>() / self.routers.len() as f64
    }
}

/// Per-router cumulative snapshot the collector diffs windows against.
#[derive(Debug, Clone, Default)]
struct RouterSnapshot {
    stalls: StallCounters,
    port_flits_out: Vec<u64>,
    layer_active: Vec<u64>,
    layer_events: u64,
}

/// A live view of one router's cumulative telemetry counters, handed to
/// the collector by the network each window boundary.
#[derive(Debug, Clone, Copy)]
pub struct RouterTelemetry<'a> {
    /// Cumulative stall counters since construction.
    pub stalls: StallCounters,
    /// Cumulative flits sent per output port.
    pub port_flits_out: &'a [u64],
    /// Cumulative per-layer active switch-traversal counts.
    pub layer_active: &'a [u64],
    /// Cumulative switch traversals (the duty-cycle denominator).
    pub layer_events: u64,
}

/// Accumulates per-cycle occupancy and closes [`MetricsWindow`]s on
/// window boundaries. Owned by the network; purely observational.
#[derive(Debug)]
pub struct MetricsCollector {
    window: u64,
    coords: Vec<(usize, usize)>,
    occupancy: Vec<u64>,
    last: Vec<RouterSnapshot>,
    window_start: u64,
    next_index: u64,
    windows: Vec<MetricsWindow>,
}

impl MetricsCollector {
    /// Creates a collector for `routers` routers at the given grid
    /// coordinates, closing a window every `window` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: u64, coords: Vec<(usize, usize)>) -> Self {
        assert!(window > 0, "metrics window must be positive");
        let n = coords.len();
        MetricsCollector {
            window,
            coords,
            occupancy: vec![0; n],
            last: vec![RouterSnapshot::default(); n],
            window_start: 0,
            next_index: 0,
            windows: Vec::new(),
        }
    }

    /// The configured window length in cycles.
    pub fn window_cycles(&self) -> u64 {
        self.window
    }

    /// Adds one router's buffered-flit count for the current cycle.
    #[inline]
    pub fn record_occupancy(&mut self, router: usize, buffered: u64) {
        self.occupancy[router] += buffered;
    }

    /// Called at the end of every cycle; closes a window when `cycle` is
    /// the last cycle of one. `telemetry` yields the cumulative counters
    /// of router `i`.
    pub fn end_cycle<'a>(
        &mut self,
        cycle: u64,
        mut telemetry: impl FnMut(usize) -> RouterTelemetry<'a>,
    ) {
        if (cycle + 1).saturating_sub(self.window_start) < self.window {
            return;
        }
        let span = (cycle + 1) - self.window_start;
        let mut routers = Vec::with_capacity(self.coords.len());
        for i in 0..self.coords.len() {
            let now = telemetry(i);
            let last = &mut self.last[i];
            if last.port_flits_out.is_empty() {
                last.port_flits_out = vec![0; now.port_flits_out.len()];
                last.layer_active = vec![0; now.layer_active.len()];
            }
            let link_util: Vec<f64> = now
                .port_flits_out
                .iter()
                .zip(&last.port_flits_out)
                .map(|(&n, &l)| (n - l) as f64 / span as f64)
                .collect();
            let events = now.layer_events - last.layer_events;
            let layer_duty: Vec<f64> = if events == 0 {
                Vec::new()
            } else {
                now.layer_active
                    .iter()
                    .zip(&last.layer_active)
                    .map(|(&n, &l)| (n - l) as f64 / events as f64)
                    .collect()
            };
            let flits_out: u64 =
                now.port_flits_out.iter().zip(&last.port_flits_out).map(|(&n, &l)| n - l).sum();
            routers.push(RouterWindowMetrics {
                router: i,
                x: self.coords[i].0,
                y: self.coords[i].1,
                occupancy_mean: self.occupancy[i] as f64 / span as f64,
                link_util,
                stalls: now.stalls.delta_since(&last.stalls),
                layer_duty,
                flits_out,
            });
            last.stalls = now.stalls;
            last.port_flits_out.copy_from_slice(now.port_flits_out);
            last.layer_active.copy_from_slice(now.layer_active);
            last.layer_events = now.layer_events;
            self.occupancy[i] = 0;
        }
        self.windows.push(MetricsWindow {
            index: self.next_index,
            start_cycle: self.window_start,
            end_cycle: cycle + 1,
            routers,
        });
        self.next_index += 1;
        self.window_start = cycle + 1;
    }

    /// Windows closed so far.
    pub fn windows(&self) -> &[MetricsWindow] {
        &self.windows
    }

    /// Removes and returns the closed windows.
    pub fn take_windows(&mut self) -> Vec<MetricsWindow> {
        std::mem::take(&mut self.windows)
    }
}

/// Renders sparse `(x, y, value)` cells as a text heatmap: one glyph per
/// router, darker = higher, scaled to the maximum value. Rows print
/// top-to-bottom with y increasing downwards; missing cells print as
/// spaces. The `netview` subcommand of `trace_tool` uses this to show
/// per-router congestion.
pub fn render_heatmap(cells: &[(usize, usize, f64)]) -> String {
    const RAMP: &[u8] = b" .:-=+*#%@";
    if cells.is_empty() {
        return String::new();
    }
    let width = cells.iter().map(|c| c.0).max().unwrap_or(0) + 1;
    let height = cells.iter().map(|c| c.1).max().unwrap_or(0) + 1;
    let max = cells.iter().map(|c| c.2).fold(0.0_f64, f64::max);
    let mut grid = vec![vec![None; width]; height];
    for &(x, y, v) in cells {
        grid[y][x] = Some(v);
    }
    let mut out = String::with_capacity(height * (width + 1));
    for row in &grid {
        for cell in row {
            match cell {
                None => out.push(' '),
                Some(v) => {
                    let idx = if max <= 0.0 {
                        0
                    } else {
                        (((v / max) * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1)
                    };
                    out.push(RAMP[idx] as char);
                }
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64, kind: TraceEventKind) -> TraceEvent {
        TraceEvent {
            cycle,
            router: NodeId(3),
            port: PortId(1),
            vc: VcId(0),
            kind,
            packet: 42,
            detail: 0,
        }
    }

    #[test]
    fn null_sink_is_disabled() {
        let mut s = NullSink;
        assert!(!s.enabled());
        s.record(ev(0, TraceEventKind::BufferWrite)); // no-op, no panic
        assert!(s.as_trace().is_none());
    }

    #[test]
    fn trace_sink_retains_in_order() {
        let mut s = TraceSink::new(8);
        for c in 0..5 {
            s.record(ev(c, TraceEventKind::SwitchTraversal));
        }
        assert_eq!(s.len(), 5);
        assert_eq!(s.dropped(), 0);
        let cycles: Vec<u64> = s.events().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn trace_ring_drops_oldest_without_realloc() {
        let mut s = TraceSink::new(4);
        for c in 0..4 {
            s.record(ev(c, TraceEventKind::SwitchAlloc));
        }
        let cap_before = s.ring.capacity();
        for c in 4..11 {
            s.record(ev(c, TraceEventKind::SwitchAlloc));
        }
        assert_eq!(s.len(), 4, "ring never exceeds its cap");
        assert_eq!(s.ring.capacity(), cap_before, "no reallocation past the cap");
        assert_eq!(s.dropped(), 7);
        let cycles: Vec<u64> = s.events().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![7, 8, 9, 10], "oldest events dropped first");
    }

    #[test]
    fn chrome_trace_has_expected_shape() {
        let mut s = TraceSink::new(16);
        s.record(ev(5, TraceEventKind::RouteCompute));
        s.record(ev(6, TraceEventKind::CreditReturn));
        let json = s.to_chrome_trace();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"name\":\"RC\""));
        assert!(json.contains("\"ph\":\"X\""), "stages render as duration slices");
        assert!(json.contains("\"ph\":\"i\""), "credits render as instants");
        assert!(json.contains("\"pid\":3"));
        assert!(json.contains("\"tid\":1"));
        assert!(json.contains("\"process_name\""));
        // Must round-trip through a JSON parser.
        let v: serde::Value = serde_json::from_str(&json).expect("valid JSON");
        let events = v.field("traceEvents").as_array().expect("array");
        assert_eq!(events.len(), 3, "one metadata record plus two events");
    }

    #[test]
    fn stall_counters_sum_invariant() {
        let mut s = StallCounters::new();
        s.record(StallCause::NoCredit);
        s.record(StallCause::VaLoss);
        s.record(StallCause::SaLoss);
        s.record(StallCause::SaLoss);
        s.record(StallCause::RouteBusy);
        s.record(StallCause::LinkFault);
        assert_eq!(s.stalled, 6);
        assert_eq!(s.cause_sum(), s.stalled);
        let snap = s;
        s.record(StallCause::NoCredit);
        let d = s.delta_since(&snap);
        assert_eq!(d.stalled, 1);
        assert_eq!(d.cause_sum(), d.stalled);
        let mut m = StallCounters::new();
        m.merge(&s);
        m.merge(&d);
        assert_eq!(m.cause_sum(), m.stalled);
    }

    #[test]
    fn collector_closes_windows_and_resets() {
        let mut c = MetricsCollector::new(10, vec![(0, 0), (1, 0)]);
        let mut stalls = StallCounters::new();
        let flits = [vec![0u64, 5], vec![0u64, 3]];
        let layers = [vec![4u64, 2], vec![3u64, 3]];
        for cycle in 0..25 {
            c.record_occupancy(0, 2);
            c.record_occupancy(1, 4);
            if cycle == 3 {
                stalls.record(StallCause::SaLoss);
            }
            let s = stalls;
            c.end_cycle(cycle, |i| RouterTelemetry {
                stalls: if i == 0 { s } else { StallCounters::new() },
                port_flits_out: &flits[i],
                layer_active: &layers[i],
                layer_events: 4,
            });
        }
        assert_eq!(c.windows().len(), 2, "cycles 0..20 close two windows");
        let w0 = &c.windows()[0];
        assert_eq!((w0.start_cycle, w0.end_cycle), (0, 10));
        assert!((w0.routers[0].occupancy_mean - 2.0).abs() < 1e-12);
        assert!((w0.routers[1].occupancy_mean - 4.0).abs() < 1e-12);
        assert_eq!(w0.stall_total().stalled, 1);
        assert!((w0.routers[0].link_util[1] - 0.5).abs() < 1e-12);
        assert!((w0.routers[0].layer_duty[0] - 1.0).abs() < 1e-12);
        assert!((w0.routers[0].layer_duty[1] - 0.5).abs() < 1e-12);
        let w1 = &c.windows()[1];
        assert_eq!((w1.start_cycle, w1.end_cycle), (10, 20));
        assert_eq!(w1.stall_total().stalled, 0, "window deltas reset");
        assert_eq!(w1.routers[0].flits_out, 0, "cumulative counts are diffed");
    }

    #[test]
    fn fault_events_render_as_instants() {
        let mut s = TraceSink::new(8);
        s.record(ev(2, TraceEventKind::FaultInject));
        s.record(ev(3, TraceEventKind::Retransmit));
        s.record(ev(4, TraceEventKind::PacketDrop));
        let json = s.to_chrome_trace();
        assert!(json.contains("\"name\":\"fault\""));
        assert!(json.contains("\"name\":\"retransmit\""));
        assert!(json.contains("\"name\":\"drop\""));
        assert!(json.contains("\"cat\":\"fault\""));
        assert!(!json.contains("\"ph\":\"X\""), "fault events are instants, not slices");
    }

    #[test]
    fn heatmap_renders_grid() {
        let cells = vec![(0, 0, 0.0), (1, 0, 5.0), (0, 1, 10.0), (1, 1, 2.5)];
        let map = render_heatmap(&cells);
        let lines: Vec<&str> = map.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].len(), 2);
        assert_eq!(&map[..1], " ", "zero renders as blank");
        assert_eq!(lines[1].chars().next(), Some('@'), "max renders darkest");
        assert!(render_heatmap(&[]).is_empty());
        // All-zero input must not divide by zero.
        let flat = render_heatmap(&[(0, 0, 0.0), (1, 0, 0.0)]);
        assert_eq!(flat, "  \n");
    }
}
