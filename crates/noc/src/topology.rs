//! Network topologies: 2D mesh, 3D mesh, and the express-channel mesh.
//!
//! The MIRA evaluation (paper §4.1.1) uses three physical organisations of
//! the same 36 nodes:
//!
//! * **[`Mesh2D`]** — a 6×6 mesh; used by 2DB (3.1 mm node pitch) and by
//!   3DM (1.58 mm pitch, since each multi-layered node occupies a quarter
//!   of the footprint; paper Table 2).
//! * **[`Mesh3D`]** — a 3×3×4 mesh for the naïve 3DB stacking; vertical
//!   links are through-silicon vias of negligible length.
//! * **[`ExpressMesh2D`]** — the 6×6 mesh of 3DM-E with additional
//!   multi-hop express channels (paper Fig. 7), one extra physical port
//!   per cardinal direction funded by the doubled per-node wire bandwidth
//!   of the multi-layer design (paper §3.2.3).
//!
//! ## Port numbering
//!
//! Port 0 is always local. The cardinal ports follow in the order
//! E(+x), W(−x), N(+y), S(−y); 3D adds U(+z), D(−z); the express mesh adds
//! EE, WE, NE, SE (express east/west/north/south).

use crate::ids::{NodeId, PortId};
use crate::routing::{dim_hops_with_express, dim_step, use_express, DimStep};

/// Cardinal output port indices shared by all mesh topologies.
pub mod port {
    use crate::ids::PortId;

    /// Local injection/ejection port.
    pub const LOCAL: PortId = PortId(0);
    /// +x direction.
    pub const EAST: PortId = PortId(1);
    /// −x direction.
    pub const WEST: PortId = PortId(2);
    /// +y direction.
    pub const NORTH: PortId = PortId(3);
    /// −y direction.
    pub const SOUTH: PortId = PortId(4);
    /// +z direction (3D mesh only).
    pub const UP: PortId = PortId(5);
    /// −z direction (3D mesh only).
    pub const DOWN: PortId = PortId(6);
    /// +x express (express mesh only).
    pub const EAST_EXPRESS: PortId = PortId(5);
    /// −x express (express mesh only).
    pub const WEST_EXPRESS: PortId = PortId(6);
    /// +y express (express mesh only).
    pub const NORTH_EXPRESS: PortId = PortId(7);
    /// −y express (express mesh only).
    pub const SOUTH_EXPRESS: PortId = PortId(8);
}

/// Spatial coordinates of a node (z is 0 for planar topologies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Coords {
    /// x position (column).
    pub x: usize,
    /// y position (row).
    pub y: usize,
    /// z position (layer group, 3D mesh only).
    pub z: usize,
}

/// A network topology: node space, wiring, deterministic routing, and the
/// physical wire lengths the power/delay models need.
///
/// Implementations must be deterministic: `route` is a function of
/// `(current, dst)` only.
pub trait Topology: std::fmt::Debug + Send + Sync {
    /// Short name for reports (e.g. `"mesh-6x6"`).
    fn name(&self) -> String;

    /// Number of nodes.
    fn num_nodes(&self) -> usize;

    /// Ports per router, including the local port.
    fn radix(&self) -> usize;

    /// The node reached by leaving `node` through `out_port`, or `None`
    /// if the port is the local port or faces the mesh edge.
    fn neighbor(&self, node: NodeId, out_port: PortId) -> Option<NodeId>;

    /// Deterministic routing: the output port a packet at `current` headed
    /// for `dst` must take. Returns the local port when `current == dst`.
    fn route(&self, current: NodeId, dst: NodeId) -> PortId;

    /// Candidate output ports for adaptive routing, in preference order.
    /// Convenience wrapper over [`Topology::route_candidates_into`] that
    /// allocates a fresh vector; the router's hot path uses the `_into`
    /// form with a reused scratch vector instead.
    fn route_candidates(&self, current: NodeId, dst: NodeId) -> Vec<PortId> {
        let mut out = Vec::new();
        self.route_candidates_into(current, dst, &mut out);
        out
    }

    /// Appends the candidate output ports for adaptive routing to `out`,
    /// in preference order. The default is the single deterministic
    /// port; adaptive topologies (see [`crate::adaptive`]) append every
    /// turn-legal productive port, and the router's RC stage picks by
    /// downstream credit count. Implementations must not allocate — the
    /// caller reuses `out` across every route computation of a
    /// simulation.
    fn route_candidates_into(&self, current: NodeId, dst: NodeId, out: &mut Vec<PortId>) {
        out.push(self.route(current, dst));
    }

    /// Physical length in millimetres of the link leaving `node` through
    /// `out_port` (0.0 for the local port or edge ports).
    fn link_length_mm(&self, node: NodeId, out_port: PortId) -> f64;

    /// Minimum hop count between two nodes under this topology's routing.
    fn min_hops(&self, src: NodeId, dst: NodeId) -> usize;

    /// Spatial coordinates of a node.
    fn coords(&self, node: NodeId) -> Coords;

    /// The input port on the downstream router that the link leaving
    /// `node` via `out_port` feeds. For meshes this is the opposite
    /// direction port of the same kind (east feeds west, express east
    /// feeds express west, up feeds down, …).
    fn opposite_port(&self, out_port: PortId) -> PortId;
}

fn opposite_cardinal(p: PortId) -> PortId {
    match p {
        port::EAST => port::WEST,
        port::WEST => port::EAST,
        port::NORTH => port::SOUTH,
        port::SOUTH => port::NORTH,
        other => other,
    }
}

// ---------------------------------------------------------------------------
// Mesh2D
// ---------------------------------------------------------------------------

/// A width × height 2D mesh with dimension-ordered (X-Y) routing.
#[derive(Debug, Clone, PartialEq)]
pub struct Mesh2D {
    width: usize,
    height: usize,
    pitch_mm: f64,
}

impl Mesh2D {
    /// Default node pitch for the 2DB layout (paper Table 2: 3.1 mm
    /// inter-router link length).
    pub const PITCH_2DB_MM: f64 = 3.1;
    /// Node pitch for the quarter-footprint 3DM layout (paper Table 2:
    /// 1.58 mm).
    pub const PITCH_3DM_MM: f64 = 1.58;

    /// Creates a mesh with the 2DB pitch.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        Self::with_pitch(width, height, Self::PITCH_2DB_MM)
    }

    /// Creates a mesh with an explicit node pitch in millimetres.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or the pitch is not positive.
    pub fn with_pitch(width: usize, height: usize, pitch_mm: f64) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be positive");
        assert!(pitch_mm > 0.0, "pitch must be positive");
        Mesh2D { width, height, pitch_mm }
    }

    /// Mesh width (number of columns).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Mesh height (number of rows).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Node id at coordinates (x, y).
    pub fn node_at(&self, x: usize, y: usize) -> NodeId {
        debug_assert!(x < self.width && y < self.height);
        NodeId(y * self.width + x)
    }

    fn xy(&self, node: NodeId) -> (usize, usize) {
        (node.index() % self.width, node.index() / self.width)
    }
}

impl Topology for Mesh2D {
    fn name(&self) -> String {
        format!("mesh-{}x{}", self.width, self.height)
    }

    fn num_nodes(&self) -> usize {
        self.width * self.height
    }

    fn radix(&self) -> usize {
        5
    }

    fn neighbor(&self, node: NodeId, out_port: PortId) -> Option<NodeId> {
        let (x, y) = self.xy(node);
        match out_port {
            port::EAST if x + 1 < self.width => Some(self.node_at(x + 1, y)),
            port::WEST if x > 0 => Some(self.node_at(x - 1, y)),
            port::NORTH if y + 1 < self.height => Some(self.node_at(x, y + 1)),
            port::SOUTH if y > 0 => Some(self.node_at(x, y - 1)),
            _ => None,
        }
    }

    fn route(&self, current: NodeId, dst: NodeId) -> PortId {
        let (cx, cy) = self.xy(current);
        let (dx, dy) = self.xy(dst);
        match dim_step(cx, dx) {
            DimStep::Positive => port::EAST,
            DimStep::Negative => port::WEST,
            DimStep::Done => match dim_step(cy, dy) {
                DimStep::Positive => port::NORTH,
                DimStep::Negative => port::SOUTH,
                DimStep::Done => port::LOCAL,
            },
        }
    }

    fn link_length_mm(&self, node: NodeId, out_port: PortId) -> f64 {
        if self.neighbor(node, out_port).is_some() {
            self.pitch_mm
        } else {
            0.0
        }
    }

    fn min_hops(&self, src: NodeId, dst: NodeId) -> usize {
        let (sx, sy) = self.xy(src);
        let (dx, dy) = self.xy(dst);
        sx.abs_diff(dx) + sy.abs_diff(dy)
    }

    fn coords(&self, node: NodeId) -> Coords {
        let (x, y) = self.xy(node);
        Coords { x, y, z: 0 }
    }

    fn opposite_port(&self, out_port: PortId) -> PortId {
        opposite_cardinal(out_port)
    }
}

// ---------------------------------------------------------------------------
// Mesh3D
// ---------------------------------------------------------------------------

/// A width × height × depth 3D mesh with X-Y-Z dimension-ordered routing
/// (the 3DB organisation).
#[derive(Debug, Clone, PartialEq)]
pub struct Mesh3D {
    width: usize,
    height: usize,
    depth: usize,
    pitch_mm: f64,
    vertical_mm: f64,
}

impl Mesh3D {
    /// Through-silicon-via stack height between adjacent layers, in mm.
    /// One active layer plus bonding is on the order of 50 µm; the exact
    /// value is irrelevant at 2 GHz (the TSV delay is ≪ one cycle) but
    /// the power model charges wire energy proportional to it.
    pub const VERTICAL_MM: f64 = 0.05;

    /// Creates a 3D mesh with the 2DB horizontal pitch and TSV verticals.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(width: usize, height: usize, depth: usize) -> Self {
        assert!(width > 0 && height > 0 && depth > 0, "mesh dimensions must be positive");
        Mesh3D {
            width,
            height,
            depth,
            pitch_mm: Mesh2D::PITCH_2DB_MM,
            vertical_mm: Self::VERTICAL_MM,
        }
    }

    /// Mesh width (x extent).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Mesh height (y extent).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Mesh depth (z extent, number of stacked node layers).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Node id at coordinates (x, y, z).
    pub fn node_at(&self, x: usize, y: usize, z: usize) -> NodeId {
        debug_assert!(x < self.width && y < self.height && z < self.depth);
        NodeId((z * self.height + y) * self.width + x)
    }

    fn xyz(&self, node: NodeId) -> (usize, usize, usize) {
        let i = node.index();
        let x = i % self.width;
        let y = (i / self.width) % self.height;
        let z = i / (self.width * self.height);
        (x, y, z)
    }
}

impl Topology for Mesh3D {
    fn name(&self) -> String {
        format!("mesh-{}x{}x{}", self.width, self.height, self.depth)
    }

    fn num_nodes(&self) -> usize {
        self.width * self.height * self.depth
    }

    fn radix(&self) -> usize {
        7
    }

    fn neighbor(&self, node: NodeId, out_port: PortId) -> Option<NodeId> {
        let (x, y, z) = self.xyz(node);
        match out_port {
            port::EAST if x + 1 < self.width => Some(self.node_at(x + 1, y, z)),
            port::WEST if x > 0 => Some(self.node_at(x - 1, y, z)),
            port::NORTH if y + 1 < self.height => Some(self.node_at(x, y + 1, z)),
            port::SOUTH if y > 0 => Some(self.node_at(x, y - 1, z)),
            port::UP if z + 1 < self.depth => Some(self.node_at(x, y, z + 1)),
            port::DOWN if z > 0 => Some(self.node_at(x, y, z - 1)),
            _ => None,
        }
    }

    fn route(&self, current: NodeId, dst: NodeId) -> PortId {
        let (cx, cy, cz) = self.xyz(current);
        let (dx, dy, dz) = self.xyz(dst);
        match dim_step(cx, dx) {
            DimStep::Positive => return port::EAST,
            DimStep::Negative => return port::WEST,
            DimStep::Done => {}
        }
        match dim_step(cy, dy) {
            DimStep::Positive => return port::NORTH,
            DimStep::Negative => return port::SOUTH,
            DimStep::Done => {}
        }
        match dim_step(cz, dz) {
            DimStep::Positive => port::UP,
            DimStep::Negative => port::DOWN,
            DimStep::Done => port::LOCAL,
        }
    }

    fn link_length_mm(&self, node: NodeId, out_port: PortId) -> f64 {
        if self.neighbor(node, out_port).is_none() {
            return 0.0;
        }
        match out_port {
            port::UP | port::DOWN => self.vertical_mm,
            _ => self.pitch_mm,
        }
    }

    fn min_hops(&self, src: NodeId, dst: NodeId) -> usize {
        let (sx, sy, sz) = self.xyz(src);
        let (dx, dy, dz) = self.xyz(dst);
        sx.abs_diff(dx) + sy.abs_diff(dy) + sz.abs_diff(dz)
    }

    fn coords(&self, node: NodeId) -> Coords {
        let (x, y, z) = self.xyz(node);
        Coords { x, y, z }
    }

    fn opposite_port(&self, out_port: PortId) -> PortId {
        match out_port {
            port::UP => port::DOWN,
            port::DOWN => port::UP,
            other => opposite_cardinal(other),
        }
    }
}

// ---------------------------------------------------------------------------
// ExpressMesh2D
// ---------------------------------------------------------------------------

/// The 3DM-E topology: a 2D mesh with additional span-`s` express channels
/// in each cardinal direction (paper Fig. 7, after Dally's express cubes).
///
/// Each router gains four express ports; routing stays dimension-ordered
/// and greedy (ride express while the remaining distance in the dimension
/// is at least the span).
#[derive(Debug, Clone, PartialEq)]
pub struct ExpressMesh2D {
    width: usize,
    height: usize,
    pitch_mm: f64,
    span: usize,
}

impl ExpressMesh2D {
    /// Creates the paper's 3DM-E configuration: span-2 express channels on
    /// a mesh with the 3DM pitch (1.58 mm).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        Self::with_params(width, height, Mesh2D::PITCH_3DM_MM, 2)
    }

    /// Creates an express mesh with explicit pitch and express span.
    ///
    /// # Panics
    ///
    /// Panics if a dimension is zero, the pitch is not positive, or the
    /// span is less than 2.
    pub fn with_params(width: usize, height: usize, pitch_mm: f64, span: usize) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be positive");
        assert!(pitch_mm > 0.0, "pitch must be positive");
        assert!(span >= 2, "express span must be at least 2");
        ExpressMesh2D { width, height, pitch_mm, span }
    }

    /// Express channel span in hops.
    pub fn span(&self) -> usize {
        self.span
    }

    /// Node id at coordinates (x, y).
    pub fn node_at(&self, x: usize, y: usize) -> NodeId {
        debug_assert!(x < self.width && y < self.height);
        NodeId(y * self.width + x)
    }

    fn xy(&self, node: NodeId) -> (usize, usize) {
        (node.index() % self.width, node.index() / self.width)
    }
}

impl Topology for ExpressMesh2D {
    fn name(&self) -> String {
        format!("express-mesh-{}x{}-span{}", self.width, self.height, self.span)
    }

    fn num_nodes(&self) -> usize {
        self.width * self.height
    }

    fn radix(&self) -> usize {
        9
    }

    fn neighbor(&self, node: NodeId, out_port: PortId) -> Option<NodeId> {
        let (x, y) = self.xy(node);
        let s = self.span;
        match out_port {
            port::EAST if x + 1 < self.width => Some(self.node_at(x + 1, y)),
            port::WEST if x > 0 => Some(self.node_at(x - 1, y)),
            port::NORTH if y + 1 < self.height => Some(self.node_at(x, y + 1)),
            port::SOUTH if y > 0 => Some(self.node_at(x, y - 1)),
            port::EAST_EXPRESS if x + s < self.width => Some(self.node_at(x + s, y)),
            port::WEST_EXPRESS if x >= s => Some(self.node_at(x - s, y)),
            port::NORTH_EXPRESS if y + s < self.height => Some(self.node_at(x, y + s)),
            port::SOUTH_EXPRESS if y >= s => Some(self.node_at(x, y - s)),
            _ => None,
        }
    }

    fn route(&self, current: NodeId, dst: NodeId) -> PortId {
        let (cx, cy) = self.xy(current);
        let (dx, dy) = self.xy(dst);
        let xdist = cx.abs_diff(dx);
        match dim_step(cx, dx) {
            DimStep::Positive => {
                // The greedy rule may want an express hop the edge cannot
                // provide (e.g. span 3 near the boundary); fall back to the
                // regular channel in that case.
                if use_express(xdist, self.span) && cx + self.span < self.width {
                    return port::EAST_EXPRESS;
                }
                return port::EAST;
            }
            DimStep::Negative => {
                if use_express(xdist, self.span) && cx >= self.span {
                    return port::WEST_EXPRESS;
                }
                return port::WEST;
            }
            DimStep::Done => {}
        }
        let ydist = cy.abs_diff(dy);
        match dim_step(cy, dy) {
            DimStep::Positive => {
                if use_express(ydist, self.span) && cy + self.span < self.height {
                    port::NORTH_EXPRESS
                } else {
                    port::NORTH
                }
            }
            DimStep::Negative => {
                if use_express(ydist, self.span) && cy >= self.span {
                    port::SOUTH_EXPRESS
                } else {
                    port::SOUTH
                }
            }
            DimStep::Done => port::LOCAL,
        }
    }

    fn link_length_mm(&self, node: NodeId, out_port: PortId) -> f64 {
        if self.neighbor(node, out_port).is_none() {
            return 0.0;
        }
        match out_port {
            port::EAST_EXPRESS | port::WEST_EXPRESS | port::NORTH_EXPRESS | port::SOUTH_EXPRESS => {
                self.pitch_mm * self.span as f64
            }
            _ => self.pitch_mm,
        }
    }

    fn min_hops(&self, src: NodeId, dst: NodeId) -> usize {
        let (sx, sy) = self.xy(src);
        let (dx, dy) = self.xy(dst);
        // Note: near mesh edges the greedy route can take one more hop
        // than this closed form (express fallback); min_hops reports the
        // ideal, which matches the paper's hop-count accounting.
        dim_hops_with_express(sx.abs_diff(dx), self.span)
            + dim_hops_with_express(sy.abs_diff(dy), self.span)
    }

    fn coords(&self, node: NodeId) -> Coords {
        let (x, y) = self.xy(node);
        Coords { x, y, z: 0 }
    }

    fn opposite_port(&self, out_port: PortId) -> PortId {
        match out_port {
            port::EAST_EXPRESS => port::WEST_EXPRESS,
            port::WEST_EXPRESS => port::EAST_EXPRESS,
            port::NORTH_EXPRESS => port::SOUTH_EXPRESS,
            port::SOUTH_EXPRESS => port::NORTH_EXPRESS,
            other => opposite_cardinal(other),
        }
    }
}

/// Average minimum hop count over all ordered src ≠ dst pairs — the
/// quantity plotted in the paper's Fig. 11(d) for uniform random traffic.
pub fn average_min_hops(topo: &dyn Topology) -> f64 {
    let n = topo.num_nodes();
    let mut total = 0usize;
    let mut pairs = 0usize;
    for s in 0..n {
        for d in 0..n {
            if s != d {
                total += topo.min_hops(NodeId(s), NodeId(d));
                pairs += 1;
            }
        }
    }
    total as f64 / pairs as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn walk(topo: &dyn Topology, src: NodeId, dst: NodeId) -> usize {
        let mut cur = src;
        let mut hops = 0;
        while cur != dst {
            let p = topo.route(cur, dst);
            assert!(!p.is_local(), "router must not eject before destination");
            cur = topo.neighbor(cur, p).expect("route must follow an existing link");
            hops += 1;
            assert!(hops <= 100, "routing loop detected");
        }
        hops
    }

    #[test]
    fn mesh2d_basics() {
        let m = Mesh2D::new(6, 6);
        assert_eq!(m.num_nodes(), 36);
        assert_eq!(m.radix(), 5);
        assert_eq!(m.name(), "mesh-6x6");
        assert_eq!(m.node_at(5, 5), NodeId(35));
        assert_eq!(m.coords(NodeId(7)), Coords { x: 1, y: 1, z: 0 });
    }

    #[test]
    fn mesh2d_neighbors_at_edges() {
        let m = Mesh2D::new(3, 3);
        assert_eq!(m.neighbor(NodeId(0), port::WEST), None);
        assert_eq!(m.neighbor(NodeId(0), port::SOUTH), None);
        assert_eq!(m.neighbor(NodeId(0), port::EAST), Some(NodeId(1)));
        assert_eq!(m.neighbor(NodeId(0), port::NORTH), Some(NodeId(3)));
        assert_eq!(m.neighbor(NodeId(8), port::EAST), None);
        assert_eq!(m.neighbor(NodeId(8), port::NORTH), None);
    }

    #[test]
    fn mesh2d_xy_routing_is_minimal() {
        let m = Mesh2D::new(6, 6);
        for s in 0..36 {
            for d in 0..36 {
                if s == d {
                    assert!(m.route(NodeId(s), NodeId(d)).is_local());
                } else {
                    assert_eq!(walk(&m, NodeId(s), NodeId(d)), m.min_hops(NodeId(s), NodeId(d)));
                }
            }
        }
    }

    #[test]
    fn mesh2d_xy_order_x_first() {
        let m = Mesh2D::new(6, 6);
        // from (0,0) to (3,3): must head east first.
        assert_eq!(m.route(m.node_at(0, 0), m.node_at(3, 3)), port::EAST);
        // aligned in x: head north.
        assert_eq!(m.route(m.node_at(3, 0), m.node_at(3, 3)), port::NORTH);
    }

    #[test]
    fn mesh3d_basics() {
        let m = Mesh3D::new(3, 3, 4);
        assert_eq!(m.num_nodes(), 36);
        assert_eq!(m.radix(), 7);
        assert_eq!(m.coords(NodeId(35)), Coords { x: 2, y: 2, z: 3 });
        assert_eq!(m.node_at(2, 2, 3), NodeId(35));
    }

    #[test]
    fn mesh3d_xyz_routing_is_minimal() {
        let m = Mesh3D::new(3, 3, 4);
        for s in 0..36 {
            for d in 0..36 {
                if s != d {
                    assert_eq!(walk(&m, NodeId(s), NodeId(d)), m.min_hops(NodeId(s), NodeId(d)));
                }
            }
        }
    }

    #[test]
    fn mesh3d_vertical_links_short() {
        let m = Mesh3D::new(3, 3, 4);
        let n = m.node_at(1, 1, 1);
        assert!(m.link_length_mm(n, port::UP) < 0.1);
        assert!((m.link_length_mm(n, port::EAST) - Mesh2D::PITCH_2DB_MM).abs() < 1e-9);
    }

    #[test]
    fn express_mesh_basics() {
        let m = ExpressMesh2D::new(6, 6);
        assert_eq!(m.num_nodes(), 36);
        assert_eq!(m.radix(), 9);
        assert_eq!(m.span(), 2);
        // Express link from (0,0) east reaches (2,0).
        assert_eq!(m.neighbor(NodeId(0), port::EAST_EXPRESS), Some(NodeId(2)));
        // ... and is twice as long as a regular link.
        assert!(
            (m.link_length_mm(NodeId(0), port::EAST_EXPRESS)
                - 2.0 * m.link_length_mm(NodeId(0), port::EAST))
            .abs()
                < 1e-9
        );
    }

    #[test]
    fn express_routing_reaches_destination() {
        let m = ExpressMesh2D::new(6, 6);
        for s in 0..36 {
            for d in 0..36 {
                if s != d {
                    let hops = walk(&m, NodeId(s), NodeId(d));
                    assert_eq!(hops, m.min_hops(NodeId(s), NodeId(d)), "{s}->{d}");
                }
            }
        }
    }

    #[test]
    fn express_reduces_average_hops() {
        let mesh = Mesh2D::new(6, 6);
        let express = ExpressMesh2D::new(6, 6);
        let h_mesh = average_min_hops(&mesh);
        let h_express = average_min_hops(&express);
        // 6x6 mesh UR average over src≠dst pairs is exactly 4 hops;
        // express span-2 cuts it to 88/35 ≈ 2.51 (paper Fig. 11(d):
        // ~4 vs ~2.5).
        assert!((h_mesh - 4.0).abs() < 1e-9, "got {h_mesh}");
        assert!((h_express - 88.0 / 35.0).abs() < 1e-9, "got {h_express}");
    }

    #[test]
    fn mesh3d_average_hops_matches_formula() {
        // per-dim mean distance over ordered pairs incl. equal coords:
        // (k^2-1)/(3k); total = sum over dims, corrected for excluding
        // src==dst pairs.
        let m = Mesh3D::new(3, 3, 4);
        let h = average_min_hops(&m);
        let per_dim = |k: f64| (k * k - 1.0) / (3.0 * k);
        let n = 36.0;
        let expected = (per_dim(3.0) + per_dim(3.0) + per_dim(4.0)) * n / (n - 1.0);
        assert!((h - expected).abs() < 1e-9, "got {h}, expected {expected}");
    }

    #[test]
    fn opposite_ports_are_involutions() {
        let topos: Vec<Box<dyn Topology>> = vec![
            Box::new(Mesh2D::new(4, 4)),
            Box::new(Mesh3D::new(3, 3, 4)),
            Box::new(ExpressMesh2D::new(6, 6)),
        ];
        for t in &topos {
            for p in 1..t.radix() {
                let p = PortId(p);
                assert_eq!(t.opposite_port(t.opposite_port(p)), p);
            }
        }
    }

    #[test]
    fn links_are_symmetric() {
        // If leaving A via p reaches B, then leaving B via opposite(p)
        // reaches A — required by the network wiring pass.
        let topos: Vec<Box<dyn Topology>> = vec![
            Box::new(Mesh2D::new(5, 3)),
            Box::new(Mesh3D::new(3, 3, 4)),
            Box::new(ExpressMesh2D::new(6, 6)),
        ];
        for t in &topos {
            for n in 0..t.num_nodes() {
                for p in 1..t.radix() {
                    if let Some(b) = t.neighbor(NodeId(n), PortId(p)) {
                        assert_eq!(
                            t.neighbor(b, t.opposite_port(PortId(p))),
                            Some(NodeId(n)),
                            "{} node {n} port {p}",
                            t.name()
                        );
                    }
                }
            }
        }
    }
}
