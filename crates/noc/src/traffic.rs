//! Workload interface and the built-in uniform-random generator.
//!
//! Richer traffic models (NUCA-constrained bimodal traffic, application
//! profiles, trace replay) live in the `mira-traffic` crate; this module
//! defines the [`Workload`] trait they implement plus the basic
//! open-loop uniform-random source used throughout the unit tests and the
//! paper's Fig. 11(a)/12(a) experiments.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::flit::FlitData;
use crate::ids::NodeId;
use crate::packet::{PacketClass, PacketId, PacketSpec};

/// Summary of a fully ejected packet, handed to the workload for
/// closed-loop reactions (e.g. a cache bank answering a request).
#[derive(Debug, Clone)]
pub struct EjectedPacket {
    /// Packet id.
    pub id: PacketId,
    /// Source node.
    pub src: NodeId,
    /// Destination node (where it ejected).
    pub dst: NodeId,
    /// Message class.
    pub class: PacketClass,
    /// Creation cycle.
    pub created_at: u64,
    /// Ejection cycle (tail flit's switch traversal at the destination).
    pub ejected_at: u64,
    /// Hops traversed.
    pub hops: u32,
    /// Length in flits.
    pub len_flits: usize,
}

/// A traffic source driving the simulator.
///
/// Implementations must be deterministic given their seed: the simulator
/// calls [`Workload::generate`] exactly once per cycle, in cycle order.
pub trait Workload {
    /// Called once before the run with the number of nodes in the
    /// network.
    fn init(&mut self, num_nodes: usize) {
        let _ = num_nodes;
    }

    /// Packets to inject this cycle (their source queues are unbounded,
    /// so generation is never back-pressured — queue growth is how
    /// saturation manifests).
    fn generate(&mut self, cycle: u64) -> Vec<PacketSpec>;

    /// Reaction to a packet arriving at its destination: a list of
    /// `(delay_cycles, packet)` replies to inject after `delay_cycles`.
    fn on_ejected(&mut self, cycle: u64, packet: &EjectedPacket) -> Vec<(u64, PacketSpec)> {
        let _ = (cycle, packet);
        Vec::new()
    }
}

/// Data-payload shaping shared by the synthetic generators: the fraction
/// of flits that are *short* (only the top-layer word meaningful,
/// paper §3.2.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PayloadProfile {
    /// Probability that a generated flit is short.
    pub short_fraction: f64,
    /// Words per flit (flit width / 32).
    pub words_per_flit: usize,
}

impl PayloadProfile {
    /// All flits carry dense data (the paper's "0 % short flits"
    /// baseline).
    pub fn dense(words_per_flit: usize) -> Self {
        PayloadProfile { short_fraction: 0.0, words_per_flit }
    }

    /// A profile with the given short-flit fraction.
    ///
    /// # Panics
    ///
    /// Panics if `short_fraction` is not within `[0, 1]`.
    pub fn with_short_fraction(words_per_flit: usize, short_fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&short_fraction), "fraction must be in [0,1]");
        PayloadProfile { short_fraction, words_per_flit }
    }

    /// Draws one flit payload.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> FlitData {
        if self.short_fraction > 0.0 && rng.gen_bool(self.short_fraction) {
            FlitData::with_active_words(self.words_per_flit, 1)
        } else {
            FlitData::dense(self.words_per_flit)
        }
    }
}

/// Open-loop uniform-random traffic: every cycle each node starts a new
/// packet with probability `rate / len_flits` towards a uniformly chosen
/// other node, so the offered load is `rate` flits/node/cycle.
#[derive(Debug)]
pub struct UniformRandom {
    rate_flits_per_node_cycle: f64,
    len_flits: usize,
    payload: PayloadProfile,
    class: PacketClass,
    rng: SmallRng,
    num_nodes: usize,
}

impl UniformRandom {
    /// Creates a generator offering `rate` flits/node/cycle in packets of
    /// `len_flits` flits, seeded with `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is negative or `len_flits` is zero.
    pub fn new(rate: f64, len_flits: usize, seed: u64) -> Self {
        assert!(rate >= 0.0, "rate must be non-negative");
        assert!(len_flits > 0, "packets must have at least one flit");
        UniformRandom {
            rate_flits_per_node_cycle: rate,
            len_flits,
            payload: PayloadProfile::dense(4),
            class: PacketClass::DataResponse,
            rng: SmallRng::seed_from_u64(seed),
            num_nodes: 0,
        }
    }

    /// Replaces the payload profile (e.g. to add short flits).
    #[must_use]
    pub fn with_payload(mut self, payload: PayloadProfile) -> Self {
        self.payload = payload;
        self
    }

    /// Replaces the packet class (default: [`PacketClass::DataResponse`]).
    #[must_use]
    pub fn with_class(mut self, class: PacketClass) -> Self {
        self.class = class;
        self
    }

    /// The offered load in flits/node/cycle.
    pub fn rate(&self) -> f64 {
        self.rate_flits_per_node_cycle
    }
}

impl Workload for UniformRandom {
    fn init(&mut self, num_nodes: usize) {
        assert!(num_nodes > 1, "uniform random traffic needs at least two nodes");
        self.num_nodes = num_nodes;
    }

    fn generate(&mut self, _cycle: u64) -> Vec<PacketSpec> {
        let p = (self.rate_flits_per_node_cycle / self.len_flits as f64).min(1.0);
        let mut specs = Vec::new();
        for src in 0..self.num_nodes {
            if p > 0.0 && self.rng.gen_bool(p) {
                let mut dst = self.rng.gen_range(0..self.num_nodes - 1);
                if dst >= src {
                    dst += 1;
                }
                let payload =
                    (0..self.len_flits).map(|_| self.payload.sample(&mut self.rng)).collect();
                specs.push(PacketSpec {
                    src: NodeId(src),
                    dst: NodeId(dst),
                    class: self.class,
                    payload,
                });
            }
        }
        specs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offered_load_is_close_to_rate() {
        let mut w = UniformRandom::new(0.2, 4, 99);
        w.init(16);
        let mut flits = 0usize;
        let cycles = 5_000u64;
        for c in 0..cycles {
            for s in w.generate(c) {
                flits += s.payload.len();
            }
        }
        let rate = flits as f64 / (cycles as f64 * 16.0);
        assert!((rate - 0.2).abs() < 0.01, "measured {rate}");
    }

    #[test]
    fn destinations_never_equal_source() {
        let mut w = UniformRandom::new(1.0, 1, 7);
        w.init(8);
        for c in 0..2_000 {
            for s in w.generate(c) {
                assert_ne!(s.src, s.dst);
                assert!(s.dst.index() < 8);
            }
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let run = || {
            let mut w = UniformRandom::new(0.3, 5, 1234);
            w.init(16);
            (0..100).flat_map(|c| w.generate(c)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn short_fraction_reflected_in_payloads() {
        let mut w =
            UniformRandom::new(1.0, 1, 5).with_payload(PayloadProfile::with_short_fraction(4, 0.5));
        w.init(4);
        let mut short = 0usize;
        let mut total = 0usize;
        for c in 0..4_000 {
            for s in w.generate(c) {
                for f in &s.payload {
                    total += 1;
                    if f.is_short() {
                        short += 1;
                    }
                }
            }
        }
        let frac = short as f64 / total as f64;
        assert!((frac - 0.5).abs() < 0.03, "measured {frac}");
    }

    #[test]
    fn zero_rate_generates_nothing() {
        let mut w = UniformRandom::new(0.0, 5, 7);
        w.init(16);
        assert!((0..100).all(|c| w.generate(c).is_empty()));
    }
}
