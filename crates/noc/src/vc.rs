//! Virtual-channel pipeline states.
//!
//! Each input virtual channel advances through the canonical wormhole
//! pipeline states: idle → routing (RC) → waiting for an output VC (VA) →
//! active (streaming flits through SA/ST until the tail frees the VC).
//!
//! Since the data-oriented core rewrite (DESIGN.md §14) the per-VC
//! state lives in flat parallel arrays inside [`crate::router::Router`],
//! keyed by `(port, vc)`; this module keeps only the state enum itself.
//! The transition rules are unchanged:
//!
//! * a flit buffered into an idle VC with a head at the front moves the
//!   VC to `Routing` and records the serviced packet,
//! * RC moves `Routing → WaitingVc`, VA2 moves `WaitingVc → Active`,
//! * the tail's switch traversal returns the VC to `Idle` (or straight
//!   back to `Routing` when the next packet's head is already buffered),
//! * a port death sends `WaitingVc` routes through it back to `Routing`.

use crate::ids::{PortId, VcId};

/// Pipeline state of an input virtual channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VcState {
    /// No packet occupies the VC.
    Idle,
    /// A head flit is buffered and needs route computation.
    Routing,
    /// Route computed; waiting for an output VC grant.
    WaitingVc {
        /// Output port chosen by RC.
        out_port: PortId,
    },
    /// Output VC granted; flits stream through switch allocation.
    Active {
        /// Output port chosen by RC.
        out_port: PortId,
        /// Output VC granted by VA.
        out_vc: VcId,
    },
}
