//! Virtual-channel state machines.
//!
//! Each input virtual channel advances through the canonical wormhole
//! pipeline states: idle → routing (RC) → waiting for an output VC (VA) →
//! active (streaming flits through SA/ST until the tail frees the VC).

use crate::buffer::VcBuffer;
use crate::ids::{PortId, VcId};
use crate::packet::PacketId;

/// Pipeline state of an input virtual channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VcState {
    /// No packet occupies the VC.
    Idle,
    /// A head flit is buffered and needs route computation.
    Routing,
    /// Route computed; waiting for an output VC grant.
    WaitingVc {
        /// Output port chosen by RC.
        out_port: PortId,
    },
    /// Output VC granted; flits stream through switch allocation.
    Active {
        /// Output port chosen by RC.
        out_port: PortId,
        /// Output VC granted by VA.
        out_vc: VcId,
    },
}

/// One input virtual channel: its buffer plus pipeline state.
#[derive(Debug, Clone)]
pub struct InputVc {
    /// Flit storage.
    pub buffer: VcBuffer,
    /// Pipeline state.
    pub state: VcState,
    /// Packet currently being serviced (owning the pipeline state);
    /// `None` when idle. The fault reaper uses this to find and purge
    /// the downstream stubs of a dropped packet.
    pub current_packet: Option<PacketId>,
}

impl InputVc {
    /// Creates an idle VC with a buffer of `depth` flits.
    pub fn new(depth: usize) -> Self {
        InputVc { buffer: VcBuffer::new(depth), state: VcState::Idle, current_packet: None }
    }

    /// Called after a flit lands in the buffer: an idle VC with a buffered
    /// head flit moves to the routing state.
    pub fn on_flit_buffered(&mut self) {
        if self.state == VcState::Idle {
            if let Some(front) = self.buffer.front() {
                debug_assert!(
                    front.flit.is_head(),
                    "an idle VC must only receive head flits first"
                );
                self.state = VcState::Routing;
                self.current_packet = Some(front.flit.packet);
            }
        }
    }

    /// Called after the tail flit of the current packet leaves: the VC
    /// returns to idle, or directly to routing if the next packet's head
    /// is already buffered.
    pub fn on_tail_departed(&mut self) {
        self.state = VcState::Idle;
        self.current_packet = None;
        self.on_flit_buffered();
    }
}

/// Credit and ownership state of one output virtual channel.
#[derive(Debug, Clone)]
pub struct OutputVc {
    /// Input VC currently holding this output VC (wormhole ownership),
    /// identified as (input port, input VC).
    pub owner: Option<(PortId, VcId)>,
    /// Credits: free buffer slots in the downstream input VC.
    pub credits: usize,
}

impl OutputVc {
    /// Creates an unowned output VC with `credits` initial credits.
    pub fn new(credits: usize) -> Self {
        OutputVc { owner: None, credits }
    }

    /// Returns `true` if the VC can be allocated to a new packet.
    pub fn is_free(&self) -> bool {
        self.owner.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{FlitData, FlitKind};
    use crate::ids::NodeId;
    use crate::packet::{PacketClass, PacketId};
    use crate::Flit;

    fn head_flit() -> Flit {
        Flit {
            packet: PacketId(7),
            seq: 0,
            kind: FlitKind::Head,
            src: NodeId(0),
            dst: NodeId(3),
            class: PacketClass::ReadRequest,
            data: FlitData::dense(4),
            created_at: 0,
            hops: 0,
        }
    }

    #[test]
    fn idle_to_routing_on_head() {
        let mut vc = InputVc::new(4);
        assert_eq!(vc.state, VcState::Idle);
        assert_eq!(vc.current_packet, None);
        vc.buffer.push(head_flit(), 0);
        vc.on_flit_buffered();
        assert_eq!(vc.state, VcState::Routing);
        assert_eq!(vc.current_packet, Some(PacketId(7)), "the serviced packet is tracked");
    }

    #[test]
    fn active_state_unchanged_by_arrivals() {
        let mut vc = InputVc::new(4);
        vc.buffer.push(head_flit(), 0);
        vc.on_flit_buffered();
        vc.state = VcState::Active { out_port: PortId(1), out_vc: VcId(0) };
        let mut body = head_flit();
        body.kind = FlitKind::Body;
        vc.buffer.push(body, 1);
        vc.on_flit_buffered();
        assert!(matches!(vc.state, VcState::Active { .. }));
    }

    #[test]
    fn tail_departure_chains_to_next_packet() {
        let mut vc = InputVc::new(4);
        vc.state = VcState::Active { out_port: PortId(1), out_vc: VcId(0) };
        // Next packet's head already waits in the buffer.
        vc.buffer.push(head_flit(), 0);
        vc.on_tail_departed();
        assert_eq!(vc.state, VcState::Routing);
    }

    #[test]
    fn tail_departure_with_empty_buffer_idles() {
        let mut vc = InputVc::new(4);
        vc.state = VcState::Active { out_port: PortId(1), out_vc: VcId(1) };
        vc.on_tail_departed();
        assert_eq!(vc.state, VcState::Idle);
    }

    #[test]
    fn output_vc_ownership() {
        let mut ovc = OutputVc::new(4);
        assert!(ovc.is_free());
        assert_eq!(ovc.credits, 4);
        ovc.owner = Some((PortId(2), VcId(1)));
        assert!(!ovc.is_free());
    }
}
