//! Flight-recorder integration tests (DESIGN.md §17): the armed
//! detectors are purely observational on healthy runs, and a genuine
//! deadlock (injected with the chaos stall hook) trips the no-progress
//! watchdog with a black-box dump whose stuck-packet set is *exact*.

use std::panic::{catch_unwind, AssertUnwindSafe};

use mira_noc::anomaly::{AnomalyAbort, AnomalyConfig, AnomalyKind};
use mira_noc::config::NetworkConfig;
use mira_noc::recorder::{BlackBox, BLACKBOX_VERSION};
use mira_noc::sim::{SimConfig, SimReport, Simulator};
use mira_noc::telemetry::TelemetryConfig;
use mira_noc::topology::Mesh2D;
use mira_noc::traffic::UniformRandom;
use proptest::prelude::*;
use serde::Deserialize;

/// Runs one uniform-random point on a 4x4 mesh with the given anomaly
/// configuration.
fn run_ur(rate: f64, seed: u64, anomaly: AnomalyConfig) -> SimReport {
    let cfg = SimConfig::short().with_anomaly(anomaly);
    let mut sim = Simulator::new(Box::new(Mesh2D::new(4, 4)), NetworkConfig::default(), cfg);
    sim.run(Box::new(UniformRandom::new(rate, 5, seed)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// On clean seed-sweep runs no detector ever fires, and the armed
    /// recorder changes nothing: the full report serializes to the
    /// exact bytes of a recorder-off twin run (the `anomalies` section
    /// is omitted at zero firings, so even the JSON shape is identical).
    #[test]
    fn detectors_never_fire_on_clean_runs(
        seed in 0u64..1_000,
        rate in 0.02f64..0.12,
    ) {
        let armed = run_ur(rate, seed, AnomalyConfig::detect());
        prop_assert_eq!(
            armed.anomalies.total(), 0,
            "clean run fired detectors: {:?}", armed.anomalies
        );
        let plain = run_ur(rate, seed, AnomalyConfig::disabled());
        let armed_json = serde_json::to_string(&armed).expect("report serializes");
        let plain_json = serde_json::to_string(&plain).expect("report serializes");
        prop_assert_eq!(armed_json, plain_json, "armed recorder must be bit-invisible");
    }
}

/// The chaos scenario every deadlock assertion below shares: a 4x4 mesh
/// at 10% load whose router 5 has its switch allocator frozen at cycle
/// 400, run with every detector armed and a tight no-progress watchdog.
fn stalled_sim(anomaly: AnomalyConfig) -> Simulator {
    let cfg = SimConfig::short()
        // Sample every packet so stuck packets carry their journeys.
        .with_telemetry(TelemetryConfig::disabled().with_journeys(1_000_000))
        .with_anomaly(anomaly.with_no_progress(250));
    let mut sim = Simulator::new(Box::new(Mesh2D::new(4, 4)), NetworkConfig::default(), cfg);
    sim.set_chaos_stall(400, 5);
    sim
}

/// Runs the chaos scenario to its halting trigger and returns the
/// simulator (frozen at the abort) plus the unwound [`AnomalyAbort`].
fn run_to_abort() -> (Simulator, AnomalyAbort) {
    let mut sim = stalled_sim(AnomalyConfig::detect());
    let err = catch_unwind(AssertUnwindSafe(|| sim.run(Box::new(UniformRandom::new(0.10, 5, 42)))))
        .expect_err("a frozen switch allocator must trip the no-progress watchdog");
    let abort = err.downcast::<AnomalyAbort>().expect("payload is an AnomalyAbort");
    (sim, *abort)
}

/// A deadlocked run unwinds with a parseable black-box dump whose
/// stuck-packet set matches the simulator's in-flight set exactly — no
/// packet missing, none invented.
#[test]
fn deadlock_dump_has_exact_stuck_packet_set() {
    let (sim, abort) = run_to_abort();
    assert_eq!(abort.kind, AnomalyKind::NoProgress);
    assert!(abort.cycle > 400, "trigger follows the stall injection");

    let value: serde::Value = serde_json::from_str(&abort.dump).expect("dump is valid JSON");
    let bb = BlackBox::from_value(&value).expect("dump matches the BlackBox schema");
    assert_eq!(bb.version, BLACKBOX_VERSION);
    assert_eq!(bb.cycle, abort.cycle);
    assert_eq!(bb.trigger.kind, "no_progress");
    assert!(bb.counts.no_progress >= 1);
    assert!(!bb.fired.is_empty(), "the trigger is itemized in the firing log");

    let dumped: Vec<u64> = bb.stuck_packets.iter().map(|s| s.packet).collect();
    assert!(!dumped.is_empty(), "a deadlock strands packets");
    assert_eq!(dumped, sim.in_flight_ids(), "stuck-packet set must be exact");

    // The dump carries enough state to diagnose the hang: the frozen
    // router is flagged, live flits are in the arena, the event ring
    // holds recent history, and sampled journeys are attached.
    let frozen: Vec<u64> = bb.routers.iter().filter(|r| r.sa_frozen).map(|r| r.router).collect();
    assert_eq!(frozen, vec![5], "the chaos-frozen router is flagged");
    assert!(!bb.arena.is_empty(), "stranded flits are still live in the arena");
    assert!(!bb.events.is_empty(), "the event ring captured recent history");
    assert!(
        bb.stuck_packets.iter().any(|s| s.journey.is_some()),
        "journey-sampled stuck packets carry their hop history"
    );
    for s in &bb.stuck_packets {
        assert_eq!(s.age, abort.cycle - s.created_at, "{}: age is capture-relative", s.packet);
    }
}

/// Anomaly failures are deterministic: the same (config, seed) pair
/// reproduces the same trigger cycle and the same dump, byte for byte.
#[test]
fn deadlock_dump_is_deterministic() {
    let (_, a) = run_to_abort();
    let (_, b) = run_to_abort();
    assert_eq!(a.cycle, b.cycle);
    assert_eq!(a.dump, b.dump, "black-box dumps must reproduce bit-for-bit");
}

/// With halting off the same deadlock only counts: the run completes
/// (saturated — the stranded packets never drain), the report carries
/// the firings, and the final in-flight set equals the stuck set a
/// halting twin dumped, cross-validating the dump against an
/// independent run.
#[test]
fn non_halting_recorder_counts_the_same_deadlock() {
    let (_, abort) = run_to_abort();
    let value: serde::Value = serde_json::from_str(&abort.dump).expect("dump is valid JSON");
    let bb = BlackBox::from_value(&value).expect("dump matches the BlackBox schema");

    let mut sim = stalled_sim(AnomalyConfig::detect().with_halt(false));
    let report = sim.run(Box::new(UniformRandom::new(0.10, 5, 42)));
    assert!(report.saturated, "stranded packets never drain");
    assert!(report.anomalies.no_progress >= 1, "the watchdog fired: {:?}", report.anomalies);
    assert!(!sim.anomalies_fired().is_empty());

    let dumped: Vec<u64> = bb.stuck_packets.iter().map(|s| s.packet).collect();
    assert_eq!(
        dumped,
        sim.in_flight_ids(),
        "the dump's stuck set matches the non-halting twin's final in-flight set"
    );
}
