//! Property tests on the datapath building blocks: payload
//! classification, buffers, and arbiters.

use proptest::prelude::*;

use mira_noc::arbiter::RoundRobinArbiter;
use mira_noc::flit::{FlitData, WordPattern};

proptest! {
    /// The zero-detector output is always in [1, words] and consistent
    /// with `is_short` / `active_fraction`.
    #[test]
    fn active_words_bounds(words in proptest::collection::vec(any::<u32>(), 1..8)) {
        let n = words.len();
        let d = FlitData::new(words);
        let a = d.active_words();
        prop_assert!(a >= 1 && a <= n);
        prop_assert_eq!(d.is_short(), a == 1);
        prop_assert!((d.active_fraction() - a as f64 / n as f64).abs() < 1e-12);
    }

    /// Gating is sound: every word at or above the active count is
    /// redundant (all-0 or all-1), so no information is lost.
    #[test]
    fn gated_words_are_redundant(words in proptest::collection::vec(any::<u32>(), 1..8)) {
        let d = FlitData::new(words.clone());
        for w in &words[d.active_words()..] {
            prop_assert!(WordPattern::of(*w).is_redundant());
        }
    }

    /// Forcing k active words yields exactly k (for k in range).
    #[test]
    fn with_active_words_exact(n in 1usize..8, k in 1usize..8) {
        let d = FlitData::with_active_words(n, k);
        prop_assert_eq!(d.active_words(), k.clamp(1, n));
    }

    /// A round-robin arbiter only grants requesting lines, and over any
    /// window with all lines requesting, grant counts differ by at most
    /// one (strong fairness).
    #[test]
    fn arbiter_fairness(size in 1usize..12, rounds in 1usize..100) {
        let mut arb = RoundRobinArbiter::new(size);
        let mut counts = vec![0usize; size];
        for _ in 0..rounds {
            let g = arb.arbitrate(|_| true).expect("always a requester");
            counts[g] += 1;
        }
        let min = counts.iter().min().unwrap();
        let max = counts.iter().max().unwrap();
        prop_assert!(max - min <= 1, "{counts:?}");
    }

    /// With a random request subset the grant is always a requester.
    #[test]
    fn arbiter_grants_requesters(size in 1usize..12, mask in any::<u16>()) {
        let mut arb = RoundRobinArbiter::new(size);
        let requesting: Vec<bool> = (0..size).map(|i| mask & (1 << i) != 0).collect();
        match arb.arbitrate(|i| requesting[i]) {
            Some(g) => prop_assert!(requesting[g]),
            None => prop_assert!(requesting.iter().all(|r| !r)),
        }
    }
}
