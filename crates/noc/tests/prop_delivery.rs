//! Property test: random packet batches always fully deliver on random
//! topologies, with exact flit conservation.

use proptest::prelude::*;

use mira_noc::config::{NetworkConfig, PipelineConfig};
use mira_noc::flit::FlitData;
use mira_noc::ids::NodeId;
use mira_noc::network::Network;
use mira_noc::packet::{Packet, PacketClass, PacketId};
use mira_noc::topology::{ExpressMesh2D, Mesh2D, Mesh3D, Topology};

#[derive(Debug, Clone)]
struct Spec {
    src: usize,
    dst: usize,
    len: usize,
    control: bool,
}

fn spec_strategy(nodes: usize) -> impl Strategy<Value = Spec> {
    (0..nodes, 0..nodes, 1usize..6, any::<bool>()).prop_map(|(src, dst, len, control)| Spec {
        src,
        dst,
        len,
        control,
    })
}

fn run_batch(topo: Box<dyn Topology>, combined: bool, specs: &[Spec]) -> Result<(), TestCaseError> {
    let pipeline =
        if combined { PipelineConfig::combined_st_lt() } else { PipelineConfig::separate_lt() };
    let cfg = NetworkConfig::builder().pipeline(pipeline).build();
    let mut net = Network::new(topo, cfg);
    let mut total = 0usize;
    for (i, s) in specs.iter().enumerate() {
        total += s.len;
        net.enqueue_packet(Packet {
            id: PacketId(i as u64),
            src: NodeId(s.src),
            dst: NodeId(s.dst),
            class: if s.control { PacketClass::ReadRequest } else { PacketClass::DataResponse },
            payload: (0..s.len).map(|_| FlitData::dense(4)).collect(),
            created_at: 0,
        });
    }
    let mut ejected = 0usize;
    for c in 0..50_000u64 {
        net.step(c);
        ejected += net.take_ejected().len();
        if net.is_drained() {
            break;
        }
    }
    prop_assert!(net.is_drained(), "network failed to drain: {} of {total} ejected", ejected);
    prop_assert_eq!(ejected, total);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mesh_delivers_everything(
        specs in proptest::collection::vec(spec_strategy(16), 1..60),
        combined in any::<bool>(),
    ) {
        run_batch(Box::new(Mesh2D::new(4, 4)), combined, &specs)?;
    }

    #[test]
    fn mesh3d_delivers_everything(
        specs in proptest::collection::vec(spec_strategy(27), 1..60),
    ) {
        run_batch(Box::new(Mesh3D::new(3, 3, 3)), false, &specs)?;
    }

    #[test]
    fn express_mesh_delivers_everything(
        specs in proptest::collection::vec(spec_strategy(36), 1..60),
    ) {
        run_batch(Box::new(ExpressMesh2D::new(6, 6)), true, &specs)?;
    }
}

mod simulator_conservation {
    use super::*;
    use mira_noc::sim::{SimConfig, Simulator};
    use mira_noc::traffic::UniformRandom;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// End-to-end packet conservation through the full
        /// warmup/measure/drain pipeline: every measured packet a
        /// non-saturated run creates is eventually ejected, and the
        /// `saturated` flag is set exactly when the drain left measured
        /// packets in flight.
        #[test]
        fn measured_packets_are_conserved(
            rate_pct in 1u32..8,      // 1%..7% load — comfortably below saturation
            seed in any::<u64>(),
            combined in any::<bool>(),
        ) {
            let pipeline = if combined {
                PipelineConfig::combined_st_lt()
            } else {
                PipelineConfig::separate_lt()
            };
            let cfg = NetworkConfig::builder().pipeline(pipeline).build();
            let mut sim = Simulator::new(Box::new(Mesh2D::new(4, 4)), cfg, SimConfig::short());
            let report = sim.run(Box::new(UniformRandom::new(rate_pct as f64 / 100.0, 5, seed)));

            prop_assert!(!report.saturated, "{}% load must not saturate a 4x4 mesh", rate_pct);
            prop_assert_eq!(report.packets_created, report.packets_ejected);
            prop_assert_eq!(
                sim.in_flight_measured(), 0,
                "drain must empty the measured in-flight population"
            );
        }

        /// The flip side: `saturated == false` iff the drain emptied the
        /// measured in-flight set, even at loads where the outcome is
        /// not known in advance.
        #[test]
        fn saturation_flag_tracks_in_flight(
            rate_pct in 5u32..60,
            seed in any::<u64>(),
        ) {
            let cfg = NetworkConfig::builder().build();
            // Tiny drain window so high rates genuinely strand packets.
            let window = SimConfig {
                warmup_cycles: 100,
                measure_cycles: 500,
                drain_cycles: 300,
                ..SimConfig::default()
            };
            let mut sim = Simulator::new(Box::new(Mesh2D::new(4, 4)), cfg, window);
            let report = sim.run(Box::new(UniformRandom::new(rate_pct as f64 / 100.0, 5, seed)));

            prop_assert_eq!(
                report.saturated,
                sim.in_flight_measured() > 0,
                "saturated flag must mirror stranded measured packets \
                 (created {}, ejected {})",
                report.packets_created,
                report.packets_ejected
            );
            prop_assert_eq!(
                report.saturated,
                report.packets_ejected < report.packets_created
            );
        }
    }
}

mod adaptive_delivery {
    use super::*;
    use mira_noc::adaptive::{AdaptiveMesh2D, TurnModel};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(18))]

        /// Every turn model delivers arbitrary batches without deadlock
        /// (the point of the turn restrictions).
        #[test]
        fn adaptive_mesh_delivers_everything(
            specs in proptest::collection::vec(spec_strategy(36), 1..60),
            model_idx in 0usize..3,
        ) {
            let model = TurnModel::ALL[model_idx];
            let topo = AdaptiveMesh2D::new(Mesh2D::new(6, 6), model);
            run_batch(Box::new(topo), false, &specs)?;
        }
    }
}
