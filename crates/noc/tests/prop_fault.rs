//! Property tests for the fault-injection and recovery subsystem.
//!
//! Three claims, matching the recovery design:
//!
//! 1. **Transient faults + unbounded retries ⇒ lossless delivery.**
//!    Parity catches single flips, the go-back-N window resends, and
//!    the stateless fault hash re-rolls per cycle, so every packet is
//!    eventually delivered exactly once.
//! 2. **Permanent kills + fault-aware routing ⇒ no livelock, exact
//!    conservation.** Every flit is delivered, dropped-with-accounting,
//!    or still in flight — at every cycle — and the network drains.
//! 3. **Faults off ⇒ bit-identical to the pre-fault simulator.** The
//!    default `FaultConfig` leaves the whole machinery disengaged.

use std::collections::HashMap;

use proptest::prelude::*;

use mira_noc::config::NetworkConfig;
use mira_noc::fault::FaultConfig;
use mira_noc::flit::FlitData;
use mira_noc::ids::NodeId;
use mira_noc::network::Network;
use mira_noc::packet::{Packet, PacketClass, PacketId};
use mira_noc::topology::{Mesh2D, Mesh3D};

#[derive(Debug, Clone)]
struct Spec {
    src: usize,
    dst: usize,
    len: usize,
}

fn spec_strategy(nodes: usize) -> impl Strategy<Value = Spec> {
    (0..nodes, 0..nodes, 1usize..6).prop_map(|(src, dst, len)| Spec { src, dst, len })
}

fn enqueue_all(net: &mut Network, specs: &[Spec]) -> usize {
    let mut total = 0usize;
    for (i, s) in specs.iter().enumerate() {
        total += s.len;
        net.enqueue_packet(Packet {
            id: PacketId(i as u64),
            src: NodeId(s.src),
            dst: NodeId(s.dst),
            class: if s.len > 1 { PacketClass::DataResponse } else { PacketClass::ReadRequest },
            payload: (0..s.len).map(|_| FlitData::dense(4)).collect(),
            created_at: 0,
        });
    }
    total
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Claim 1: transient corruption with an unlimited retry budget
    /// loses nothing — every packet's tail ejects exactly once.
    #[test]
    fn transient_faults_with_unbounded_retries_deliver_exactly_once(
        specs in proptest::collection::vec(spec_strategy(16), 1..40),
        ppm in 1_000u32..80_000,
        seed in any::<u64>(),
    ) {
        let faults = FaultConfig::disabled()
            .with_transient(ppm)
            .with_max_retries(0) // retry forever
            .with_seed(seed);
        let mut net = Network::new(Box::new(Mesh2D::new(4, 4)), NetworkConfig::default());
        net.set_faults(faults).expect("valid fault config");
        let total_packets = specs.len();
        enqueue_all(&mut net, &specs);

        let mut tails: HashMap<PacketId, u32> = HashMap::new();
        for c in 0..100_000u64 {
            net.step(c);
            for e in net.take_ejected() {
                if e.flit.is_tail() {
                    *tails.entry(e.flit.packet).or_insert(0) += 1;
                }
            }
            if net.is_drained() {
                break;
            }
        }
        prop_assert!(net.is_drained(), "retries must converge — no livelock");
        prop_assert_eq!(tails.len(), total_packets, "every packet delivered");
        prop_assert!(tails.values().all(|&n| n == 1), "each exactly once: {:?}", tails);
        let fc = net.fault_counters();
        prop_assert_eq!(fc.packets_dropped, 0);
        prop_assert_eq!(fc.flits_dropped, 0);
        prop_assert_eq!(
            fc.transient_faults,
            (fc.detected - fc.stuck_faults) + fc.escaped + fc.masked,
            "every transient fault has exactly one verdict"
        );
    }

    /// Claim 2: a permanent link kill under fault-aware routing neither
    /// livelocks nor leaks — `delivered + dropped + in_flight ==
    /// injected` holds at every cycle, and the network drains with
    /// every packet either delivered or dropped-with-accounting.
    /// (Single kill: the routing layer argues deadlock/livelock freedom
    /// for one dead link; multi-fault recovery is best-effort.)
    #[test]
    fn permanent_kills_conserve_flits_and_drain(
        specs in proptest::collection::vec(spec_strategy(36), 1..40),
        window in 0u64..150,
        ppm in 0u32..20_000,
        seed in any::<u64>(),
    ) {
        let faults = FaultConfig::disabled()
            .with_transient(ppm)
            .with_random_kills(1, window)
            .with_max_retries(2) // tight budget: drops do happen
            .with_seed(seed);
        let mut net = Network::new(Box::new(Mesh2D::new(6, 6)), NetworkConfig::default());
        net.set_faults(faults).expect("valid fault config");
        let total_packets = specs.len();
        let total_flits = enqueue_all(&mut net, &specs) as u64;

        let mut tails = 0u64;
        let mut ejected_flits = 0u64;
        for c in 0..100_000u64 {
            net.step(c);
            for e in net.take_ejected() {
                ejected_flits += 1;
                if e.flit.is_tail() {
                    tails += 1;
                }
            }
            let dropped = net.fault_counters().flits_dropped;
            let in_flight =
                (net.flits_in_fabric() + net.flits_in_source_queues()) as u64;
            prop_assert_eq!(
                ejected_flits + dropped + in_flight,
                total_flits,
                "flit conservation broken at cycle {}",
                c
            );
            // Keep stepping through the kill window even when drained,
            // so every scheduled kill actually fires.
            if net.is_drained() && c > window {
                break;
            }
        }
        prop_assert!(net.is_drained(), "dead links must not wedge the network");
        let fc = net.fault_counters();
        prop_assert_eq!(
            tails + fc.packets_dropped,
            total_packets as u64,
            "every packet is delivered or dropped with accounting"
        );
        prop_assert!(fc.links_killed >= 1, "at least one kill fired");
    }

    /// Claim 2b (3D): the same holds on the paper's stacked mesh, where
    /// a kill can sever an inter-layer via.
    #[test]
    fn kills_on_stacked_mesh_drain(
        specs in proptest::collection::vec(spec_strategy(36), 1..30),
        seed in any::<u64>(),
    ) {
        let faults = FaultConfig::disabled()
            .with_random_kills(1, 100)
            .with_max_retries(4)
            .with_seed(seed);
        let mut net = Network::new(Box::new(Mesh3D::new(3, 3, 4)), NetworkConfig::default());
        net.set_faults(faults).expect("valid fault config");
        let total_packets = specs.len() as u64;
        enqueue_all(&mut net, &specs);

        let mut tails = 0u64;
        for c in 0..100_000u64 {
            net.step(c);
            tails += net.take_ejected().iter().filter(|e| e.flit.is_tail()).count() as u64;
            if net.is_drained() {
                break;
            }
        }
        prop_assert!(net.is_drained());
        prop_assert_eq!(tails + net.fault_counters().packets_dropped, total_packets);
    }
}

/// Claim 3: with `FaultConfig::default()` the simulator output is
/// bit-identical to the pre-fault-subsystem golden run — the machinery
/// is provably disengaged on the default path.
#[test]
fn disabled_faults_match_pre_fault_golden_bits() {
    use mira_noc::sim::{SimConfig, Simulator};
    use mira_noc::traffic::UniformRandom;

    let cfg = SimConfig::short().with_faults(FaultConfig::default());
    let mut sim = Simulator::new(Box::new(Mesh2D::new(4, 4)), NetworkConfig::default(), cfg);
    let r = sim.run(Box::new(UniformRandom::new(0.10, 5, 42)));

    // Bits captured from the simulator immediately before the fault
    // subsystem was introduced (same topology, config, and workload).
    assert_eq!(r.avg_latency.to_bits(), 0x4039080000000000, "avg latency drifted");
    assert_eq!(r.avg_hops.to_bits(), 0x4004eaaaaaaaaaab, "avg hops drifted");
    assert_eq!(r.throughput.to_bits(), 0x3fb7851eb851eb85, "throughput drifted");
    assert_eq!(r.packets_created, 288);
    assert_eq!(r.packets_ejected, 288);
    assert_eq!(r.counters.xbar_traversals_raw, 5303);
    assert_eq!(r.stalls.stalled, 2732);
    assert_eq!(r.packets_dropped, 0);
    assert_eq!(r.faults, mira_noc::fault::FaultCounters::new());
}
