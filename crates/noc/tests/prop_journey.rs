//! Property tests for the packet-journey tracing invariants
//! (DESIGN.md §13):
//!
//! * every sampled journey's spans sum *exactly* to the packet's
//!   measured end-to-end latency — no cycle is lost or double-counted,
//!   for every load, pipeline depth, and sampling rate;
//! * at a sampling rate of 1.0 the per-router stall cycles recorded on
//!   journeys reproduce the routers' own `StallCounters` exactly;
//! * the sampled set is the sampler's deterministic predicate, never a
//!   function of simulation timing;
//! * the Chrome trace export links a sampled packet's hops across
//!   routers with `s`/`t`/`f` flow events.

use proptest::prelude::*;

use mira_noc::config::{NetworkConfig, PipelineConfig, PipelineDepth};
use mira_noc::sim::{SimConfig, Simulator};
use mira_noc::telemetry::{StallCounters, TelemetryConfig};
use mira_noc::topology::Mesh2D;
use mira_noc::traffic::UniformRandom;
use mira_noc::{JourneySampler, PacketId};

fn depth_of(idx: usize) -> PipelineDepth {
    [
        PipelineDepth::FourStage,
        PipelineDepth::ThreeStageSpeculative,
        PipelineDepth::TwoStageLookahead,
    ][idx]
}

fn run_journeys(rate: f64, seed: u64, depth: PipelineDepth, sample_ppm: u32) -> Simulator {
    let cfg =
        NetworkConfig::builder().pipeline(PipelineConfig::separate_lt().with_depth(depth)).build();
    let sim_cfg =
        SimConfig::short().with_telemetry(TelemetryConfig::disabled().with_journeys(sample_ppm));
    let mut sim = Simulator::new(Box::new(Mesh2D::new(4, 4)), cfg, sim_cfg);
    sim.run(Box::new(UniformRandom::new(rate, 5, seed)));
    sim
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tentpole invariant: source-queue wait + per-hop residency +
    /// link/ARQ wire time + serialization telescopes to exactly the
    /// measured latency of every sampled packet.
    #[test]
    fn journey_spans_sum_exactly_to_latency(
        rate_pct in 2u32..45,
        seed in any::<u64>(),
        depth_idx in 0usize..3,
    ) {
        let sim = run_journeys(rate_pct as f64 / 100.0, seed, depth_of(depth_idx), 1_000_000);
        let journeys = sim.journeys();
        prop_assert!(!journeys.is_empty(), "full sampling must record journeys");
        for j in journeys {
            prop_assert_eq!(
                j.span_sum(), j.latency(),
                "packet {}: spans {:?}", j.packet, j
            );
            for h in &j.hops {
                prop_assert!(h.departed >= h.arrived, "packet {}: open hop", j.packet);
                prop_assert!(
                    h.stalls.stalled <= h.residency(),
                    "packet {}: head stalls exceed residency", j.packet
                );
                prop_assert_eq!(h.stalls.cause_sum(), h.stalls.stalled);
                prop_assert_eq!(h.body_stalls.cause_sum(), h.body_stalls.stalled);
            }
        }
    }

    /// With every packet sampled, the journeys' per-router stall
    /// attribution (head and body flits combined, finished and
    /// in-flight journeys alike) reproduces the routers' own cumulative
    /// `StallCounters` exactly.
    #[test]
    fn journey_stalls_match_router_counters(
        rate_pct in 5u32..40,
        seed in any::<u64>(),
        depth_idx in 0usize..3,
    ) {
        let sim = run_journeys(rate_pct as f64 / 100.0, seed, depth_of(depth_idx), 1_000_000);
        let by_router = sim.network().journeys().expect("recorder installed").stalls_by_router();
        let routers = sim.network().router_stalls();
        let mut total_router = StallCounters::new();
        for (i, r) in routers.iter().enumerate() {
            let from_journeys = by_router.get(&i).copied().unwrap_or_default();
            prop_assert_eq!(
                from_journeys, *r,
                "router {}: journey-attributed stalls must match its counters", i
            );
            total_router.merge(r);
        }
        // Nothing attributed to routers that do not exist.
        prop_assert!(by_router.keys().all(|&i| i < routers.len()));
        let mut total_journeys = StallCounters::new();
        for s in by_router.values() {
            total_journeys.merge(s);
        }
        prop_assert_eq!(total_journeys, total_router);
    }

    /// Partial sampling records exactly the sampler's deterministic
    /// subset: every finished journey is in the predicate set, and the
    /// finished set is independent of anything but packet ids.
    #[test]
    fn partial_sampling_is_the_sampler_predicate(
        rate_pct in 5u32..30,
        seed in any::<u64>(),
        sample_ppm in 1u32..1_000_000,
    ) {
        let sim = run_journeys(rate_pct as f64 / 100.0, seed, PipelineDepth::FourStage, sample_ppm);
        let sampler = JourneySampler::new(sample_ppm, 0);
        for j in sim.journeys() {
            prop_assert!(
                sampler.sampled(PacketId(j.packet)),
                "packet {} recorded but not in the sampled set", j.packet
            );
            prop_assert_eq!(j.span_sum(), j.latency(), "packet {}", j.packet);
        }
        // The same run with the same rate finds the same journeys.
        let again = run_journeys(
            rate_pct as f64 / 100.0, seed, PipelineDepth::FourStage, sample_ppm,
        );
        let ids: Vec<u64> = sim.journeys().iter().map(|j| j.packet).collect();
        let ids_again: Vec<u64> = again.journeys().iter().map(|j| j.packet).collect();
        prop_assert_eq!(ids, ids_again);
    }
}

/// A contended run exports flow events that link one packet's hops
/// across at least two routers (the Perfetto cross-router view).
#[test]
fn chrome_trace_links_packets_across_routers() {
    let cfg = NetworkConfig::builder().build();
    let sim_cfg = SimConfig::short().with_telemetry(TelemetryConfig {
        metrics_window: 0,
        trace_capacity: 1 << 14,
        journey_sample_ppm: 1_000_000,
        journey_seed: 0,
    });
    let mut sim = Simulator::new(Box::new(Mesh2D::new(4, 4)), cfg, sim_cfg);
    sim.run(Box::new(UniformRandom::new(0.25, 5, 7)));

    let multi_hop = sim
        .journeys()
        .iter()
        .find(|j| j.hops.len() >= 2)
        .expect("a 4x4 mesh run has multi-hop packets");
    let trace = sim.trace_chrome_json().expect("trace sink installed");
    assert!(trace.contains("\"ph\":\"s\""), "flow start events present");
    assert!(trace.contains("\"ph\":\"f\""), "flow finish events present");

    // The packet's flow events carry one pid per router visited.
    let id_tag = format!("\"id\":{},", multi_hop.packet);
    let mut routers_seen = Vec::new();
    for chunk in trace.split('{') {
        if chunk.contains("\"cat\":\"journey\"") && chunk.contains(&id_tag) {
            let pid = chunk
                .split("\"pid\":")
                .nth(1)
                .and_then(|s| s.split(',').next())
                .and_then(|s| s.parse::<usize>().ok())
                .expect("flow event has a pid");
            routers_seen.push(pid);
        }
    }
    let expected: Vec<usize> = multi_hop.hops.iter().map(|h| h.router).collect();
    assert_eq!(routers_seen, expected, "one flow event per hop, in hop order");
    let mut distinct = routers_seen.clone();
    distinct.sort_unstable();
    distinct.dedup();
    assert!(distinct.len() >= 2, "flow links at least two routers: {routers_seen:?}");
}

/// Sampling rate 0 keeps the recorder uninstalled entirely.
#[test]
fn zero_rate_installs_no_recorder() {
    let sim = run_journeys(0.10, 7, PipelineDepth::FourStage, 0);
    assert!(sim.network().journeys().is_none());
    assert!(sim.journeys().is_empty());
}
