//! Property tests: routing always delivers, minimally, on every
//! topology and size.

use proptest::prelude::*;

use mira_noc::ids::NodeId;
use mira_noc::topology::{ExpressMesh2D, Mesh2D, Mesh3D, Topology};

/// Walks the deterministic route from src to dst, panicking on loops.
fn walk(topo: &dyn Topology, src: NodeId, dst: NodeId) -> usize {
    let mut cur = src;
    let mut hops = 0;
    while cur != dst {
        let p = topo.route(cur, dst);
        prop_assert_ne_ok(!p.is_local());
        cur = topo.neighbor(cur, p).expect("route follows a link");
        hops += 1;
        assert!(hops <= 4 * topo.num_nodes(), "routing loop");
    }
    hops
}

fn prop_assert_ne_ok(cond: bool) {
    assert!(cond, "router tried to eject early");
}

proptest! {
    #[test]
    fn mesh2d_routes_minimally(w in 2usize..8, h in 2usize..8, s in 0usize..64, d in 0usize..64) {
        let topo = Mesh2D::new(w, h);
        let n = topo.num_nodes();
        let (src, dst) = (NodeId(s % n), NodeId(d % n));
        prop_assume!(src != dst);
        prop_assert_eq!(walk(&topo, src, dst), topo.min_hops(src, dst));
    }

    #[test]
    fn mesh3d_routes_minimally(w in 2usize..5, h in 2usize..5, depth in 2usize..5,
                               s in 0usize..128, d in 0usize..128) {
        let topo = Mesh3D::new(w, h, depth);
        let n = topo.num_nodes();
        let (src, dst) = (NodeId(s % n), NodeId(d % n));
        prop_assume!(src != dst);
        prop_assert_eq!(walk(&topo, src, dst), topo.min_hops(src, dst));
    }

    #[test]
    fn express_mesh_delivers(w in 4usize..9, h in 4usize..9, s in 0usize..81, d in 0usize..81) {
        let topo = ExpressMesh2D::new(w, h);
        let n = topo.num_nodes();
        let (src, dst) = (NodeId(s % n), NodeId(d % n));
        prop_assume!(src != dst);
        let hops = walk(&topo, src, dst);
        // Greedy express routing is minimal for span 2 away from edges
        // and never worse than the plain-mesh distance.
        let manhattan = {
            let a = topo.coords(src);
            let b = topo.coords(dst);
            a.x.abs_diff(b.x) + a.y.abs_diff(b.y)
        };
        prop_assert!(hops >= topo.min_hops(src, dst));
        prop_assert!(hops <= manhattan);
    }

    /// Dimension-ordered routing never turns back into a dimension it
    /// has finished — the acyclicity that makes it deadlock-free.
    #[test]
    fn xy_routing_is_dimension_ordered(s in 0usize..36, d in 0usize..36) {
        let topo = Mesh2D::new(6, 6);
        let (src, dst) = (NodeId(s), NodeId(d));
        prop_assume!(src != dst);
        let mut cur = src;
        let mut seen_y_move = false;
        while cur != dst {
            let p = topo.route(cur, dst);
            let next = topo.neighbor(cur, p).unwrap();
            let (a, b) = (topo.coords(cur), topo.coords(next));
            if a.y != b.y {
                seen_y_move = true;
            } else {
                prop_assert!(!seen_y_move, "x move after a y move breaks XY order");
            }
            cur = next;
        }
    }
}
