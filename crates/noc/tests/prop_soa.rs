//! Property tests for the data-oriented core (DESIGN.md §14): flit-arena
//! slot conservation, work-list (active-set) consistency, and
//! counter-level in-flight conservation, checked after *every* simulated
//! cycle of randomized fault-free runs.

use proptest::prelude::*;

use mira_noc::config::{NetworkConfig, PipelineConfig};
use mira_noc::flit::FlitData;
use mira_noc::ids::NodeId;
use mira_noc::network::Network;
use mira_noc::packet::{Packet, PacketClass, PacketId};
use mira_noc::topology::{ExpressMesh2D, Mesh2D, Mesh3D, Topology};

#[derive(Debug, Clone)]
struct Spec {
    src: usize,
    dst: usize,
    len: usize,
    control: bool,
}

fn spec_strategy(nodes: usize) -> impl Strategy<Value = Spec> {
    (0..nodes, 0..nodes, 1usize..6, any::<bool>()).prop_map(|(src, dst, len, control)| Spec {
        src,
        dst,
        len,
        control,
    })
}

fn topology(which: u8) -> Box<dyn Topology> {
    match which % 3 {
        0 => Box::new(Mesh2D::new(4, 4)),
        1 => Box::new(Mesh3D::new(3, 3, 3)),
        _ => Box::new(ExpressMesh2D::new(6, 6)),
    }
}

/// Drives a random batch to drain, running `check` after every cycle.
fn run_checked(
    which: u8,
    combined: bool,
    specs: &[Spec],
    mut check: impl FnMut(&Network, usize) -> Result<(), TestCaseError>,
) -> Result<(), TestCaseError> {
    let topo = topology(which);
    let nodes = topo.num_nodes();
    let pipeline =
        if combined { PipelineConfig::combined_st_lt() } else { PipelineConfig::separate_lt() };
    let cfg = NetworkConfig::builder().pipeline(pipeline).build();
    let mut net = Network::new(topo, cfg);
    let mut enqueued = 0usize;
    for (i, s) in specs.iter().enumerate() {
        enqueued += s.len;
        net.enqueue_packet(Packet {
            id: PacketId(i as u64),
            src: NodeId(s.src % nodes),
            dst: NodeId(s.dst % nodes),
            class: if s.control { PacketClass::ReadRequest } else { PacketClass::DataResponse },
            payload: (0..s.len).map(|_| FlitData::dense(4)).collect(),
            created_at: 0,
        });
    }
    check(&net, enqueued)?;
    for c in 0..50_000u64 {
        net.step(c);
        let _ = net.take_ejected();
        check(&net, enqueued)?;
        if net.is_drained() {
            break;
        }
    }
    prop_assert!(net.is_drained(), "network failed to drain");
    prop_assert_eq!(net.arena().allocated(), 0, "drained network must hold no live flits");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(18))]

    /// Arena slot conservation: at every cycle boundary, the live slots
    /// of the flit arena are exactly the flits observable in the fabric
    /// (router buffers + link wires) plus the source queues — no slot
    /// leaks, no flit exists outside the arena.
    #[test]
    fn arena_slots_partition_into_fabric_and_sources(
        which in any::<u8>(),
        combined in any::<bool>(),
        specs in proptest::collection::vec(spec_strategy(36), 1..50),
    ) {
        run_checked(which, combined, &specs, |net, _| {
            prop_assert_eq!(
                net.arena().allocated(),
                net.flits_in_fabric() + net.flits_in_source_queues(),
                "live arena slots must equal fabric + source-queue flits"
            );
            Ok(())
        })?;
    }

    /// Active-set completeness: the per-state work-list masks agree with
    /// the VC state machine at every cycle boundary, every `Routing` or
    /// `WaitingVc` VC holds a buffered head flit, and quiescent routers
    /// hold no routable or waiting VC — the invariants that make the
    /// mask-driven stages and the quiescence skip exact.
    #[test]
    fn worklist_masks_stay_consistent(
        which in any::<u8>(),
        combined in any::<bool>(),
        specs in proptest::collection::vec(spec_strategy(36), 1..50),
    ) {
        run_checked(which, combined, &specs, |net, _| {
            net.assert_worklists_consistent();
            Ok(())
        })?;
    }

    /// Counter-level conservation in fault-free runs: flits injected
    /// minus flits ejected is exactly the fabric population, and
    /// enqueued minus injected is exactly the source-queue population.
    #[test]
    fn in_flight_counters_conserve_flits(
        which in any::<u8>(),
        combined in any::<bool>(),
        specs in proptest::collection::vec(spec_strategy(36), 1..50),
    ) {
        run_checked(which, combined, &specs, |net, enqueued| {
            let c = net.counters();
            prop_assert_eq!(
                (c.flits_injected - c.flits_ejected) as usize,
                net.flits_in_fabric(),
                "injected - ejected must equal the fabric population"
            );
            prop_assert_eq!(
                enqueued - c.flits_injected as usize,
                net.flits_in_source_queues(),
                "enqueued - injected must equal the source-queue population"
            );
            Ok(())
        })?;
    }
}
