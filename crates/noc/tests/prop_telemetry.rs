//! Property tests for the telemetry invariants (DESIGN.md §11):
//!
//! * stall-cause counters sum to the total stall cycles, for every load,
//!   pipeline depth, and phase split — per router, per window, and in
//!   the report;
//! * the trace ring buffer never exceeds its capacity and drops the
//!   oldest events first;
//! * per-layer duty cycles separate short-flit layer shutdown (3DM)
//!   from an ungated baseline (2DB).

use proptest::prelude::*;

use mira_noc::config::{NetworkConfig, PipelineConfig, PipelineDepth};
use mira_noc::sim::{SimConfig, SimReport, Simulator};
use mira_noc::telemetry::{
    EventSink, StallCounters, TelemetryConfig, TraceEvent, TraceEventKind, TraceSink,
};
use mira_noc::topology::Mesh2D;
use mira_noc::traffic::{PayloadProfile, UniformRandom};
use mira_noc::{NodeId, PortId, VcId};

fn depth_of(idx: usize) -> PipelineDepth {
    [
        PipelineDepth::FourStage,
        PipelineDepth::ThreeStageSpeculative,
        PipelineDepth::TwoStageLookahead,
    ][idx]
}

fn run_telemetry(
    rate: f64,
    seed: u64,
    depth: PipelineDepth,
    telemetry: TelemetryConfig,
) -> (SimReport, StallCounters) {
    let cfg =
        NetworkConfig::builder().pipeline(PipelineConfig::separate_lt().with_depth(depth)).build();
    let sim_cfg = SimConfig::short().with_telemetry(telemetry);
    let mut sim = Simulator::new(Box::new(Mesh2D::new(4, 4)), cfg, sim_cfg);
    let report = sim.run(Box::new(UniformRandom::new(rate, 5, seed)));
    let totals = sim.network().stall_totals();
    (report, totals)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every stalled VC-cycle carries exactly one cause: the per-cause
    /// counters sum to the stall total at every level of aggregation —
    /// per router, summed over the network, per metrics window, and in
    /// the report's measurement-window delta.
    #[test]
    fn stall_causes_account_for_every_stall_cycle(
        rate_pct in 2u32..45,
        seed in any::<u64>(),
        depth_idx in 0usize..3,
    ) {
        let (report, totals) = run_telemetry(
            rate_pct as f64 / 100.0,
            seed,
            depth_of(depth_idx),
            TelemetryConfig::windows(250),
        );

        prop_assert_eq!(totals.cause_sum(), totals.stalled, "network totals");
        prop_assert_eq!(
            report.stalls.cause_sum(), report.stalls.stalled,
            "measurement-window delta"
        );
        let mut window_sum = StallCounters::new();
        for w in &report.windows {
            for r in &w.routers {
                prop_assert_eq!(r.stalls.cause_sum(), r.stalls.stalled, "router in window");
            }
            let wt = w.stall_total();
            prop_assert_eq!(wt.cause_sum(), wt.stalled, "window total");
            window_sum.merge(&wt);
        }
        // Windows tile the run: full windows cover every cycle except a
        // trailing partial window, so their sum never exceeds the
        // cumulative total and the unaccounted remainder is at most the
        // stalls of the open window (bounded by total - sum >= 0).
        prop_assert!(window_sum.stalled <= totals.stalled);
        prop_assert_eq!(window_sum.cause_sum(), window_sum.stalled, "summed windows");
        // Contended runs must actually exercise the attribution.
        if rate_pct >= 25 {
            prop_assert!(totals.stalled > 0, "a loaded 4x4 mesh must stall somewhere");
        }
    }

    /// Telemetry is purely observational: the same run with metrics
    /// windows and tracing enabled is bit-identical to the untouched
    /// default path.
    #[test]
    fn telemetry_never_perturbs_results(
        rate_pct in 2u32..30,
        seed in any::<u64>(),
        depth_idx in 0usize..3,
    ) {
        let depth = depth_of(depth_idx);
        let rate = rate_pct as f64 / 100.0;
        let (plain, _) = run_telemetry(rate, seed, depth, TelemetryConfig::disabled());
        let (traced, _) = run_telemetry(
            rate,
            seed,
            depth,
            TelemetryConfig { metrics_window: 200, trace_capacity: 1 << 12, journey_sample_ppm: 0, journey_seed: 0 },
        );
        prop_assert_eq!(plain.avg_latency.to_bits(), traced.avg_latency.to_bits());
        prop_assert_eq!(plain.avg_hops.to_bits(), traced.avg_hops.to_bits());
        prop_assert_eq!(plain.throughput.to_bits(), traced.throughput.to_bits());
        prop_assert_eq!(plain.packets_created, traced.packets_created);
        prop_assert_eq!(plain.packets_ejected, traced.packets_ejected);
        prop_assert_eq!(plain.cycles_simulated, traced.cycles_simulated);
        prop_assert_eq!(&plain.counters, &traced.counters);
    }

    /// The ring buffer holds at most `capacity` events, never
    /// reallocates past it, and always retains the most recent events
    /// in chronological order.
    #[test]
    fn trace_ring_is_bounded_and_drops_oldest(
        capacity in 1usize..257,
        total in 0u64..1_000,
    ) {
        let mut sink = TraceSink::new(capacity);
        for cycle in 0..total {
            sink.record(TraceEvent {
                cycle,
                router: NodeId(0),
                port: PortId(1),
                vc: VcId(0),
                kind: TraceEventKind::SwitchTraversal,
                packet: cycle,
                detail: 0,
            });
        }
        prop_assert!(sink.len() <= capacity);
        prop_assert_eq!(sink.len() as u64, total.min(capacity as u64));
        prop_assert_eq!(sink.dropped(), total.saturating_sub(capacity as u64));
        let cycles: Vec<u64> = sink.events().map(|e| e.cycle).collect();
        let expected: Vec<u64> =
            (total.saturating_sub(capacity as u64)..total).collect();
        prop_assert_eq!(cycles, expected, "most recent events, oldest first");
    }
}

/// A 10k-cycle contended run, checked end to end: stall-cause counters
/// exactly account for every stalled cycle (the acceptance criterion's
/// wording), and the trace exports as valid Chrome trace-event JSON.
#[test]
fn ten_k_cycle_run_accounts_for_every_stall() {
    let cfg = NetworkConfig::builder().build();
    let sim_cfg = SimConfig {
        warmup_cycles: 0,
        measure_cycles: 10_000,
        drain_cycles: 0,
        ..SimConfig::default()
    }
    .with_telemetry(TelemetryConfig {
        metrics_window: 1_000,
        trace_capacity: 1 << 14,
        journey_sample_ppm: 0,
        journey_seed: 0,
    });
    let mut sim = Simulator::new(Box::new(Mesh2D::new(4, 4)), cfg, sim_cfg);
    let report = sim.run(Box::new(UniformRandom::new(0.30, 5, 7)));

    // With warmup == drain == 0 the report delta covers the whole run,
    // so it must match the cumulative network totals exactly.
    let totals = sim.network().stall_totals();
    assert_eq!(report.stalls, totals);
    assert_eq!(totals.cause_sum(), totals.stalled, "every stalled cycle has exactly one cause");
    assert!(totals.stalled > 0, "30% load must contend");
    assert!(totals.sa_loss > 0 || totals.va_loss > 0, "arbitration losses must appear");

    // Per-router decomposition also ties out against the totals.
    let mut per_router = StallCounters::new();
    for r in sim.network().router_stalls() {
        assert_eq!(r.cause_sum(), r.stalled);
        per_router.merge(&r);
    }
    assert_eq!(per_router, totals);

    // Full windows tile the 10k measured cycles exactly.
    assert_eq!(report.windows.len(), 10, "10k cycles / 1k window");
    let window_sum = report.windows.iter().fold(StallCounters::new(), |mut acc, w| {
        acc.merge(&w.stall_total());
        acc
    });
    assert_eq!(window_sum, totals, "windows partition the run's stalls");

    // The trace must be loadable JSON with the Perfetto-required keys.
    let trace = sim.trace_chrome_json().expect("tracing was enabled");
    let v: serde::Value = serde_json::from_str(&trace).expect("trace is valid JSON");
    let events = v.field("traceEvents").as_array().expect("traceEvents array");
    assert!(!events.is_empty());
    for field in ["name", "ph", "ts", "pid", "tid"] {
        assert!(
            !matches!(events[events.len() - 1].field(field), serde::Value::Null),
            "trace events carry {field}"
        );
    }
}

/// Short-flit layer shutdown must show up in the duty cycle: with
/// gating on and 50% short flits, the lowest layer's duty falls well
/// below 1.0, while an ungated run keeps every layer at exactly 1.0.
#[test]
fn layer_duty_distinguishes_shutdown_from_baseline() {
    let duty = |layer_shutdown: bool| -> Vec<f64> {
        let cfg = NetworkConfig::builder().layer_shutdown(layer_shutdown).build();
        let sim_cfg = SimConfig::short().with_telemetry(TelemetryConfig::windows(400));
        let mut sim = Simulator::new(Box::new(Mesh2D::new(4, 4)), cfg, sim_cfg);
        let workload = UniformRandom::new(0.10, 5, 11)
            .with_payload(PayloadProfile::with_short_fraction(4, 0.5));
        let report = sim.run(Box::new(workload));
        // Mean duty per layer over all windows and routers that saw
        // traffic.
        let layers = sim.network().config().layers;
        let mut sums = vec![0.0f64; layers];
        let mut n = 0u64;
        for w in &report.windows {
            for r in &w.routers {
                if r.layer_duty.is_empty() {
                    continue;
                }
                for (i, d) in r.layer_duty.iter().enumerate() {
                    sums[i] += d;
                }
                n += 1;
            }
        }
        assert!(n > 0, "some router must have forwarded flits");
        sums.iter().map(|s| s / n as f64).collect()
    };

    let gated = duty(true);
    let ungated = duty(false);

    assert!(
        ungated.iter().all(|&d| (d - 1.0).abs() < 1e-12),
        "no gating → every layer always powered: {ungated:?}"
    );
    assert!((gated[0] - 1.0).abs() < 1e-12, "top layer is never gated: {gated:?}");
    let bottom = *gated.last().expect("layers");
    assert!(
        bottom < 0.8,
        "50% short flits must idle the bottom layer a noticeable fraction: {gated:?}"
    );
    assert!(
        gated.windows(2).all(|w| w[0] >= w[1] - 1e-12),
        "duty is monotonically non-increasing from top to bottom layer: {gated:?}"
    );
}
