//! Zero-allocation regression test for the per-cycle path (DESIGN.md
//! §14): after a warmup that lets every reusable buffer reach its
//! steady-state capacity, stepping the network must perform **zero**
//! heap allocations — the data-oriented core's contract.
//!
//! A counting global allocator observes every `alloc`/`realloc`;
//! deallocation is not counted (dropping ejected flits is free anyway:
//! flit payloads are inline). The whole scenario lives in a single
//! `#[test]` so no concurrent test can allocate while the counter is
//! armed.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use mira_noc::anomaly::AnomalyConfig;
use mira_noc::config::{NetworkConfig, PipelineConfig};
use mira_noc::flit::FlitData;
use mira_noc::ids::NodeId;
use mira_noc::network::Network;
use mira_noc::packet::{Packet, PacketClass, PacketId};
use mira_noc::recorder::FlightRecorder;
use mira_noc::topology::{ExpressMesh2D, Mesh2D, Mesh3D, Topology};

/// Pass-through allocator that counts allocations while armed. With
/// `ZERO_ALLOC_PANIC=1` in the environment it panics (with a backtrace)
/// at the first armed allocation instead, pinpointing the culprit.
struct CountingAlloc;

#[inline]
fn note_alloc(what: &str, bytes: usize) {
    ALLOCS.fetch_add(1, Ordering::Relaxed);
    if PANIC_ON_ALLOC.load(Ordering::Relaxed) {
        // Disarm first: panic formatting itself allocates.
        ARMED.store(false, Ordering::Relaxed);
        panic!("steady-state {what} of {bytes} bytes");
    }
}

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static PANIC_ON_ALLOC: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            note_alloc("alloc", layout.size());
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            note_alloc("alloc_zeroed", layout.size());
        }
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            note_alloc("realloc", new_size);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

const WARMUP_CYCLES: u64 = 500;
const MEASURED_CYCLES: u64 = 1_000;

/// Builds a network on `topo`, floods it with enough pre-enqueued
/// traffic to stay busy through warmup + measurement, then counts heap
/// allocations across the measured window. With a `recorder` the armed
/// detectors are evaluated every cycle, the way the simulator drives
/// them.
fn allocations_during_steady_state(
    topo: Box<dyn Topology>,
    combined: bool,
    recorder: Option<&mut FlightRecorder>,
) -> (u64, usize) {
    allocations_during_steady_state_sharded(topo, combined, recorder, 1)
}

fn allocations_during_steady_state_sharded(
    topo: Box<dyn Topology>,
    combined: bool,
    mut recorder: Option<&mut FlightRecorder>,
    shards: usize,
) -> (u64, usize) {
    let nodes = topo.num_nodes();
    let pipeline =
        if combined { PipelineConfig::combined_st_lt() } else { PipelineConfig::separate_lt() };
    let cfg = NetworkConfig::builder().pipeline(pipeline).build();
    let mut net = Network::new(topo, cfg);
    net.set_shards(shards);

    // Enough flits per node to keep every source queue non-empty for the
    // whole run, so the measured window is genuinely steady-state (the
    // fabric saturated, the NIC injecting every cycle it can).
    let len_flits = 5;
    let packets_per_node = (2 * (WARMUP_CYCLES + MEASURED_CYCLES) as usize) / len_flits;
    let mut id = 0u64;
    for src in 0..nodes {
        for p in 0..packets_per_node {
            net.enqueue_packet(Packet {
                id: PacketId(id),
                src: NodeId(src),
                dst: NodeId((src + 1 + p % (nodes - 1)) % nodes),
                class: if p % 4 == 0 {
                    PacketClass::ReadRequest
                } else {
                    PacketClass::DataResponse
                },
                payload: (0..len_flits)
                    .map(|i| FlitData::with_active_words(4, 1 + i % 4))
                    .collect(),
                created_at: 0,
            });
            id += 1;
        }
    }

    let mut ejected = Vec::with_capacity(4096);
    for cycle in 0..WARMUP_CYCLES {
        net.step(cycle);
        if let Some(rec) = recorder.as_deref_mut() {
            rec.evaluate(&net, cycle);
        }
        net.drain_ejected(&mut ejected);
        ejected.clear();
    }

    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    for cycle in WARMUP_CYCLES..WARMUP_CYCLES + MEASURED_CYCLES {
        net.step(cycle);
        if let Some(rec) = recorder.as_deref_mut() {
            rec.evaluate(&net, cycle);
        }
        net.drain_ejected(&mut ejected);
        ejected.clear();
    }
    ARMED.store(false, Ordering::SeqCst);

    let ejected_total = net.counters().flits_ejected as usize;
    (ALLOCS.load(Ordering::SeqCst), ejected_total)
}

#[test]
fn steady_state_stepping_never_allocates() {
    PANIC_ON_ALLOC.store(std::env::var_os("ZERO_ALLOC_PANIC").is_some(), Ordering::SeqCst);
    let archs: [(&str, Box<dyn Topology>, bool); 3] = [
        ("2DB", Box::new(Mesh2D::new(4, 4)), false),
        ("3DM", Box::new(Mesh3D::new(3, 3, 3)), true),
        ("3DM-E", Box::new(ExpressMesh2D::new(6, 6)), true),
    ];
    for (name, topo, combined) in archs {
        let (allocs, ejected) = allocations_during_steady_state(topo, combined, None);
        assert!(ejected > 0, "{name}: scenario must actually move traffic");
        assert_eq!(
            allocs, 0,
            "{name}: steady-state stepping performed {allocs} heap allocations \
             across {MEASURED_CYCLES} cycles — the per-cycle path must be allocation-free"
        );
    }

    // With host observability collecting, the contract still holds: the
    // phase guards are an `Instant` read plus atomic adds, and the hot
    // loop never touches the metrics registry (first-touch registration
    // allocates, so registry updates are confined to per-batch code).
    mira_obs::set_enabled(true);
    let (allocs, ejected) =
        allocations_during_steady_state(Box::new(Mesh2D::new(4, 4)), false, None);
    mira_obs::set_enabled(false);
    assert!(ejected > 0, "obs-enabled scenario must actually move traffic");
    assert_eq!(
        allocs, 0,
        "obs-enabled steady-state stepping performed {allocs} heap allocations \
         across {MEASURED_CYCLES} cycles — observability must not allocate per cycle"
    );

    // Sharded stepping (DESIGN.md §18) holds the contract at N > 1 too:
    // the worker pool is persistent, job dispatch passes a borrowed
    // closure through an atomic epoch (no boxing), and every per-cycle
    // effect log reaches its steady-state capacity during warmup. The
    // counting allocator is process-global, so worker-thread
    // allocations would be caught just like main-thread ones.
    for (name, shards) in [("2-shard", 2usize), ("4-shard", 4)] {
        let (allocs, ejected) = allocations_during_steady_state_sharded(
            Box::new(Mesh2D::new(4, 4)),
            false,
            None,
            shards,
        );
        assert!(ejected > 0, "{name} scenario must actually move traffic");
        assert_eq!(
            allocs, 0,
            "{name} steady-state stepping performed {allocs} heap allocations \
             across {MEASURED_CYCLES} cycles — sharded dispatch must be allocation-free"
        );
    }

    // The armed flight recorder holds the contract too (DESIGN.md §17):
    // a non-firing `evaluate()` is pure reads over the SoA state, so
    // always-on anomaly detection costs zero allocations per cycle.
    let mut rec = FlightRecorder::new(AnomalyConfig::detect());
    let (allocs, ejected) =
        allocations_during_steady_state(Box::new(Mesh2D::new(4, 4)), false, Some(&mut rec));
    assert!(ejected > 0, "recorder-armed scenario must actually move traffic");
    assert_eq!(rec.counts().total(), 0, "no detector fires on the healthy scenario");
    assert_eq!(
        allocs, 0,
        "recorder-armed steady-state stepping performed {allocs} heap allocations \
         across {MEASURED_CYCLES} cycles — a non-firing detector sweep must be allocation-free"
    );
}
