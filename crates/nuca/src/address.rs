//! Cache-line addresses.
//!
//! The memory system works at line granularity (64-byte lines, paper
//! Table 4); [`LineAddr`] is the line-aligned address with helpers to
//! extract set indices for differently sized arrays.

use serde::{Deserialize, Serialize};

/// Bytes per cache line (paper Table 4: 64-bit... the L1 row lists
/// 64-byte lines via "64 bit-lines"; 64 B is also what makes a data
/// packet 4 payload flits of 128 bits).
pub const LINE_BYTES: u64 = 64;

/// A line-aligned physical address.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address from a line *index* (address / 64).
    pub const fn from_index(index: u64) -> Self {
        LineAddr(index)
    }

    /// Creates a line address from a byte address (truncates to the
    /// line).
    pub const fn from_byte_addr(addr: u64) -> Self {
        LineAddr(addr / LINE_BYTES)
    }

    /// The line index (byte address / 64).
    pub const fn index(self) -> u64 {
        self.0
    }

    /// The byte address of the first byte of the line.
    pub const fn byte_addr(self) -> u64 {
        self.0 * LINE_BYTES
    }

    /// Set index within an array of `num_sets` sets (power of two not
    /// required).
    pub const fn set_index(self, num_sets: usize) -> usize {
        (self.0 % num_sets as u64) as usize
    }

    /// Tag for an array of `num_sets` sets.
    pub const fn tag(self, num_sets: usize) -> u64 {
        self.0 / num_sets as u64
    }
}

impl std::fmt::Display for LineAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "0x{:x}", self.byte_addr())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_addr_roundtrip() {
        let a = LineAddr::from_byte_addr(0x1234);
        assert_eq!(a.byte_addr(), 0x1200);
        assert_eq!(a.index(), 0x48);
        assert_eq!(LineAddr::from_index(0x48), a);
    }

    #[test]
    fn set_and_tag_reconstruct_index() {
        let a = LineAddr::from_index(1000);
        let sets = 128;
        assert_eq!(a.tag(sets) * sets as u64 + a.set_index(sets) as u64, 1000);
    }

    #[test]
    fn different_lines_same_set_have_different_tags() {
        let sets = 128;
        let a = LineAddr::from_index(5);
        let b = LineAddr::from_index(5 + sets as u64);
        assert_eq!(a.set_index(sets), b.set_index(sets));
        assert_ne!(a.tag(sets), b.tag(sets));
    }
}
