//! Set-associative MESI tag arrays with LRU replacement.
//!
//! Used for the private L1s (32 KB, 4-way, 64 B lines → 128 sets, paper
//! Table 4). Only tags and coherence state are modelled — the data
//! values are synthesised separately by [`crate::data`].

use serde::{Deserialize, Serialize};

use crate::address::LineAddr;

/// MESI coherence states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mesi {
    /// Exclusive, dirty.
    Modified,
    /// Exclusive, clean.
    Exclusive,
    /// Shared, clean.
    Shared,
}

/// One resident line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Way {
    tag: u64,
    state: Mesi,
    /// Higher = more recently used.
    lru: u64,
}

/// Result of inserting a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// The displaced line.
    pub addr: LineAddr,
    /// Its state at eviction (Modified ⇒ a writeback is due).
    pub state: Mesi,
}

/// A set-associative cache tag array.
#[derive(Debug, Clone)]
pub struct CacheArray {
    sets: Vec<Vec<Way>>,
    ways: usize,
    clock: u64,
}

impl CacheArray {
    /// Creates an array with `num_sets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn new(num_sets: usize, ways: usize) -> Self {
        assert!(num_sets > 0 && ways > 0, "cache geometry must be positive");
        CacheArray { sets: vec![Vec::new(); num_sets], ways, clock: 0 }
    }

    /// The paper's L1: 32 KB, 4-way, 64 B lines → 128 sets.
    pub fn l1() -> Self {
        CacheArray::new(128, 4)
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Total capacity in lines.
    pub fn capacity_lines(&self) -> usize {
        self.sets.len() * self.ways
    }

    /// Currently resident lines.
    pub fn occupied_lines(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Looks a line up without touching LRU.
    pub fn peek(&self, addr: LineAddr) -> Option<Mesi> {
        let set = &self.sets[addr.set_index(self.sets.len())];
        let tag = addr.tag(self.sets.len());
        set.iter().find(|w| w.tag == tag).map(|w| w.state)
    }

    /// Looks a line up and refreshes its LRU position.
    pub fn touch(&mut self, addr: LineAddr) -> Option<Mesi> {
        self.clock += 1;
        let num_sets = self.sets.len();
        let tag = addr.tag(num_sets);
        let clock = self.clock;
        let set = &mut self.sets[addr.set_index(num_sets)];
        set.iter_mut().find(|w| w.tag == tag).map(|w| {
            w.lru = clock;
            w.state
        })
    }

    /// Updates the state of a resident line; returns `false` if absent.
    pub fn set_state(&mut self, addr: LineAddr, state: Mesi) -> bool {
        let num_sets = self.sets.len();
        let tag = addr.tag(num_sets);
        let set = &mut self.sets[addr.set_index(num_sets)];
        if let Some(w) = set.iter_mut().find(|w| w.tag == tag) {
            w.state = state;
            true
        } else {
            false
        }
    }

    /// Removes a line (external invalidation); returns its state if it
    /// was resident.
    pub fn invalidate(&mut self, addr: LineAddr) -> Option<Mesi> {
        let num_sets = self.sets.len();
        let tag = addr.tag(num_sets);
        let set = &mut self.sets[addr.set_index(num_sets)];
        set.iter().position(|w| w.tag == tag).map(|i| set.swap_remove(i).state)
    }

    /// Inserts a line, evicting the LRU way if the set is full.
    ///
    /// # Panics
    ///
    /// Panics if the line is already resident (callers must upgrade via
    /// [`CacheArray::set_state`] instead).
    pub fn insert(&mut self, addr: LineAddr, state: Mesi) -> Option<Eviction> {
        self.clock += 1;
        let num_sets = self.sets.len();
        let set_idx = addr.set_index(num_sets);
        let tag = addr.tag(num_sets);
        let ways = self.ways;
        let clock = self.clock;
        let set = &mut self.sets[set_idx];
        assert!(set.iter().all(|w| w.tag != tag), "line already resident");

        let evicted = if set.len() >= ways {
            let lru_idx = set
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.lru)
                .map(|(i, _)| i)
                .expect("full set has a victim");
            let victim = set.swap_remove(lru_idx);
            let victim_index = victim.tag * num_sets as u64 + set_idx as u64;
            Some(Eviction { addr: LineAddr::from_index(victim_index), state: victim.state })
        } else {
            None
        };

        set.push(Way { tag, state, lru: clock });
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l1_geometry_matches_paper() {
        let l1 = CacheArray::l1();
        assert_eq!(l1.num_sets(), 128);
        assert_eq!(l1.ways(), 4);
        // 128 sets × 4 ways × 64 B = 32 KB.
        assert_eq!(l1.capacity_lines() * 64, 32 * 1024);
    }

    #[test]
    fn insert_then_hit() {
        let mut c = CacheArray::new(4, 2);
        let a = LineAddr::from_index(9);
        assert_eq!(c.touch(a), None);
        assert_eq!(c.insert(a, Mesi::Exclusive), None);
        assert_eq!(c.touch(a), Some(Mesi::Exclusive));
        assert_eq!(c.peek(a), Some(Mesi::Exclusive));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = CacheArray::new(1, 2);
        let a = LineAddr::from_index(0);
        let b = LineAddr::from_index(1);
        let d = LineAddr::from_index(2);
        c.insert(a, Mesi::Shared);
        c.insert(b, Mesi::Shared);
        c.touch(a); // b is now LRU
        let ev = c.insert(d, Mesi::Shared).expect("set was full");
        assert_eq!(ev.addr, b);
        assert_eq!(c.peek(a), Some(Mesi::Shared));
        assert_eq!(c.peek(b), None);
    }

    #[test]
    fn eviction_reports_dirty_state() {
        let mut c = CacheArray::new(1, 1);
        let a = LineAddr::from_index(3);
        c.insert(a, Mesi::Modified);
        let ev = c.insert(LineAddr::from_index(4), Mesi::Shared).unwrap();
        assert_eq!(ev.addr, a);
        assert_eq!(ev.state, Mesi::Modified);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = CacheArray::new(4, 2);
        let a = LineAddr::from_index(7);
        c.insert(a, Mesi::Shared);
        assert_eq!(c.invalidate(a), Some(Mesi::Shared));
        assert_eq!(c.peek(a), None);
        assert_eq!(c.invalidate(a), None);
    }

    #[test]
    fn state_upgrade() {
        let mut c = CacheArray::new(4, 2);
        let a = LineAddr::from_index(7);
        c.insert(a, Mesi::Shared);
        assert!(c.set_state(a, Mesi::Modified));
        assert_eq!(c.peek(a), Some(Mesi::Modified));
        assert!(!c.set_state(LineAddr::from_index(99), Mesi::Shared));
    }

    #[test]
    fn occupancy_tracks_inserts() {
        let mut c = CacheArray::new(2, 2);
        assert_eq!(c.occupied_lines(), 0);
        c.insert(LineAddr::from_index(0), Mesi::Shared);
        c.insert(LineAddr::from_index(1), Mesi::Shared);
        assert_eq!(c.occupied_lines(), 2);
    }

    #[test]
    #[should_panic(expected = "already resident")]
    fn double_insert_panics() {
        let mut c = CacheArray::new(4, 2);
        let a = LineAddr::from_index(7);
        c.insert(a, Mesi::Shared);
        c.insert(a, Mesi::Shared);
    }
}
