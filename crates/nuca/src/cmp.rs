//! The CMP system model: CPUs + L1s + banked L2 + directory → traces.
//!
//! Event flow per memory reference (paper §4.1.2's MESI protocol with
//! distributed directories and L1 inclusion):
//!
//! * **L1 hit** — no network traffic (silent E→M upgrade on stores);
//! * **load miss** — `GetS` to the home bank; if another core owns the
//!   line exclusively the home downgrades it (`Inv` out, `WriteBack`
//!   back), then answers with `Data`;
//! * **store miss / S-upgrade** — `GetX` to the home; every other holder
//!   is invalidated (`Inv` out; dirty holders answer `WriteBack`, clean
//!   ones `InvAck`), then `Data`;
//! * **L1 eviction** of a Modified line — `WriteBack` to the home.
//!
//! Each message becomes a timestamped [`TraceRecord`]; timestamps use
//! nominal network/bank latencies (trace replay is open-loop, so only
//! their order of magnitude matters). L2 misses cost DRAM latency but
//! generate no NoC traffic — the paper's network connects CPUs and cache
//! banks only.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use mira_noc::ids::NodeId;
use mira_noc::packet::PacketClass;
use mira_traffic::trace::TraceRecord;
use mira_traffic::workloads::{AppProfile, Application};

use crate::cache::{CacheArray, Mesi};
use crate::data::LineDataSynth;
use crate::directory::Directory;
use crate::protocol::CoherenceMsg;
use crate::snuca::BankMap;
use crate::stream::{AddressStream, StreamConfig};

/// Configuration of the CMP trace generator.
#[derive(Debug, Clone)]
pub struct CmpConfig {
    /// Nodes hosting CPUs (paper: 8).
    pub cpu_nodes: Vec<NodeId>,
    /// Nodes hosting L2 banks (paper: 28).
    pub bank_nodes: Vec<NodeId>,
    /// Application profile (workload substitution — see crate docs).
    pub profile: AppProfile,
    /// Address-stream shape.
    pub stream: StreamConfig,
    /// Memory references per CPU per cycle.
    pub access_rate: f64,
    /// Nominal one-way network latency used for message timestamps.
    pub nominal_net_latency: u64,
    /// L2 bank access latency (paper Table 4: 4 cycles).
    pub bank_latency: u64,
    /// DRAM access latency on an L2 miss (paper Table 4: 400 cycles).
    pub memory_latency: u64,
    /// Sets per L2 bank (512 KB / 64 B / 8 ways = 1024 sets).
    pub l2_sets: usize,
    /// Associativity of each L2 bank.
    pub l2_ways: usize,
    /// RNG seed.
    pub seed: u64,
}

impl CmpConfig {
    /// Builds the configuration for one application on the given node
    /// partition, deriving the stream shape from the profile.
    pub fn for_app(
        app: Application,
        cpu_nodes: Vec<NodeId>,
        bank_nodes: Vec<NodeId>,
        seed: u64,
    ) -> Self {
        let profile = app.profile();
        let stream = StreamConfig {
            shared_prob: profile.shared_line_fraction,
            write_prob: 1.0 - profile.read_fraction,
            ..StreamConfig::default()
        };
        CmpConfig {
            cpu_nodes,
            bank_nodes,
            profile,
            stream,
            // Initial guess, refined by `CmpSystem::calibrate_rate`.
            access_rate: (profile.offered_load * 2.0).min(0.9),
            nominal_net_latency: 20,
            bank_latency: 4,
            memory_latency: 400,
            l2_sets: 1024,
            l2_ways: 8,
            seed,
        }
    }
}

/// The CMP model.
///
/// ```
/// use mira_noc::ids::NodeId;
/// use mira_nuca::cmp::{CmpConfig, CmpSystem, TraceStats};
/// use mira_traffic::workloads::Application;
///
/// let cpus: Vec<NodeId> = (0..4).map(NodeId).collect();
/// let banks: Vec<NodeId> = (4..16).map(NodeId).collect();
/// let mut sys = CmpSystem::new(CmpConfig::for_app(Application::Tpcw, cpus, banks, 7));
/// let trace = sys.generate_trace(2_000);
/// let stats = TraceStats::from_trace(&trace, 2_000);
/// assert!(stats.packets > 0);
/// assert!(stats.control_fraction() > 0.4);
/// ```
#[derive(Debug)]
pub struct CmpSystem {
    cfg: CmpConfig,
    l1s: Vec<CacheArray>,
    l2_banks: Vec<CacheArray>,
    directories: Vec<Directory>,
    bank_map: BankMap,
    streams: Vec<AddressStream>,
    synth: LineDataSynth,
    rng: SmallRng,
}

impl CmpSystem {
    /// Builds the system.
    ///
    /// # Panics
    ///
    /// Panics if the CPU or bank set is empty or the access rate is
    /// outside `[0, 1]`.
    pub fn new(cfg: CmpConfig) -> Self {
        assert!(!cfg.cpu_nodes.is_empty(), "need CPUs");
        assert!(!cfg.bank_nodes.is_empty(), "need banks");
        assert!((0.0..=1.0).contains(&cfg.access_rate), "access rate in [0,1]");
        let n_cpus = cfg.cpu_nodes.len();
        let synth = LineDataSynth::new(&cfg.profile);
        let streams = (0..n_cpus).map(|i| AddressStream::new(i, cfg.stream, cfg.seed)).collect();
        CmpSystem {
            l1s: (0..n_cpus).map(|_| CacheArray::l1()).collect(),
            l2_banks: (0..cfg.bank_nodes.len())
                .map(|_| CacheArray::new(cfg.l2_sets, cfg.l2_ways))
                .collect(),
            directories: (0..cfg.bank_nodes.len()).map(|_| Directory::new()).collect(),
            bank_map: BankMap::new(cfg.bank_nodes.clone()),
            streams,
            synth,
            rng: SmallRng::seed_from_u64(cfg.seed.wrapping_mul(0xD134_2543_DE82_EF95)),
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CmpConfig {
        &self.cfg
    }

    fn push(
        &mut self,
        out: &mut Vec<TraceRecord>,
        cycle: u64,
        src: NodeId,
        dst: NodeId,
        msg: CoherenceMsg,
    ) {
        let payload = if msg.packet_class().is_data() {
            self.synth.data_packet_payload(&mut self.rng)
        } else {
            self.synth.control_packet_payload(&mut self.rng)
        };
        out.push(TraceRecord {
            cycle,
            src: src.index(),
            dst: dst.index(),
            class: msg.packet_class(),
            payload: payload.iter().map(|f| f.words().to_vec()).collect(),
        });
    }

    /// Ensures `addr` is resident in its home L2 bank. Returns the extra
    /// response latency (0 on a hit, the DRAM latency on a miss) and, on
    /// a miss that evicts a victim, emits the inclusion
    /// back-invalidations: "the L2 caches maintain inclusion of L1
    /// caches" (paper §4.1.2), so every L1 copy of the victim must be
    /// recalled before the line can leave the L2.
    fn ensure_l2_resident(
        &mut self,
        out: &mut Vec<TraceRecord>,
        cycle: u64,
        addr: crate::address::LineAddr,
    ) -> u64 {
        let bank = self.bank_map.home_index(addr);
        if self.l2_banks[bank].touch(addr).is_some() {
            return 0;
        }
        if let Some(ev) = self.l2_banks[bank].insert(addr, Mesi::Exclusive) {
            let entry = self.directories[bank].entry(ev.addr);
            let holders: Vec<usize> = entry.sharers.iter().copied().chain(entry.owner).collect();
            if !holders.is_empty() {
                let home = self.cfg.bank_nodes[bank];
                self.invalidate_holders(out, cycle, home, ev.addr, &holders);
                for h in &holders {
                    self.directories[bank].record_drop(ev.addr, *h);
                }
            }
        }
        self.cfg.memory_latency
    }

    /// Processes one reference by CPU `cpu` at `cycle`, appending the
    /// protocol messages to `out`.
    fn process_access(&mut self, out: &mut Vec<TraceRecord>, cycle: u64, cpu: usize) {
        let access = self.streams[cpu].next_access();
        let addr = access.addr;
        let home = self.bank_map.home(addr);
        let bank = self.bank_map.home_index(addr);
        let cpu_node = self.cfg.cpu_nodes[cpu];
        let net = self.cfg.nominal_net_latency;
        let bank_lat = self.cfg.bank_latency;

        match (self.l1s[cpu].touch(addr), access.is_write) {
            (Some(Mesi::Modified | Mesi::Exclusive), false) => {} // hit
            (Some(_), false) => {}                                // shared hit
            (Some(Mesi::Modified), true) => {}                    // dirty hit
            (Some(Mesi::Exclusive), true) => {
                // Silent E→M upgrade.
                self.l1s[cpu].set_state(addr, Mesi::Modified);
            }
            (Some(Mesi::Shared), true) => {
                // Upgrade: GetX, invalidate other sharers, Data back.
                // Inclusion guarantees L2 residence; refresh its LRU.
                self.l2_banks[bank].touch(addr);
                self.push(out, cycle, cpu_node, home, CoherenceMsg::GetX);
                let others = self.directories[bank].record_write(addr, cpu);
                let acks = self.invalidate_holders(out, cycle, home, addr, &others);
                let data_at = cycle + net + bank_lat + if acks { 2 * net } else { 0 };
                self.push(out, data_at, home, cpu_node, CoherenceMsg::Data);
                self.l1s[cpu].set_state(addr, Mesi::Modified);
            }
            (None, is_write) => {
                let (req, new_state) = if is_write {
                    (CoherenceMsg::GetX, Mesi::Modified)
                } else {
                    (CoherenceMsg::GetS, Mesi::Exclusive)
                };
                self.push(out, cycle, cpu_node, home, req);
                let memory_extra = self.ensure_l2_resident(out, cycle, addr);

                let mut remote_flush = false;
                if is_write {
                    let others = self.directories[bank].record_write(addr, cpu);
                    remote_flush = self.invalidate_holders(out, cycle, home, addr, &others);
                } else if let Some(owner) = self.directories[bank].record_read(addr, cpu) {
                    // Downgrade the exclusive owner: Inv out, WriteBack
                    // back, owner keeps a Shared copy.
                    self.push(out, cycle + net, home, self.cfg.cpu_nodes[owner], CoherenceMsg::Inv);
                    self.push(
                        out,
                        cycle + 2 * net,
                        self.cfg.cpu_nodes[owner],
                        home,
                        CoherenceMsg::WriteBack,
                    );
                    self.l1s[owner].set_state(addr, Mesi::Shared);
                    remote_flush = true;
                }

                let data_at =
                    cycle + net + bank_lat + memory_extra + if remote_flush { 2 * net } else { 0 };
                self.push(out, data_at, home, cpu_node, CoherenceMsg::Data);

                // Fill the L1; grant depends on the directory outcome.
                let grant = if is_write {
                    Mesi::Modified
                } else if self.directories[bank].entry(addr).sharers.is_empty() {
                    new_state
                } else {
                    Mesi::Shared
                };
                if let Some(ev) = self.l1s[cpu].insert(addr, grant) {
                    let ev_home = self.bank_map.home(ev.addr);
                    let ev_bank = self.bank_map.home_index(ev.addr);
                    self.directories[ev_bank].record_drop(ev.addr, cpu);
                    // Dirty lines flush their data; clean evictions send
                    // a PutS notification so the inclusive directory
                    // stays exact (non-silent evictions).
                    let msg = if ev.state == Mesi::Modified {
                        CoherenceMsg::WriteBack
                    } else {
                        CoherenceMsg::PutS
                    };
                    self.push(out, cycle, cpu_node, ev_home, msg);
                }
            }
        }
    }

    /// Emits invalidations to `holders` and their replies; returns `true`
    /// if any reply is outstanding (delays the Data response).
    fn invalidate_holders(
        &mut self,
        out: &mut Vec<TraceRecord>,
        cycle: u64,
        home: NodeId,
        addr: crate::address::LineAddr,
        holders: &[usize],
    ) -> bool {
        let net = self.cfg.nominal_net_latency;
        for &h in holders {
            let h_node = self.cfg.cpu_nodes[h];
            self.push(out, cycle + net, home, h_node, CoherenceMsg::Inv);
            let reply = match self.l1s[h].invalidate(addr) {
                Some(Mesi::Modified) => CoherenceMsg::WriteBack,
                _ => CoherenceMsg::InvAck,
            };
            self.push(out, cycle + 2 * net, h_node, home, reply);
        }
        !holders.is_empty()
    }

    /// Generates a trace spanning `cycles` cycles.
    pub fn generate_trace(&mut self, cycles: u64) -> Vec<TraceRecord> {
        let mut out = Vec::new();
        let n_cpus = self.cfg.cpu_nodes.len();
        for cycle in 0..cycles {
            for cpu in 0..n_cpus {
                if self.cfg.access_rate > 0.0 && self.rng.gen_bool(self.cfg.access_rate) {
                    self.process_access(&mut out, cycle, cpu);
                }
            }
        }
        out.sort_by_key(|r| r.cycle);
        out
    }

    /// Calibrates the access rate so the trace offers approximately
    /// `target_load` flits/node/cycle on a `num_nodes`-node network,
    /// using a pilot run of `pilot_cycles`.
    pub fn calibrate_rate(&mut self, target_load: f64, num_nodes: usize, pilot_cycles: u64) {
        assert!(target_load > 0.0, "target load must be positive");
        let pilot = self.generate_trace(pilot_cycles);
        let stats = TraceStats::from_trace(&pilot, pilot_cycles);
        let measured = stats.flits_per_cycle / num_nodes as f64;
        if measured > 0.0 {
            let new_rate = (self.cfg.access_rate * target_load / measured).min(0.95);
            self.cfg.access_rate = new_rate;
        }
    }
}

/// Aggregate statistics of a trace (feeds Figs. 1, 2, 13(a)).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Packets per class (indexed by `PacketClass::table_index`).
    pub packets_per_class: Vec<u64>,
    /// Total packets.
    pub packets: u64,
    /// Total flits.
    pub flits: u64,
    /// Data-packet payload flits observed.
    pub payload_flits: u64,
    /// Payload flits that were short.
    pub short_payload_flits: u64,
    /// Word-pattern counts over payload flits.
    pub patterns: mira_traffic::patterns::PatternCounts,
    /// Flits per cycle over the generation span.
    pub flits_per_cycle: f64,
}

impl TraceStats {
    /// Computes the statistics of a trace spanning `span_cycles`.
    pub fn from_trace(trace: &[TraceRecord], span_cycles: u64) -> Self {
        let mut packets_per_class = vec![0u64; PacketClass::ALL.len()];
        let mut flits = 0u64;
        let mut payload_flits = 0u64;
        let mut short_payload = 0u64;
        let mut patterns = mira_traffic::patterns::PatternCounts::default();
        for rec in trace {
            packets_per_class[rec.class.table_index()] += 1;
            flits += rec.payload.len() as u64;
            if rec.class.is_data() {
                // Skip the header flit; observe line payload flits.
                for words in rec.payload.iter().skip(1) {
                    let f = mira_noc::flit::FlitData::new(words.clone());
                    payload_flits += 1;
                    if f.is_short() {
                        short_payload += 1;
                    }
                    patterns.observe(&f);
                }
            }
        }
        TraceStats {
            packets_per_class,
            packets: trace.len() as u64,
            flits,
            payload_flits,
            short_payload_flits: short_payload,
            patterns,
            flits_per_cycle: if span_cycles > 0 { flits as f64 / span_cycles as f64 } else { 0.0 },
        }
    }

    /// Fraction of packets that are control messages (Fig. 2).
    pub fn control_fraction(&self) -> f64 {
        if self.packets == 0 {
            return 0.0;
        }
        let control: u64 = PacketClass::ALL
            .iter()
            .filter(|c| c.is_control())
            .map(|c| self.packets_per_class[c.table_index()])
            .sum();
        control as f64 / self.packets as f64
    }

    /// Short fraction among data payload flits (Fig. 13(a)).
    pub fn short_payload_fraction(&self) -> f64 {
        if self.payload_flits == 0 {
            return 0.0;
        }
        self.short_payload_flits as f64 / self.payload_flits as f64
    }

    /// Short fraction over *all* flits (control flits included), the
    /// figure the layer-shutdown power saving actually sees.
    pub fn short_total_fraction(&self) -> f64 {
        if self.flits == 0 {
            return 0.0;
        }
        let control_flits = self.flits - self.payload_flits - self.data_packets();
        (control_flits + self.data_packets() + self.short_payload_flits) as f64 / self.flits as f64
    }

    fn data_packets(&self) -> u64 {
        PacketClass::ALL
            .iter()
            .filter(|c| c.is_data())
            .map(|c| self.packets_per_class[c.table_index()])
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_partition() -> (Vec<NodeId>, Vec<NodeId>) {
        // 6×6 mesh, CPUs in the middle block (paper Fig. 10(a)).
        let cpus: Vec<NodeId> = [13, 14, 15, 16, 19, 20, 21, 22].map(NodeId).to_vec();
        let caches: Vec<NodeId> =
            (0..36).filter(|i| !cpus.iter().any(|c| c.index() == *i)).map(NodeId).collect();
        (cpus, caches)
    }

    fn system(app: Application) -> CmpSystem {
        let (cpus, banks) = paper_partition();
        CmpSystem::new(CmpConfig::for_app(app, cpus, banks, 42))
    }

    #[test]
    fn trace_is_sorted_and_nonempty() {
        let mut sys = system(Application::Tpcw);
        let trace = sys.generate_trace(5_000);
        assert!(!trace.is_empty());
        assert!(trace.windows(2).all(|w| w[0].cycle <= w[1].cycle));
    }

    #[test]
    fn requests_precede_their_responses() {
        let mut sys = system(Application::Apache);
        let trace = sys.generate_trace(2_000);
        let first_req = trace.iter().find(|r| r.class == PacketClass::ReadRequest);
        let first_data = trace.iter().find(|r| r.class == PacketClass::DataResponse);
        let (req, data) = (first_req.expect("requests exist"), first_data.expect("data exists"));
        assert!(req.cycle <= data.cycle);
    }

    #[test]
    fn endpoints_respect_partition() {
        let (cpus, banks) = paper_partition();
        let cpu_set: Vec<usize> = cpus.iter().map(|n| n.index()).collect();
        let bank_set: Vec<usize> = banks.iter().map(|n| n.index()).collect();
        let mut sys = system(Application::Sjbb);
        for rec in sys.generate_trace(2_000) {
            let src_is_cpu = cpu_set.contains(&rec.src);
            let dst_is_cpu = cpu_set.contains(&rec.dst);
            assert!(src_is_cpu != dst_is_cpu, "traffic is strictly CPU↔bank");
            assert!(
                (src_is_cpu && bank_set.contains(&rec.dst))
                    || (dst_is_cpu && bank_set.contains(&rec.src))
            );
        }
    }

    #[test]
    fn control_fraction_matches_profile_band() {
        for app in [Application::Tpcw, Application::Multimedia] {
            let mut sys = system(app);
            let trace = sys.generate_trace(20_000);
            let stats = TraceStats::from_trace(&trace, 20_000);
            let target = app.profile().control_fraction;
            let got = stats.control_fraction();
            assert!(
                (got - target).abs() < 0.12,
                "{app}: control fraction {got:.3} vs target {target}"
            );
        }
    }

    #[test]
    fn short_payload_fraction_matches_profile() {
        for app in [Application::Tpcw, Application::Barnes, Application::Multimedia] {
            let mut sys = system(app);
            let trace = sys.generate_trace(10_000);
            let stats = TraceStats::from_trace(&trace, 10_000);
            let target = app.profile().short_flit_fraction;
            let got = stats.short_payload_fraction();
            assert!(
                (got - target).abs() < 0.05,
                "{app}: short payload {got:.3} vs target {target}"
            );
        }
    }

    #[test]
    fn calibration_converges_to_target_load() {
        let mut sys = system(Application::Zeus);
        let target = 0.06;
        sys.calibrate_rate(target, 36, 10_000);
        let trace = sys.generate_trace(20_000);
        let stats = TraceStats::from_trace(&trace, 20_000);
        let load = stats.flits_per_cycle / 36.0;
        assert!((load - target).abs() < target * 0.3, "load {load:.4} vs target {target}");
    }

    #[test]
    fn sharing_produces_invalidations() {
        let mut sys = system(Application::Tpcw); // high sharing profile
        let trace = sys.generate_trace(30_000);
        let stats = TraceStats::from_trace(&trace, 30_000);
        assert!(
            stats.packets_per_class[PacketClass::Invalidate.table_index()] > 0,
            "shared writes must invalidate"
        );
        assert!(stats.packets_per_class[PacketClass::WriteBack.table_index()] > 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let mk = || {
            let mut sys = system(Application::Ocean);
            sys.generate_trace(3_000)
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn short_total_exceeds_payload_fraction() {
        // Control flits are always short, so the all-flits short share
        // sits above the payload-only share.
        let mut sys = system(Application::Barnes);
        let trace = sys.generate_trace(10_000);
        let stats = TraceStats::from_trace(&trace, 10_000);
        assert!(stats.short_total_fraction() > stats.short_payload_fraction());
    }
}

#[cfg(test)]
mod l2_tests {
    use super::*;

    fn small_l2_system() -> CmpSystem {
        // Tiny L2 banks (8 sets × 2 ways = 16 lines per bank) so
        // capacity misses and inclusion evictions actually occur.
        let cpus: Vec<NodeId> = [13, 14, 15, 16].map(NodeId).to_vec();
        let banks: Vec<NodeId> =
            (0..36).filter(|i| ![13, 14, 15, 16].contains(i)).map(NodeId).collect();
        let mut cfg = CmpConfig::for_app(Application::Apache, cpus, banks, 11);
        cfg.l2_sets = 8;
        cfg.l2_ways = 2;
        CmpSystem::new(cfg)
    }

    #[test]
    fn cold_misses_pay_memory_latency() {
        let mut sys = CmpSystem::new(CmpConfig::for_app(
            Application::Barnes,
            vec![NodeId(13)],
            (0..36).filter(|&i| i != 13).map(NodeId).collect(),
            3,
        ));
        let trace = sys.generate_trace(50);
        // The first data response to a cold miss arrives after
        // net + bank + memory latency.
        let first_req = trace
            .iter()
            .find(|r| r.class == PacketClass::ReadRequest || r.class == PacketClass::WriteRequest)
            .expect("a miss");
        let first_data = trace
            .iter()
            .find(|r| r.class == PacketClass::DataResponse && r.cycle >= first_req.cycle)
            .expect("its response");
        let min_delay = 20 + 4 + 400;
        assert!(
            first_data.cycle - first_req.cycle >= min_delay,
            "cold miss must pay DRAM: {} cycles",
            first_data.cycle - first_req.cycle
        );
    }

    #[test]
    fn warm_lines_answer_at_bank_speed() {
        let mut sys = CmpSystem::new(CmpConfig::for_app(
            Application::Barnes,
            vec![NodeId(13)],
            (0..36).filter(|&i| i != 13).map(NodeId).collect(),
            3,
        ));
        let trace = sys.generate_trace(30_000);
        // Once the working set is L2-resident, most responses come at
        // net + bank latency (24), not +400.
        let mut fast = 0usize;
        let mut slow = 0usize;
        let reqs: Vec<&TraceRecord> = trace
            .iter()
            .filter(|r| r.class == PacketClass::ReadRequest || r.class == PacketClass::WriteRequest)
            .collect();
        for req in reqs.iter().rev().take(200) {
            if let Some(resp) = trace.iter().find(|r| {
                r.class == PacketClass::DataResponse && r.src == req.dst && r.cycle >= req.cycle
            }) {
                if resp.cycle - req.cycle >= 400 {
                    slow += 1;
                } else {
                    fast += 1;
                }
            }
        }
        assert!(fast > slow, "warm traffic should mostly hit L2: {fast} fast vs {slow} slow");
    }

    #[test]
    fn tiny_l2_generates_inclusion_invalidations() {
        let mut sys = small_l2_system();
        let trace = sys.generate_trace(20_000);
        let stats = TraceStats::from_trace(&trace, 20_000);
        // Back-invalidations show up as Inv packets even for a
        // low-sharing workload once the L2 thrashes.
        assert!(
            stats.packets_per_class[PacketClass::Invalidate.table_index()] > 0,
            "L2 evictions must recall L1 copies"
        );
    }

    #[test]
    fn l1_never_holds_lines_absent_from_l2() {
        // The inclusion property itself, checked directly on the model
        // state after a long run: any address an L1 holds must be
        // resident in its home bank.
        let mut sys = small_l2_system();
        let _ = sys.generate_trace(10_000);
        for cpu in 0..sys.l1s.len() {
            for line in 0..2_048u64 {
                let addr = crate::address::LineAddr::from_index(line);
                if sys.l1s[cpu].peek(addr).is_some() {
                    let bank = sys.bank_map.home_index(addr);
                    assert!(
                        sys.l2_banks[bank].peek(addr).is_some(),
                        "inclusion violated: cpu {cpu} holds {addr} but L2 bank {bank} does not"
                    );
                }
            }
        }
    }
}
