//! Cache-line payload synthesis and short-flit calibration.
//!
//! Data packets carry a 64-byte line over four 128-bit payload flits
//! behind a single-word header flit. The payload words follow the
//! application's frequent-pattern mix (paper Fig. 1); on top of the
//! i.i.d. pattern redundancy, a *short-flit bias* forces whole flits
//! short until the application's published short-flit percentage
//! (Fig. 13(a)) is met.
//!
//! **Interpretation note:** the profiles' `short_flit_fraction` is
//! calibrated against the *data payload* flits. Control flits (headers,
//! requests, invalidates, acks) are single-word and therefore always
//! short; counting them would put a floor under the short-flit share
//! that the low-redundancy applications (multimedia ≈10 %) sit below.

use rand::Rng;

use mira_noc::flit::FlitData;
use mira_traffic::patterns::PatternMix;
use mira_traffic::workloads::AppProfile;

/// Words per flit at the paper's 128-bit flit width.
pub const WORDS_PER_FLIT: usize = 4;

/// Payload flits per data packet (64 B line / 128-bit flits).
pub const LINE_FLITS: usize = 4;

/// Synthesises packet payloads for one application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineDataSynth {
    mix: PatternMix,
    /// Forced-short probability per payload flit, solved so the overall
    /// short fraction matches the profile.
    short_prob: f64,
}

impl LineDataSynth {
    /// Builds the synthesiser for an application profile.
    pub fn new(profile: &AppProfile) -> Self {
        LineDataSynth {
            mix: profile.patterns,
            short_prob: solve_short_prob(profile.short_flit_fraction, profile.patterns),
        }
    }

    /// Direct constructor for tests and custom mixes.
    pub fn with_params(mix: PatternMix, short_prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&short_prob), "probability in [0,1]");
        LineDataSynth { mix, short_prob }
    }

    /// The forced-short probability in use.
    pub fn short_prob(&self) -> f64 {
        self.short_prob
    }

    /// Payload of a data packet: short header flit + the line flits.
    pub fn data_packet_payload<R: Rng>(&self, rng: &mut R) -> Vec<FlitData> {
        let mut flits = Vec::with_capacity(1 + LINE_FLITS);
        flits.push(header_flit(rng));
        for _ in 0..LINE_FLITS {
            flits.push(self.mix.sample_flit_with_short(WORDS_PER_FLIT, self.short_prob, rng));
        }
        flits
    }

    /// Payload of a single-flit control packet.
    pub fn control_packet_payload<R: Rng>(&self, rng: &mut R) -> Vec<FlitData> {
        vec![header_flit(rng)]
    }
}

/// A header/address flit: one meaningful word, upper words redundant.
fn header_flit<R: Rng>(rng: &mut R) -> FlitData {
    let mut words = vec![0u32; WORDS_PER_FLIT];
    words[0] = rng.gen_range(1..u32::MAX);
    FlitData::new(words)
}

/// Solves the forced-short probability `p` such that
/// `p + (1 − p) · q³ = target`, where `q` is the i.i.d. redundant-word
/// probability (a flit is short when all three upper words happen to be
/// redundant). Clamped to `[0, 1]`.
pub fn solve_short_prob(target: f64, mix: PatternMix) -> f64 {
    assert!((0.0..=1.0).contains(&target), "target in [0,1]");
    let q = mix.redundant_fraction();
    let base = q.powi((WORDS_PER_FLIT - 1) as i32);
    if base >= 1.0 {
        return 0.0;
    }
    ((target - base) / (1.0 - base)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mira_traffic::workloads::Application;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn header_flits_are_short() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(header_flit(&mut rng).is_short());
        }
    }

    #[test]
    fn payload_shape() {
        let synth = LineDataSynth::new(&Application::Tpcw.profile());
        let mut rng = SmallRng::seed_from_u64(1);
        let p = synth.data_packet_payload(&mut rng);
        assert_eq!(p.len(), 5);
        assert!(p[0].is_short(), "header is short");
        let c = synth.control_packet_payload(&mut rng);
        assert_eq!(c.len(), 1);
        assert!(c[0].is_short());
    }

    /// The solver hits the published short-flit percentages for every
    /// application profile (measured over payload flits, ±3 %).
    #[test]
    fn short_fraction_calibration() {
        for app in Application::ALL {
            let profile = app.profile();
            let synth = LineDataSynth::new(&profile);
            let mut rng = SmallRng::seed_from_u64(7);
            let mut short = 0usize;
            let mut total = 0usize;
            for _ in 0..3_000 {
                for f in &synth.data_packet_payload(&mut rng)[1..] {
                    total += 1;
                    if f.is_short() {
                        short += 1;
                    }
                }
            }
            let measured = short as f64 / total as f64;
            assert!(
                (measured - profile.short_flit_fraction).abs() < 0.03,
                "{app}: measured {measured:.3} vs target {}",
                profile.short_flit_fraction
            );
        }
    }

    #[test]
    fn solver_clamps_at_zero_for_low_targets() {
        // A mix whose i.i.d. redundancy already exceeds the target.
        let mix = PatternMix::new(0.9, 0.05);
        assert_eq!(solve_short_prob(0.1, mix), 0.0);
    }

    #[test]
    fn solver_monotone_in_target() {
        let mix = PatternMix::new(0.3, 0.05);
        let p1 = solve_short_prob(0.2, mix);
        let p2 = solve_short_prob(0.5, mix);
        let p3 = solve_short_prob(0.8, mix);
        assert!(p1 < p2 && p2 < p3);
    }

    #[test]
    fn word_patterns_match_mix_when_not_forced_short() {
        // With short_prob = 0 the payload words follow the mix directly.
        let mix = PatternMix::new(0.4, 0.1);
        let synth = LineDataSynth::with_params(mix, 0.0);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = mira_traffic::patterns::PatternCounts::default();
        for _ in 0..3_000 {
            for f in &synth.data_packet_payload(&mut rng)[1..] {
                counts.observe(f);
            }
        }
        let (z, o, _) = counts.fractions();
        assert!((z - 0.4).abs() < 0.03, "zeros {z}");
        assert!((o - 0.1).abs() < 0.02, "ones {o}");
    }
}
