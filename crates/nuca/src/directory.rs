//! Distributed directory state.
//!
//! "Each bank maintains its own local directory and the L2 caches
//! maintain inclusion of L1 caches" (paper §4.1.2). The directory maps
//! a line to its sharer set and (exclusive) owner; the CMP model
//! consults it to decide which invalidations and writeback-forwards a
//! request triggers.

use std::collections::HashMap;

use crate::address::LineAddr;

/// Directory entry for one line.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DirEntry {
    /// CPUs holding the line in Shared state.
    pub sharers: Vec<usize>,
    /// CPU holding the line exclusively (M/E), if any.
    pub owner: Option<usize>,
}

impl DirEntry {
    /// Returns `true` if no L1 caches the line.
    pub fn is_idle(&self) -> bool {
        self.sharers.is_empty() && self.owner.is_none()
    }
}

/// One bank's directory.
#[derive(Debug, Clone, Default)]
pub struct Directory {
    entries: HashMap<LineAddr, DirEntry>,
}

impl Directory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Directory::default()
    }

    /// The entry for a line (empty default if untracked).
    pub fn entry(&self, addr: LineAddr) -> DirEntry {
        self.entries.get(&addr).cloned().unwrap_or_default()
    }

    /// Number of tracked (non-idle) lines.
    pub fn tracked_lines(&self) -> usize {
        self.entries.len()
    }

    /// Records a read: `cpu` becomes a sharer (or the exclusive owner if
    /// nobody holds the line). Returns the previous owner if the line was
    /// exclusive elsewhere (who must be downgraded/flushed).
    pub fn record_read(&mut self, addr: LineAddr, cpu: usize) -> Option<usize> {
        let e = self.entries.entry(addr).or_default();
        let prev_owner = e.owner.filter(|&o| o != cpu);
        if let Some(o) = prev_owner {
            // Downgrade: previous owner becomes a sharer.
            e.owner = None;
            if !e.sharers.contains(&o) {
                e.sharers.push(o);
            }
        }
        if e.owner == Some(cpu) {
            return None;
        }
        if e.is_idle() {
            e.owner = Some(cpu); // exclusive grant
        } else if !e.sharers.contains(&cpu) {
            e.sharers.push(cpu);
        }
        prev_owner
    }

    /// Records a write: `cpu` becomes the exclusive owner. Returns every
    /// other CPU that must be invalidated.
    pub fn record_write(&mut self, addr: LineAddr, cpu: usize) -> Vec<usize> {
        let e = self.entries.entry(addr).or_default();
        let mut invalidate: Vec<usize> = e.sharers.iter().copied().filter(|&c| c != cpu).collect();
        if let Some(o) = e.owner {
            if o != cpu {
                invalidate.push(o);
            }
        }
        e.sharers.clear();
        e.owner = Some(cpu);
        invalidate
    }

    /// Records that `cpu` dropped the line (eviction or invalidation
    /// acknowledgement).
    pub fn record_drop(&mut self, addr: LineAddr, cpu: usize) {
        if let Some(e) = self.entries.get_mut(&addr) {
            e.sharers.retain(|&c| c != cpu);
            if e.owner == Some(cpu) {
                e.owner = None;
            }
            if e.is_idle() {
                self.entries.remove(&addr);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: u64) -> LineAddr {
        LineAddr::from_index(i)
    }

    #[test]
    fn first_read_grants_exclusive() {
        let mut d = Directory::new();
        assert_eq!(d.record_read(a(1), 0), None);
        let e = d.entry(a(1));
        assert_eq!(e.owner, Some(0));
        assert!(e.sharers.is_empty());
    }

    #[test]
    fn second_read_downgrades_owner() {
        let mut d = Directory::new();
        d.record_read(a(1), 0);
        let prev = d.record_read(a(1), 1);
        assert_eq!(prev, Some(0), "owner must be flushed/downgraded");
        let e = d.entry(a(1));
        assert_eq!(e.owner, None);
        assert!(e.sharers.contains(&0) && e.sharers.contains(&1));
    }

    #[test]
    fn write_invalidates_all_others() {
        let mut d = Directory::new();
        d.record_read(a(1), 0);
        d.record_read(a(1), 1);
        d.record_read(a(1), 2);
        let inv = d.record_write(a(1), 0);
        let mut inv_sorted = inv.clone();
        inv_sorted.sort_unstable();
        assert_eq!(inv_sorted, vec![1, 2]);
        let e = d.entry(a(1));
        assert_eq!(e.owner, Some(0));
        assert!(e.sharers.is_empty());
    }

    #[test]
    fn write_by_sole_owner_invalidates_nobody() {
        let mut d = Directory::new();
        d.record_read(a(1), 0);
        assert!(d.record_write(a(1), 0).is_empty());
    }

    #[test]
    fn drop_removes_idle_entries() {
        let mut d = Directory::new();
        d.record_read(a(1), 0);
        assert_eq!(d.tracked_lines(), 1);
        d.record_drop(a(1), 0);
        assert_eq!(d.tracked_lines(), 0);
        assert!(d.entry(a(1)).is_idle());
    }

    #[test]
    fn repeated_reads_do_not_duplicate_sharers() {
        let mut d = Directory::new();
        d.record_read(a(1), 0);
        d.record_read(a(1), 1);
        d.record_read(a(1), 1);
        assert_eq!(d.entry(a(1)).sharers.iter().filter(|&&c| c == 1).count(), 1);
    }
}
