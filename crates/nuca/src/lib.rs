#![warn(missing_docs)]
//! # mira-nuca — a NUCA CMP cache-coherence substrate
//!
//! The paper's "MP traces" come from Simics runs of commercial and
//! scientific workloads through a two-level directory-MESI memory
//! hierarchy (paper §4.1.2, Table 4): private 32 KB L1s, a shared
//! 14 MB L2 split into 28 banks interconnected by the NoC, SNUCA static
//! set placement, and a 400-cycle DRAM behind it.
//!
//! This crate rebuilds that memory system as an event-driven model and
//! uses it to *synthesise* packet traces statistically equivalent to the
//! paper's (the Simics traces themselves are not available — see
//! DESIGN.md §4): per-application address streams (working-set size,
//! read/write mix, sharing) flow through real L1 arrays and a real
//! directory, and every protocol message becomes a timestamped
//! [`TraceRecord`](mira_traffic::TraceRecord).
//!
//! Modules:
//!
//! * [`address`] — line addresses and field extraction;
//! * [`snuca`] — static set→bank mapping ("the sets are statically
//!   placed in the banks depending on the low order bits of the address
//!   tags");
//! * [`cache`] — set-associative MESI tag arrays with LRU;
//! * [`directory`] — per-bank distributed directory;
//! * [`protocol`] — coherence message vocabulary and its packet classes;
//! * [`stream`] — synthetic per-CPU address streams;
//! * [`data`] — cache-line payload synthesis and the short-flit
//!   calibration;
//! * [`cmp`] — the CMP system tying it together and emitting traces.

pub mod address;
pub mod cache;
pub mod cmp;
pub mod data;
pub mod directory;
pub mod protocol;
pub mod snuca;
pub mod stream;

pub use address::LineAddr;
pub use cmp::{CmpConfig, CmpSystem, TraceStats};
pub use snuca::BankMap;
