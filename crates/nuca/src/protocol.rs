//! Coherence message vocabulary.
//!
//! "The network timing model simulates all kinds of messages such as
//! invalidates, requests, response, write backs, and acknowledgments"
//! (paper §4.1.2). Each message type maps to a [`PacketClass`] (which in
//! turn selects control vs data virtual channels) and a packet length.

use serde::{Deserialize, Serialize};

use mira_noc::packet::PacketClass;

/// Coherence protocol messages exchanged between L1s and L2 banks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CoherenceMsg {
    /// Read request (load miss): L1 → home bank.
    GetS,
    /// Write/ownership request (store miss or upgrade): L1 → home bank.
    GetX,
    /// Invalidate a sharer: home bank → L1.
    Inv,
    /// Invalidation acknowledgement: L1 → home bank.
    InvAck,
    /// Cache-line data: home bank → L1.
    Data,
    /// Dirty-line writeback: L1 → home bank.
    WriteBack,
    /// Clean-eviction notification: L1 → home bank. Required by the
    /// inclusive L2 directory to keep its sharer sets exact (non-silent
    /// clean evictions); rides the ack class.
    PutS,
}

impl CoherenceMsg {
    /// The packet class carrying this message.
    pub fn packet_class(self) -> PacketClass {
        match self {
            CoherenceMsg::GetS => PacketClass::ReadRequest,
            CoherenceMsg::GetX => PacketClass::WriteRequest,
            CoherenceMsg::Inv => PacketClass::Invalidate,
            CoherenceMsg::InvAck => PacketClass::Ack,
            CoherenceMsg::Data => PacketClass::DataResponse,
            CoherenceMsg::WriteBack => PacketClass::WriteBack,
            CoherenceMsg::PutS => PacketClass::Ack,
        }
    }

    /// Packet length in flits: control messages are single-flit; data
    /// messages carry a 64 B line over four 128-bit payload flits plus
    /// the header flit.
    pub fn len_flits(self) -> usize {
        if self.packet_class().is_data() {
            5
        } else {
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_messages_are_single_flit() {
        for m in [
            CoherenceMsg::GetS,
            CoherenceMsg::GetX,
            CoherenceMsg::Inv,
            CoherenceMsg::InvAck,
            CoherenceMsg::PutS,
        ] {
            assert_eq!(m.len_flits(), 1, "{m:?}");
            assert!(m.packet_class().is_control());
        }
    }

    #[test]
    fn data_messages_are_five_flits() {
        for m in [CoherenceMsg::Data, CoherenceMsg::WriteBack] {
            assert_eq!(m.len_flits(), 5, "{m:?}");
            assert!(m.packet_class().is_data());
        }
    }

    #[test]
    fn classes_are_distinct_except_puts() {
        // PutS deliberately shares the ack class; the six primary
        // messages map to six distinct classes.
        let classes: Vec<_> = [
            CoherenceMsg::GetS,
            CoherenceMsg::GetX,
            CoherenceMsg::Inv,
            CoherenceMsg::InvAck,
            CoherenceMsg::Data,
            CoherenceMsg::WriteBack,
        ]
        .iter()
        .map(|m| m.packet_class())
        .collect();
        let mut dedup = classes.clone();
        dedup.sort_by_key(|c| c.table_index());
        dedup.dedup();
        assert_eq!(dedup.len(), classes.len());
        assert_eq!(CoherenceMsg::PutS.packet_class(), PacketClass::Ack);
    }
}
