//! SNUCA static bank mapping.
//!
//! The simulated hierarchy "mimics SNUCA and the sets are statically
//! placed in the banks depending on the low order bits of the address
//! tags" (paper §4.1.2): line addresses interleave across the L2 banks.

use mira_noc::ids::NodeId;

use crate::address::LineAddr;

/// Static address→bank interleaving over a fixed set of bank nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BankMap {
    banks: Vec<NodeId>,
}

impl BankMap {
    /// Creates the map over the given bank nodes (order defines the
    /// interleave).
    ///
    /// # Panics
    ///
    /// Panics if `banks` is empty.
    pub fn new(banks: Vec<NodeId>) -> Self {
        assert!(!banks.is_empty(), "need at least one bank");
        BankMap { banks }
    }

    /// Number of banks.
    pub fn num_banks(&self) -> usize {
        self.banks.len()
    }

    /// The bank nodes in interleave order.
    pub fn banks(&self) -> &[NodeId] {
        &self.banks
    }

    /// Home bank node of a line.
    pub fn home(&self, addr: LineAddr) -> NodeId {
        self.banks[(addr.index() % self.banks.len() as u64) as usize]
    }

    /// Index (0-based position in the bank list) of the home bank.
    pub fn home_index(&self, addr: LineAddr) -> usize {
        (addr.index() % self.banks.len() as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> BankMap {
        BankMap::new((10..38).map(NodeId).collect())
    }

    #[test]
    fn interleaves_low_order_bits() {
        let m = map();
        assert_eq!(m.num_banks(), 28);
        assert_eq!(m.home(LineAddr::from_index(0)), NodeId(10));
        assert_eq!(m.home(LineAddr::from_index(1)), NodeId(11));
        assert_eq!(m.home(LineAddr::from_index(28)), NodeId(10));
    }

    #[test]
    fn distribution_is_uniform() {
        let m = map();
        let mut counts = vec![0usize; 28];
        for i in 0..28_000u64 {
            counts[m.home_index(LineAddr::from_index(i))] += 1;
        }
        assert!(counts.iter().all(|&c| c == 1000), "{counts:?}");
    }

    #[test]
    fn consistent_home() {
        let m = map();
        let a = LineAddr::from_index(12345);
        assert_eq!(m.home(a), m.home(a));
        assert_eq!(m.banks()[m.home_index(a)], m.home(a));
    }

    #[test]
    #[should_panic(expected = "at least one bank")]
    fn empty_banks_panic() {
        let _ = BankMap::new(vec![]);
    }
}
