//! Synthetic per-CPU memory reference streams.
//!
//! Each CPU draws line addresses from a private region plus a shared
//! region, with a hot subset capturing temporal locality. The knobs —
//! working-set size, hot fraction, sharing probability, read fraction —
//! come from the application profiles ([`mira_traffic::workloads`]).
//! These streams are what stand in for the Simics instruction streams
//! the paper used; what matters downstream is only the resulting miss,
//! sharing, and writeback behaviour.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::address::LineAddr;

/// One memory reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// The referenced line.
    pub addr: LineAddr,
    /// `true` for stores.
    pub is_write: bool,
}

/// Address-stream parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamConfig {
    /// Lines in each CPU's private region.
    pub private_lines: u64,
    /// Lines in the globally shared region.
    pub shared_lines: u64,
    /// Probability a reference targets the shared region.
    pub shared_prob: f64,
    /// Probability a reference re-uses the hot subset (temporal
    /// locality).
    pub hot_prob: f64,
    /// Size of the hot subset, lines.
    pub hot_lines: u64,
    /// Probability a reference is a store.
    pub write_prob: f64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            // Private working set 4× the L1 capacity (512 lines) so
            // capacity misses occur at a realistic rate.
            private_lines: 2_048,
            shared_lines: 1_024,
            shared_prob: 0.2,
            hot_prob: 0.6,
            hot_lines: 256,
            write_prob: 0.3,
        }
    }
}

/// A deterministic reference stream for one CPU.
#[derive(Debug)]
pub struct AddressStream {
    cfg: StreamConfig,
    cpu: usize,
    rng: SmallRng,
}

impl AddressStream {
    /// Creates the stream for CPU `cpu`.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]` or a region is
    /// empty.
    pub fn new(cpu: usize, cfg: StreamConfig, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&cfg.shared_prob), "shared_prob in [0,1]");
        assert!((0.0..=1.0).contains(&cfg.hot_prob), "hot_prob in [0,1]");
        assert!((0.0..=1.0).contains(&cfg.write_prob), "write_prob in [0,1]");
        assert!(cfg.private_lines > 0 && cfg.shared_lines > 0, "regions must be non-empty");
        assert!(cfg.hot_lines > 0, "hot set must be non-empty");
        AddressStream {
            cfg,
            cpu,
            rng: SmallRng::seed_from_u64(seed ^ (cpu as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &StreamConfig {
        &self.cfg
    }

    /// Base line index of this CPU's private region (regions are disjoint
    /// per CPU; the shared region sits below all private regions).
    fn private_base(&self) -> u64 {
        self.cfg.shared_lines + self.cpu as u64 * self.cfg.private_lines
    }

    /// Draws the next reference.
    pub fn next_access(&mut self) -> Access {
        let shared = self.rng.gen_bool(self.cfg.shared_prob);
        let (base, span) = if shared {
            (0, self.cfg.shared_lines)
        } else {
            (self.private_base(), self.cfg.private_lines)
        };
        let hot_span = self.cfg.hot_lines.min(span);
        let offset = if self.rng.gen_bool(self.cfg.hot_prob) {
            self.rng.gen_range(0..hot_span)
        } else {
            self.rng.gen_range(0..span)
        };
        Access {
            addr: LineAddr::from_index(base + offset),
            is_write: self.rng.gen_bool(self.cfg.write_prob),
        }
    }

    /// Returns `true` if an address belongs to the shared region.
    pub fn is_shared_addr(&self, addr: LineAddr) -> bool {
        addr.index() < self.cfg.shared_lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn private_regions_are_disjoint() {
        let cfg = StreamConfig::default();
        let mut s0 = AddressStream::new(0, cfg, 1);
        let mut s1 = AddressStream::new(1, cfg, 1);
        for _ in 0..2_000 {
            let a0 = s0.next_access().addr;
            let a1 = s1.next_access().addr;
            if !s0.is_shared_addr(a0) && !s1.is_shared_addr(a1) {
                // Both private: must come from different regions.
                let r0 = (a0.index() - cfg.shared_lines) / cfg.private_lines;
                let r1 = (a1.index() - cfg.shared_lines) / cfg.private_lines;
                assert_eq!(r0, 0);
                assert_eq!(r1, 1);
            }
        }
    }

    #[test]
    fn write_fraction_matches_config() {
        let cfg = StreamConfig { write_prob: 0.25, ..StreamConfig::default() };
        let mut s = AddressStream::new(0, cfg, 42);
        let writes = (0..10_000).filter(|_| s.next_access().is_write).count();
        let frac = writes as f64 / 10_000.0;
        assert!((frac - 0.25).abs() < 0.02, "write fraction {frac}");
    }

    #[test]
    fn shared_fraction_matches_config() {
        let cfg = StreamConfig { shared_prob: 0.3, ..StreamConfig::default() };
        let mut s = AddressStream::new(2, cfg, 42);
        let shared = (0..10_000)
            .filter(|_| {
                let a = s.next_access().addr;
                s.is_shared_addr(a)
            })
            .count();
        let frac = shared as f64 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.02, "shared fraction {frac}");
    }

    #[test]
    fn hot_subset_gets_reuse() {
        let cfg = StreamConfig { hot_prob: 0.8, shared_prob: 0.0, ..StreamConfig::default() };
        let mut s = AddressStream::new(0, cfg, 7);
        let base = cfg.shared_lines;
        let hot_hits =
            (0..10_000).filter(|_| s.next_access().addr.index() < base + cfg.hot_lines).count();
        // 80% forced hot + uniform draws that land there by chance.
        assert!(hot_hits as f64 / 10_000.0 > 0.8, "hot hits {hot_hits}");
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = StreamConfig::default();
        let run = || {
            let mut s = AddressStream::new(3, cfg, 99);
            (0..100).map(|_| s.next_access()).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "shared_prob")]
    fn bad_probability_panics() {
        let cfg = StreamConfig { shared_prob: 1.5, ..StreamConfig::default() };
        let _ = AddressStream::new(0, cfg, 1);
    }
}
