//! Property tests on the coherence substrate: directory/L1 consistency
//! under arbitrary access interleavings.

use proptest::prelude::*;

use mira_nuca::address::LineAddr;
use mira_nuca::cache::{CacheArray, Mesi};
use mira_nuca::directory::Directory;

/// A reference harness that mirrors the CMP model's use of the
/// directory + L1 arrays and checks the MESI invariants after every
/// step.
#[derive(Debug)]
struct Harness {
    l1s: Vec<CacheArray>,
    dir: Directory,
    addrs: Vec<LineAddr>,
}

impl Harness {
    fn new(cpus: usize) -> Self {
        Harness {
            l1s: (0..cpus).map(|_| CacheArray::new(4, 2)).collect(),
            dir: Directory::new(),
            addrs: Vec::new(),
        }
    }

    fn access(&mut self, cpu: usize, addr: LineAddr, write: bool) {
        if !self.addrs.contains(&addr) {
            self.addrs.push(addr);
        }
        match (self.l1s[cpu].touch(addr), write) {
            (Some(Mesi::Modified), _) => {}
            (Some(Mesi::Exclusive), true) => {
                self.l1s[cpu].set_state(addr, Mesi::Modified);
            }
            (Some(Mesi::Exclusive), false) | (Some(Mesi::Shared), false) => {}
            (Some(Mesi::Shared), true) => {
                for other in self.dir.record_write(addr, cpu) {
                    self.l1s[other].invalidate(addr);
                }
                self.l1s[cpu].set_state(addr, Mesi::Modified);
            }
            (None, true) => {
                for other in self.dir.record_write(addr, cpu) {
                    self.l1s[other].invalidate(addr);
                }
                self.fill(cpu, addr, Mesi::Modified);
            }
            (None, false) => {
                if let Some(owner) = self.dir.record_read(addr, cpu) {
                    self.l1s[owner].set_state(addr, Mesi::Shared);
                }
                let grant = if self.dir.entry(addr).sharers.is_empty() {
                    Mesi::Exclusive
                } else {
                    Mesi::Shared
                };
                self.fill(cpu, addr, grant);
            }
        }
    }

    fn fill(&mut self, cpu: usize, addr: LineAddr, state: Mesi) {
        if let Some(ev) = self.l1s[cpu].insert(addr, state) {
            self.dir.record_drop(ev.addr, cpu);
        }
    }

    /// The MESI single-writer / multi-reader invariant over all lines.
    fn check_invariants(&self) -> Result<(), TestCaseError> {
        for &addr in &self.addrs {
            let holders: Vec<(usize, Mesi)> = self
                .l1s
                .iter()
                .enumerate()
                .filter_map(|(i, l1)| l1.peek(addr).map(|s| (i, s)))
                .collect();
            let exclusive: Vec<_> = holders
                .iter()
                .filter(|(_, s)| matches!(s, Mesi::Modified | Mesi::Exclusive))
                .collect();
            prop_assert!(exclusive.len() <= 1, "two exclusive holders of {addr}: {holders:?}");
            if exclusive.len() == 1 {
                prop_assert_eq!(
                    holders.len(),
                    1,
                    "exclusive line {} also shared: {:?}",
                    addr,
                    &holders
                );
            }
        }
        Ok(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Single-writer invariant holds under any interleaving of reads,
    /// writes and the evictions they trigger.
    #[test]
    fn mesi_single_writer(
        ops in proptest::collection::vec((0usize..4, 0u64..12, any::<bool>()), 1..200),
    ) {
        let mut h = Harness::new(4);
        for (cpu, line, write) in ops {
            h.access(cpu, LineAddr::from_index(line), write);
            h.check_invariants()?;
        }
    }

    /// After a write by CPU `c`, no other CPU still holds the line.
    #[test]
    fn writes_invalidate_everywhere(
        warm in proptest::collection::vec((0usize..4, 0u64..8), 0..50),
        writer in 0usize..4,
        line in 0u64..8,
    ) {
        let mut h = Harness::new(4);
        for (cpu, l) in warm {
            h.access(cpu, LineAddr::from_index(l), false);
        }
        let addr = LineAddr::from_index(line);
        h.access(writer, addr, true);
        for (i, l1) in h.l1s.iter().enumerate() {
            if i != writer {
                prop_assert_eq!(l1.peek(addr), None, "cpu {} still holds the line", i);
            }
        }
        prop_assert_eq!(h.l1s[writer].peek(addr), Some(Mesi::Modified));
    }
}
