//! Stamps build provenance into the crate as compile-time environment
//! variables: the git revision this binary was built from and the rustc
//! that built it. Both fall back to `"unknown"` when the information is
//! unavailable (tarball builds, missing git), so the build never fails
//! on their account.

use std::process::Command;

fn capture(cmd: &str, args: &[&str]) -> Option<String> {
    let out = Command::new(cmd).args(args).output().ok()?;
    if !out.status.success() {
        return None;
    }
    let s = String::from_utf8(out.stdout).ok()?;
    let s = s.trim();
    if s.is_empty() {
        None
    } else {
        Some(s.to_string())
    }
}

fn main() {
    let git_rev = capture("git", &["rev-parse", "--short=12", "HEAD"])
        .map(|rev| {
            let dirty = capture("git", &["status", "--porcelain"]).is_some_and(|s| !s.is_empty());
            if dirty {
                format!("{rev}-dirty")
            } else {
                rev
            }
        })
        .unwrap_or_else(|| "unknown".to_string());
    let rustc = std::env::var("RUSTC").unwrap_or_else(|_| "rustc".to_string());
    let rustc_version = capture(&rustc, &["--version"]).unwrap_or_else(|| "unknown".to_string());

    println!("cargo:rustc-env=MIRA_GIT_REV={git_rev}");
    println!("cargo:rustc-env=MIRA_RUSTC={rustc_version}");
    // Re-stamp when the checked-out commit moves.
    println!("cargo:rerun-if-changed=../../.git/HEAD");
    println!("cargo:rerun-if-changed=../../.git/index");
}
