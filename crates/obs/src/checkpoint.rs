//! Sweep checkpoints: one JSON line per completed experiment point,
//! appended to `results/checkpoints/<exhibit>-<hash>.jsonl` as a batch
//! runs, so an interrupted sweep can resume from its completed prefix.
//!
//! The file is keyed by the ledger's FNV-1a [`config_hash`] over the
//! batch's `(label, seed)` pairs: a checkpoint only replays into a
//! batch that would simulate the *exact same points*. Each line carries
//! the hash again, so stale files (from an older point list that hashed
//! differently) are detected entry-by-entry and skipped rather than
//! trusted.
//!
//! Crash-safety contract:
//!
//! * every append is flushed before the runner reports the point done,
//!   so a `SIGKILL` loses at most the line being written;
//! * [`load`] tolerates a torn final line (the partial write a kill
//!   leaves behind) by ignoring it with a warning — earlier lines are
//!   still replayed;
//! * the payload is an opaque [`serde::Value`]: this crate stores and
//!   replays results without depending on the experiment layer's types.
//!
//! [`config_hash`]: crate::ledger::config_hash

use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize, Value};

use crate::ledger::hash_hex;

/// Default directory for sweep checkpoints, relative to the working
/// directory (override per-runner or with `MIRA_CHECKPOINT_DIR`).
pub const DEFAULT_CHECKPOINT_DIR: &str = "results/checkpoints";

/// The checkpoint directory: `MIRA_CHECKPOINT_DIR` when set, else
/// [`DEFAULT_CHECKPOINT_DIR`].
pub fn default_dir() -> PathBuf {
    std::env::var("MIRA_CHECKPOINT_DIR")
        .map_or_else(|_| PathBuf::from(DEFAULT_CHECKPOINT_DIR), PathBuf::from)
}

/// The checkpoint file for one `(exhibit, config hash)` batch identity.
pub fn path_for(dir: &Path, exhibit: &str, config_hash: u64) -> PathBuf {
    dir.join(format!("{exhibit}-{}.jsonl", hash_hex(config_hash)))
}

/// One completed point, replayable into a future run of the same batch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointEntry {
    /// The batch identity this point belongs to, as 16 hex digits
    /// (entries from a different point list are skipped on load).
    pub config_hash: String,
    /// Label of the completed point.
    pub label: String,
    /// Seed the point ran with.
    pub seed: u64,
    /// The point's result, as the experiment layer serialized it.
    pub result: Value,
}

/// An open checkpoint file, appending one entry per completed point.
#[derive(Debug)]
pub struct CheckpointWriter {
    path: PathBuf,
    file: File,
}

impl CheckpointWriter {
    /// Opens (creating directories and the file as needed) the
    /// checkpoint at `path` for appending.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; callers degrade to running without
    /// checkpoints rather than aborting the batch.
    pub fn open(path: &Path) -> std::io::Result<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        Ok(CheckpointWriter { path: path.to_path_buf(), file })
    }

    /// The file being appended to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one entry as a JSON line and flushes it to the OS, so a
    /// crash after this call returns cannot lose the point.
    ///
    /// # Errors
    ///
    /// Propagates serialization and filesystem errors.
    pub fn append(&mut self, entry: &CheckpointEntry) -> std::io::Result<()> {
        let line = serde_json::to_string(entry)
            .map_err(|e| std::io::Error::other(format!("checkpoint entry serialization: {e}")))?;
        writeln!(self.file, "{line}")?;
        self.file.flush()
    }
}

/// What [`load`] recovered from a checkpoint file.
#[derive(Debug, Clone, Default)]
pub struct LoadedCheckpoint {
    /// Entries whose `config_hash` matched, in file order.
    pub entries: Vec<CheckpointEntry>,
    /// Lines skipped because their hash named a different batch.
    pub stale_lines: usize,
    /// Lines skipped because they did not parse (normally at most one:
    /// the torn final line of a killed run).
    pub torn_lines: usize,
}

/// Reads every verified entry of the checkpoint at `path`.
///
/// Lines are filtered to `expected_hash`; unparsable lines are counted
/// in [`LoadedCheckpoint::torn_lines`] and skipped, which is what makes
/// resume safe after `SIGKILL` mid-append. A missing file is an empty
/// checkpoint, not an error.
///
/// # Errors
///
/// Propagates read errors other than the file not existing.
pub fn load(path: &Path, expected_hash: u64) -> std::io::Result<LoadedCheckpoint> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(LoadedCheckpoint::default())
        }
        Err(e) => return Err(e),
    };
    let expected = hash_hex(expected_hash);
    let mut out = LoadedCheckpoint::default();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<CheckpointEntry>(line) {
            Ok(entry) if entry.config_hash == expected => out.entries.push(entry),
            Ok(_) => out.stale_lines += 1,
            Err(_) => out.torn_lines += 1,
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::config_hash;

    fn scratch(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("mira_ckpt_{name}_{}.jsonl", std::process::id()))
    }

    fn entry(hash: u64, label: &str, seed: u64) -> CheckpointEntry {
        CheckpointEntry {
            config_hash: hash_hex(hash),
            label: label.to_string(),
            seed,
            result: Value::Object(vec![("avg_latency".into(), Value::F64(12.5))]),
        }
    }

    #[test]
    fn append_load_round_trips_and_filters_by_hash() {
        let path = scratch("roundtrip");
        let _ = std::fs::remove_file(&path);
        let hash = config_hash("t", [("a", 1u64), ("b", 2)].into_iter());
        let other = config_hash("t", [("a", 1u64)].into_iter());
        {
            let mut w = CheckpointWriter::open(&path).expect("open");
            w.append(&entry(hash, "a", 1)).expect("append a");
            w.append(&entry(other, "x", 9)).expect("append stale");
            w.append(&entry(hash, "b", 2)).expect("append b");
        }
        let loaded = load(&path, hash).expect("load");
        assert_eq!(loaded.entries.len(), 2);
        assert_eq!(loaded.stale_lines, 1, "other batch's entry is skipped");
        assert_eq!(loaded.torn_lines, 0);
        assert_eq!(loaded.entries[0].label, "a");
        assert_eq!(loaded.entries[1].seed, 2);
        assert_eq!(loaded.entries[0].result.field("avg_latency").as_f64().unwrap(), 12.5);
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn torn_final_line_is_skipped_not_fatal() {
        let path = scratch("torn");
        let _ = std::fs::remove_file(&path);
        let hash = config_hash("t", [("a", 1u64)].into_iter());
        {
            let mut w = CheckpointWriter::open(&path).expect("open");
            w.append(&entry(hash, "a", 1)).expect("append");
        }
        // Simulate a SIGKILL mid-append: a truncated trailing line.
        let mut text = std::fs::read_to_string(&path).expect("read");
        text.push_str("{\"config_hash\":\"dead");
        std::fs::write(&path, text).expect("write torn");
        let loaded = load(&path, hash).expect("load survives");
        assert_eq!(loaded.entries.len(), 1);
        assert_eq!(loaded.torn_lines, 1);
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn missing_file_is_empty_checkpoint() {
        let loaded = load(Path::new("/nonexistent/mira/ckpt.jsonl"), 7).expect("missing is empty");
        assert!(loaded.entries.is_empty());
        assert_eq!(loaded.stale_lines + loaded.torn_lines, 0);
    }

    #[test]
    fn path_for_is_stable() {
        let p = path_for(Path::new("results/checkpoints"), "fig11a", 0xdead_beef);
        assert_eq!(p, PathBuf::from("results/checkpoints/fig11a-00000000deadbeef.jsonl"));
    }
}
