//! The durable run ledger: one JSON line per runner batch, appended to
//! `results/ledger.jsonl` (override with the `MIRA_LEDGER` environment
//! variable).
//!
//! Each entry records *what* ran (exhibit name, config hash over the
//! batch's labels and seeds, first seed), *from what* (build
//! provenance), and *how it went* (wall time, simulated cycles,
//! Kcycles/s, Mflits/s, saturation count, peak arena watermark). The
//! `(exhibit, config_hash, git_rev)` triple is the keying substrate the
//! planned DSE result cache (ROADMAP item 5) will look runs up by.
//!
//! Entries are only written while observability is enabled, so the
//! default test/bench path never touches the filesystem. Every entry
//! written (or attempted) is also kept in an in-process session list,
//! which is how `scorecard --json` builds its `"host"` section without
//! re-reading the file.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

/// Default ledger location, relative to the working directory.
pub const DEFAULT_LEDGER_PATH: &str = "results/ledger.jsonl";

/// The ledger path: `MIRA_LEDGER` when set, else
/// [`DEFAULT_LEDGER_PATH`].
pub fn default_path() -> PathBuf {
    std::env::var("MIRA_LEDGER").map_or_else(|_| PathBuf::from(DEFAULT_LEDGER_PATH), PathBuf::from)
}

/// One appended batch record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LedgerEntry {
    /// Unix timestamp of the append, milliseconds.
    pub ts_ms: u64,
    /// Producing exhibit/binary (e.g. `fig11a`, `bench_step`).
    pub exhibit: String,
    /// [`config_hash`] over the batch's point labels and seeds, as
    /// 16 hex digits — the unambiguous batch identity (shared with the
    /// batch's checkpoint file), stable across partial and resumed
    /// runs of the same point list.
    pub config_hash: String,
    /// Seed of the batch's first *submitted* point (individual seeds
    /// are inside the hash). Derived from the submitted point list, not
    /// from whichever points completed, so partial batches record the
    /// same value.
    pub seed: u64,
    /// Smallest seed across the submitted points.
    pub seed_min: u64,
    /// Largest seed across the submitted points.
    pub seed_max: u64,
    /// Git revision of the producing build.
    pub git_rev: String,
    /// Build profile (`debug`/`release`).
    pub profile: String,
    /// Building compiler.
    pub rustc: String,
    /// Points in the batch.
    pub points: usize,
    /// Worker threads used.
    pub jobs: usize,
    /// Batch wall time, milliseconds.
    pub wall_ms: f64,
    /// Simulated cycles summed over the batch.
    pub cycles_simulated: u64,
    /// Thousands of simulated cycles per wall second.
    pub kcycles_per_sec: f64,
    /// Millions of measured flits ejected per wall second.
    pub mflits_per_sec: f64,
    /// Points that saturated.
    pub saturated_points: usize,
    /// Points that failed (panicked, timed out, or were skipped by
    /// fail-fast) after exhausting their retry budget.
    pub failed_points: usize,
    /// Points replayed from a sweep checkpoint instead of simulated.
    pub resumed_points: usize,
    /// Peak live flits in any point's arena.
    pub peak_arena_flits: u64,
    /// Anomaly-detector firings across the batch (windowed detections
    /// plus triggered black-box halts). `None` when the batch was clean
    /// — and in every entry written before the flight recorder existed,
    /// which is why these two fields are `Option`s: old ledger lines
    /// (no such field → `Null`) still deserialize.
    pub anomalies: Option<u64>,
    /// Detector names that fired, sorted and deduplicated. `None` when
    /// the batch was clean.
    pub anomaly_kinds: Option<Vec<String>>,
}

/// FNV-1a 64-bit over the exhibit name and every `(label, seed)` pair —
/// a stable, dependency-free fingerprint of what a batch simulated.
/// Identical batches hash identically across runs and platforms.
pub fn config_hash<'a>(exhibit: &str, points: impl Iterator<Item = (&'a str, u64)>) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(exhibit.as_bytes());
    for (label, seed) in points {
        eat(&[0xff]); // field separator, not valid UTF-8 inside labels
        eat(label.as_bytes());
        eat(&seed.to_le_bytes());
    }
    h
}

/// Renders a hash as the ledger's 16-hex-digit form.
pub fn hash_hex(h: u64) -> String {
    format!("{h:016x}")
}

/// Milliseconds since the Unix epoch (0 if the clock is before it).
pub fn unix_millis() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
}

/// Appends `entry` as one JSON line to the ledger at `path`, creating
/// parent directories as needed.
///
/// # Errors
///
/// Propagates filesystem errors (callers warn rather than abort — a
/// read-only working directory must not kill a simulation batch).
pub fn append(path: &Path, entry: &LedgerEntry) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let line = serde_json::to_string(entry)
        .map_err(|e| std::io::Error::other(format!("ledger entry serialization: {e}")))?;
    let mut f = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
    writeln!(f, "{line}")
}

/// Parses every entry of a ledger file (skipping blank lines).
///
/// # Errors
///
/// Propagates read errors; a malformed line becomes an
/// [`std::io::Error`] naming its line number.
pub fn read(path: &Path) -> std::io::Result<Vec<LedgerEntry>> {
    let text = std::fs::read_to_string(path)?;
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let entry: LedgerEntry = serde_json::from_str(line).map_err(|e| {
            std::io::Error::other(format!(
                "{}:{}: malformed ledger line: {e}",
                path.display(),
                i + 1
            ))
        })?;
        out.push(entry);
    }
    Ok(out)
}

static SESSION: Mutex<Vec<LedgerEntry>> = Mutex::new(Vec::new());

/// Records `entry` in the in-process session list (done automatically by
/// the runner alongside the file append).
pub fn record_session(entry: LedgerEntry) {
    SESSION.lock().expect("session ledger").push(entry);
}

/// Every entry recorded by this process so far, in order.
pub fn session_entries() -> Vec<LedgerEntry> {
    SESSION.lock().expect("session ledger").clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(seed: u64) -> LedgerEntry {
        LedgerEntry {
            ts_ms: 1_700_000_000_000,
            exhibit: "test".to_string(),
            config_hash: hash_hex(config_hash("test", [("a", seed)].into_iter())),
            seed,
            seed_min: seed,
            seed_max: seed,
            git_rev: "abc123".to_string(),
            profile: "debug".to_string(),
            rustc: "rustc test".to_string(),
            points: 1,
            jobs: 1,
            wall_ms: 12.5,
            cycles_simulated: 1000,
            kcycles_per_sec: 80.0,
            mflits_per_sec: 0.4,
            saturated_points: 0,
            failed_points: 0,
            resumed_points: 0,
            peak_arena_flits: 64,
            anomalies: None,
            anomaly_kinds: None,
        }
    }

    #[test]
    fn config_hash_is_stable_and_sensitive() {
        let a = config_hash("fig11a", [("x", 1u64), ("y", 2)].into_iter());
        let b = config_hash("fig11a", [("x", 1u64), ("y", 2)].into_iter());
        assert_eq!(a, b, "same batch, same hash");
        assert_ne!(a, config_hash("fig11a", [("x", 1u64), ("y", 3)].into_iter()), "seed change");
        assert_ne!(a, config_hash("fig11a", [("x", 1u64), ("z", 2)].into_iter()), "label change");
        assert_ne!(a, config_hash("fig12a", [("x", 1u64), ("y", 2)].into_iter()), "exhibit change");
        assert_eq!(hash_hex(a).len(), 16);
    }

    #[test]
    fn append_then_read_round_trips() {
        let path =
            std::env::temp_dir().join(format!("mira_ledger_test_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        append(&path, &entry(7)).expect("append 1");
        append(&path, &entry(8)).expect("append 2");
        let entries = read(&path).expect("read back");
        assert_eq!(entries.len(), 2, "append-only: both entries survive");
        assert_eq!(entries[0].seed, 7);
        assert_eq!(entries[1].seed, 8);
        assert_eq!(entries[1].peak_arena_flits, 64);
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn entries_without_anomaly_fields_still_parse() {
        let full = serde_json::to_string(&entry(3)).expect("entry serializes");
        // Reconstruct a pre-flight-recorder ledger line by stripping
        // the fields that did not exist yet.
        let stripped =
            full.replace(",\"anomalies\":null", "").replace(",\"anomaly_kinds\":null", "");
        assert_ne!(full, stripped, "the new fields were present to strip");
        let e: LedgerEntry = serde_json::from_str(&stripped).expect("old line parses");
        assert_eq!(e.anomalies, None);
        assert_eq!(e.anomaly_kinds, None);
    }

    #[test]
    fn session_list_accumulates() {
        let before = session_entries().len();
        record_session(entry(9));
        let after = session_entries();
        assert_eq!(after.len(), before + 1);
        assert_eq!(after.last().expect("just pushed").seed, 9);
    }
}
