#![warn(missing_docs)]
//! # mira-obs — host-side observability
//!
//! Where `mira-noc`'s telemetry observes the *simulated* network, this
//! crate observes the *simulator itself*: where host wall time goes
//! (phase profiler), how large the core data structures grow (watermark
//! gauges), how the worker pool behaves (runner metrics), and what every
//! run produced (durable ledger). See DESIGN.md §15.
//!
//! Everything hangs off one global switch:
//!
//! * [`enabled`] — a single relaxed atomic load. Observability is **off
//!   by default**; simulated results are identical either way (the
//!   instrumentation is host-side only), which `tests/golden_core.rs`
//!   pins bit-for-bit.
//! * Built without the default `runtime` feature, [`enabled`] is a
//!   `const false` and the optimiser deletes every scope and metric
//!   update outright — the compile-out form of the zero-overhead path.
//!
//! The pieces:
//!
//! * [`registry`] — static-registration atomic counters, max-gauges and
//!   log₂ histograms, rendered as a JSON snapshot or Prometheus text.
//! * [`phase`] — scoped wall-time attribution for the hot loop
//!   ([`phase::scope`] guards around `Network::step`'s sections and the
//!   router pipeline stages).
//! * [`provenance`] — git revision / rustc / build profile stamped into
//!   the binary at compile time.
//! * [`ledger`] — the append-only `results/ledger.jsonl` run record
//!   (config hash, seed range, provenance, throughput, watermarks and
//!   failure counts per batch).
//! * [`checkpoint`] — per-point sweep checkpoints
//!   (`results/checkpoints/<exhibit>-<hash>.jsonl`), the replay
//!   substrate of the runner's `--resume` (DESIGN.md §16).

pub mod checkpoint;
pub mod ledger;
pub mod phase;
pub mod provenance;
pub mod registry;

use serde::{Deserialize, Serialize};

#[cfg(feature = "runtime")]
use std::sync::atomic::{AtomicBool, Ordering};

#[cfg(feature = "runtime")]
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether observability is currently collecting. One relaxed atomic
/// load — this is the only cost the instrumented hot paths pay when
/// observability is off.
#[cfg(feature = "runtime")]
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Compile-out form: observability can never be on, and every guard is
/// dead code.
#[cfg(not(feature = "runtime"))]
#[inline(always)]
pub const fn enabled() -> bool {
    false
}

/// Turns collection on or off at runtime (a no-op without the `runtime`
/// feature).
pub fn set_enabled(on: bool) {
    #[cfg(feature = "runtime")]
    ENABLED.store(on, Ordering::Relaxed);
    #[cfg(not(feature = "runtime"))]
    let _ = on;
}

/// Enables collection when the `MIRA_OBS` environment variable is set
/// to `1` or `true` (the env-var form of `--obs-out`, for binaries and
/// tests that have no flag plumbing).
pub fn init_from_env() {
    if matches!(std::env::var("MIRA_OBS").as_deref(), Ok("1") | Ok("true")) {
        set_enabled(true);
    }
}

/// A complete point-in-time capture of the observability state: build
/// provenance, the phase profile, and every registered metric. This is
/// what `--obs-out` writes (JSON plus Prometheus text) and what
/// `trace_tool obs` pretty-prints.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ObsSnapshot {
    /// Build provenance of the producing binary.
    pub build: provenance::Provenance,
    /// Per-phase wall time and call counts (all phases, fired or not).
    pub phases: Vec<phase::PhaseSample>,
    /// Fraction of `Network::step` wall time attributed to a tiled
    /// section, or `None` when no step was profiled. The profiler's
    /// accounting claim is `coverage >= 0.95`.
    pub coverage: Option<f64>,
    /// Every metric touched so far, in registration order.
    pub metrics: Vec<registry::MetricSample>,
}

/// Captures the current observability state.
pub fn snapshot() -> ObsSnapshot {
    ObsSnapshot {
        build: provenance::Provenance::current(),
        phases: phase::snapshot(),
        coverage: phase::coverage(),
        metrics: registry::samples(),
    }
}

impl ObsSnapshot {
    /// Pretty-printed JSON, trailing newline included.
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("snapshot serializes");
        s.push('\n');
        s
    }

    /// Prometheus text exposition format: the metrics plus the phase
    /// profile as `mira_phase_nanos_total` / `mira_phase_calls_total`
    /// families labelled by phase.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "# mira build {} ({}, {})\n",
            self.build.git_rev, self.build.profile, self.build.rustc
        ));
        out.push_str("# TYPE mira_phase_nanos_total counter\n");
        for p in &self.phases {
            out.push_str(&format!("mira_phase_nanos_total{{phase=\"{}\"}} {}\n", p.phase, p.nanos));
        }
        out.push_str("# TYPE mira_phase_calls_total counter\n");
        for p in &self.phases {
            out.push_str(&format!("mira_phase_calls_total{{phase=\"{}\"}} {}\n", p.phase, p.calls));
        }
        if let Some(cov) = self.coverage {
            out.push_str("# TYPE mira_phase_coverage_ratio gauge\n");
            out.push_str(&format!("mira_phase_coverage_ratio {cov}\n"));
        }
        for m in &self.metrics {
            out.push_str(&m.to_prometheus());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_renders_both_formats() {
        let snap = snapshot();
        let json = snap.to_json();
        assert!(json.ends_with('\n'));
        let back: ObsSnapshot = serde_json::from_str(&json).expect("round-trips");
        assert_eq!(back.build.git_rev, snap.build.git_rev);
        assert_eq!(back.phases.len(), snap.phases.len());
        let prom = snap.to_prometheus();
        assert!(prom.contains("# TYPE mira_phase_nanos_total counter"));
        assert!(prom.contains("phase=\"step_total\""));
    }

    #[test]
    fn enable_switch_round_trips() {
        // Leave the flag as we found it: other tests in this binary may
        // rely on the default-off state.
        let was = enabled();
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
        set_enabled(was);
    }
}
