//! Scoped phase timers: wall-time attribution for the simulator's hot
//! loop.
//!
//! [`scope`] returns a guard that, while observability is enabled,
//! charges the scope's elapsed wall time to its [`Phase`] on drop. When
//! observability is off the guard is inert and the only cost is the one
//! relaxed atomic load inside [`enabled`](crate::enabled) — cheap enough
//! to leave in `Network::step` permanently (the CI bench gate runs with
//! observability off and must not move).
//!
//! The phases come in three groups:
//!
//! * [`Phase::StepTotal`] wraps the whole of `Network::step`, and the
//!   [`Phase::STEP_SECTIONS`] tile its body exactly — link delivery
//!   (including ARQ and fault verdicts), router pipelines, occupancy
//!   accounting, NIC injection, and the metrics-window close. The
//!   profiler's accounting claim, `coverage() >= 0.95`, compares the
//!   section sum against the step total: only per-guard overhead and a
//!   couple of scalar updates can leak out.
//! * The `Stage*` phases nest *inside* [`Phase::RouterPipeline`],
//!   attributing pipeline time to BW/ST, SA, VA, and RC individually
//!   (BW — buffer write — happens inside link delivery and NIC
//!   injection; ST carries the label here because the write and
//!   traversal share the slab path).
//! * [`Phase::Workload`] and [`Phase::Ejection`] time the simulator
//!   driver around the step: packet generation/injection and ejection
//!   processing. They sit outside `StepTotal` and do not enter coverage.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use serde::{Deserialize, Serialize};

/// A profiled region of the per-cycle path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Phase {
    /// The whole of `Network::step`.
    StepTotal = 0,
    /// Link delivery: due flits and credits, ARQ service, fault verdicts.
    LinkDelivery,
    /// Router pipeline sweep (all stages, all active routers).
    RouterPipeline,
    /// Buffer-occupancy accounting.
    Occupancy,
    /// NIC injection from source queues into local input buffers.
    NicInject,
    /// Metrics-window bookkeeping at the end of the step.
    Telemetry,
    /// Switch traversal (and the buffer read feeding it).
    StageSt,
    /// Switch allocation.
    StageSa,
    /// Virtual-channel allocation.
    StageVa,
    /// Route computation.
    StageRc,
    /// Simulator driver: workload generation and packet injection.
    Workload,
    /// Simulator driver: drop and ejection processing.
    Ejection,
}

/// Number of phases (array sizing).
const COUNT: usize = 12;

impl Phase {
    /// Every phase, in display order.
    pub const ALL: [Phase; COUNT] = [
        Phase::StepTotal,
        Phase::LinkDelivery,
        Phase::RouterPipeline,
        Phase::Occupancy,
        Phase::NicInject,
        Phase::Telemetry,
        Phase::StageSt,
        Phase::StageSa,
        Phase::StageVa,
        Phase::StageRc,
        Phase::Workload,
        Phase::Ejection,
    ];

    /// The sections that tile `Network::step`'s body (the coverage
    /// denominator is [`Phase::StepTotal`], these are the numerator).
    pub const STEP_SECTIONS: [Phase; 5] = [
        Phase::LinkDelivery,
        Phase::RouterPipeline,
        Phase::Occupancy,
        Phase::NicInject,
        Phase::Telemetry,
    ];

    /// Stable snake-case name (snapshot key and Prometheus label).
    pub fn name(self) -> &'static str {
        match self {
            Phase::StepTotal => "step_total",
            Phase::LinkDelivery => "link_delivery",
            Phase::RouterPipeline => "router_pipeline",
            Phase::Occupancy => "occupancy",
            Phase::NicInject => "nic_inject",
            Phase::Telemetry => "telemetry",
            Phase::StageSt => "stage_st",
            Phase::StageSa => "stage_sa",
            Phase::StageVa => "stage_va",
            Phase::StageRc => "stage_rc",
            Phase::Workload => "workload",
            Phase::Ejection => "ejection",
        }
    }
}

// The const-repeat array initializer: each use expands to a fresh
// AtomicU64, which is exactly the intent (clippy's interior-mutability
// lint guards against *sharing* a const atomic, which never happens).
#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
static NANOS: [AtomicU64; COUNT] = [ZERO; COUNT];
static CALLS: [AtomicU64; COUNT] = [ZERO; COUNT];

thread_local! {
    /// Set on shard worker threads (see [`set_worker_thread`]): their
    /// scopes are inert so the sections tiling `Network::step` are
    /// charged exactly once, by the main thread whose scope spans the
    /// dispatch, the parallel execution, and the join. Without this,
    /// N workers inside one `RouterPipeline` wall-clock interval would
    /// charge N overlapping durations and `coverage()` could exceed 1.
    static IS_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Marks (or unmarks) the current thread as a shard worker. Phase
/// scopes opened on a worker thread record nothing — the main thread's
/// enclosing scope already accounts for the worker's wall time.
pub fn set_worker_thread(worker: bool) {
    IS_WORKER.with(|w| w.set(worker));
}

/// Live guard for one phase scope; charges the phase on drop. Inert
/// (start time absent) when observability is off at entry.
#[derive(Debug)]
pub struct PhaseGuard {
    phase: Phase,
    start: Option<Instant>,
}

/// Opens a timing scope for `phase`. Call at the top of the region and
/// bind the guard (`let _p = scope(...)`) so it drops at region exit.
/// On shard worker threads the guard is always inert (see
/// [`set_worker_thread`]); the `enabled` check runs first so the
/// disabled path stays one relaxed atomic load with no TLS access.
#[inline(always)]
pub fn scope(phase: Phase) -> PhaseGuard {
    let start =
        if crate::enabled() && !IS_WORKER.with(Cell::get) { Some(Instant::now()) } else { None };
    PhaseGuard { phase, start }
}

impl Drop for PhaseGuard {
    #[inline]
    fn drop(&mut self) {
        if let Some(t0) = self.start {
            let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            NANOS[self.phase as usize].fetch_add(ns, Ordering::Relaxed);
            CALLS[self.phase as usize].fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// One phase's accumulated profile.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseSample {
    /// [`Phase::name`] of the phase.
    pub phase: String,
    /// Scopes closed.
    pub calls: u64,
    /// Wall nanoseconds accumulated.
    pub nanos: u64,
}

/// Snapshots every phase (including ones that never fired, so consumers
/// see a stable row set).
pub fn snapshot() -> Vec<PhaseSample> {
    Phase::ALL
        .iter()
        .map(|&p| PhaseSample {
            phase: p.name().to_string(),
            calls: CALLS[p as usize].load(Ordering::Relaxed),
            nanos: NANOS[p as usize].load(Ordering::Relaxed),
        })
        .collect()
}

/// Zeroes every phase accumulator (test isolation; production snapshots
/// are cumulative per process).
pub fn reset() {
    for i in 0..COUNT {
        NANOS[i].store(0, Ordering::Relaxed);
        CALLS[i].store(0, Ordering::Relaxed);
    }
}

/// Fraction of [`Phase::StepTotal`] wall time covered by the tiled
/// [`Phase::STEP_SECTIONS`], or `None` when no step has been profiled.
pub fn coverage() -> Option<f64> {
    let total = NANOS[Phase::StepTotal as usize].load(Ordering::Relaxed);
    if total == 0 {
        return None;
    }
    let sections: u64 =
        Phase::STEP_SECTIONS.iter().map(|&p| NANOS[p as usize].load(Ordering::Relaxed)).sum();
    Some(sections as f64 / total as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// All phase behaviour in one test: the accumulators are global, so
    /// concurrent tests would race a `reset`.
    #[test]
    fn scopes_accumulate_only_when_enabled() {
        reset();
        crate::set_enabled(false);
        {
            let _p = scope(Phase::StepTotal);
        }
        assert!(snapshot().iter().all(|s| s.calls == 0), "disabled scopes must not record");

        crate::set_enabled(true);
        {
            let _t = scope(Phase::StepTotal);
            for &s in &Phase::STEP_SECTIONS {
                let _p = scope(s);
                std::hint::black_box(0u64);
            }
        }
        // Scopes on a shard worker thread are inert even while enabled:
        // the main thread's enclosing section scope already accounts for
        // the worker's wall time, so a worker-side scope would be a
        // double count.
        set_worker_thread(true);
        {
            let _p = scope(Phase::RouterPipeline);
        }
        set_worker_thread(false);
        crate::set_enabled(false);

        let snap = snapshot();
        let total = snap.iter().find(|s| s.phase == "step_total").expect("present");
        assert_eq!(total.calls, 1);
        let pipeline = snap.iter().find(|s| s.phase == "router_pipeline").expect("present");
        assert_eq!(pipeline.calls, 1, "worker-thread scope must not record");
        assert!(total.nanos > 0);
        let cov = coverage().expect("step profiled");
        assert!(cov > 0.0 && cov <= 1.0, "coverage {cov} out of range");
        reset();
        assert_eq!(coverage(), None);
    }
}
