//! Build provenance: which source revision, compiler, and profile
//! produced this binary. Stamped at compile time by `build.rs` (git
//! revision with a `-dirty` suffix for uncommitted trees, rustc
//! version) and surfaced in `RunSummary` JSON, observability snapshots,
//! and every ledger entry — the fields a future result cache keys on to
//! decide whether a cached run is still trustworthy.

use serde::{Deserialize, Serialize};

/// Provenance of the running binary.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Provenance {
    /// Git revision the binary was built from (`-dirty` suffixed when
    /// the tree had uncommitted changes; `unknown` outside a checkout).
    pub git_rev: String,
    /// `rustc --version` of the building compiler.
    pub rustc: String,
    /// `debug` or `release`.
    pub profile: String,
    /// Workspace package version.
    pub version: String,
}

impl Provenance {
    /// The provenance stamped into this build.
    pub fn current() -> Self {
        Provenance {
            git_rev: env!("MIRA_GIT_REV").to_string(),
            rustc: env!("MIRA_RUSTC").to_string(),
            profile: if cfg!(debug_assertions) { "debug" } else { "release" }.to_string(),
            version: env!("CARGO_PKG_VERSION").to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn provenance_is_stamped() {
        let p = Provenance::current();
        assert!(!p.git_rev.is_empty());
        assert!(!p.rustc.is_empty());
        assert!(p.profile == "debug" || p.profile == "release");
        assert!(!p.version.is_empty());
    }
}
