//! Static-registration metrics: atomic counters, max-gauges, and log₂
//! histograms.
//!
//! Metrics are declared as `static` items with `const` constructors and
//! register themselves in the global registry on first touch (one
//! relaxed flag check per update after that). Updates are plain relaxed
//! atomics — safe from any thread, never allocating after registration,
//! and cheap enough for per-point (not per-cycle) call sites. The
//! per-cycle hot loop uses the [`phase`](crate::phase) profiler and the
//! core's own watermark fields instead; nothing in `Network::step`
//! touches this registry.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

/// Histogram bucket count: bucket `k` counts observations `v` with
/// `floor(log2(v)) == k - 1` (bucket 0 holds `v == 0`), upper bounds
/// `2^0 .. 2^31`, everything larger in the last bucket.
pub const HISTOGRAM_BUCKETS: usize = 32;

enum MetricRef {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

static REGISTRY: Mutex<Vec<MetricRef>> = Mutex::new(Vec::new());

fn register(metric: MetricRef) {
    REGISTRY.lock().expect("metric registry").push(metric);
}

/// A monotonically increasing event count.
pub struct Counter {
    name: &'static str,
    help: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    /// A counter at zero (use in a `static`).
    pub const fn new(name: &'static str, help: &'static str) -> Self {
        Counter { name, help, value: AtomicU64::new(0), registered: AtomicBool::new(false) }
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn inc(&'static self, n: u64) {
        if !self.registered.swap(true, Ordering::Relaxed) {
            register(MetricRef::Counter(self));
        }
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge with *maximum* semantics: [`Gauge::set_max`] ratchets the
/// value upward (the natural shape for high-water marks); [`Gauge::set`]
/// overwrites it.
pub struct Gauge {
    name: &'static str,
    help: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Gauge {
    /// A gauge at zero (use in a `static`).
    pub const fn new(name: &'static str, help: &'static str) -> Self {
        Gauge { name, help, value: AtomicU64::new(0), registered: AtomicBool::new(false) }
    }

    #[inline]
    fn touch(&'static self) {
        if !self.registered.swap(true, Ordering::Relaxed) {
            register(MetricRef::Gauge(self));
        }
    }

    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&'static self, v: u64) {
        self.touch();
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger (watermark update).
    #[inline]
    pub fn set_max(&'static self, v: u64) {
        self.touch();
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

// The const-repeat array initializer: each use expands to a fresh
// AtomicU64, which is exactly the intent (clippy's interior-mutability
// lint guards against *sharing* a const atomic, which never happens).
#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);

/// A log₂-bucketed histogram of `u64` observations, with total sum and
/// count (so exact means survive the bucketing).
pub struct Histogram {
    name: &'static str,
    help: &'static str,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
    registered: AtomicBool,
}

impl Histogram {
    /// An empty histogram (use in a `static`).
    pub const fn new(name: &'static str, help: &'static str) -> Self {
        Histogram {
            name,
            help,
            buckets: [ZERO; HISTOGRAM_BUCKETS],
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&'static self, v: u64) {
        if !self.registered.swap(true, Ordering::Relaxed) {
            register(MetricRef::Histogram(self));
        }
        let idx = ((64 - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }
}

/// One metric as captured by [`samples`]: a uniform shape covering all
/// three kinds so snapshots serialize and parse with the vendored
/// serde's plain-struct derive.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetricSample {
    /// Metric name (Prometheus-safe: `mira_*`).
    pub name: String,
    /// `"counter"`, `"gauge"`, or `"histogram"`.
    pub kind: String,
    /// One-line description.
    pub help: String,
    /// Counter/gauge value; for histograms, the observation count.
    pub value: u64,
    /// Histogram sum (zero for counters and gauges).
    pub sum: u64,
    /// Per-bucket (non-cumulative) histogram counts; empty for counters
    /// and gauges. Bucket `k` has upper bound `2^k` (last is +Inf).
    pub buckets: Vec<u64>,
}

impl MetricSample {
    /// Renders this metric in Prometheus text exposition format.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# HELP {} {}\n", self.name, self.help));
        match self.kind.as_str() {
            "histogram" => {
                out.push_str(&format!("# TYPE {} histogram\n", self.name));
                let mut cumulative = 0u64;
                for (k, n) in self.buckets.iter().enumerate() {
                    cumulative += n;
                    // Skip empty leading buckets but keep the full
                    // cumulative tail once anything fired.
                    if cumulative == 0 {
                        continue;
                    }
                    let le = if k + 1 == self.buckets.len() {
                        "+Inf".to_string()
                    } else {
                        format!("{}", 1u64 << k)
                    };
                    out.push_str(&format!("{}_bucket{{le=\"{le}\"}} {cumulative}\n", self.name));
                }
                out.push_str(&format!("{}_sum {}\n", self.name, self.sum));
                out.push_str(&format!("{}_count {}\n", self.name, self.value));
            }
            kind => {
                out.push_str(&format!("# TYPE {} {kind}\n", self.name));
                out.push_str(&format!("{} {}\n", self.name, self.value));
            }
        }
        out
    }
}

/// Snapshots every registered metric, in registration order.
pub fn samples() -> Vec<MetricSample> {
    let reg = REGISTRY.lock().expect("metric registry");
    reg.iter()
        .map(|m| match m {
            MetricRef::Counter(c) => MetricSample {
                name: c.name.to_string(),
                kind: "counter".to_string(),
                help: c.help.to_string(),
                value: c.get(),
                sum: 0,
                buckets: Vec::new(),
            },
            MetricRef::Gauge(g) => MetricSample {
                name: g.name.to_string(),
                kind: "gauge".to_string(),
                help: g.help.to_string(),
                value: g.get(),
                sum: 0,
                buckets: Vec::new(),
            },
            MetricRef::Histogram(h) => MetricSample {
                name: h.name.to_string(),
                kind: "histogram".to_string(),
                help: h.help.to_string(),
                value: h.count(),
                sum: h.sum(),
                buckets: h.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            },
        })
        .collect()
}

// --- Well-known metrics shared across the workspace -------------------

/// Peak live flits in the network's `FlitArena`, across every simulation
/// this process ran (updated per completed point / bench pass).
pub static ARENA_LIVE_PEAK: Gauge = Gauge::new(
    "mira_arena_live_peak_flits",
    "Peak live flits in the flit arena across all runs in this process",
);

/// Peak per-router `FlitSlab` occupancy across every simulation this
/// process ran.
pub static ROUTER_BUFFER_PEAK: Gauge = Gauge::new(
    "mira_router_buffer_peak_flits",
    "Peak single-router buffer occupancy across all runs in this process",
);

#[cfg(test)]
mod tests {
    use super::*;

    static TEST_COUNTER: Counter = Counter::new("mira_test_counter_total", "test counter");
    static TEST_GAUGE: Gauge = Gauge::new("mira_test_gauge", "test gauge");
    static TEST_HIST: Histogram = Histogram::new("mira_test_hist", "test histogram");

    #[test]
    fn counters_accumulate_and_register_once() {
        TEST_COUNTER.inc(2);
        TEST_COUNTER.inc(3);
        assert_eq!(TEST_COUNTER.get(), 5);
        let n = samples().iter().filter(|s| s.name == "mira_test_counter_total").count();
        assert_eq!(n, 1, "first touch registers exactly once");
    }

    #[test]
    fn gauge_set_max_ratchets() {
        TEST_GAUGE.set_max(10);
        TEST_GAUGE.set_max(4);
        assert_eq!(TEST_GAUGE.get(), 10);
        TEST_GAUGE.set_max(12);
        assert_eq!(TEST_GAUGE.get(), 12);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        TEST_HIST.observe(0); // bucket 0
        TEST_HIST.observe(1); // bucket 1 (le 2)
        TEST_HIST.observe(900); // bucket 10 (le 1024)
        TEST_HIST.observe(u64::MAX); // last bucket
        assert_eq!(TEST_HIST.count(), 4);
        let s = samples();
        let h = s.iter().find(|m| m.name == "mira_test_hist").expect("registered");
        assert_eq!(h.buckets.len(), HISTOGRAM_BUCKETS);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[10], 1);
        assert_eq!(h.buckets[HISTOGRAM_BUCKETS - 1], 1);
        let prom = h.to_prometheus();
        assert!(prom.contains("mira_test_hist_bucket{le=\"1\"} 1"));
        assert!(prom.contains("mira_test_hist_bucket{le=\"+Inf\"} 4"));
        assert!(prom.contains("mira_test_hist_count 4"));
    }
}
