//! Router component areas (paper Table 1).
//!
//! The paper synthesised each module in a TSMC 90 nm standard-cell
//! library; Table 1 reports the resulting areas. Two families of numbers
//! are reproducible from first principles and match the table exactly:
//!
//! * **crossbar**: a matrix crossbar is wire-dominated; its per-layer
//!   area is `(P·W·pitch / L)²` with a 0.75 µm per-bit track pitch —
//!   giving 230 400 / 451 584 / 14 400 / 46 656 µm² for
//!   2DB / 3DB / 3DM / 3DM-E, exactly the table;
//! * **buffer**: register-file storage at 31.83 µm²/bit:
//!   `P·V·k·W·31.83 / L` per layer reproduces
//!   162 973 / 228 162 / 40 743 / 73 338 µm².
//!
//! RC, SA1 and VA1 scale linearly with port count from the 2DB
//! synthesis; SA2 and VA2 arbiters scale super-linearly and are kept as
//! synthesis constants (with a quadratic interpolation for non-paper
//! geometries).

use serde::{Deserialize, Serialize};

use crate::geometry::{PaperArch, RouterGeometry};
use crate::tech::TechParams;

/// Areas of the six router components, µm². For multi-layered designs
/// these are the **maximum single-layer** figures, matching Table 1's
/// 3DM*/3DM-E* columns.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ComponentAreas {
    /// Routing-computation logic.
    pub rc: f64,
    /// Switch-allocator stage 1.
    pub sa1: f64,
    /// Switch-allocator stage 2.
    pub sa2: f64,
    /// VC-allocator stage 1.
    pub va1: f64,
    /// VC-allocator stage 2 (max per layer for 3DM: spread over the
    /// bottom `L-1` layers).
    pub va2: f64,
    /// Crossbar (per layer for multi-layered designs).
    pub crossbar: f64,
    /// Input buffers (per layer for multi-layered designs).
    pub buffer: f64,
}

impl ComponentAreas {
    /// Total of all components, µm² (the table's "Total area" row).
    pub fn total(&self) -> f64 {
        self.rc + self.sa1 + self.sa2 + self.va1 + self.va2 + self.crossbar + self.buffer
    }
}

/// Synthesis-derived per-architecture constants for the arbiter stages
/// (2DB column of Table 1).
const SA2_2DB_UM2: f64 = 6_201.0;
const VA2_2DB_UM2: f64 = 29_312.0;
const RC_2DB_UM2: f64 = 1_717.0;
const SA1_2DB_UM2: f64 = 1_008.0;
const VA1_2DB_UM2: f64 = 2_016.0;
const PORTS_2DB: f64 = 5.0;

/// The area model: parametric scaling laws anchored to the 2DB synthesis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaModel {
    tech: TechParams,
}

impl AreaModel {
    /// Creates the model for a technology.
    pub fn new(tech: TechParams) -> Self {
        AreaModel { tech }
    }

    /// Crossbar area per layer, µm²: `(P·W·pitch / L)²`.
    pub fn crossbar_per_layer_um2(&self, geo: &RouterGeometry) -> f64 {
        let side = geo.xbar_side_um(self.tech.bit_pitch_um);
        side * side
    }

    /// Buffer area per layer, µm²: `P·V·k·W·a_bit / L`.
    pub fn buffer_per_layer_um2(&self, geo: &RouterGeometry) -> f64 {
        geo.buffer_bits() as f64 * self.tech.buffer_area_um2_per_bit / geo.layers as f64
    }

    /// RC logic area, µm² (linear in ports, whole block on one layer).
    pub fn rc_um2(&self, geo: &RouterGeometry) -> f64 {
        RC_2DB_UM2 * geo.ports as f64 / PORTS_2DB
    }

    /// SA1 area, µm² (linear in ports).
    pub fn sa1_um2(&self, geo: &RouterGeometry) -> f64 {
        SA1_2DB_UM2 * geo.ports as f64 / PORTS_2DB
    }

    /// VA1 area, µm² (linear in ports).
    pub fn va1_um2(&self, geo: &RouterGeometry) -> f64 {
        VA1_2DB_UM2 * geo.ports as f64 / PORTS_2DB
    }

    /// SA2 area, µm² for a planar design: `P` arbiters of `P:1`, scaling
    /// ≈ quadratically with the port count from the 2DB synthesis point.
    pub fn sa2_um2(&self, geo: &RouterGeometry) -> f64 {
        let scale = geo.ports as f64 / PORTS_2DB;
        SA2_2DB_UM2 * scale * scale
    }

    /// VA2 area, µm² for a planar design: `P·V` arbiters of `PV:1`.
    pub fn va2_um2(&self, geo: &RouterGeometry) -> f64 {
        let scale = geo.ports as f64 / PORTS_2DB;
        VA2_2DB_UM2 * scale * scale
    }

    /// VA2 area on the busiest layer when the arbiters are spread over
    /// the `L-1` non-sink layers (paper §3.2.7).
    pub fn va2_per_layer_um2(&self, geo: &RouterGeometry) -> f64 {
        if geo.layers > 1 {
            self.va2_um2(geo) / (geo.layers as f64 - 1.0)
        } else {
            self.va2_um2(geo)
        }
    }

    /// The exact Table 1 column for one of the paper's architectures.
    /// (The arbiter stages use the published synthesis constants rather
    /// than the parametric interpolation.)
    pub fn paper_areas(&self, arch: PaperArch) -> ComponentAreas {
        match arch {
            PaperArch::TwoDB => ComponentAreas {
                rc: 1_717.0,
                sa1: 1_008.0,
                sa2: 6_201.0,
                va1: 2_016.0,
                va2: 29_312.0,
                crossbar: 230_400.0,
                buffer: 162_973.0,
            },
            PaperArch::ThreeDB => ComponentAreas {
                rc: 2_404.0,
                sa1: 1_411.0,
                sa2: 11_306.0,
                va1: 2_822.0,
                va2: 62_725.0,
                crossbar: 451_584.0,
                buffer: 228_162.0,
            },
            PaperArch::ThreeDM => ComponentAreas {
                rc: 1_717.0,
                sa1: 1_008.0,
                sa2: 6_201.0,
                va1: 2_016.0,
                va2: 9_770.0,
                crossbar: 14_400.0,
                buffer: 40_743.0,
            },
            PaperArch::ThreeDME => ComponentAreas {
                rc: 3_092.0,
                sa1: 1_814.0,
                sa2: 25_024.0,
                va1: 3_629.0,
                va2: 41_842.0,
                crossbar: 46_656.0,
                buffer: 73_338.0,
            },
        }
    }

    /// Inter-layer via area per layer, µm², assuming 5×5 µm TSV pads
    /// (paper §3.2.7, citing TSMC technology parameters).
    pub fn via_area_um2(&self, geo: &RouterGeometry) -> f64 {
        if geo.layers <= 1 {
            return 0.0;
        }
        let vias = mira_noc::layers::via_count(geo.ports, geo.vcs, geo.buffer_depth) as f64;
        vias * 25.0
    }

    /// Via overhead as a fraction of the per-layer area (Table 1's "via
    /// overhead per layer" row; < 2 % for 3DM).
    pub fn via_overhead_fraction(&self, arch: PaperArch) -> f64 {
        let geo = arch.geometry();
        if geo.layers <= 1 {
            return 0.0;
        }
        self.via_area_um2(&geo) / self.paper_areas(arch).total()
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        AreaModel::new(TechParams::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> AreaModel {
        AreaModel::default()
    }

    /// Table 1 totals (µm²).
    #[test]
    fn table1_totals() {
        let m = model();
        let expected = [
            (PaperArch::TwoDB, 433_627.0),
            (PaperArch::ThreeDB, 760_414.0),
            (PaperArch::ThreeDM, 75_855.0),
            (PaperArch::ThreeDME, 195_395.0),
        ];
        // The paper's totals row reads 433 628 / 760 416 / 260 829 /
        // 639 063; the 2DB/3DB columns match component sums to rounding.
        // For 3DM/3DM-E the published "total" is the sum over ALL layers
        // of the separable parts (our per-layer column sums differ); we
        // check component sums here and the published cross-layer totals
        // in `table1_published_totals`.
        for (arch, total) in expected {
            let sum = m.paper_areas(arch).total();
            assert!((sum - total).abs() < 3.0, "{arch}: {sum} vs {total}");
        }
    }

    /// The published totals for the multi-layered designs count the
    /// separable modules on every layer: per-layer × L for crossbar and
    /// buffer, VA2 × (L−1) for the spread arbiters.
    #[test]
    fn table1_published_totals() {
        let m = model();
        let a = m.paper_areas(PaperArch::ThreeDM);
        let all_layers = a.rc + a.sa1 + a.sa2 + a.va1 + a.va2 * 3.0 + (a.crossbar + a.buffer) * 4.0;
        assert!((all_layers - 260_829.0).abs() < 30.0, "3DM cross-layer total {all_layers}");

        let e = m.paper_areas(PaperArch::ThreeDME);
        let all_layers_e =
            e.rc + e.sa1 + e.sa2 + e.va1 + e.va2 * 3.0 + (e.crossbar + e.buffer) * 4.0;
        assert!((all_layers_e - 639_063.0).abs() < 30.0, "3DM-E cross-layer total {all_layers_e}");
    }

    /// The crossbar scaling law reproduces Table 1 exactly.
    #[test]
    fn crossbar_law_matches_table_exactly() {
        let m = model();
        for (arch, expect) in [
            (PaperArch::TwoDB, 230_400.0),
            (PaperArch::ThreeDB, 451_584.0),
            (PaperArch::ThreeDM, 14_400.0),
            (PaperArch::ThreeDME, 46_656.0),
        ] {
            let got = m.crossbar_per_layer_um2(&arch.geometry());
            assert!((got - expect).abs() < 1e-6, "{arch}: {got} vs {expect}");
        }
    }

    /// The buffer scaling law reproduces Table 1 to rounding (±1 µm²).
    #[test]
    fn buffer_law_matches_table() {
        let m = model();
        for (arch, expect) in [
            (PaperArch::TwoDB, 162_973.0),
            (PaperArch::ThreeDB, 228_162.0),
            (PaperArch::ThreeDM, 40_743.0),
            (PaperArch::ThreeDME, 73_338.0),
        ] {
            let got = m.buffer_per_layer_um2(&arch.geometry());
            assert!((got - expect).abs() < expect * 0.002, "{arch}: {got} vs {expect}");
        }
    }

    /// RC / SA1 / VA1 scale linearly in ports from the 2DB synthesis.
    #[test]
    fn linear_components_match_table() {
        let m = model();
        for arch in PaperArch::ALL {
            let geo = arch.geometry();
            let t = m.paper_areas(arch);
            assert!((m.rc_um2(&geo) - t.rc).abs() < 2.0, "{arch} rc");
            assert!((m.sa1_um2(&geo) - t.sa1).abs() < 2.0, "{arch} sa1");
            assert!((m.va1_um2(&geo) - t.va1).abs() < 2.0, "{arch} va1");
        }
    }

    /// 3DM VA2 per-layer figure is the full VA2 spread over 3 layers.
    #[test]
    fn va2_spreads_over_non_sink_layers() {
        let m = model();
        let geo = PaperArch::ThreeDM.geometry();
        let per_layer = m.va2_per_layer_um2(&geo);
        // Full VA2 (2DB-sized: same P, V) split three ways: 29312/3 ≈ 9771.
        assert!((per_layer - 29_312.0 / 3.0).abs() < 1.0, "{per_layer}");
        assert!((m.paper_areas(PaperArch::ThreeDM).va2 - 9_770.0).abs() < 1.0);
    }

    /// Via overhead stays below 2 % for 3DM and below 1 % for 3DM-E
    /// (Table 1's bottom row: 1.6 % and 0.6 %).
    #[test]
    fn via_overhead_bounds() {
        let m = model();
        assert_eq!(m.via_overhead_fraction(PaperArch::TwoDB), 0.0);
        let f3m = m.via_overhead_fraction(PaperArch::ThreeDM);
        assert!(f3m > 0.0 && f3m < 0.02, "3DM via overhead {f3m}");
        let f3me = m.via_overhead_fraction(PaperArch::ThreeDME);
        assert!(f3me > 0.0 && f3me < 0.01, "3DM-E via overhead {f3me}");
    }

    /// Paper §3.3: the 3DM-E router is ≈2.4× the 3DM area and ≈0.7× the
    /// 2DB area (per-layer comparison... the paper compares cross-layer
    /// totals: 639 063 / 260 829 ≈ 2.45 and 639 063 / 433 628 ≈ 1.47 —
    /// the 0.7× figure refers to footprint in a single layer).
    #[test]
    fn threedme_area_ratios() {
        let ratio_cross: f64 = 639_063.0 / 260_829.0;
        assert!((ratio_cross - 2.45).abs() < 0.1);
        let m = model();
        let footprint_ratio =
            m.paper_areas(PaperArch::ThreeDME).total() / m.paper_areas(PaperArch::TwoDB).total();
        assert!(footprint_ratio < 0.7, "single-layer footprint ratio {footprint_ratio}");
    }
}
