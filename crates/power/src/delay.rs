//! Wire and crossbar delay model (paper Tables 2–3).
//!
//! The paper validates pipeline combining with a 90 nm switch design and
//! optimally buffered links: at 2 GHz each pipeline stage has 500 ps; ST
//! and LT can merge iff the crossbar traversal plus the link traversal
//! fit in one stage. Table 3 reports:
//!
//! | arch | XBAR (ps) | Link (ps) | combined | ≤500? |
//! |------|-----------|-----------|----------|-------|
//! | 2DB  | 378.57    | 309.48    | 688.05   | no    |
//! | 3DM  | 142.86    | 154.74    | 297.60   | yes   |
//! | 3DM-E| 182.85    | 309.48    | 492.33   | yes   |
//!
//! We reproduce these with two fits anchored at the table:
//! * **link**: repeated wires are delay-linear in length —
//!   309.48 ps / 3.1 mm = 99.832 ps/mm (the unbuffered figure of Table 2,
//!   254 ps/mm, is exposed for reference);
//! * **crossbar**: a fixed logic term plus a term quadratic in wire
//!   length (unrepeated RC wire): `t0 + c·s²` through the 2DB and 3DM
//!   points lands within 3 % of the published 3DM-E value.

use serde::{Deserialize, Serialize};

use crate::geometry::{PaperArch, RouterGeometry};
use crate::tech::TechParams;

/// Unbuffered global wire delay (paper Table 2), ps/mm.
pub const UNBUFFERED_WIRE_PS_PER_MM: f64 = 254.0;

/// Inverter FO4-ish delay from HSPICE (paper Table 2), ps.
pub const INVERTER_DELAY_PS: f64 = 9.81;

/// Optimally repeated wire delay, ps/mm, fit to Table 3's 2DB link
/// (309.48 ps over 3.1 mm).
pub const REPEATED_WIRE_PS_PER_MM: f64 = 309.48 / 3.1;

/// Crossbar delay fixed (logic) term, ps — fit through the 2DB and 3DM
/// rows of Table 3.
pub const XBAR_T0_PS: f64 = 127.145;

/// Crossbar delay wire term, ps/µm² of side length squared.
pub const XBAR_C_PS_PER_UM2: f64 = (378.57 - 142.86) / (480.0 * 480.0 - 120.0 * 120.0);

/// Exact Table 3 delays for one architecture, ps.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageDelays {
    /// Crossbar traversal delay.
    pub xbar_ps: f64,
    /// Link traversal delay (the longest link the router drives: express
    /// for 3DM-E).
    pub link_ps: f64,
}

impl StageDelays {
    /// ST + LT back to back.
    pub fn combined_ps(&self) -> f64 {
        self.xbar_ps + self.link_ps
    }
}

/// The delay model.
///
/// ```
/// use mira_power::delay::DelayModel;
/// use mira_power::geometry::PaperArch;
///
/// let m = DelayModel::default();
/// // Table 3: the baseline 2D router cannot merge ST and LT at 2 GHz,
/// // the multi-layered router can.
/// assert!(!m.can_combine_st_lt(m.paper_stage_delays(PaperArch::TwoDB)));
/// assert!(m.can_combine_st_lt(m.paper_stage_delays(PaperArch::ThreeDM)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayModel {
    tech: TechParams,
}

impl DelayModel {
    /// Creates the model for a technology.
    pub fn new(tech: TechParams) -> Self {
        DelayModel { tech }
    }

    /// Maximum per-stage delay at the configured clock, ps.
    pub fn stage_budget_ps(&self) -> f64 {
        self.tech.clock_period_ps()
    }

    /// Repeated-wire link delay for a physical length, ps.
    pub fn link_delay_ps(&self, length_mm: f64) -> f64 {
        REPEATED_WIRE_PS_PER_MM * length_mm
    }

    /// Crossbar traversal delay from the per-layer side length, ps.
    pub fn xbar_delay_ps(&self, geo: &RouterGeometry) -> f64 {
        let s = geo.xbar_side_um(self.tech.bit_pitch_um);
        XBAR_T0_PS + XBAR_C_PS_PER_UM2 * s * s
    }

    /// Parametric stage delays for an arbitrary geometry (worst-case
    /// link: express if present).
    pub fn stage_delays(&self, geo: &RouterGeometry) -> StageDelays {
        let link = geo.link_mm.max(geo.express_link_mm);
        StageDelays { xbar_ps: self.xbar_delay_ps(geo), link_ps: self.link_delay_ps(link) }
    }

    /// The published Table 3 row for a paper architecture (3DB shares the
    /// 2DB row: same crossbar pitch count is not reported; the paper only
    /// evaluates combining for 2DB / 3DM / 3DM-E).
    pub fn paper_stage_delays(&self, arch: PaperArch) -> StageDelays {
        match arch {
            PaperArch::TwoDB | PaperArch::ThreeDB => {
                StageDelays { xbar_ps: 378.57, link_ps: 309.48 }
            }
            PaperArch::ThreeDM => StageDelays { xbar_ps: 142.86, link_ps: 154.74 },
            PaperArch::ThreeDME => StageDelays { xbar_ps: 182.85, link_ps: 309.48 },
        }
    }

    /// The pipeline-combining feasibility rule: ST and LT can share a
    /// cycle iff their summed delay fits the stage budget.
    pub fn can_combine_st_lt(&self, delays: StageDelays) -> bool {
        delays.combined_ps() <= self.stage_budget_ps()
    }
}

impl Default for DelayModel {
    fn default() -> Self {
        DelayModel::new(TechParams::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> DelayModel {
        DelayModel::default()
    }

    /// Table 3's verdicts: 2DB cannot combine; 3DM and 3DM-E can.
    #[test]
    fn table3_combining_verdicts() {
        let m = model();
        assert!(!m.can_combine_st_lt(m.paper_stage_delays(PaperArch::TwoDB)));
        assert!(m.can_combine_st_lt(m.paper_stage_delays(PaperArch::ThreeDM)));
        assert!(m.can_combine_st_lt(m.paper_stage_delays(PaperArch::ThreeDME)));
    }

    /// Table 3's combined delays.
    #[test]
    fn table3_combined_values() {
        let m = model();
        let rows = [
            (PaperArch::TwoDB, 688.05),
            (PaperArch::ThreeDM, 297.60),
            (PaperArch::ThreeDME, 492.33),
        ];
        for (arch, expect) in rows {
            let got = m.paper_stage_delays(arch).combined_ps();
            assert!((got - expect).abs() < 0.01, "{arch}: {got} vs {expect}");
        }
    }

    /// The parametric link fit passes exactly through both published link
    /// delays (they are length-proportional: 3.1 mm vs 1.58 ≈ 3.1/2 mm —
    /// the paper rounds the 3DM pitch to 1.58 but halves the delay).
    #[test]
    fn link_fit_matches_2db_exactly() {
        let m = model();
        assert!((m.link_delay_ps(3.1) - 309.48).abs() < 1e-9);
        // 3DM published value corresponds to exactly half the 2DB wire.
        assert!((m.link_delay_ps(3.1 / 2.0) - 154.74).abs() < 1e-9);
        // Using the rounded 1.58 mm pitch stays within 2 % of the table.
        assert!((m.link_delay_ps(1.58) - 154.74).abs() / 154.74 < 0.02);
    }

    /// The quadratic crossbar fit passes through 2DB and 3DM and lands
    /// within 3 % of the published 3DM-E value.
    #[test]
    fn xbar_fit_accuracy() {
        let m = model();
        let d2 = m.xbar_delay_ps(&PaperArch::TwoDB.geometry());
        assert!((d2 - 378.57).abs() < 0.2, "{d2}");
        let d3 = m.xbar_delay_ps(&PaperArch::ThreeDM.geometry());
        assert!((d3 - 142.86).abs() < 0.2, "{d3}");
        let de = m.xbar_delay_ps(&PaperArch::ThreeDME.geometry());
        assert!((de - 182.85).abs() / 182.85 < 0.03, "{de}");
    }

    /// The parametric rule agrees with the published verdicts when fed
    /// the parametric delays.
    #[test]
    fn parametric_rule_matches_verdicts() {
        let m = model();
        assert!(!m.can_combine_st_lt(m.stage_delays(&PaperArch::TwoDB.geometry())));
        assert!(m.can_combine_st_lt(m.stage_delays(&PaperArch::ThreeDM.geometry())));
        assert!(m.can_combine_st_lt(m.stage_delays(&PaperArch::ThreeDME.geometry())));
    }

    /// Reference constants from Table 2 are exposed.
    #[test]
    fn table2_constants() {
        assert!((UNBUFFERED_WIRE_PS_PER_MM - 254.0).abs() < 1e-12);
        assert!((INVERTER_DELAY_PS - 9.81).abs() < 1e-12);
        // Repeated wires beat unbuffered wires.
        #[allow(clippy::assertions_on_constants)]
        {
            assert!(REPEATED_WIRE_PS_PER_MM < UNBUFFERED_WIRE_PS_PER_MM);
        }
    }

    /// Stage budget at 2 GHz is 500 ps.
    #[test]
    fn stage_budget() {
        assert!((model().stage_budget_ps() - 500.0).abs() < 1e-9);
    }
}
