//! Orion-style dynamic-energy models for the router components.
//!
//! Follows the structure of Orion (Wang et al., MICRO 2002), which the
//! paper uses for all its power numbers: each component's energy per
//! event is `α·C·V²` with a component-specific effective capacitance
//! built from geometry:
//!
//! * **input buffer** (register-file model): per-bit access capacitance =
//!   cell + `k`·bit-line + word-line;
//! * **matrix crossbar**: per-bit input + output line capacitance =
//!   wire length (`P·W·pitch/L`) times wire cap, plus `P` crosspoint
//!   drains per line (paper Fig. 5);
//! * **matrix arbiter** `n:1`: `n²`-proportional switched capacitance;
//! * **link**: wire cap times length (paper Table 2's repeated wires);
//! * **control** (clock tree, pipeline registers, FSMs): per flit-hop
//!   constant, not gated by layer shutdown.
//!
//! The constants in [`crate::tech::TECH_90NM`] are calibrated so that the
//! relations the paper publishes hold (see the tests at the bottom):
//! buffers ≈ 31 % of 2DB router energy, 3DM per-flit energy ≈ 0.65× 2DB,
//! 3DB router energy above 2DB's.

use serde::{Deserialize, Serialize};

use crate::geometry::{PaperArch, RouterGeometry};
use crate::tech::TechParams;

/// Per-event dynamic-energy model for one router geometry.
///
/// ```
/// use mira_power::energy::EnergyModel;
/// use mira_power::geometry::PaperArch;
///
/// let model = EnergyModel::for_arch(PaperArch::ThreeDM);
/// let b = model.flit_hop_breakdown();
/// // The multi-layered router spends ~35% less energy per flit-hop
/// // than the 2D baseline (paper §3.4.2).
/// let base = EnergyModel::for_arch(PaperArch::TwoDB).flit_hop_breakdown();
/// assert!(b.total_j() < 0.70 * base.total_j());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    tech: TechParams,
    geo: RouterGeometry,
}

impl EnergyModel {
    /// Builds the model for a geometry under a technology.
    pub fn new(geo: RouterGeometry, tech: TechParams) -> Self {
        EnergyModel { tech, geo }
    }

    /// Convenience: the model for one of the paper's architectures at the
    /// default 90 nm technology.
    pub fn for_arch(arch: PaperArch) -> Self {
        EnergyModel::new(arch.geometry(), TechParams::default())
    }

    /// The geometry this model describes.
    pub fn geometry(&self) -> &RouterGeometry {
        &self.geo
    }

    /// The technology parameters in use.
    pub fn tech(&self) -> &TechParams {
        &self.tech
    }

    /// Energy of writing one full-width flit into an input buffer, J.
    pub fn buffer_write_j(&self) -> f64 {
        let t = &self.tech;
        let per_bit = t.buffer_cell_cap_ff
            + self.geo.buffer_depth as f64 * t.buffer_bitline_cap_ff_per_slot
            + t.buffer_wordline_cap_ff_per_bit;
        t.dynamic_energy_j(self.geo.flit_bits as f64 * per_bit)
    }

    /// Energy of reading one full-width flit from an input buffer, J.
    ///
    /// The register-file read and write paths switch nearly the same
    /// capacitance in Orion's model; we use one figure for both.
    pub fn buffer_read_j(&self) -> f64 {
        self.buffer_write_j()
    }

    /// Energy of one full-width flit traversing the (per-layer) crossbar,
    /// J. Covers all `L` layer slices together — the caller scales by the
    /// active-layer fraction for gated flits.
    pub fn xbar_traversal_j(&self) -> f64 {
        let t = &self.tech;
        let side_um = self.geo.xbar_side_um(t.bit_pitch_um);
        let line_cap = side_um * t.wire_cap_ff_per_um + self.geo.ports as f64 * t.xbar_drain_cap_ff;
        // Input line + output line per bit.
        t.dynamic_energy_j(self.geo.flit_bits as f64 * 2.0 * line_cap)
    }

    /// Energy of one `n:1` matrix arbitration, J.
    pub fn arbitration_j(&self, n: usize) -> f64 {
        self.tech.dynamic_energy_j((n * n) as f64 * self.tech.arbiter_cap_ff_per_req2)
    }

    /// Energy of one flit travelling one millimetre of link, J.
    pub fn link_j_per_mm(&self) -> f64 {
        self.tech
            .dynamic_energy_j(self.geo.flit_bits as f64 * 1_000.0 * self.tech.wire_cap_ff_per_um)
    }

    /// Energy of one flit crossing one regular inter-router link, J.
    pub fn link_traversal_j(&self) -> f64 {
        self.link_j_per_mm() * self.geo.link_mm
    }

    /// Control overhead (clock tree, pipeline registers, allocator FSMs)
    /// per flit per router, J. Not gated by layer shutdown.
    pub fn control_j(&self) -> f64 {
        self.tech.dynamic_energy_j(self.geo.flit_bits as f64 * self.tech.control_cap_ff_per_bit)
    }

    /// The Fig. 9 quantity: energy of one full-width flit making one hop
    /// (buffer write + read, crossbar, the typical allocations, control,
    /// and the regular link).
    pub fn flit_hop_breakdown(&self) -> FlitEnergyBreakdown {
        // One VA (VA1+VA2) per packet amortised over ~5 flits plus one
        // SA1+SA2 per flit: arbitration is a small term either way.
        let arb = self.arbitration_j(self.geo.sa1_arbiter_size())
            + self.arbitration_j(self.geo.sa2_arbiter_size())
            + (self.arbitration_j(self.geo.va1_arbiter_size())
                + self.arbitration_j(self.geo.va2_arbiter_size()))
                / 5.0;
        FlitEnergyBreakdown {
            buffer_j: self.buffer_write_j() + self.buffer_read_j(),
            xbar_j: self.xbar_traversal_j(),
            arbitration_j: arb,
            control_j: self.control_j(),
            link_j: self.link_traversal_j(),
        }
    }
}

/// Energy of one flit-hop split by component (paper Fig. 9).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FlitEnergyBreakdown {
    /// Buffer write + read energy, J.
    pub buffer_j: f64,
    /// Crossbar traversal energy, J.
    pub xbar_j: f64,
    /// Allocator arbitration energy, J.
    pub arbitration_j: f64,
    /// Clock/control overhead, J.
    pub control_j: f64,
    /// Link traversal energy, J.
    pub link_j: f64,
}

impl FlitEnergyBreakdown {
    /// Total energy per flit-hop, J.
    pub fn total_j(&self) -> f64 {
        self.buffer_j + self.xbar_j + self.arbitration_j + self.control_j + self.link_j
    }

    /// Router-only energy (total minus link), J — the denominator of the
    /// "buffers are 31 % of router power" statistic.
    pub fn router_j(&self) -> f64 {
        self.total_j() - self.link_j
    }

    /// Energy on the separable modules (buffer + crossbar + link), the
    /// part layer shutdown can gate.
    pub fn separable_j(&self) -> f64 {
        self.buffer_j + self.xbar_j + self.link_j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breakdown(arch: PaperArch) -> FlitEnergyBreakdown {
        EnergyModel::for_arch(arch).flit_hop_breakdown()
    }

    /// Calibration: buffers draw ≈31 % of the 2DB *router* dynamic energy
    /// (paper §3.2.1, citing Wang et al. [5]).
    #[test]
    fn calibration_buffer_share_of_router() {
        let b = breakdown(PaperArch::TwoDB);
        let share = b.buffer_j / b.router_j();
        assert!((share - 0.31).abs() < 0.03, "buffer share {share:.3}");
    }

    /// Calibration: the 3DM flit energy is ≈65 % of 2DB (paper §3.4.2:
    /// "We observe a 35 % reduction in energy for the 3DM case over
    /// 2DB").
    #[test]
    fn calibration_3dm_energy_reduction() {
        let r = breakdown(PaperArch::ThreeDM).total_j() / breakdown(PaperArch::TwoDB).total_j();
        assert!((r - 0.65).abs() < 0.05, "3DM/2DB = {r:.3}");
    }

    /// Fig. 9: 3DB router energy exceeds 2DB's (more ports), and its
    /// total with a horizontal link is the highest of all four.
    #[test]
    fn fig9_3db_is_most_expensive() {
        let b2 = breakdown(PaperArch::TwoDB);
        let b3b = breakdown(PaperArch::ThreeDB);
        assert!(b3b.router_j() > b2.router_j());
        assert!(b3b.total_j() > b2.total_j());
        for arch in [PaperArch::TwoDB, PaperArch::ThreeDM, PaperArch::ThreeDME] {
            assert!(b3b.total_j() >= breakdown(arch).total_j(), "{arch}");
        }
    }

    /// Fig. 9: the biggest 3DM saving comes from the link, then the
    /// crossbar (paper §3.4.2).
    #[test]
    fn fig9_link_is_biggest_3dm_saving() {
        let b2 = breakdown(PaperArch::TwoDB);
        let b3m = breakdown(PaperArch::ThreeDM);
        let link_saving = b2.link_j - b3m.link_j;
        let xbar_saving = b2.xbar_j - b3m.xbar_j;
        let buffer_saving = b2.buffer_j - b3m.buffer_j;
        assert!(link_saving > xbar_saving, "link {link_saving:e} vs xbar {xbar_saving:e}");
        assert!(xbar_saving > buffer_saving);
    }

    /// The 3DM-E router sits between 3DM and 3DB: bigger radix than 3DM,
    /// but still sliced across layers.
    #[test]
    fn threedme_router_between_3dm_and_3db() {
        let m = breakdown(PaperArch::ThreeDM).router_j();
        let me = breakdown(PaperArch::ThreeDME).router_j();
        let b = breakdown(PaperArch::ThreeDB).router_j();
        assert!(m < me && me < b, "{m:e} {me:e} {b:e}");
    }

    /// Link energy scales linearly with length; 3DM's 1.58 mm link costs
    /// about half of 2DB's 3.1 mm link.
    #[test]
    fn link_energy_linear_in_length() {
        let e2 = EnergyModel::for_arch(PaperArch::TwoDB);
        let e3 = EnergyModel::for_arch(PaperArch::ThreeDM);
        assert!((e2.link_j_per_mm() - e3.link_j_per_mm()).abs() < 1e-18);
        let ratio = e3.link_traversal_j() / e2.link_traversal_j();
        assert!((ratio - 1.58 / 3.1).abs() < 1e-9);
    }

    /// Crossbar energy ordering follows side length: 3DM < 3DM-E < 2DB <
    /// 3DB.
    #[test]
    fn xbar_energy_ordering() {
        let e = |a| EnergyModel::for_arch(a).xbar_traversal_j();
        assert!(e(PaperArch::ThreeDM) < e(PaperArch::ThreeDME));
        assert!(e(PaperArch::ThreeDME) < e(PaperArch::TwoDB));
        assert!(e(PaperArch::TwoDB) < e(PaperArch::ThreeDB));
    }

    /// Arbitration energy grows with arbiter size but stays a small
    /// fraction of the total (Orion: ~1-2 %).
    #[test]
    fn arbitration_is_minor() {
        let b = breakdown(PaperArch::ThreeDME);
        assert!(b.arbitration_j / b.total_j() < 0.02);
        let e = EnergyModel::for_arch(PaperArch::ThreeDME);
        assert!(e.arbitration_j(18) > e.arbitration_j(10));
    }

    /// Separable fraction: most of the 2DB flit energy (~75-85 %) sits on
    /// the buffer/crossbar/link — that is what makes layer shutdown
    /// worthwhile (Fig. 13(b)).
    #[test]
    fn separable_fraction_dominates() {
        let b = breakdown(PaperArch::TwoDB);
        let f = b.separable_j() / b.total_j();
        assert!(f > 0.70 && f < 0.90, "separable fraction {f:.3}");
    }
}
