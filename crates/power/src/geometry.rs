//! Router geometry descriptors for the four paper architectures.
//!
//! The power/area/delay models are parametric in the router geometry:
//! port count `P`, virtual channels `V`, flit width `W`, datapath layer
//! count `L`, buffer depth `k`, and the physical link lengths. This
//! module provides the parametric [`RouterGeometry`] plus [`PaperArch`],
//! an enum naming the four architectures the paper evaluates with their
//! exact parameters (paper §3, §4.1.1, Table 2).

use serde::{Deserialize, Serialize};

/// Parametric router geometry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RouterGeometry {
    /// Physical channels per router, including the local port (`P`).
    pub ports: usize,
    /// Virtual channels per physical channel (`V`).
    pub vcs: usize,
    /// Flit width in bits (`W`).
    pub flit_bits: usize,
    /// Stacked datapath layers (`L`; 1 for planar).
    pub layers: usize,
    /// Buffer depth in flits per VC (`k`).
    pub buffer_depth: usize,
    /// Inter-router link length, mm (regular channels).
    pub link_mm: f64,
    /// Express channel length, mm (0.0 when the topology has none).
    pub express_link_mm: f64,
}

impl RouterGeometry {
    /// Crossbar side length per layer in µm: `P·W·pitch / L`
    /// (paper Fig. 5: the per-layer crossbar of the multi-layered design
    /// is `(P·W/L) × (P·W/L)` wire tracks).
    pub fn xbar_side_um(&self, bit_pitch_um: f64) -> f64 {
        self.ports as f64 * self.flit_bits as f64 * bit_pitch_um / self.layers as f64
    }

    /// Total buffer storage in bits across the router (`P·V·k·W`).
    pub fn buffer_bits(&self) -> usize {
        self.ports * self.vcs * self.buffer_depth * self.flit_bits
    }

    /// Size of a VA stage-1 arbiter (`V:1`).
    pub fn va1_arbiter_size(&self) -> usize {
        self.vcs
    }

    /// Size of a VA stage-2 arbiter (`PV:1`).
    pub fn va2_arbiter_size(&self) -> usize {
        self.ports * self.vcs
    }

    /// Size of an SA stage-1 arbiter (`V:1`).
    pub fn sa1_arbiter_size(&self) -> usize {
        self.vcs
    }

    /// Size of an SA stage-2 arbiter (`P:1`).
    pub fn sa2_arbiter_size(&self) -> usize {
        self.ports
    }
}

/// The four router architectures of the paper (plus their `(NC)` pipeline
/// ablations, which share geometry with their parents).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PaperArch {
    /// Baseline 2D router on a 6×6 mesh: P=5, monolithic datapath,
    /// 3.1 mm links.
    TwoDB,
    /// Naïve 3D router on a 3×3×4 mesh: P=7 (up/down ports), monolithic
    /// datapath, 3.1 mm horizontal links, TSV verticals.
    ThreeDB,
    /// Multi-layered router on a 6×6 mesh: P=5, datapath sliced over 4
    /// layers, 1.58 mm links.
    ThreeDM,
    /// Multi-layered router with express channels: P=9, 4 layers, 1.58 mm
    /// regular and 3.16 mm express links.
    ThreeDME,
}

impl PaperArch {
    /// All four architectures in the paper's presentation order.
    pub const ALL: [PaperArch; 4] =
        [PaperArch::TwoDB, PaperArch::ThreeDB, PaperArch::ThreeDM, PaperArch::ThreeDME];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            PaperArch::TwoDB => "2DB",
            PaperArch::ThreeDB => "3DB",
            PaperArch::ThreeDM => "3DM",
            PaperArch::ThreeDME => "3DM-E",
        }
    }

    /// Router geometry with the paper's parameters (W=128, V=2, k=4).
    pub fn geometry(self) -> RouterGeometry {
        let base = RouterGeometry {
            ports: 5,
            vcs: 2,
            flit_bits: 128,
            layers: 1,
            buffer_depth: 4,
            link_mm: 3.1,
            express_link_mm: 0.0,
        };
        match self {
            PaperArch::TwoDB => base,
            PaperArch::ThreeDB => RouterGeometry { ports: 7, ..base },
            PaperArch::ThreeDM => RouterGeometry { layers: 4, link_mm: 1.58, ..base },
            PaperArch::ThreeDME => {
                RouterGeometry { ports: 9, layers: 4, link_mm: 1.58, express_link_mm: 3.16, ..base }
            }
        }
    }

    /// Whether the architecture's wires are short enough to merge ST and
    /// LT (decided by the delay model; recorded here for convenience).
    pub fn is_multilayer(self) -> bool {
        matches!(self, PaperArch::ThreeDM | PaperArch::ThreeDME)
    }
}

impl std::fmt::Display for PaperArch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometries() {
        let g2 = PaperArch::TwoDB.geometry();
        assert_eq!((g2.ports, g2.layers), (5, 1));
        assert!((g2.link_mm - 3.1).abs() < 1e-12);

        let g3b = PaperArch::ThreeDB.geometry();
        assert_eq!((g3b.ports, g3b.layers), (7, 1));

        let g3m = PaperArch::ThreeDM.geometry();
        assert_eq!((g3m.ports, g3m.layers), (5, 4));
        assert!((g3m.link_mm - 1.58).abs() < 1e-12);

        let g3me = PaperArch::ThreeDME.geometry();
        assert_eq!((g3me.ports, g3me.layers), (9, 4));
        assert!((g3me.express_link_mm - 3.16).abs() < 1e-12);
    }

    #[test]
    fn xbar_side_lengths_match_fig5() {
        // 2DB: 5·128·0.75 = 480 µm; 3DM: 480/4 = 120; 3DB: 7·128·0.75 =
        // 672; 3DM-E: 9·128·0.75/4 = 216.
        assert!((PaperArch::TwoDB.geometry().xbar_side_um(0.75) - 480.0).abs() < 1e-9);
        assert!((PaperArch::ThreeDM.geometry().xbar_side_um(0.75) - 120.0).abs() < 1e-9);
        assert!((PaperArch::ThreeDB.geometry().xbar_side_um(0.75) - 672.0).abs() < 1e-9);
        assert!((PaperArch::ThreeDME.geometry().xbar_side_um(0.75) - 216.0).abs() < 1e-9);
    }

    #[test]
    fn arbiter_sizes_match_paper() {
        // Paper §3.2.5: VA2 arbiters are 10:1 for 3DM vs 14:1 for 3DB.
        assert_eq!(PaperArch::ThreeDM.geometry().va2_arbiter_size(), 10);
        assert_eq!(PaperArch::ThreeDB.geometry().va2_arbiter_size(), 14);
        assert_eq!(PaperArch::ThreeDME.geometry().va2_arbiter_size(), 18);
    }

    #[test]
    fn buffer_bits() {
        // 2DB: 5 ports · 2 VCs · 4 flits · 128 bits = 5120 bits.
        assert_eq!(PaperArch::TwoDB.geometry().buffer_bits(), 5120);
    }

    #[test]
    fn names_and_display() {
        assert_eq!(PaperArch::ThreeDME.to_string(), "3DM-E");
        assert_eq!(PaperArch::ALL.len(), 4);
    }
}
