//! Temperature-dependent leakage power.
//!
//! The paper flags increased leakage as one of the costs of 3D stacking
//! ("the increased temperature in 3D chips has negative impacts on …
//! leakage power", §2.2) but evaluates dynamic power only. This module
//! extends the reproduction with an Orion-2-style leakage estimate:
//! leakage scales with silicon area and grows exponentially with
//! temperature (subthreshold leakage roughly doubles every ~25 K at
//! 90 nm).
//!
//! Combined with the thermal solver this closes the loop:
//! dynamic power → temperature → leakage → total power → temperature …
//! — see `mira::experiments::thermal::co_simulate`.

use serde::{Deserialize, Serialize};

use crate::area::AreaModel;
use crate::geometry::PaperArch;

/// Leakage model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeakageModel {
    /// Leakage power density at the reference temperature, W/µm².
    pub density_w_per_um2: f64,
    /// Reference temperature, K.
    pub reference_k: f64,
    /// Temperature increase that doubles the leakage, K.
    pub doubling_k: f64,
}

impl LeakageModel {
    /// 90 nm defaults: ≈50 nW/µm² of active logic/SRAM at 345 K
    /// (a 0.43 mm² router leaks ≈22 mW), doubling every 25 K.
    pub const NM90: LeakageModel =
        LeakageModel { density_w_per_um2: 50e-9, reference_k: 345.0, doubling_k: 25.0 };

    /// Leakage power of `area_um2` of silicon at temperature `temp_k`.
    ///
    /// # Panics
    ///
    /// Panics if the temperature is not positive.
    pub fn power_w(&self, area_um2: f64, temp_k: f64) -> f64 {
        assert!(temp_k > 0.0, "temperature must be positive");
        let exponent = (temp_k - self.reference_k) / self.doubling_k;
        self.density_w_per_um2 * area_um2 * 2f64.powf(exponent)
    }

    /// Leakage of one router of the given architecture at `temp_k`
    /// (counting all layers' silicon).
    pub fn router_power_w(&self, arch: PaperArch, temp_k: f64) -> f64 {
        let areas = AreaModel::default().paper_areas(arch);
        let layers = arch.geometry().layers as f64;
        // Per-layer crossbar/buffer figures were divided by L; leakage
        // cares about total silicon, so undo the division for the
        // separable components and VA2's (L−1)-way spread.
        let total = if arch.geometry().layers > 1 {
            areas.rc
                + areas.sa1
                + areas.sa2
                + areas.va1
                + areas.va2 * (layers - 1.0)
                + (areas.crossbar + areas.buffer) * layers
        } else {
            areas.total()
        };
        self.power_w(total, temp_k)
    }

    /// Leakage of the whole 36-router network at a uniform temperature.
    pub fn network_power_w(&self, arch: PaperArch, temp_k: f64, routers: usize) -> f64 {
        self.router_power_w(arch, temp_k) * routers as f64
    }
}

impl Default for LeakageModel {
    fn default() -> Self {
        LeakageModel::NM90
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubles_per_doubling_interval() {
        let m = LeakageModel::NM90;
        let p0 = m.power_w(1_000.0, 345.0);
        let p1 = m.power_w(1_000.0, 370.0);
        assert!((p1 / p0 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn reference_density() {
        let m = LeakageModel::NM90;
        // 1 mm² at reference temperature: 50 mW.
        assert!((m.power_w(1e6, 345.0) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn router_leakage_magnitudes() {
        let m = LeakageModel::NM90;
        let p2db = m.router_power_w(PaperArch::TwoDB, 345.0);
        // 433 628 µm² → ≈21.7 mW.
        assert!((p2db - 0.0217).abs() < 0.001, "{p2db}");
        // The 3DM router has less total silicon than 2DB (260 829 µm²).
        let p3dm = m.router_power_w(PaperArch::ThreeDM, 345.0);
        assert!(p3dm < p2db);
        assert!((p3dm - 0.0130).abs() < 0.001, "{p3dm}");
        // 3DB has the most silicon, hence the most leakage.
        let p3db = m.router_power_w(PaperArch::ThreeDB, 345.0);
        assert!(p3db > p2db);
    }

    #[test]
    fn network_scales_with_router_count() {
        let m = LeakageModel::NM90;
        let one = m.router_power_w(PaperArch::ThreeDM, 350.0);
        assert!((m.network_power_w(PaperArch::ThreeDM, 350.0, 36) - 36.0 * one).abs() < 1e-12);
    }

    #[test]
    fn leakage_ordering_matches_silicon_area() {
        // Total silicon: 3DM (260 829) < 2DB (433 628) < 3DM-E (639 063)
        // < 3DB (760 414) µm² — the 9-port express router pays for its
        // radix in leakage even though its *footprint* per layer is
        // small.
        let m = LeakageModel::NM90;
        let at = |a| m.router_power_w(a, 350.0);
        assert!(at(PaperArch::ThreeDM) < at(PaperArch::TwoDB));
        assert!(at(PaperArch::TwoDB) < at(PaperArch::ThreeDME));
        assert!(at(PaperArch::ThreeDME) < at(PaperArch::ThreeDB));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_temperature_panics() {
        let _ = LeakageModel::NM90.power_w(1.0, 0.0);
    }
}
