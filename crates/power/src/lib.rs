#![warn(missing_docs)]
//! # mira-power — Orion-style power, area, and delay models
//!
//! This crate ports the modelling side of the MIRA evaluation
//! (Park et al., ISCA 2008):
//!
//! * **[`energy`]** — Orion-style analytical dynamic-energy models for the
//!   router components (register-file buffer, matrix crossbar, matrix
//!   arbiters, repeated links) at 90 nm, calibrated so the published
//!   relations hold: input buffers draw ≈31 % of router dynamic power
//!   (paper §3.2.1, citing Wang et al.), and the 3DM router consumes
//!   ≈65 % of the 2DB energy per flit (paper §3.4.2 / Fig. 9).
//! * **[`area`]** — the component area model behind the paper's Table 1,
//!   including the exact crossbar/buffer scaling laws (the table's
//!   crossbar areas are reproduced *exactly* by `(P·W·pitch / L)²`).
//! * **[`delay`]** — the wire/crossbar delay model of Tables 2–3 and the
//!   ST+LT pipeline-combining feasibility rule (≤ 500 ps at 2 GHz).
//! * **[`network_power`]** — converts the simulator's activity counters
//!   into average network power and energy breakdowns.
//! * **[`shutdown`]** — analytic expectations for the short-flit layer
//!   shutdown savings (paper Fig. 13(b)).
//!
//! All energies are in joules, powers in watts, areas in µm², delays in
//! picoseconds, lengths in millimetres unless a name says otherwise.

pub mod area;
pub mod delay;
pub mod energy;
pub mod geometry;
pub mod leakage;
pub mod network_power;
pub mod shutdown;
pub mod tech;

pub use area::{AreaModel, ComponentAreas};
pub use delay::DelayModel;
pub use energy::{EnergyModel, FlitEnergyBreakdown};
pub use geometry::{PaperArch, RouterGeometry};
pub use leakage::LeakageModel;
pub use network_power::{NetworkPower, PowerBreakdown};
pub use tech::TechParams;
