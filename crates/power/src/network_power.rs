//! Converting simulator activity into network power (paper Fig. 12).
//!
//! The paper feeds Orion's per-event energies into the cycle-accurate
//! simulator to estimate overall power. We do the same in reverse order:
//! the simulator counts events ([`ActivityCounters`]), this module prices
//! them with the [`EnergyModel`] and divides by wall-clock time. Events
//! on the separable datapath arrive already weighted by the active-layer
//! fraction, so short-flit shutdown is priced automatically.

use serde::{Deserialize, Serialize};

use mira_noc::stats::ActivityCounters;

use crate::energy::EnergyModel;

/// Network energy/power split by component over a measurement interval.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PowerBreakdown {
    /// Buffer write+read energy, J.
    pub buffer_j: f64,
    /// Crossbar energy, J.
    pub xbar_j: f64,
    /// Arbitration energy (VA + SA stages), J.
    pub arbitration_j: f64,
    /// Control/clock overhead energy, J.
    pub control_j: f64,
    /// Link energy, J.
    pub link_j: f64,
    /// Interval length in cycles.
    pub cycles: u64,
}

impl PowerBreakdown {
    /// Total energy over the interval, J.
    pub fn total_j(&self) -> f64 {
        self.buffer_j + self.xbar_j + self.arbitration_j + self.control_j + self.link_j
    }
}

/// Prices activity counters into power.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkPower {
    model: EnergyModel,
}

impl NetworkPower {
    /// Creates the pricing engine for a router energy model.
    pub fn new(model: EnergyModel) -> Self {
        NetworkPower { model }
    }

    /// The underlying energy model.
    pub fn model(&self) -> &EnergyModel {
        &self.model
    }

    /// Prices an activity interval into a component energy breakdown.
    pub fn breakdown(&self, counters: &ActivityCounters) -> PowerBreakdown {
        let m = &self.model;
        let geo = m.geometry();
        PowerBreakdown {
            buffer_j: counters.buffer_writes * m.buffer_write_j()
                + counters.buffer_reads * m.buffer_read_j(),
            xbar_j: counters.xbar_traversals * m.xbar_traversal_j(),
            arbitration_j: counters.va1_arbitrations as f64
                * m.arbitration_j(geo.va1_arbiter_size())
                + counters.va2_arbitrations as f64 * m.arbitration_j(geo.va2_arbiter_size())
                + counters.sa1_arbitrations as f64 * m.arbitration_j(geo.sa1_arbiter_size())
                + counters.sa2_arbitrations as f64 * m.arbitration_j(geo.sa2_arbiter_size()),
            // Control overhead: per flit per router traversal (gated
            // neither by shutdown nor by radix).
            control_j: counters.xbar_traversals_raw as f64 * m.control_j(),
            link_j: counters.link_flit_mm * m.link_j_per_mm(),
            cycles: counters.cycles,
        }
    }

    /// Average network power over the interval, W.
    pub fn average_power_w(&self, counters: &ActivityCounters) -> f64 {
        let b = self.breakdown(counters);
        if b.cycles == 0 {
            return 0.0;
        }
        b.total_j() / (b.cycles as f64 * self.model.tech().clock_period_s())
    }

    /// Power–delay product, W·cycles (the paper's Fig. 12(d) normalises
    /// it, so the unit cancels).
    pub fn power_delay_product(&self, counters: &ActivityCounters, avg_latency_cycles: f64) -> f64 {
        self.average_power_w(counters) * avg_latency_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::PaperArch;

    fn sample_counters(weight: f64) -> ActivityCounters {
        let mut c = ActivityCounters::new();
        c.cycles = 1_000;
        for _ in 0..100 {
            c.record_buffer_write(weight);
            c.record_buffer_read(weight);
            c.record_xbar(weight);
            c.record_link(3.1, weight);
        }
        c.sa1_arbitrations = 100;
        c.sa2_arbitrations = 100;
        c.va1_arbitrations = 20;
        c.va2_arbitrations = 20;
        c
    }

    #[test]
    fn power_is_positive_and_scales_with_activity() {
        let np = NetworkPower::new(EnergyModel::for_arch(PaperArch::TwoDB));
        let p1 = np.average_power_w(&sample_counters(1.0));
        assert!(p1 > 0.0);

        let mut double = sample_counters(1.0);
        let more = sample_counters(1.0);
        double.buffer_writes += more.buffer_writes;
        double.buffer_reads += more.buffer_reads;
        double.xbar_traversals += more.xbar_traversals;
        double.xbar_traversals_raw += more.xbar_traversals_raw;
        double.link_flit_mm += more.link_flit_mm;
        let p2 = np.average_power_w(&double);
        assert!(p2 > p1 * 1.5, "{p2} vs {p1}");
    }

    #[test]
    fn layer_weighting_reduces_separable_power_only() {
        let np = NetworkPower::new(EnergyModel::for_arch(PaperArch::ThreeDM));
        let full = np.breakdown(&sample_counters(1.0));
        let gated = np.breakdown(&sample_counters(0.25));
        assert!((gated.buffer_j - full.buffer_j * 0.25).abs() < 1e-18);
        assert!((gated.xbar_j - full.xbar_j * 0.25).abs() < 1e-18);
        assert!((gated.link_j - full.link_j * 0.25).abs() < 1e-18);
        // Non-separable parts unchanged.
        assert!((gated.control_j - full.control_j).abs() < 1e-18);
        assert!((gated.arbitration_j - full.arbitration_j).abs() < 1e-18);
    }

    #[test]
    fn zero_cycles_is_zero_power() {
        let np = NetworkPower::new(EnergyModel::for_arch(PaperArch::TwoDB));
        let c = ActivityCounters::new();
        assert_eq!(np.average_power_w(&c), 0.0);
    }

    #[test]
    fn pdp_multiplies_power_and_latency() {
        let np = NetworkPower::new(EnergyModel::for_arch(PaperArch::TwoDB));
        let c = sample_counters(1.0);
        let p = np.average_power_w(&c);
        assert!((np.power_delay_product(&c, 20.0) - p * 20.0).abs() < 1e-15);
    }
}

impl NetworkPower {
    /// Relative power weights per router from the simulator's spatial
    /// activity (sums to 1; uniform when the network was idle). Feeds
    /// the thermal floorplan so hot routers heat their own tile.
    pub fn router_power_weights(&self, per_router: &[mira_noc::stats::RouterActivity]) -> Vec<f64> {
        let m = &self.model;
        mira_noc::stats::activity_weights(
            per_router,
            (m.buffer_write_j(), m.xbar_traversal_j(), m.control_j(), m.link_j_per_mm()),
        )
    }
}

#[cfg(test)]
mod weight_tests {
    use super::*;
    use crate::geometry::PaperArch;
    use mira_noc::stats::RouterActivity;

    #[test]
    fn busier_router_gets_more_weight() {
        let np = NetworkPower::new(EnergyModel::for_arch(PaperArch::ThreeDM));
        let a = RouterActivity { xbar_events: 10.0, xbar_events_raw: 10, ..Default::default() };
        let b = RouterActivity { xbar_events: 30.0, xbar_events_raw: 30, ..Default::default() };
        let w = np.router_power_weights(&[a, b]);
        assert!((w[0] + w[1] - 1.0).abs() < 1e-12);
        assert!((w[1] / w[0] - 3.0).abs() < 1e-9);
    }
}
