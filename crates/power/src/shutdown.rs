//! Analytic model of the short-flit layer-shutdown savings
//! (paper §3.2.1 and Fig. 13(b)).
//!
//! A short flit keeps only the top layer of the separable datapath
//! (buffer, crossbar, link) active, i.e. a fraction `1/L` of those
//! modules. With a fraction `s` of short flits, the expected network
//! dynamic power scales by
//!
//! ```text
//! scale = 1 − s · (1 − 1/L) · f_sep
//! ```
//!
//! where `f_sep` is the separable share of the flit energy. The paper
//! reports ≈36 % savings at `s = 0.5` for the L=4 designs; with our
//! calibrated energy split (`f_sep ≈ 0.8` for 2DB) the formula gives
//! 0.5·0.75·0.8 = 30 %, and slightly more for 3DM whose separable share
//! is higher in the simulator because control re-arbitration is load
//! dependent. The simulator measures the real number; this module
//! provides the closed form used for cross-checks and for Fig. 13(b)'s
//! expected bars.

use crate::energy::EnergyModel;
use crate::geometry::PaperArch;

/// Expected power-scale factor under layer shutdown for a short-flit
/// fraction `short_fraction` on an `L`-layer datapath with separable
/// energy share `separable_share`.
///
/// # Panics
///
/// Panics if `short_fraction` or `separable_share` is outside `[0, 1]`.
pub fn shutdown_scale(short_fraction: f64, layers: usize, separable_share: f64) -> f64 {
    assert!((0.0..=1.0).contains(&short_fraction), "short fraction in [0,1]");
    assert!((0.0..=1.0).contains(&separable_share), "separable share in [0,1]");
    let gated = 1.0 - 1.0 / layers.max(1) as f64;
    1.0 - short_fraction * gated * separable_share
}

/// Expected power saving (1 − scale) for one of the paper's
/// architectures, using its calibrated energy breakdown.
pub fn expected_saving(arch: PaperArch, short_fraction: f64) -> f64 {
    let b = EnergyModel::for_arch(arch).flit_hop_breakdown();
    let sep = b.separable_j() / b.total_j();
    let layers = arch.geometry().layers.max(4); // 2DB gates at word granularity too
    1.0 - shutdown_scale(short_fraction, layers, sep)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_short_flits_no_saving() {
        assert!((shutdown_scale(0.0, 4, 0.8) - 1.0).abs() < 1e-12);
        assert_eq!(expected_saving(PaperArch::ThreeDM, 0.0), 0.0);
    }

    #[test]
    fn saving_monotone_in_short_fraction() {
        let s25 = expected_saving(PaperArch::ThreeDM, 0.25);
        let s50 = expected_saving(PaperArch::ThreeDM, 0.50);
        assert!(s25 > 0.0);
        assert!(s50 > s25);
        assert!((s50 - 2.0 * s25).abs() < 1e-12, "linear in fraction");
    }

    /// Paper Fig. 13(b): ≈36 % saving at 50 % short flits — our closed
    /// form lands in the 25–40 % band for all shutdown-capable designs.
    #[test]
    fn fifty_percent_short_saves_about_a_third() {
        for arch in [PaperArch::TwoDB, PaperArch::ThreeDM, PaperArch::ThreeDME] {
            let s = expected_saving(arch, 0.5);
            assert!((0.25..=0.40).contains(&s), "{arch}: {s:.3}");
        }
    }

    #[test]
    fn single_layer_without_word_gating_saves_nothing() {
        assert!((shutdown_scale(0.5, 1, 0.8) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "short fraction")]
    fn invalid_fraction_panics() {
        let _ = shutdown_scale(1.5, 4, 0.8);
    }
}
