//! 90 nm technology parameters for the energy models.
//!
//! The MIRA evaluation synthesised the routers in a TSMC 90 nm standard
//! cell library and used Orion for the datapath energies. We expose the
//! technology as a plain parameter struct so other nodes can be modelled;
//! the default instance, [`TECH_90NM`], carries *effective* capacitances
//! calibrated against the relations the paper publishes (see the
//! crate-level docs and `energy::tests::calibration_*`). Effective here
//! means each constant lumps everything activity-proportional for its
//! component — e.g. the buffer access capacitance folds in word-line
//! drivers, pre-charge and sense energy the way Orion's register-file
//! model does.

use serde::{Deserialize, Serialize};

/// Technology and circuit parameters used by the energy/area/delay
/// models.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TechParams {
    /// Supply voltage in volts.
    pub vdd_v: f64,
    /// Router clock in GHz (the paper runs everything at 2 GHz).
    pub clock_ghz: f64,
    /// Average switching-activity factor applied to datapath bits.
    pub activity: f64,
    /// Global wire capacitance, fF/µm, including repeater loading
    /// (links and crossbar lines).
    pub wire_cap_ff_per_um: f64,
    /// Drain capacitance of one tri-state crosspoint on a crossbar line,
    /// fF.
    pub xbar_drain_cap_ff: f64,
    /// Storage-cell access capacitance per bit, fF (register-file cell).
    pub buffer_cell_cap_ff: f64,
    /// Bit-line capacitance per buffer slot per bit, fF.
    pub buffer_bitline_cap_ff_per_slot: f64,
    /// Word-line (driver + gate) capacitance per bit, fF.
    pub buffer_wordline_cap_ff_per_bit: f64,
    /// Matrix-arbiter gate capacitance coefficient: an `n:1` arbiter
    /// switches ≈ `n² · this` fF per arbitration.
    pub arbiter_cap_ff_per_req2: f64,
    /// Router control overhead per flit per hop (clock tree, pipeline
    /// registers, FSMs), expressed as fF per bit of flit width.
    /// Calibrated; not gated by layer shutdown.
    pub control_cap_ff_per_bit: f64,
    /// Crossbar wire pitch per datapath bit, µm. The value 0.75 µm
    /// reproduces the paper's Table 1 crossbar areas exactly:
    /// `(P·W·0.75)² = 230 400 µm²` for P=5, W=128.
    pub bit_pitch_um: f64,
    /// Register-file buffer area per stored bit, µm². The value 31.83
    /// reproduces Table 1's buffer areas: `5·2·4·128·31.83 ≈ 162 973`.
    pub buffer_area_um2_per_bit: f64,
}

/// The calibrated 90 nm instance used throughout the reproduction.
pub const TECH_90NM: TechParams = TechParams {
    vdd_v: 1.0,
    clock_ghz: 2.0,
    activity: 0.5,
    wire_cap_ff_per_um: 0.30,
    xbar_drain_cap_ff: 2.0,
    buffer_cell_cap_ff: 20.0,
    buffer_bitline_cap_ff_per_slot: 30.0,
    buffer_wordline_cap_ff_per_bit: 14.5,
    arbiter_cap_ff_per_req2: 1.5,
    control_cap_ff_per_bit: 375.0,
    bit_pitch_um: 0.75,
    buffer_area_um2_per_bit: 31.83,
};

impl TechParams {
    /// Dynamic energy in joules for switching `cap_ff` femtofarads once at
    /// the supply voltage with the configured activity factor.
    #[inline]
    pub fn dynamic_energy_j(&self, cap_ff: f64) -> f64 {
        self.activity * cap_ff * 1e-15 * self.vdd_v * self.vdd_v
    }

    /// Clock period in picoseconds.
    #[inline]
    pub fn clock_period_ps(&self) -> f64 {
        1_000.0 / self.clock_ghz
    }

    /// Clock period in seconds.
    #[inline]
    pub fn clock_period_s(&self) -> f64 {
        1e-9 / self.clock_ghz
    }
}

impl Default for TechParams {
    fn default() -> Self {
        TECH_90NM
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_period_matches_2ghz() {
        assert!((TECH_90NM.clock_period_ps() - 500.0).abs() < 1e-9);
        assert!((TECH_90NM.clock_period_s() - 0.5e-9).abs() < 1e-21);
    }

    #[test]
    fn dynamic_energy_formula() {
        // 1000 fF at 1 V, α=0.5 → 0.5 pJ.
        let e = TECH_90NM.dynamic_energy_j(1000.0);
        assert!((e - 0.5e-12).abs() < 1e-18);
    }

    #[test]
    fn default_is_90nm() {
        assert_eq!(TechParams::default(), TECH_90NM);
    }
}
