//! Property tests on the power/area/delay models: monotonicity and
//! positivity over the geometry space.

use proptest::prelude::*;

use mira_power::area::AreaModel;
use mira_power::delay::DelayModel;
use mira_power::energy::EnergyModel;
use mira_power::geometry::RouterGeometry;
use mira_power::shutdown::shutdown_scale;
use mira_power::tech::TechParams;

fn geometry_strategy() -> impl Strategy<Value = RouterGeometry> {
    (3usize..12, 1usize..5, 1usize..5, 1usize..9, 0.5f64..5.0).prop_map(
        |(ports, vcs, layers, depth, link)| RouterGeometry {
            ports,
            vcs,
            flit_bits: 128,
            layers,
            buffer_depth: depth,
            link_mm: link,
            express_link_mm: 0.0,
        },
    )
}

proptest! {
    /// Every energy figure is strictly positive.
    #[test]
    fn energies_positive(geo in geometry_strategy()) {
        let m = EnergyModel::new(geo, TechParams::default());
        let b = m.flit_hop_breakdown();
        prop_assert!(b.buffer_j > 0.0);
        prop_assert!(b.xbar_j > 0.0);
        prop_assert!(b.arbitration_j > 0.0);
        prop_assert!(b.link_j > 0.0);
        prop_assert!(b.total_j() > b.separable_j());
    }

    /// More ports never shrink the crossbar energy or area; more layers
    /// never grow the per-layer figures.
    #[test]
    fn xbar_monotone_in_ports_and_layers(geo in geometry_strategy()) {
        let t = TechParams::default();
        let m1 = EnergyModel::new(geo, t);
        let bigger = RouterGeometry { ports: geo.ports + 1, ..geo };
        let m2 = EnergyModel::new(bigger, t);
        prop_assert!(m2.xbar_traversal_j() > m1.xbar_traversal_j());

        let sliced = RouterGeometry { layers: geo.layers * 2, ..geo };
        let m3 = EnergyModel::new(sliced, t);
        prop_assert!(m3.xbar_traversal_j() < m1.xbar_traversal_j());

        let area = AreaModel::default();
        prop_assert!(area.crossbar_per_layer_um2(&bigger) > area.crossbar_per_layer_um2(&geo));
        prop_assert!(area.crossbar_per_layer_um2(&sliced) < area.crossbar_per_layer_um2(&geo));
    }

    /// Link energy and delay are linear in length.
    #[test]
    fn link_linear(geo in geometry_strategy(), k in 1.1f64..4.0) {
        let t = TechParams::default();
        let m = EnergyModel::new(geo, t);
        let longer = RouterGeometry { link_mm: geo.link_mm * k, ..geo };
        let m2 = EnergyModel::new(longer, t);
        prop_assert!((m2.link_traversal_j() - k * m.link_traversal_j()).abs()
            < m.link_traversal_j() * 1e-9);

        let d = DelayModel::default();
        prop_assert!((d.link_delay_ps(geo.link_mm * k) - k * d.link_delay_ps(geo.link_mm)).abs() < 1e-6);
    }

    /// The shutdown scale factor is a proper fraction, decreasing in the
    /// short-flit share.
    #[test]
    fn shutdown_scale_bounds(s in 0.0f64..1.0, layers in 1usize..8, sep in 0.0f64..1.0) {
        let scale = shutdown_scale(s, layers, sep);
        prop_assert!((0.0..=1.0).contains(&scale));
        if s > 0.01 && layers > 1 && sep > 0.01 {
            prop_assert!(scale < 1.0);
            let scale2 = shutdown_scale((s * 0.5).min(1.0), layers, sep);
            prop_assert!(scale2 >= scale);
        }
    }

    /// Buffer energy grows with depth (longer bit-lines).
    #[test]
    fn buffer_energy_monotone_in_depth(geo in geometry_strategy()) {
        let t = TechParams::default();
        let deeper = RouterGeometry { buffer_depth: geo.buffer_depth + 2, ..geo };
        prop_assert!(
            EnergyModel::new(deeper, t).buffer_write_j()
                > EnergyModel::new(geo, t).buffer_write_j()
        );
    }

    /// Pipeline combining feasibility is monotone: shrinking every wire
    /// can only keep it feasible.
    #[test]
    fn combining_monotone(geo in geometry_strategy()) {
        let d = DelayModel::default();
        if d.can_combine_st_lt(d.stage_delays(&geo)) {
            let smaller = RouterGeometry {
                link_mm: geo.link_mm * 0.5,
                layers: geo.layers * 2,
                ..geo
            };
            prop_assert!(d.can_combine_st_lt(d.stage_delays(&smaller)));
        }
    }
}
