#![warn(missing_docs)]
//! # mira-thermal — a HotSpot-style steady-state thermal model
//!
//! The MIRA paper uses HotSpot 4.0 to study how short-flit layer
//! shutdown lowers chip temperature (paper §4.2.3, Fig. 13(c)). This
//! crate rebuilds the part of HotSpot that analysis needs: a
//! steady-state RC thermal network over a stack of active silicon
//! layers, with
//!
//! * per-layer rectangular grids of cells (one per floorplan block),
//! * lateral conduction between neighbouring cells in a layer,
//! * vertical conduction through the die and the inter-layer bond,
//! * a heat-spreader/heat-sink path from the top layer to ambient.
//!
//! Temperatures come from solving `G · T = P` (conductance matrix ×
//! temperatures = power injection) with Gauss–Seidel iteration — the
//! same formulation HotSpot uses for its steady-state grid mode.
//!
//! The crate is deliberately independent of the NoC simulator: it takes
//! a power map (W per cell per layer) and returns temperatures (K). The
//! MIRA facade wires router/CPU/cache powers into the map.
//!
//! ## Example
//!
//! ```
//! use mira_thermal::{ChipModel, StackConfig};
//!
//! // A single-layer 2×2 chip, one hot cell.
//! let mut chip = ChipModel::new(StackConfig::planar(2, 2, 0.004, 0.004));
//! chip.set_cell_power(0, 0, 0, 10.0);
//! let t = chip.solve();
//! assert!(t.max_k() > t.ambient_k());
//! ```

pub mod material;
pub mod solver;
pub mod stack;
pub mod transient;

pub use material::{Material, AMBIENT_K};
pub use solver::{SolveOptions, Temperatures};
pub use stack::{ChipModel, StackConfig};
pub use transient::TransientSim;
