//! Material properties and package constants.
//!
//! Values follow HotSpot 4.0's defaults for a silicon die, a bonded 3D
//! stack, and a copper spreader/sink package; the ambient is HotSpot's
//! 45 °C.

use serde::{Deserialize, Serialize};

/// Ambient temperature, K (HotSpot default: 45 °C).
pub const AMBIENT_K: f64 = 318.15;

/// A thermally conductive material.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Material {
    /// Thermal conductivity, W/(m·K).
    pub conductivity_w_mk: f64,
}

impl Material {
    /// Bulk silicon (HotSpot: 100 W/(m·K) at operating temperature).
    pub const SILICON: Material = Material { conductivity_w_mk: 100.0 };

    /// Inter-layer bond / back-end-of-line dielectric for a 3D stack
    /// (face-to-back bonding with TSVs; effective conductivity dominated
    /// by the oxide/underfill).
    pub const BOND: Material = Material { conductivity_w_mk: 4.0 };

    /// Copper (spreader and sink base).
    pub const COPPER: Material = Material { conductivity_w_mk: 400.0 };

    /// Thermal interface material under the sink.
    pub const TIM: Material = Material { conductivity_w_mk: 4.0 };

    /// Conduction resistance of a slab of this material, K/W:
    /// `t / (k · A)`.
    ///
    /// # Panics
    ///
    /// Panics if the area is not positive.
    pub fn slab_resistance_k_per_w(&self, thickness_m: f64, area_m2: f64) -> f64 {
        assert!(area_m2 > 0.0, "area must be positive");
        thickness_m / (self.conductivity_w_mk * area_m2)
    }
}

/// Package thicknesses (metres), HotSpot-like defaults.
pub mod thickness {
    /// Active silicon die (thinned for stacking).
    pub const DIE_M: f64 = 150e-6;
    /// Inter-layer bond in a 3D stack.
    pub const BOND_M: f64 = 20e-6;
    /// Thermal interface material under the sink.
    pub const TIM_M: f64 = 50e-6;
}

/// Convection resistance of the heat sink to ambient, K/W (lumped;
/// HotSpot 4.0's default package).
pub const SINK_CONVECTION_K_PER_W: f64 = 0.5;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slab_resistance() {
        // 150 µm silicon over 1 cm²: 150e-6 / (100 · 1e-4) = 0.015 K/W.
        let r = Material::SILICON.slab_resistance_k_per_w(150e-6, 1e-4);
        assert!((r - 0.015).abs() < 1e-12);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn conductivity_ordering() {
        assert!(Material::COPPER.conductivity_w_mk > Material::SILICON.conductivity_w_mk);
        assert!(Material::SILICON.conductivity_w_mk > Material::BOND.conductivity_w_mk);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_area_panics() {
        let _ = Material::SILICON.slab_resistance_k_per_w(1e-4, 0.0);
    }
}
