//! Steady-state solver for the thermal conductance network.
//!
//! Solves `G · T = P` where `G` is the (symmetric, diagonally dominant)
//! conductance Laplacian plus the convection term at the sink node, by
//! Gauss–Seidel iteration with successive over-relaxation. The network
//! sizes here (a few hundred nodes) converge in well under a millisecond.

use serde::{Deserialize, Serialize};

/// Iteration controls.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SolveOptions {
    /// Maximum Gauss–Seidel sweeps.
    pub max_iterations: usize,
    /// Convergence threshold on the max temperature update per sweep, K.
    pub tolerance_k: f64,
    /// Over-relaxation factor (1.0 = plain Gauss–Seidel).
    pub relaxation: f64,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions { max_iterations: 50_000, tolerance_k: 1e-9, relaxation: 1.5 }
    }
}

/// Steady-state temperature field.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Temperatures {
    cells_k: Vec<f64>,
    sink_k: f64,
    ambient_k: f64,
    layers: usize,
    rows: usize,
    cols: usize,
    /// Sweeps used to converge.
    pub iterations: usize,
    /// Final max update, K.
    pub residual_k: f64,
}

impl Temperatures {
    /// Temperature of one cell, K.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn cell_k(&self, layer: usize, row: usize, col: usize) -> f64 {
        assert!(layer < self.layers && row < self.rows && col < self.cols, "cell out of range");
        self.cells_k[(layer * self.rows + row) * self.cols + col]
    }

    /// Hottest cell, K.
    pub fn max_k(&self) -> f64 {
        self.cells_k.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Coolest cell, K.
    pub fn min_k(&self) -> f64 {
        self.cells_k.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Mean cell temperature, K.
    pub fn mean_k(&self) -> f64 {
        self.cells_k.iter().sum::<f64>() / self.cells_k.len() as f64
    }

    /// Lumped sink-node temperature, K.
    pub fn sink_k(&self) -> f64 {
        self.sink_k
    }

    /// Ambient temperature used in the solve, K.
    pub fn ambient_k(&self) -> f64 {
        self.ambient_k
    }

    /// All cell temperatures in layer-major order.
    pub fn cells(&self) -> &[f64] {
        &self.cells_k
    }
}

/// Solves the network.
///
/// * `adj[i]` — list of `(neighbour, conductance)` for node `i`;
/// * `power_w[i]` — heat injected at node `i`;
/// * `sink` — index of the sink node, which additionally couples to
///   ambient with conductance `sink_g_amb`;
/// * `ambient_k` — the fixed ambient temperature.
pub(crate) fn solve_steady_state(
    adj: &[Vec<(usize, f64)>],
    power_w: &[f64],
    sink: usize,
    sink_g_amb: f64,
    ambient_k: f64,
    opts: SolveOptions,
) -> Temperatures {
    let n = adj.len();
    assert_eq!(power_w.len(), n, "power map must cover every node");
    let mut t = vec![ambient_k; n];

    let mut iterations = 0;
    let mut residual = f64::INFINITY;
    while iterations < opts.max_iterations && residual > opts.tolerance_k {
        residual = 0.0;
        for i in 0..n {
            let mut g_sum = 0.0;
            let mut flow_in = power_w[i];
            for &(j, g) in &adj[i] {
                g_sum += g;
                flow_in += g * t[j];
            }
            if i == sink {
                g_sum += sink_g_amb;
                flow_in += sink_g_amb * ambient_k;
            }
            if g_sum == 0.0 {
                continue;
            }
            let new_t = flow_in / g_sum;
            let relaxed = t[i] + opts.relaxation * (new_t - t[i]);
            residual = residual.max((relaxed - t[i]).abs());
            t[i] = relaxed;
        }
        iterations += 1;
    }

    let sink_k = t[sink];
    t.truncate(n - 1);
    // The caller (ChipModel) guarantees layer-major cell ordering; the
    // geometry is threaded through for the accessors.
    Temperatures {
        cells_k: t,
        sink_k,
        ambient_k,
        layers: 0, // patched by attach_geometry
        rows: 0,
        cols: 0,
        iterations,
        residual_k: residual,
    }
}

impl Temperatures {
    /// Attaches the grid geometry for the `cell_k` accessor (internal,
    /// called by `ChipModel`).
    pub(crate) fn with_geometry(mut self, layers: usize, rows: usize, cols: usize) -> Self {
        assert_eq!(self.cells_k.len(), layers * rows * cols, "geometry mismatch");
        self.layers = layers;
        self.rows = rows;
        self.cols = cols;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two nodes: cell → sink → ambient. Analytic solution:
    /// T_sink = amb + P·R_amb; T_cell = T_sink + P·R_link.
    #[test]
    fn two_node_analytic() {
        let adj = vec![vec![(1usize, 2.0)], vec![(0usize, 2.0)]];
        let power = vec![10.0, 0.0];
        let t = solve_steady_state(&adj, &power, 1, 4.0, 300.0, SolveOptions::default())
            .with_geometry(1, 1, 1);
        // Sink: 300 + 10/4 = 302.5; cell: 302.5 + 10/2 = 307.5.
        assert!((t.sink_k() - 302.5).abs() < 1e-6);
        assert!((t.cell_k(0, 0, 0) - 307.5).abs() < 1e-6, "{}", t.cell_k(0, 0, 0));
    }

    /// A chain of three nodes conserves flow through each link.
    #[test]
    fn chain_conserves_flow() {
        // cell0 -(g=1)- cell1 -(g=1)- sink -(g=2)- ambient
        let adj =
            vec![vec![(1usize, 1.0)], vec![(0usize, 1.0), (2usize, 1.0)], vec![(1usize, 1.0)]];
        let power = vec![4.0, 0.0, 0.0];
        let t = solve_steady_state(&adj, &power, 2, 2.0, 300.0, SolveOptions::default())
            .with_geometry(1, 1, 2);
        // Sink: 300 + 4/2 = 302; cell1: 302 + 4 = 306; cell0: 306 + 4 = 310.
        assert!((t.sink_k() - 302.0).abs() < 1e-6);
        assert!((t.cell_k(0, 0, 1) - 306.0).abs() < 1e-6);
        assert!((t.cell_k(0, 0, 0) - 310.0).abs() < 1e-6);
    }

    #[test]
    fn sor_converges_faster_than_gs() {
        let adj =
            vec![vec![(1usize, 1.0)], vec![(0usize, 1.0), (2usize, 1.0)], vec![(1usize, 1.0)]];
        let power = vec![4.0, 0.0, 0.0];
        let gs = solve_steady_state(
            &adj,
            &power,
            2,
            2.0,
            300.0,
            SolveOptions { relaxation: 1.0, ..SolveOptions::default() },
        );
        let sor = solve_steady_state(&adj, &power, 2, 2.0, 300.0, SolveOptions::default());
        assert!(sor.iterations <= gs.iterations);
    }

    #[test]
    fn reports_convergence_metadata() {
        let adj = vec![vec![(1usize, 1.0)], vec![(0usize, 1.0)]];
        let power = vec![1.0, 0.0];
        let t = solve_steady_state(&adj, &power, 1, 1.0, 300.0, SolveOptions::default());
        assert!(t.iterations > 0);
        assert!(t.residual_k <= 1e-9);
    }
}
