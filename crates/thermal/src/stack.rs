//! Chip stack geometry and the thermal conductance network.
//!
//! A [`ChipModel`] is a stack of `L` active layers, each a `rows × cols`
//! grid of cells. Layer 0 is the **top** layer (closest to the heat
//! sink), matching the paper's convention of placing hot modules near
//! the sink. Heat flows:
//!
//! * laterally between 4-neighbour cells within a layer,
//! * vertically between stacked cells through die + bond,
//! * from every top-layer cell through TIM + spreader into a single
//!   lumped sink node, which convects to ambient.

use crate::material::{thickness, Material, AMBIENT_K, SINK_CONVECTION_K_PER_W};
use crate::solver::{solve_steady_state, SolveOptions, Temperatures};

/// Geometry of the stack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StackConfig {
    /// Number of active layers (1 = planar chip).
    pub layers: usize,
    /// Grid rows per layer.
    pub rows: usize,
    /// Grid columns per layer.
    pub cols: usize,
    /// Cell width, metres.
    pub cell_w_m: f64,
    /// Cell height, metres.
    pub cell_h_m: f64,
    /// Die thickness, metres.
    pub die_thickness_m: f64,
    /// Inter-layer bond thickness, metres.
    pub bond_thickness_m: f64,
    /// Lumped sink convection resistance to ambient, K/W.
    pub sink_resistance_k_per_w: f64,
    /// Ambient temperature, K.
    pub ambient_k: f64,
}

impl StackConfig {
    /// A planar (single-layer) chip with square-ish cells of the given
    /// size.
    pub fn planar(rows: usize, cols: usize, cell_w_m: f64, cell_h_m: f64) -> Self {
        Self::stacked(1, rows, cols, cell_w_m, cell_h_m)
    }

    /// A 3D stack of `layers` active layers.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or a size is not positive.
    pub fn stacked(layers: usize, rows: usize, cols: usize, cell_w_m: f64, cell_h_m: f64) -> Self {
        assert!(layers > 0 && rows > 0 && cols > 0, "dimensions must be positive");
        assert!(cell_w_m > 0.0 && cell_h_m > 0.0, "cell size must be positive");
        StackConfig {
            layers,
            rows,
            cols,
            cell_w_m,
            cell_h_m,
            die_thickness_m: thickness::DIE_M,
            bond_thickness_m: thickness::BOND_M,
            sink_resistance_k_per_w: SINK_CONVECTION_K_PER_W,
            ambient_k: AMBIENT_K,
        }
    }

    /// Cells per layer.
    pub fn cells_per_layer(&self) -> usize {
        self.rows * self.cols
    }

    /// Total unknowns: all cells plus the lumped sink node.
    pub fn nodes(&self) -> usize {
        self.layers * self.cells_per_layer() + 1
    }

    /// Cell area, m².
    pub fn cell_area_m2(&self) -> f64 {
        self.cell_w_m * self.cell_h_m
    }
}

/// The assembled thermal model: geometry plus a power map.
#[derive(Debug, Clone)]
pub struct ChipModel {
    cfg: StackConfig,
    /// Power per node (cells, then the sink at the end), W.
    power_w: Vec<f64>,
}

impl ChipModel {
    /// Creates a model with an all-zero power map.
    pub fn new(cfg: StackConfig) -> Self {
        let n = cfg.nodes();
        ChipModel { cfg, power_w: vec![0.0; n] }
    }

    /// The stack configuration.
    pub fn config(&self) -> &StackConfig {
        &self.cfg
    }

    fn cell_index(&self, layer: usize, row: usize, col: usize) -> usize {
        assert!(layer < self.cfg.layers, "layer {layer} out of range");
        assert!(row < self.cfg.rows && col < self.cfg.cols, "cell ({row},{col}) out of range");
        (layer * self.cfg.rows + row) * self.cfg.cols + col
    }

    /// Sets the power dissipated in one cell, W.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range or the power is negative.
    pub fn set_cell_power(&mut self, layer: usize, row: usize, col: usize, watts: f64) {
        assert!(watts >= 0.0, "power must be non-negative");
        let i = self.cell_index(layer, row, col);
        self.power_w[i] = watts;
    }

    /// Adds power to one cell, W.
    pub fn add_cell_power(&mut self, layer: usize, row: usize, col: usize, watts: f64) {
        assert!(watts >= 0.0, "power must be non-negative");
        let i = self.cell_index(layer, row, col);
        self.power_w[i] += watts;
    }

    /// Total dissipated power, W.
    pub fn total_power_w(&self) -> f64 {
        self.power_w.iter().sum()
    }

    /// The power map (cells in layer-major order, then the sink).
    pub(crate) fn power_map(&self) -> &[f64] {
        &self.power_w
    }

    /// Clears the power map.
    pub fn reset_power(&mut self) {
        self.power_w.fill(0.0);
    }

    /// Builds the sparse conductance adjacency: for each node, a list of
    /// `(neighbour, conductance_w_per_k)`.
    pub(crate) fn conductances(&self) -> Vec<Vec<(usize, f64)>> {
        let cfg = &self.cfg;
        let n = cfg.nodes();
        let sink = n - 1;
        let area = cfg.cell_area_m2();
        let mut adj: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];

        let mut connect = |a: usize, b: usize, g: f64| {
            adj[a].push((b, g));
            adj[b].push((a, g));
        };

        // Lateral conduction: silicon slab between adjacent cell centres.
        // Cross-section = die thickness × shared edge; length = pitch.
        for layer in 0..cfg.layers {
            for r in 0..cfg.rows {
                for c in 0..cfg.cols {
                    let i = (layer * cfg.rows + r) * cfg.cols + c;
                    if c + 1 < cfg.cols {
                        let j = i + 1;
                        let g = Material::SILICON.conductivity_w_mk
                            * (cfg.die_thickness_m * cfg.cell_h_m)
                            / cfg.cell_w_m;
                        connect(i, j, g);
                    }
                    if r + 1 < cfg.rows {
                        let j = i + cfg.cols;
                        let g = Material::SILICON.conductivity_w_mk
                            * (cfg.die_thickness_m * cfg.cell_w_m)
                            / cfg.cell_h_m;
                        connect(i, j, g);
                    }
                }
            }
        }

        // Vertical conduction between stacked cells: half a die on each
        // side plus the bond layer, in series.
        for layer in 0..cfg.layers.saturating_sub(1) {
            for cell in 0..cfg.cells_per_layer() {
                let i = layer * cfg.cells_per_layer() + cell;
                let j = (layer + 1) * cfg.cells_per_layer() + cell;
                let r = Material::SILICON.slab_resistance_k_per_w(cfg.die_thickness_m, area)
                    + Material::BOND.slab_resistance_k_per_w(cfg.bond_thickness_m, area);
                connect(i, j, 1.0 / r);
            }
        }

        // Top layer → sink: TIM plus a share of the spreader, lumped as
        // TIM resistance per cell; the sink node then convects to
        // ambient (handled in the solver via `sink_g_amb`).
        for cell in 0..cfg.cells_per_layer() {
            let r_tim = Material::TIM.slab_resistance_k_per_w(thickness::TIM_M, area);
            connect(cell, sink, 1.0 / r_tim);
        }

        adj
    }

    /// Solves for steady-state temperatures with default solver options.
    pub fn solve(&self) -> Temperatures {
        self.solve_with(SolveOptions::default())
    }

    /// Solves with explicit solver options.
    pub fn solve_with(&self, opts: SolveOptions) -> Temperatures {
        let adj = self.conductances();
        let sink = self.cfg.nodes() - 1;
        solve_steady_state(
            &adj,
            &self.power_w,
            sink,
            1.0 / self.cfg.sink_resistance_k_per_w,
            self.cfg.ambient_k,
            opts,
        )
        .with_geometry(self.cfg.layers, self.cfg.rows, self.cfg.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_power_is_ambient_everywhere() {
        let chip = ChipModel::new(StackConfig::planar(3, 3, 0.003, 0.003));
        let t = chip.solve();
        assert!((t.max_k() - AMBIENT_K).abs() < 1e-6);
        assert!((t.min_k() - AMBIENT_K).abs() < 1e-6);
    }

    #[test]
    fn uniform_power_heats_by_sink_drop() {
        // All heat must cross the lumped sink resistance: the sink node
        // sits at ambient + P·R; cells are hotter still.
        let mut chip = ChipModel::new(StackConfig::planar(2, 2, 0.003, 0.003));
        for r in 0..2 {
            for c in 0..2 {
                chip.set_cell_power(0, r, c, 5.0);
            }
        }
        let t = chip.solve();
        let sink_rise = 20.0 * SINK_CONVECTION_K_PER_W;
        assert!(t.sink_k() > AMBIENT_K + sink_rise - 0.01);
        assert!(t.min_k() > t.sink_k());
    }

    #[test]
    fn hotspot_is_at_the_hot_cell() {
        let mut chip = ChipModel::new(StackConfig::planar(3, 3, 0.003, 0.003));
        chip.set_cell_power(0, 1, 1, 10.0);
        let t = chip.solve();
        let centre = t.cell_k(0, 1, 1);
        for r in 0..3 {
            for c in 0..3 {
                assert!(centre >= t.cell_k(0, r, c), "centre must be hottest");
            }
        }
    }

    #[test]
    fn deeper_layers_run_hotter_for_same_power() {
        // Two-layer stack, same power in layer 0 vs layer 1 cell: the
        // bottom layer (further from the sink) ends hotter.
        let cfg = StackConfig::stacked(2, 2, 2, 0.003, 0.003);
        let mut top = ChipModel::new(cfg);
        top.set_cell_power(0, 0, 0, 10.0);
        let mut bottom = ChipModel::new(cfg);
        bottom.set_cell_power(1, 0, 0, 10.0);
        assert!(bottom.solve().max_k() > top.solve().max_k());
    }

    #[test]
    fn power_scaling_is_linear() {
        // Linear RC network: doubling power doubles the rise.
        let mk = |p: f64| {
            let mut chip = ChipModel::new(StackConfig::planar(2, 2, 0.003, 0.003));
            chip.set_cell_power(0, 0, 0, p);
            chip.solve().max_k() - AMBIENT_K
        };
        let rise1 = mk(5.0);
        let rise2 = mk(10.0);
        assert!((rise2 - 2.0 * rise1).abs() < 1e-3, "{rise1} vs {rise2}");
    }

    #[test]
    fn energy_conservation_at_sink() {
        // Total heat flow to ambient equals total power:
        // (T_sink − T_amb)/R_sink = P.
        let mut chip = ChipModel::new(StackConfig::stacked(4, 3, 3, 0.0016, 0.0016));
        for l in 0..4 {
            chip.set_cell_power(l, 1, 1, 2.0);
        }
        let t = chip.solve();
        let flow = (t.sink_k() - AMBIENT_K) / SINK_CONVECTION_K_PER_W;
        assert!((flow - 8.0).abs() < 0.01, "flow {flow} vs 8 W");
    }

    #[test]
    fn add_and_reset_power() {
        let mut chip = ChipModel::new(StackConfig::planar(2, 2, 0.003, 0.003));
        chip.add_cell_power(0, 0, 0, 1.0);
        chip.add_cell_power(0, 0, 0, 2.0);
        assert!((chip.total_power_w() - 3.0).abs() < 1e-12);
        chip.reset_power();
        assert_eq!(chip.total_power_w(), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_cell_panics() {
        let mut chip = ChipModel::new(StackConfig::planar(2, 2, 0.003, 0.003));
        chip.set_cell_power(0, 2, 0, 1.0);
    }
}
