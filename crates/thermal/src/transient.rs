//! Transient thermal simulation (HotSpot's time-domain mode).
//!
//! Adds heat capacities to the RC network and integrates
//! `C·dT/dt = P − G·T` with backward Euler, which is unconditionally
//! stable — each step solves `(G + C/Δt)·T₁ = P + (C/Δt)·T₀` with the
//! same Gauss–Seidel sweep the steady-state solver uses. As `t → ∞`
//! under constant power the trajectory converges to the steady-state
//! solution (asserted by tests).

use crate::solver::SolveOptions;
use crate::stack::ChipModel;

/// Volumetric heat capacity of silicon, J/(m³·K).
pub const SILICON_CV_J_PER_M3K: f64 = 1.75e6;

/// Lumped heat capacity of the spreader + sink, J/K (a modest copper
/// sink; larger sinks slow the global time constant).
pub const SINK_CAPACITY_J_PER_K: f64 = 40.0;

/// A time-stepping thermal simulation over a chip model.
///
/// ```
/// use mira_thermal::{ChipModel, StackConfig, TransientSim};
///
/// let mut chip = ChipModel::new(StackConfig::planar(2, 2, 0.003, 0.003));
/// chip.set_cell_power(0, 0, 0, 5.0);
/// let mut sim = TransientSim::new(chip, 1e-3);
/// let before = sim.mean_k();
/// sim.run(100);
/// assert!(sim.mean_k() > before, "constant power heats the chip");
/// ```
#[derive(Debug, Clone)]
pub struct TransientSim {
    chip: ChipModel,
    /// Temperatures of every node (cells then sink), K.
    state: Vec<f64>,
    /// Heat capacity per node, J/K.
    capacity: Vec<f64>,
    dt_s: f64,
    time_s: f64,
    opts: SolveOptions,
}

impl TransientSim {
    /// Creates a simulation starting at ambient with time step `dt_s`.
    ///
    /// # Panics
    ///
    /// Panics if the time step is not positive.
    pub fn new(chip: ChipModel, dt_s: f64) -> Self {
        assert!(dt_s > 0.0, "time step must be positive");
        let cfg = *chip.config();
        let n = cfg.nodes();
        let cell_volume = cfg.cell_area_m2() * cfg.die_thickness_m;
        let mut capacity = vec![SILICON_CV_J_PER_M3K * cell_volume; n];
        capacity[n - 1] = SINK_CAPACITY_J_PER_K;
        TransientSim {
            state: vec![cfg.ambient_k; n],
            capacity,
            chip,
            dt_s,
            time_s: 0.0,
            opts: SolveOptions::default(),
        }
    }

    /// Mutable access to the chip (to change the power map between
    /// steps).
    pub fn chip_mut(&mut self) -> &mut ChipModel {
        &mut self.chip
    }

    /// The chip under simulation.
    pub fn chip(&self) -> &ChipModel {
        &self.chip
    }

    /// Simulated time so far, seconds.
    pub fn time_s(&self) -> f64 {
        self.time_s
    }

    /// Temperature of a cell right now, K.
    pub fn cell_k(&self, layer: usize, row: usize, col: usize) -> f64 {
        let cfg = self.chip.config();
        assert!(layer < cfg.layers && row < cfg.rows && col < cfg.cols, "cell out of range");
        self.state[(layer * cfg.rows + row) * cfg.cols + col]
    }

    /// Mean cell temperature right now, K.
    pub fn mean_k(&self) -> f64 {
        let cells = self.state.len() - 1;
        self.state[..cells].iter().sum::<f64>() / cells as f64
    }

    /// Hottest cell right now, K.
    pub fn max_k(&self) -> f64 {
        let cells = self.state.len() - 1;
        self.state[..cells].iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Advances one backward-Euler step with the chip's current power
    /// map and returns the new mean temperature.
    pub fn step(&mut self) -> f64 {
        let cfg = *self.chip.config();
        let adj = self.chip.conductances();
        let power = self.chip.power_map().to_vec();
        let sink = cfg.nodes() - 1;
        let sink_g = 1.0 / cfg.sink_resistance_k_per_w;
        let old = self.state.clone();

        let mut residual = f64::INFINITY;
        let mut iters = 0;
        while residual > self.opts.tolerance_k && iters < self.opts.max_iterations {
            residual = 0.0;
            for i in 0..self.state.len() {
                let c_dt = self.capacity[i] / self.dt_s;
                let mut g_sum = c_dt;
                let mut flow = power[i] + c_dt * old[i];
                for &(j, g) in &adj[i] {
                    g_sum += g;
                    flow += g * self.state[j];
                }
                if i == sink {
                    g_sum += sink_g;
                    flow += sink_g * cfg.ambient_k;
                }
                let new_t = flow / g_sum;
                residual = residual.max((new_t - self.state[i]).abs());
                self.state[i] = new_t;
            }
            iters += 1;
        }
        self.time_s += self.dt_s;
        self.mean_k()
    }

    /// Runs `steps` steps and returns the mean-temperature trace.
    pub fn run(&mut self, steps: usize) -> Vec<f64> {
        (0..steps).map(|_| self.step()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::material::AMBIENT_K;
    use crate::stack::{ChipModel, StackConfig};

    fn hot_chip() -> ChipModel {
        let mut chip = ChipModel::new(StackConfig::planar(2, 2, 0.003, 0.003));
        chip.set_cell_power(0, 0, 0, 10.0);
        chip
    }

    #[test]
    fn starts_at_ambient() {
        let sim = TransientSim::new(hot_chip(), 1e-3);
        assert!((sim.mean_k() - AMBIENT_K).abs() < 1e-12);
        assert_eq!(sim.time_s(), 0.0);
    }

    #[test]
    fn heating_is_monotone_under_constant_power() {
        let mut sim = TransientSim::new(hot_chip(), 1e-3);
        let trace = sim.run(50);
        for w in trace.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "cooling under constant power: {w:?}");
        }
        assert!(sim.time_s() > 0.049);
    }

    #[test]
    fn converges_to_steady_state() {
        let chip = hot_chip();
        let steady = chip.solve();
        let mut sim = TransientSim::new(chip, 0.05);
        sim.run(4_000);
        assert!(
            (sim.mean_k() - steady.mean_k()).abs() < 0.05,
            "transient {} vs steady {}",
            sim.mean_k(),
            steady.mean_k()
        );
        assert!((sim.max_k() - steady.max_k()).abs() < 0.05);
    }

    #[test]
    fn never_overshoots_steady_state() {
        let chip = hot_chip();
        let steady = chip.solve();
        let mut sim = TransientSim::new(chip, 1e-2);
        for _ in 0..500 {
            sim.step();
            assert!(sim.max_k() <= steady.max_k() + 1e-6);
        }
    }

    #[test]
    fn cooling_after_power_off() {
        let mut sim = TransientSim::new(hot_chip(), 0.05);
        sim.run(2_000);
        let hot = sim.mean_k();
        sim.chip_mut().reset_power();
        sim.run(2_000);
        assert!(sim.mean_k() < hot - 1.0, "chip must cool after power-off");
        assert!((sim.mean_k() - AMBIENT_K).abs() < 0.5, "…towards ambient");
    }

    #[test]
    fn smaller_steps_track_the_same_trajectory() {
        // Backward Euler is first-order: halving dt should land close to
        // the same temperature at the same simulated time.
        let run = |dt: f64, steps: usize| {
            let mut sim = TransientSim::new(hot_chip(), dt);
            sim.run(steps);
            sim.mean_k()
        };
        let coarse = run(0.02, 50);
        let fine = run(0.01, 100);
        assert!((coarse - fine).abs() < 0.5, "{coarse} vs {fine}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dt_panics() {
        let _ = TransientSim::new(hot_chip(), 0.0);
    }
}
