//! Property tests on the thermal solver: physical invariants over random
//! power maps and stacks.

use proptest::prelude::*;

use mira_thermal::{ChipModel, StackConfig, AMBIENT_K};

fn chip_strategy() -> impl Strategy<Value = (StackConfig, Vec<f64>)> {
    (1usize..4, 2usize..5, 2usize..5).prop_flat_map(|(layers, rows, cols)| {
        let cells = layers * rows * cols;
        (
            Just(StackConfig::stacked(layers, rows, cols, 0.002, 0.002)),
            proptest::collection::vec(0.0f64..5.0, cells),
        )
    })
}

fn build(cfg: StackConfig, powers: &[f64]) -> ChipModel {
    let mut chip = ChipModel::new(cfg);
    let mut i = 0;
    for l in 0..cfg.layers {
        for r in 0..cfg.rows {
            for c in 0..cfg.cols {
                chip.set_cell_power(l, r, c, powers[i]);
                i += 1;
            }
        }
    }
    chip
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// No cell can be cooler than ambient (passive network, positive
    /// sources only).
    #[test]
    fn temperatures_never_below_ambient((cfg, powers) in chip_strategy()) {
        let t = build(cfg, &powers).solve();
        prop_assert!(t.min_k() >= AMBIENT_K - 1e-6);
        prop_assert!(t.sink_k() >= AMBIENT_K - 1e-6);
    }

    /// Energy conservation: the sink-to-ambient flow equals the total
    /// injected power.
    #[test]
    fn sink_flow_equals_total_power((cfg, powers) in chip_strategy()) {
        let chip = build(cfg, &powers);
        let total = chip.total_power_w();
        let t = chip.solve();
        let flow = (t.sink_k() - AMBIENT_K) / cfg.sink_resistance_k_per_w;
        prop_assert!((flow - total).abs() < 1e-3 + total * 1e-3, "{flow} vs {total}");
    }

    /// Linearity: scaling the power map scales every temperature rise.
    #[test]
    fn rises_are_linear_in_power((cfg, powers) in chip_strategy(), k in 1.5f64..4.0) {
        let t1 = build(cfg, &powers).solve();
        let scaled: Vec<f64> = powers.iter().map(|p| p * k).collect();
        let t2 = build(cfg, &scaled).solve();
        for (a, b) in t1.cells().iter().zip(t2.cells()) {
            let r1 = a - AMBIENT_K;
            let r2 = b - AMBIENT_K;
            prop_assert!((r2 - k * r1).abs() < 1e-3 + r1.abs() * 1e-3);
        }
    }

    /// Monotonicity: adding power anywhere cannot cool any cell.
    #[test]
    fn extra_power_never_cools((cfg, powers) in chip_strategy(), extra in 0.5f64..5.0) {
        let t1 = build(cfg, &powers).solve();
        let mut chip = build(cfg, &powers);
        chip.add_cell_power(0, 0, 0, extra);
        let t2 = chip.solve();
        for (a, b) in t1.cells().iter().zip(t2.cells()) {
            prop_assert!(b + 1e-6 >= *a);
        }
    }
}
