#![warn(missing_docs)]
//! # mira-traffic — workloads for the MIRA evaluation
//!
//! Traffic models driving the cycle-accurate simulator (`mira-noc`):
//!
//! * **[`nuca_ur`]** — the paper's NUCA-constrained bimodal traffic
//!   (Fig. 11(b)): CPUs issue single-flit requests to uniformly chosen
//!   cache banks, every request is answered with a five-flit data
//!   response after the bank access latency.
//! * **[`workloads`]** — statistical profiles of the paper's application
//!   traces (TPC-W, SPECjbb, Apache, Zeus, SPEComp, SPLASH-2,
//!   MediaBench). The real Simics traces are not available; the profiles
//!   are calibrated to the distributions the paper publishes (Fig. 1
//!   data patterns, Fig. 2 packet mix, Fig. 13(a) short-flit
//!   percentages) so the downstream experiments see statistically
//!   equivalent traffic. See DESIGN.md §4 for the substitution argument.
//! * **[`patterns`]** — frequent-pattern payload synthesis and the
//!   classifier used to regenerate Fig. 1.
//! * **[`trace`]** — a JSON-lines packet trace format with a recorder and
//!   a replay workload, the interchange between `mira-nuca` and the
//!   simulator.
//! * **[`synthetic`]** — classic permutation workloads (transpose,
//!   bit-complement, hotspot) as extensions beyond the paper.

pub mod nuca_ur;
pub mod patterns;
pub mod synthetic;
pub mod trace;
pub mod workloads;

pub use nuca_ur::NucaBimodal;
pub use patterns::PatternMix;
pub use trace::{TraceRecord, TraceReplay, TraceWriter};
pub use workloads::{AppProfile, Application};
