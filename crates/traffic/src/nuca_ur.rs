//! NUCA-constrained bimodal request/response traffic (paper Fig. 11(b)).
//!
//! In a NUCA CMP the source and destination sets are constrained: CPUs
//! talk only to cache banks and banks only to CPUs. The paper models
//! this with "request-response type bi-modal traffic, where the eight
//! CPU nodes generate requests to the 28 cache nodes with uniform random
//! distribution. Every request is matched with a response."
//!
//! [`NucaBimodal`] implements exactly that: CPUs inject single-flit
//! control requests at a configurable rate towards uniformly chosen
//! banks; when a request ejects at its bank, the bank answers with a
//! five-flit data response after the L2 access latency (4 cycles at
//! 2 GHz, paper Table 4).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use mira_noc::flit::FlitData;
use mira_noc::ids::NodeId;
use mira_noc::packet::{PacketClass, PacketSpec};
use mira_noc::traffic::{EjectedPacket, Workload};

use crate::patterns::PatternMix;

/// Bimodal CPU↔cache request/response workload.
///
/// ```
/// use mira_noc::ids::NodeId;
/// use mira_noc::traffic::Workload;
/// use mira_traffic::nuca_ur::NucaBimodal;
///
/// let cpus = vec![NodeId(0), NodeId(1)];
/// let caches = vec![NodeId(2), NodeId(3)];
/// let mut w = NucaBimodal::new(cpus, caches, 0.5, 42);
/// w.init(4);
/// // Requests flow only from CPUs to caches.
/// for spec in w.generate(0) {
///     assert!(spec.src.index() < 2 && spec.dst.index() >= 2);
/// }
/// ```
#[derive(Debug)]
pub struct NucaBimodal {
    cpus: Vec<NodeId>,
    caches: Vec<NodeId>,
    request_rate_per_cpu: f64,
    bank_latency: u64,
    response_len_flits: usize,
    words_per_flit: usize,
    patterns: PatternMix,
    short_flit_fraction: f64,
    rng: SmallRng,
}

impl NucaBimodal {
    /// Creates the workload.
    ///
    /// * `cpus` / `caches` — the node partition (paper Fig. 10 layouts);
    /// * `request_rate_per_cpu` — request packets per CPU per cycle.
    ///
    /// # Panics
    ///
    /// Panics if either node set is empty or the rate is negative.
    pub fn new(
        cpus: Vec<NodeId>,
        caches: Vec<NodeId>,
        request_rate_per_cpu: f64,
        seed: u64,
    ) -> Self {
        assert!(!cpus.is_empty() && !caches.is_empty(), "node sets must be non-empty");
        assert!(request_rate_per_cpu >= 0.0, "rate must be non-negative");
        NucaBimodal {
            cpus,
            caches,
            request_rate_per_cpu,
            bank_latency: 4,
            response_len_flits: 5,
            words_per_flit: 4,
            patterns: PatternMix::dense(),
            short_flit_fraction: 0.0,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Sets the data-payload pattern mix and short-flit bias of the
    /// responses (defaults: dense, 0 %).
    #[must_use]
    pub fn with_payloads(mut self, patterns: PatternMix, short_flit_fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&short_flit_fraction), "fraction in [0,1]");
        self.patterns = patterns;
        self.short_flit_fraction = short_flit_fraction;
        self
    }

    /// Sets the bank access latency in cycles (default 4, paper Table 4).
    #[must_use]
    pub fn with_bank_latency(mut self, cycles: u64) -> Self {
        self.bank_latency = cycles;
        self
    }

    /// The request rate per CPU per cycle.
    pub fn request_rate(&self) -> f64 {
        self.request_rate_per_cpu
    }

    /// Average offered load in flits/node/cycle over the whole network
    /// (requests + responses).
    pub fn offered_flits_per_node_cycle(&self, num_nodes: usize) -> f64 {
        let pkts_per_cycle = self.request_rate_per_cpu * self.cpus.len() as f64;
        pkts_per_cycle * (1.0 + self.response_len_flits as f64) / num_nodes as f64
    }

    fn response_payload(&mut self) -> Vec<FlitData> {
        (0..self.response_len_flits)
            .map(|_| {
                self.patterns.sample_flit_with_short(
                    self.words_per_flit,
                    self.short_flit_fraction,
                    &mut self.rng,
                )
            })
            .collect()
    }
}

impl Workload for NucaBimodal {
    fn init(&mut self, num_nodes: usize) {
        for n in self.cpus.iter().chain(&self.caches) {
            assert!(n.index() < num_nodes, "node {n} outside the network");
        }
    }

    fn generate(&mut self, _cycle: u64) -> Vec<PacketSpec> {
        let mut specs = Vec::new();
        for i in 0..self.cpus.len() {
            if self.request_rate_per_cpu > 0.0
                && self.rng.gen_bool(self.request_rate_per_cpu.min(1.0))
            {
                let src = self.cpus[i];
                let dst = self.caches[self.rng.gen_range(0..self.caches.len())];
                // Requests are single-flit short control packets.
                specs.push(PacketSpec::control(
                    src,
                    dst,
                    PacketClass::ReadRequest,
                    self.words_per_flit,
                ));
            }
        }
        specs
    }

    fn on_ejected(&mut self, _cycle: u64, packet: &EjectedPacket) -> Vec<(u64, PacketSpec)> {
        if packet.class != PacketClass::ReadRequest {
            return Vec::new();
        }
        // The bank answers after its access latency.
        let payload = self.response_payload();
        vec![(
            self.bank_latency,
            PacketSpec {
                src: packet.dst,
                dst: packet.src,
                class: PacketClass::DataResponse,
                payload,
            },
        )]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mira_noc::config::NetworkConfig;
    use mira_noc::sim::{SimConfig, Simulator};
    use mira_noc::topology::Mesh2D;

    fn mesh_sets() -> (Vec<NodeId>, Vec<NodeId>) {
        // 4x4 mesh: 4 CPUs in the middle, 12 caches around.
        let cpus: Vec<NodeId> = [5, 6, 9, 10].map(NodeId).to_vec();
        let caches: Vec<NodeId> =
            (0..16).filter(|i| ![5, 6, 9, 10].contains(i)).map(NodeId).collect();
        (cpus, caches)
    }

    #[test]
    fn requests_only_from_cpus_to_caches() {
        let (cpus, caches) = mesh_sets();
        let mut w = NucaBimodal::new(cpus.clone(), caches.clone(), 0.5, 1);
        w.init(16);
        for c in 0..500 {
            for s in w.generate(c) {
                assert!(cpus.contains(&s.src));
                assert!(caches.contains(&s.dst));
                assert_eq!(s.class, PacketClass::ReadRequest);
                assert_eq!(s.payload.len(), 1);
            }
        }
    }

    #[test]
    fn each_request_gets_one_response() {
        let (cpus, caches) = mesh_sets();
        let w = NucaBimodal::new(cpus.clone(), caches, 0.05, 42);
        let mut sim = Simulator::new(
            Box::new(Mesh2D::new(4, 4)),
            NetworkConfig::default(),
            SimConfig::short(),
        );
        let report = sim.run(Box::new(w));
        assert!(!report.saturated);
        let reqs = report.per_class.class(PacketClass::ReadRequest).count();
        let resps = report.per_class.class(PacketClass::DataResponse).count();
        assert!(reqs > 0);
        // Responses to window-edge requests may fall outside measurement;
        // allow a small imbalance.
        let ratio = resps as f64 / reqs as f64;
        assert!((0.85..=1.15).contains(&ratio), "req {reqs} resp {resps}");
    }

    #[test]
    fn responses_are_data_class_and_five_flits() {
        let (cpus, caches) = mesh_sets();
        let mut w = NucaBimodal::new(cpus, caches, 0.1, 3);
        w.init(16);
        let eject = EjectedPacket {
            id: mira_noc::packet::PacketId(9),
            src: NodeId(5),
            dst: NodeId(0),
            class: PacketClass::ReadRequest,
            created_at: 0,
            ejected_at: 30,
            hops: 3,
            len_flits: 1,
        };
        let replies = w.on_ejected(30, &eject);
        assert_eq!(replies.len(), 1);
        let (delay, spec) = &replies[0];
        assert_eq!(*delay, 4, "bank latency");
        assert_eq!(spec.class, PacketClass::DataResponse);
        assert_eq!(spec.payload.len(), 5);
        assert_eq!(spec.src, NodeId(0));
        assert_eq!(spec.dst, NodeId(5));
    }

    #[test]
    fn responses_do_not_trigger_more_responses() {
        let (cpus, caches) = mesh_sets();
        let mut w = NucaBimodal::new(cpus, caches, 0.1, 3);
        w.init(16);
        let eject = EjectedPacket {
            id: mira_noc::packet::PacketId(9),
            src: NodeId(0),
            dst: NodeId(5),
            class: PacketClass::DataResponse,
            created_at: 0,
            ejected_at: 30,
            hops: 3,
            len_flits: 5,
        };
        assert!(w.on_ejected(30, &eject).is_empty());
    }

    #[test]
    fn short_flit_bias_shows_in_responses() {
        let (cpus, caches) = mesh_sets();
        let mut w = NucaBimodal::new(cpus, caches, 0.1, 3).with_payloads(PatternMix::dense(), 0.5);
        w.init(16);
        let mut short = 0usize;
        let mut total = 0usize;
        for _ in 0..500 {
            for f in w.response_payload() {
                total += 1;
                if f.is_short() {
                    short += 1;
                }
            }
        }
        let frac = short as f64 / total as f64;
        assert!((frac - 0.5).abs() < 0.05, "short fraction {frac}");
    }

    #[test]
    fn offered_load_formula() {
        let (cpus, caches) = mesh_sets();
        let w = NucaBimodal::new(cpus, caches, 0.1, 3);
        // 4 CPUs × 0.1 pkts × (1 + 5 flits) / 16 nodes = 0.15.
        assert!((w.offered_flits_per_node_cycle(16) - 0.15).abs() < 1e-12);
    }
}
