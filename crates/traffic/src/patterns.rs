//! Frequent-pattern payload synthesis and classification (paper Fig. 1).
//!
//! The paper motivates layer shutdown with the frequent-pattern
//! observation of Alameldeen & Wood: a large share of the words moving
//! through a NUCA network are all-zeros or all-ones. [`PatternMix`]
//! describes a word-pattern distribution; it can *synthesise* payloads
//! with that distribution and *classify* observed payloads back into the
//! Fig. 1 categories.

use rand::Rng;
use serde::{Deserialize, Serialize};

use mira_noc::flit::{FlitData, WordPattern};

/// A distribution over word patterns.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PatternMix {
    /// Fraction of words that are all zeros.
    pub zero_fraction: f64,
    /// Fraction of words that are all ones.
    pub one_fraction: f64,
}

impl PatternMix {
    /// Creates a mix.
    ///
    /// # Panics
    ///
    /// Panics if a fraction is negative or the two sum to more than 1.
    pub fn new(zero_fraction: f64, one_fraction: f64) -> Self {
        assert!(zero_fraction >= 0.0 && one_fraction >= 0.0, "fractions must be non-negative");
        assert!(zero_fraction + one_fraction <= 1.0 + 1e-12, "fractions must sum to at most 1");
        PatternMix { zero_fraction, one_fraction }
    }

    /// All words carry arbitrary (non-redundant) data.
    pub fn dense() -> Self {
        PatternMix::new(0.0, 0.0)
    }

    /// Fraction of words with any redundant pattern.
    pub fn redundant_fraction(&self) -> f64 {
        self.zero_fraction + self.one_fraction
    }

    /// Draws one word.
    pub fn sample_word<R: Rng>(&self, rng: &mut R) -> u32 {
        let x: f64 = rng.gen();
        if x < self.zero_fraction {
            0
        } else if x < self.zero_fraction + self.one_fraction {
            u32::MAX
        } else {
            // Arbitrary non-redundant word; avoid accidentally drawing 0
            // or MAX.
            rng.gen_range(1..u32::MAX)
        }
    }

    /// Synthesises a flit payload of `num_words` i.i.d. words.
    pub fn sample_flit<R: Rng>(&self, num_words: usize, rng: &mut R) -> FlitData {
        FlitData::new((0..num_words).map(|_| self.sample_word(rng)).collect())
    }

    /// Synthesises a *short-flit biased* payload: with probability
    /// `short_prob` the upper words are forced redundant (zero), so the
    /// flit activates only the top layer; otherwise words are drawn
    /// i.i.d. from the mix.
    pub fn sample_flit_with_short<R: Rng>(
        &self,
        num_words: usize,
        short_prob: f64,
        rng: &mut R,
    ) -> FlitData {
        if short_prob > 0.0 && rng.gen_bool(short_prob.min(1.0)) {
            let mut words = vec![0u32; num_words];
            words[0] = rng.gen_range(1..u32::MAX);
            FlitData::new(words)
        } else {
            self.sample_flit(num_words, rng)
        }
    }
}

/// Observed word-pattern frequencies (the Fig. 1 bars).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PatternCounts {
    /// Words that were all zeros.
    pub zeros: u64,
    /// Words that were all ones.
    pub ones: u64,
    /// All other words.
    pub other: u64,
}

impl PatternCounts {
    /// Classifies one payload into the counts.
    pub fn observe(&mut self, data: &FlitData) {
        for p in data.patterns() {
            match p {
                WordPattern::AllZero => self.zeros += 1,
                WordPattern::AllOne => self.ones += 1,
                WordPattern::Other => self.other += 1,
            }
        }
    }

    /// Total words observed.
    pub fn total(&self) -> u64 {
        self.zeros + self.ones + self.other
    }

    /// Fractions `(zero, one, other)`; all zero if nothing observed.
    pub fn fractions(&self) -> (f64, f64, f64) {
        let t = self.total();
        if t == 0 {
            return (0.0, 0.0, 0.0);
        }
        let t = t as f64;
        (self.zeros as f64 / t, self.ones as f64 / t, self.other as f64 / t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn sampled_mix_matches_spec() {
        let mix = PatternMix::new(0.5, 0.1);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = PatternCounts::default();
        for _ in 0..5_000 {
            counts.observe(&mix.sample_flit(4, &mut rng));
        }
        let (z, o, other) = counts.fractions();
        assert!((z - 0.5).abs() < 0.02, "zeros {z}");
        assert!((o - 0.1).abs() < 0.02, "ones {o}");
        assert!((other - 0.4).abs() < 0.02, "other {other}");
    }

    #[test]
    fn dense_mix_has_no_redundancy() {
        let mix = PatternMix::dense();
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = PatternCounts::default();
        for _ in 0..1_000 {
            counts.observe(&mix.sample_flit(4, &mut rng));
        }
        assert_eq!(counts.zeros, 0);
        assert_eq!(counts.ones, 0);
    }

    #[test]
    fn short_bias_produces_short_flits() {
        let mix = PatternMix::new(0.2, 0.05);
        let mut rng = SmallRng::seed_from_u64(11);
        let mut short = 0usize;
        let n = 4_000;
        for _ in 0..n {
            if mix.sample_flit_with_short(4, 0.5, &mut rng).is_short() {
                short += 1;
            }
        }
        // At least the forced 50 % are short; i.i.d. draws add a few more.
        let frac = short as f64 / n as f64;
        assert!((0.48..0.65).contains(&frac), "short fraction {frac}");
    }

    #[test]
    fn empty_counts_fractions_are_zero() {
        assert_eq!(PatternCounts::default().fractions(), (0.0, 0.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "at most 1")]
    fn overfull_mix_panics() {
        let _ = PatternMix::new(0.8, 0.4);
    }
}
