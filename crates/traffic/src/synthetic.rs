//! Classic synthetic permutation workloads (extensions beyond the
//! paper's uniform-random and NUCA-UR traffic).
//!
//! These are the standard adversarial patterns of the NoC literature
//! (Dally & Towles): transpose stresses one diagonal, bit-complement
//! maximises path length, hotspot concentrates load on a few nodes.
//! They are useful for exercising the simulator outside the paper's
//! configurations and for the ablation benches.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use mira_noc::ids::NodeId;
use mira_noc::packet::{PacketClass, PacketSpec};
use mira_noc::traffic::{PayloadProfile, Workload};

/// Destination permutation rule.
#[derive(Debug, Clone, PartialEq)]
pub enum Pattern {
    /// (x, y) → (y, x) on a `side × side` mesh; self-paired nodes stay
    /// silent.
    Transpose {
        /// Mesh side length.
        side: usize,
    },
    /// Node `i` → node `(N-1) - i` (bit complement for power-of-two N).
    BitComplement,
    /// A fraction of traffic targets a fixed hotspot set; the rest is
    /// uniform random.
    Hotspot {
        /// The hot destinations.
        hotspots: Vec<NodeId>,
        /// Probability a packet heads to a hotspot.
        fraction: f64,
    },
}

/// Open-loop permutation traffic at a fixed flit injection rate.
#[derive(Debug)]
pub struct PermutationTraffic {
    pattern: Pattern,
    rate_flits_per_node_cycle: f64,
    len_flits: usize,
    payload: PayloadProfile,
    rng: SmallRng,
    num_nodes: usize,
}

impl PermutationTraffic {
    /// Creates the workload.
    ///
    /// # Panics
    ///
    /// Panics if the rate is negative or the packet length is zero.
    pub fn new(pattern: Pattern, rate: f64, len_flits: usize, seed: u64) -> Self {
        assert!(rate >= 0.0, "rate must be non-negative");
        assert!(len_flits > 0, "packets need at least one flit");
        PermutationTraffic {
            pattern,
            rate_flits_per_node_cycle: rate,
            len_flits,
            payload: PayloadProfile::dense(4),
            rng: SmallRng::seed_from_u64(seed),
            num_nodes: 0,
        }
    }

    /// Replaces the payload profile.
    #[must_use]
    pub fn with_payload(mut self, payload: PayloadProfile) -> Self {
        self.payload = payload;
        self
    }

    fn destination(&mut self, src: usize) -> Option<usize> {
        match &self.pattern {
            Pattern::Transpose { side } => {
                let (x, y) = (src % side, src / side);
                let dst = x * side + y;
                (dst != src).then_some(dst)
            }
            Pattern::BitComplement => {
                let dst = self.num_nodes - 1 - src;
                (dst != src).then_some(dst)
            }
            Pattern::Hotspot { hotspots, fraction } => {
                let dst = if self.rng.gen_bool(*fraction) {
                    hotspots[self.rng.gen_range(0..hotspots.len())].index()
                } else {
                    let mut d = self.rng.gen_range(0..self.num_nodes - 1);
                    if d >= src {
                        d += 1;
                    }
                    d
                };
                (dst != src).then_some(dst)
            }
        }
    }
}

impl Workload for PermutationTraffic {
    fn init(&mut self, num_nodes: usize) {
        if let Pattern::Transpose { side } = &self.pattern {
            assert_eq!(side * side, num_nodes, "transpose needs a square mesh");
        }
        if let Pattern::Hotspot { hotspots, fraction } = &self.pattern {
            assert!(!hotspots.is_empty(), "hotspot set must be non-empty");
            assert!((0.0..=1.0).contains(fraction), "fraction in [0,1]");
            for h in hotspots {
                assert!(h.index() < num_nodes, "hotspot outside network");
            }
        }
        self.num_nodes = num_nodes;
    }

    fn generate(&mut self, _cycle: u64) -> Vec<PacketSpec> {
        let p = (self.rate_flits_per_node_cycle / self.len_flits as f64).min(1.0);
        let mut specs = Vec::new();
        for src in 0..self.num_nodes {
            if p > 0.0 && self.rng.gen_bool(p) {
                if let Some(dst) = self.destination(src) {
                    let payload =
                        (0..self.len_flits).map(|_| self.payload.sample(&mut self.rng)).collect();
                    specs.push(PacketSpec {
                        src: NodeId(src),
                        dst: NodeId(dst),
                        class: PacketClass::DataResponse,
                        payload,
                    });
                }
            }
        }
        specs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transpose_swaps_coordinates() {
        let mut w = PermutationTraffic::new(Pattern::Transpose { side: 4 }, 1.0, 1, 1);
        w.init(16);
        for c in 0..200 {
            for s in w.generate(c) {
                let (sx, sy) = (s.src.index() % 4, s.src.index() / 4);
                assert_eq!(s.dst.index(), sx * 4 + sy);
                assert_ne!(s.src, s.dst, "diagonal nodes stay silent");
            }
        }
    }

    #[test]
    fn bit_complement_pairs_opposites() {
        let mut w = PermutationTraffic::new(Pattern::BitComplement, 1.0, 1, 1);
        w.init(16);
        for c in 0..100 {
            for s in w.generate(c) {
                assert_eq!(s.dst.index(), 15 - s.src.index());
            }
        }
    }

    #[test]
    fn hotspot_concentrates_traffic() {
        let hotspots = vec![NodeId(0)];
        let mut w =
            PermutationTraffic::new(Pattern::Hotspot { hotspots, fraction: 0.5 }, 1.0, 1, 5);
        w.init(16);
        let mut to_hot = 0usize;
        let mut total = 0usize;
        for c in 0..2_000 {
            for s in w.generate(c) {
                total += 1;
                if s.dst == NodeId(0) {
                    to_hot += 1;
                }
            }
        }
        let frac = to_hot as f64 / total as f64;
        assert!(frac > 0.45, "hotspot fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "square mesh")]
    fn transpose_requires_square() {
        let mut w = PermutationTraffic::new(Pattern::Transpose { side: 4 }, 0.1, 1, 1);
        w.init(12);
    }
}

/// Two-state Markov-modulated (on/off bursty) uniform-random traffic —
/// an extension for studying transient thermal and congestion behaviour
/// under realistic burstiness (open-loop UR traffic is memoryless;
/// real NUCA traffic is not).
#[derive(Debug)]
pub struct BurstyUniform {
    /// Injection rate while the source is ON, flits/node/cycle.
    on_rate: f64,
    len_flits: usize,
    /// Probability of switching OFF→ON per cycle.
    p_on: f64,
    /// Probability of switching ON→OFF per cycle.
    p_off: f64,
    payload: PayloadProfile,
    rng: SmallRng,
    num_nodes: usize,
    /// Per-node burst state.
    on: Vec<bool>,
}

impl BurstyUniform {
    /// Creates a bursty source. The long-run duty cycle is
    /// `p_on / (p_on + p_off)`, so the average offered load is
    /// `on_rate × duty`.
    ///
    /// # Panics
    ///
    /// Panics if the rate is negative, the packet length is zero, or a
    /// switching probability is outside `(0, 1]`.
    pub fn new(on_rate: f64, len_flits: usize, p_on: f64, p_off: f64, seed: u64) -> Self {
        assert!(on_rate >= 0.0, "rate must be non-negative");
        assert!(len_flits > 0, "packets need at least one flit");
        assert!(p_on > 0.0 && p_on <= 1.0, "p_on in (0,1]");
        assert!(p_off > 0.0 && p_off <= 1.0, "p_off in (0,1]");
        BurstyUniform {
            on_rate,
            len_flits,
            p_on,
            p_off,
            payload: PayloadProfile::dense(4),
            rng: SmallRng::seed_from_u64(seed),
            num_nodes: 0,
            on: Vec::new(),
        }
    }

    /// Long-run fraction of time a source spends ON.
    pub fn duty_cycle(&self) -> f64 {
        self.p_on / (self.p_on + self.p_off)
    }

    /// Average offered load, flits/node/cycle.
    pub fn average_rate(&self) -> f64 {
        self.on_rate * self.duty_cycle()
    }

    /// Replaces the payload profile.
    #[must_use]
    pub fn with_payload(mut self, payload: PayloadProfile) -> Self {
        self.payload = payload;
        self
    }
}

impl Workload for BurstyUniform {
    fn init(&mut self, num_nodes: usize) {
        assert!(num_nodes > 1, "need at least two nodes");
        self.num_nodes = num_nodes;
        self.on = vec![false; num_nodes];
    }

    fn generate(&mut self, _cycle: u64) -> Vec<PacketSpec> {
        let p = (self.on_rate / self.len_flits as f64).min(1.0);
        let mut specs = Vec::new();
        for src in 0..self.num_nodes {
            // Markov state update.
            let flip = if self.on[src] { self.p_off } else { self.p_on };
            if self.rng.gen_bool(flip) {
                self.on[src] = !self.on[src];
            }
            if self.on[src] && p > 0.0 && self.rng.gen_bool(p) {
                let mut dst = self.rng.gen_range(0..self.num_nodes - 1);
                if dst >= src {
                    dst += 1;
                }
                let payload =
                    (0..self.len_flits).map(|_| self.payload.sample(&mut self.rng)).collect();
                specs.push(PacketSpec {
                    src: NodeId(src),
                    dst: NodeId(dst),
                    class: PacketClass::DataResponse,
                    payload,
                });
            }
        }
        specs
    }
}

#[cfg(test)]
mod bursty_tests {
    use super::*;

    #[test]
    fn average_rate_matches_duty_cycle() {
        let mut w = BurstyUniform::new(0.4, 4, 0.01, 0.03, 9);
        assert!((w.duty_cycle() - 0.25).abs() < 1e-12);
        assert!((w.average_rate() - 0.1).abs() < 1e-12);
        w.init(16);
        let mut flits = 0usize;
        let cycles = 40_000u64;
        for c in 0..cycles {
            for s in w.generate(c) {
                flits += s.payload.len();
            }
        }
        let measured = flits as f64 / (cycles as f64 * 16.0);
        assert!((measured - 0.1).abs() < 0.02, "measured {measured}");
    }

    #[test]
    fn traffic_is_actually_bursty() {
        // Compare the variance of per-window flit counts against a
        // memoryless source at the same average rate: the bursty source
        // must be substantially over-dispersed.
        let windows = |mut w: Box<dyn Workload>, cycles: u64| -> Vec<usize> {
            w.init(16);
            let win = 100;
            let mut counts = vec![0usize; (cycles / win) as usize];
            for c in 0..cycles {
                let n: usize = w.generate(c).iter().map(|s| s.payload.len()).sum();
                counts[(c / win) as usize] += n;
            }
            counts
        };
        let var = |xs: &[usize]| {
            let n = xs.len() as f64;
            let mean = xs.iter().sum::<usize>() as f64 / n;
            (xs.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / n, mean)
        };
        let bursty = windows(Box::new(BurstyUniform::new(0.4, 4, 0.005, 0.015, 7)), 30_000);
        let smooth = windows(Box::new(mira_noc::traffic::UniformRandom::new(0.1, 4, 7)), 30_000);
        let (vb, mb) = var(&bursty);
        let (vs, ms) = var(&smooth);
        // Similar means…
        assert!((mb - ms).abs() < ms * 0.25, "means {mb} vs {ms}");
        // …but far larger variance for the bursty source.
        assert!(vb > vs * 3.0, "variance {vb} vs {vs}");
    }

    #[test]
    #[should_panic(expected = "p_on")]
    fn invalid_probability_panics() {
        let _ = BurstyUniform::new(0.1, 4, 0.0, 0.5, 1);
    }
}
