//! Packet-trace recording and replay.
//!
//! Traces are the interchange format between the `mira-nuca` CMP model
//! and the network simulator: one JSON object per line, each describing
//! a packet injection with its cycle, endpoints, class, and payload
//! words. Replay is open-loop and timestamp-faithful, the standard
//! methodology for trace-driven NoC evaluation (and what the paper does
//! with its Simics-derived "MP traces").

use std::io::{BufRead, Write};

use serde::{Deserialize, Serialize};

use mira_noc::flit::FlitData;
use mira_noc::ids::NodeId;
use mira_noc::packet::{PacketClass, PacketSpec};
use mira_noc::traffic::Workload;

/// One packet injection event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Injection cycle.
    pub cycle: u64,
    /// Source node index.
    pub src: usize,
    /// Destination node index.
    pub dst: usize,
    /// Message class.
    pub class: PacketClass,
    /// Payload words, one inner vector per flit.
    pub payload: Vec<Vec<u32>>,
}

impl TraceRecord {
    /// Builds a record from a packet spec.
    pub fn from_spec(cycle: u64, spec: &PacketSpec) -> Self {
        TraceRecord {
            cycle,
            src: spec.src.index(),
            dst: spec.dst.index(),
            class: spec.class,
            payload: spec.payload.iter().map(|f| f.words().to_vec()).collect(),
        }
    }

    /// Converts back to a packet spec.
    pub fn to_spec(&self) -> PacketSpec {
        PacketSpec {
            src: NodeId(self.src),
            dst: NodeId(self.dst),
            class: self.class,
            payload: self.payload.iter().map(|w| FlitData::new(w.clone())).collect(),
        }
    }

    /// Packet length in flits.
    pub fn len_flits(&self) -> usize {
        self.payload.len()
    }
}

/// Writes trace records as JSON lines.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    out: W,
    records: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Creates a writer over any `Write` sink (pass `&mut buf` for an
    /// in-memory trace).
    pub fn new(out: W) -> Self {
        TraceWriter { out, records: 0 }
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// Propagates serialisation and I/O failures.
    pub fn write(&mut self, record: &TraceRecord) -> std::io::Result<()> {
        let line = serde_json::to_string(record)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        writeln!(self.out, "{line}")?;
        self.records += 1;
        Ok(())
    }

    /// Number of records written so far.
    pub fn records_written(&self) -> u64 {
        self.records
    }

    /// Flushes and returns the underlying sink.
    ///
    /// # Errors
    ///
    /// Propagates the flush failure.
    pub fn finish(mut self) -> std::io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Reads a JSON-lines trace.
///
/// # Errors
///
/// Returns an error if a line fails to parse.
pub fn read_trace<R: BufRead>(input: R) -> std::io::Result<Vec<TraceRecord>> {
    let mut records = Vec::new();
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let rec: TraceRecord = serde_json::from_str(&line)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        records.push(rec);
    }
    Ok(records)
}

/// Open-loop trace replay: injects each record at its original cycle.
#[derive(Debug)]
pub struct TraceReplay {
    /// Records sorted by cycle.
    records: Vec<TraceRecord>,
    next: usize,
    /// Repeat the trace with this period (0 = play once).
    loop_period: u64,
    offset: u64,
}

impl TraceReplay {
    /// Creates a replay over `records` (sorted by cycle internally).
    pub fn new(mut records: Vec<TraceRecord>) -> Self {
        records.sort_by_key(|r| r.cycle);
        TraceReplay { records, next: 0, loop_period: 0, offset: 0 }
    }

    /// Loops the trace: after the last record, restart shifted by
    /// `period` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero or smaller than the trace span.
    #[must_use]
    pub fn looped(mut self, period: u64) -> Self {
        let span = self.records.last().map_or(0, |r| r.cycle);
        assert!(period > span, "loop period must exceed the trace span {span}");
        self.loop_period = period;
        self
    }

    /// Total records in one pass.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

impl Workload for TraceReplay {
    fn generate(&mut self, cycle: u64) -> Vec<PacketSpec> {
        let mut specs = Vec::new();
        if self.records.is_empty() {
            return specs;
        }
        loop {
            if self.next >= self.records.len() {
                if self.loop_period == 0 {
                    break;
                }
                self.next = 0;
                self.offset += self.loop_period;
            }
            let due = self.records[self.next].cycle + self.offset;
            if due > cycle {
                break;
            }
            specs.push(self.records[self.next].to_spec());
            self.next += 1;
        }
        specs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn sample_records() -> Vec<TraceRecord> {
        vec![
            TraceRecord {
                cycle: 0,
                src: 0,
                dst: 5,
                class: PacketClass::ReadRequest,
                payload: vec![vec![7, 0, 0, 0]],
            },
            TraceRecord {
                cycle: 3,
                src: 5,
                dst: 0,
                class: PacketClass::DataResponse,
                payload: vec![vec![1, 2, 3, 4]; 5],
            },
        ]
    }

    #[test]
    fn roundtrip_through_json_lines() {
        let mut buf = Vec::new();
        {
            let mut w = TraceWriter::new(&mut buf);
            for r in sample_records() {
                w.write(&r).unwrap();
            }
            assert_eq!(w.records_written(), 2);
            w.finish().unwrap();
        }
        let back = read_trace(BufReader::new(&buf[..])).unwrap();
        assert_eq!(back, sample_records());
    }

    #[test]
    fn spec_roundtrip() {
        let rec = &sample_records()[1];
        let spec = rec.to_spec();
        assert_eq!(spec.payload.len(), 5);
        let again = TraceRecord::from_spec(rec.cycle, &spec);
        assert_eq!(&again, rec);
    }

    #[test]
    fn replay_respects_timestamps() {
        let mut replay = TraceReplay::new(sample_records());
        assert_eq!(replay.generate(0).len(), 1);
        assert_eq!(replay.generate(1).len(), 0);
        assert_eq!(replay.generate(2).len(), 0);
        assert_eq!(replay.generate(3).len(), 1);
        assert_eq!(replay.generate(4).len(), 0);
    }

    #[test]
    fn replay_handles_skipped_cycles() {
        // A generate() call at a later cycle delivers everything due.
        let mut replay = TraceReplay::new(sample_records());
        assert_eq!(replay.generate(10).len(), 2);
    }

    #[test]
    fn looped_replay_repeats() {
        let mut replay = TraceReplay::new(sample_records()).looped(10);
        assert_eq!(replay.generate(5).len(), 2); // first pass
        assert_eq!(replay.generate(10).len(), 1); // cycle 0 + 10
        assert_eq!(replay.generate(13).len(), 1); // cycle 3 + 10
        assert_eq!(replay.generate(20).len(), 1); // next lap
    }

    #[test]
    fn bad_json_is_an_error() {
        let text = b"{not json}\n";
        assert!(read_trace(BufReader::new(&text[..])).is_err());
    }

    #[test]
    fn unsorted_records_are_sorted() {
        let mut recs = sample_records();
        recs.reverse();
        let mut replay = TraceReplay::new(recs);
        let first = replay.generate(0);
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].class, PacketClass::ReadRequest);
    }
}
