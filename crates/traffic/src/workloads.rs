//! Application workload profiles (the Simics-trace substitution).
//!
//! The paper drives its "MP traces" experiments with Simics full-system
//! traces of commercial and scientific workloads. Those traces are not
//! redistributable, so the reproduction models each application as a
//! statistical profile calibrated to the three distributions the paper
//! publishes about them:
//!
//! * **Fig. 1** — word-pattern breakdown (all-0 / all-1 / other);
//! * **Fig. 2** — packet-type mix (short address/coherence control
//!   packets vs cache-line data packets);
//! * **Fig. 13(a)** — short-flit percentage ("up to 58 %, on average
//!   40 % of flits are short").
//!
//! MIRA's results depend on the traces only through these distributions
//! plus the CPU↔cache bimodal spatial pattern, which the `mira-nuca`
//! cache model regenerates structurally; that is what makes the
//! substitution behaviour-preserving (DESIGN.md §4).

use serde::{Deserialize, Serialize};

use crate::patterns::PatternMix;

/// The applications evaluated in the paper (§4.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Application {
    /// TPC-W online bookstore (JBoss + MySQL).
    Tpcw,
    /// SPECjbb2000 Java server.
    Sjbb,
    /// Apache static web serving under SURGE.
    Apache,
    /// Zeus event-driven web server.
    Zeus,
    /// SPEComp2001 `art` (scientific, OpenMP).
    Art,
    /// SPEComp2001 `swim` (scientific, OpenMP).
    Swim,
    /// SPLASH-2 `barnes` N-body.
    Barnes,
    /// SPLASH-2 `ocean`.
    Ocean,
    /// MediaBench II multimedia mix.
    Multimedia,
}

impl Application {
    /// Every profiled application.
    pub const ALL: [Application; 9] = [
        Application::Tpcw,
        Application::Sjbb,
        Application::Apache,
        Application::Zeus,
        Application::Art,
        Application::Swim,
        Application::Barnes,
        Application::Ocean,
        Application::Multimedia,
    ];

    /// The six presented in the paper's results figures ("for clarity, we
    /// present results using only six of them that represent different
    /// categories of data patterns").
    pub const PRESENTED: [Application; 6] = [
        Application::Tpcw,
        Application::Sjbb,
        Application::Apache,
        Application::Zeus,
        Application::Barnes,
        Application::Multimedia,
    ];

    /// Lowercase name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Application::Tpcw => "tpcw",
            Application::Sjbb => "sjbb",
            Application::Apache => "apache",
            Application::Zeus => "zeus",
            Application::Art => "art",
            Application::Swim => "swim",
            Application::Barnes => "barnes",
            Application::Ocean => "ocean",
            Application::Multimedia => "multimedia",
        }
    }

    /// The calibrated statistical profile.
    pub fn profile(self) -> AppProfile {
        // Columns: short-flit % (Fig. 13(a): commercial server workloads
        // high, multimedia low, average ≈40 % over the presented six);
        // control-packet fraction (Fig. 2: coherence-heavy commercial
        // codes above 60 %); offered load (NUCA injection is low —
        // paper §3.2.4); and the word-pattern mix behind Fig. 1.
        let (short, control, load, zeros, ones) = match self {
            Application::Tpcw => (0.58, 0.66, 0.050, 0.52, 0.10),
            Application::Sjbb => (0.52, 0.64, 0.060, 0.47, 0.09),
            Application::Apache => (0.45, 0.62, 0.080, 0.41, 0.08),
            Application::Zeus => (0.42, 0.62, 0.070, 0.38, 0.08),
            Application::Art => (0.30, 0.54, 0.120, 0.27, 0.05),
            Application::Swim => (0.25, 0.52, 0.140, 0.22, 0.05),
            Application::Barnes => (0.20, 0.56, 0.100, 0.18, 0.04),
            Application::Ocean => (0.28, 0.54, 0.120, 0.25, 0.05),
            Application::Multimedia => (0.10, 0.50, 0.090, 0.08, 0.03),
        };
        AppProfile {
            app: self,
            short_flit_fraction: short,
            control_fraction: control,
            offered_load: load,
            patterns: PatternMix::new(zeros, ones),
            read_fraction: 0.7,
            shared_line_fraction: if control > 0.6 { 0.25 } else { 0.12 },
        }
    }
}

impl std::fmt::Display for Application {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Statistical profile of one application's NUCA traffic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AppProfile {
    /// Which application this describes.
    pub app: Application,
    /// Fraction of flits that are short (Fig. 13(a)).
    pub short_flit_fraction: f64,
    /// Fraction of packets that are control messages (Fig. 2).
    pub control_fraction: f64,
    /// Offered load in flits/node/cycle.
    pub offered_load: f64,
    /// Word-pattern mix of data payloads (Fig. 1).
    pub patterns: PatternMix,
    /// Fraction of memory accesses that are reads (drives GetS vs GetX in
    /// the cache model).
    pub read_fraction: f64,
    /// Fraction of lines shared between cores (drives invalidations).
    pub shared_line_fraction: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_are_valid() {
        for app in Application::ALL {
            let p = app.profile();
            assert!((0.0..=1.0).contains(&p.short_flit_fraction), "{app}");
            assert!((0.0..=1.0).contains(&p.control_fraction), "{app}");
            assert!(p.offered_load > 0.0 && p.offered_load < 0.5, "{app}");
            assert!(p.patterns.redundant_fraction() <= 1.0, "{app}");
        }
    }

    /// Fig. 13(a): short-flit share tops out near 58 % and averages ≈40 %
    /// over the presented applications.
    #[test]
    fn short_flit_calibration_matches_fig13a() {
        let max =
            Application::ALL.iter().map(|a| a.profile().short_flit_fraction).fold(0.0, f64::max);
        assert!((max - 0.58).abs() < 1e-12);

        let presented: f64 =
            Application::PRESENTED.iter().map(|a| a.profile().short_flit_fraction).sum::<f64>()
                / Application::PRESENTED.len() as f64;
        assert!((presented - 0.40).abs() < 0.03, "average {presented}");
    }

    /// Fig. 2: a significant share of traffic is short control packets,
    /// higher for coherence-heavy commercial workloads.
    #[test]
    fn control_share_ordering() {
        let tpcw = Application::Tpcw.profile().control_fraction;
        let mm = Application::Multimedia.profile().control_fraction;
        assert!(tpcw > mm);
        for app in Application::ALL {
            let c = app.profile().control_fraction;
            assert!((0.4..0.8).contains(&c), "{app}: {c}");
        }
    }

    /// Fig. 1: zero words dominate the redundant patterns, and the
    /// ranking follows the short-flit ranking.
    #[test]
    fn pattern_mix_consistent_with_short_flits() {
        for app in Application::ALL {
            let p = app.profile();
            assert!(p.patterns.zero_fraction > p.patterns.one_fraction, "{app}");
            // A workload with more short flits must have more redundant
            // words.
            assert!((p.patterns.redundant_fraction() - p.short_flit_fraction).abs() < 0.1, "{app}");
        }
    }

    #[test]
    fn presented_subset_is_six_distinct() {
        let mut names: Vec<_> = Application::PRESENTED.iter().map(|a| a.name()).collect();
        names.dedup();
        assert_eq!(names.len(), 6);
    }
}
