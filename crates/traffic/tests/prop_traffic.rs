//! Property tests on traffic generation and trace handling.

use proptest::prelude::*;

use mira_noc::packet::PacketClass;
use mira_noc::traffic::Workload;
use mira_traffic::patterns::PatternMix;
use mira_traffic::trace::{read_trace, TraceRecord, TraceReplay, TraceWriter};

fn record_strategy() -> impl Strategy<Value = TraceRecord> {
    (
        0u64..1000,
        0usize..36,
        0usize..36,
        0usize..6,
        proptest::collection::vec(proptest::collection::vec(any::<u32>(), 1..5), 1..6),
    )
        .prop_map(|(cycle, src, dst, class, payload)| TraceRecord {
            cycle,
            src,
            dst,
            class: PacketClass::ALL[class],
            payload,
        })
}

proptest! {
    /// Traces survive a JSON round trip exactly.
    #[test]
    fn trace_json_roundtrip(records in proptest::collection::vec(record_strategy(), 0..40)) {
        let mut buf = Vec::new();
        {
            let mut w = TraceWriter::new(&mut buf);
            for r in &records {
                w.write(r).unwrap();
            }
            w.finish().unwrap();
        }
        let back = read_trace(std::io::BufReader::new(&buf[..])).unwrap();
        prop_assert_eq!(back, records);
    }

    /// Replay emits every record exactly once, in cycle order, at or
    /// after its stamped cycle.
    #[test]
    fn replay_complete_and_ordered(records in proptest::collection::vec(record_strategy(), 0..40)) {
        let n = records.len();
        let mut replay = TraceReplay::new(records);
        let mut emitted = 0usize;
        for cycle in 0..1100u64 {
            emitted += replay.generate(cycle).len();
        }
        prop_assert_eq!(emitted, n);
    }

    /// Pattern sampling respects the mix within statistical tolerance.
    #[test]
    fn pattern_mix_fractions(zero in 0.0f64..0.7, one in 0.0f64..0.25) {
        prop_assume!(zero + one <= 1.0);
        let mix = PatternMix::new(zero, one);
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
        let mut counts = mira_traffic::patterns::PatternCounts::default();
        for _ in 0..2_000 {
            counts.observe(&mix.sample_flit(4, &mut rng));
        }
        let (z, o, _) = counts.fractions();
        prop_assert!((z - zero).abs() < 0.05, "zeros {z} vs {zero}");
        prop_assert!((o - one).abs() < 0.04, "ones {o} vs {one}");
    }
}
