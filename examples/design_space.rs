//! Design-space ablation beyond the paper: how buffer depth and VC count
//! move the latency/power point of the 3DM router.
//!
//! Run with: `cargo run --release --example design_space`

use mira::arch::Arch;
use mira::experiments::{quick_sim_config, EXPERIMENT_SEED};
use mira::noc::config::{NetworkConfig, PipelineConfig};
use mira::noc::sim::Simulator;
use mira::noc::traffic::UniformRandom;

fn main() {
    let rate = 0.15;
    println!("3DM router at {rate} flits/node/cycle, varying (VCs, buffer depth)\n");
    println!("{:>6} {:>7} {:>12} {:>12}", "VCs", "depth", "latency(cy)", "saturated");
    for vcs in [1usize, 2, 4] {
        for depth in [2usize, 4, 8] {
            let cfg = NetworkConfig::builder()
                .vcs_per_port(vcs)
                .buffer_depth(depth)
                .layers(4)
                .pipeline(PipelineConfig::combined_st_lt())
                .build();
            let mut sim =
                Simulator::new(Arch::ThreeDM.topology(), cfg, quick_sim_config());
            let report = sim.run(Box::new(UniformRandom::new(rate, 5, EXPERIMENT_SEED)));
            println!(
                "{vcs:>6} {depth:>7} {:>12.1} {:>12}",
                report.avg_latency,
                if report.saturated { "yes" } else { "no" }
            );
        }
    }
    println!("\n(the paper fixes V=2, k=4 — §3.2.4's design decisions)");
}
