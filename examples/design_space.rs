//! Design-space ablation beyond the paper: how buffer depth and VC count
//! move the latency/power point of the 3DM router.
//!
//! The 3×3 grid fans out on the parallel experiment runner (worker
//! count from `MIRA_JOBS` or the machine's parallelism); every point
//! replays the identical seeded workload, so the comparison isolates
//! the router parameters.
//!
//! Run with: `cargo run --release --example design_space`

use mira::arch::Arch;
use mira::experiments::common::run_custom;
use mira::experiments::runner::{Runner, SimPoint};
use mira::experiments::{quick_sim_config, EXPERIMENT_SEED};
use mira::noc::config::{NetworkConfig, PipelineConfig};
use mira::noc::traffic::UniformRandom;

fn main() {
    let rate = 0.15;
    let grid: Vec<(usize, usize)> = [1usize, 2, 4]
        .iter()
        .flat_map(|&vcs| [2usize, 4, 8].iter().map(move |&depth| (vcs, depth)))
        .collect();

    let points = grid
        .iter()
        .map(|&(vcs, depth)| {
            SimPoint::new(format!("V={vcs} k={depth}"), EXPERIMENT_SEED, move |seed| {
                let cfg = NetworkConfig::builder()
                    .vcs_per_port(vcs)
                    .buffer_depth(depth)
                    .layers(4)
                    .pipeline(PipelineConfig::combined_st_lt())
                    .build();
                let w = UniformRandom::new(rate, 5, seed);
                run_custom(
                    Arch::ThreeDM,
                    Arch::ThreeDM.topology(),
                    cfg,
                    Box::new(w),
                    quick_sim_config(),
                )
            })
        })
        .collect();

    let batch = Runner::from_env().run(points);

    println!("3DM router at {rate} flits/node/cycle, varying (VCs, buffer depth)\n");
    println!(
        "{:>6} {:>7} {:>12} {:>12} {:>10}",
        "VCs", "depth", "latency(cy)", "saturated", "wall(ms)"
    );
    for (&(vcs, depth), outcome) in grid.iter().zip(&batch.outcomes) {
        let report = &outcome.result.report;
        println!(
            "{vcs:>6} {depth:>7} {:>12.1} {:>12} {:>10.0}",
            report.avg_latency,
            if report.saturated { "yes" } else { "no" },
            outcome.wall.as_secs_f64() * 1e3,
        );
    }
    println!(
        "\n[{} points in {:.2} s wall on {} workers — {:.2} s of simulation]",
        batch.summary.points,
        batch.summary.wall_ms / 1e3,
        batch.summary.jobs,
        batch.summary.busy_ms / 1e3,
    );
    println!("(the paper fixes V=2, k=4 — §3.2.4's design decisions)");
}
