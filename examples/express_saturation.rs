//! Saturation study: sweep the injection rate on the plain 6×6 mesh and
//! the express mesh and watch where each saturates (the reason 3DM-E is
//! "more robust even in the saturation region", paper §4.2.1).
//!
//! Run with: `cargo run --release --example express_saturation`

use mira::arch::Arch;
use mira::experiments::{quick_sim_config, run_arch, EXPERIMENT_SEED};
use mira::noc::traffic::UniformRandom;

fn main() {
    let rates = [0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45];
    println!("{:>8} {:>16} {:>16}", "rate", "3DM lat (cy)", "3DM-E lat (cy)");
    for rate in rates {
        let lat = |arch: Arch| {
            let w = UniformRandom::new(rate, 5, EXPERIMENT_SEED);
            let r = run_arch(arch, false, Box::new(w), quick_sim_config());
            (r.report.avg_latency, r.report.saturated)
        };
        let (l_m, s_m) = lat(Arch::ThreeDM);
        let (l_e, s_e) = lat(Arch::ThreeDME);
        println!(
            "{rate:>8.2} {l_m:>14.1}{} {l_e:>14.1}{}",
            if s_m { " *" } else { "  " },
            if s_e { " *" } else { "  " },
        );
    }
    println!("(* = saturated: measured packets could not drain)");
}
