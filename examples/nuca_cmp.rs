//! Drive the NUCA CMP coherence model: synthesise a TPC-W-like trace
//! through the MESI directory protocol, characterise it (the paper's
//! Figs. 1/2/13(a) statistics), and replay it on the 3DM router.
//!
//! Run with: `cargo run --release --example nuca_cmp`

use mira::arch::Arch;
use mira::experiments::{quick_sim_config, run_arch, EXPERIMENT_SEED};
use mira::noc::packet::PacketClass;
use mira::nuca::cmp::{CmpConfig, CmpSystem, TraceStats};
use mira::traffic::trace::TraceReplay;
use mira::traffic::workloads::Application;

fn main() {
    let app = Application::Tpcw;
    let arch = Arch::ThreeDM;
    let cycles = 20_000;

    let mut sys = CmpSystem::new(CmpConfig::for_app(
        app,
        arch.cpu_nodes(),
        arch.cache_nodes(),
        EXPERIMENT_SEED,
    ));
    sys.calibrate_rate(app.profile().offered_load, 36, 10_000);
    let trace = sys.generate_trace(cycles);
    let stats = TraceStats::from_trace(&trace, cycles);

    println!("{app} trace: {} packets, {} flits over {cycles} cycles", stats.packets, stats.flits);
    println!("  control fraction : {:>5.1}%", stats.control_fraction() * 100.0);
    println!("  short payload    : {:>5.1}%", stats.short_payload_fraction() * 100.0);
    let (z, o, other) = stats.patterns.fractions();
    println!(
        "  word patterns    : {:.1}% all-0, {:.1}% all-1, {:.1}% other",
        z * 100.0,
        o * 100.0,
        other * 100.0
    );
    println!("  packets by class :");
    for class in PacketClass::ALL {
        println!("    {:>10}: {}", class.name(), stats.packets_per_class[class.table_index()]);
    }

    let run = run_arch(arch, true, Box::new(TraceReplay::new(trace)), quick_sim_config());
    println!(
        "\nreplayed on {}: {:.1} cycles avg latency, {:.2} W ({} packets measured)",
        arch.name(),
        run.report.avg_latency,
        run.avg_power_w,
        run.report.packets_ejected
    );
}
