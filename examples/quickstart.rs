//! Quickstart: simulate the 2DB baseline and the 3DM-E multi-layered
//! router under identical uniform-random traffic and compare latency,
//! power, and power-delay product.
//!
//! Run with: `cargo run --release --example quickstart`

use mira::arch::Arch;
use mira::experiments::{quick_sim_config, run_arch, EXPERIMENT_SEED};
use mira::noc::traffic::UniformRandom;

fn main() {
    let rate = 0.10; // flits/node/cycle
    println!("uniform random traffic at {rate} flits/node/cycle, 36 nodes\n");
    println!(
        "{:>10} {:>12} {:>10} {:>10} {:>12}",
        "arch", "latency(cy)", "hops", "power(W)", "PDP(W*cy)"
    );
    let mut base_pdp = None;
    for arch in Arch::ALL {
        let workload = UniformRandom::new(rate, 5, EXPERIMENT_SEED);
        let run = run_arch(arch, false, Box::new(workload), quick_sim_config());
        let pdp = run.pdp;
        let base = *base_pdp.get_or_insert(pdp);
        println!(
            "{:>10} {:>12.1} {:>10.2} {:>10.2} {:>9.0} ({:>4.0}%)",
            arch.name(),
            run.report.avg_latency,
            run.report.avg_hops,
            run.avg_power_w,
            pdp,
            pdp / base * 100.0
        );
    }
    println!("\n(3DM-E should win on every column — paper Figs. 11(a), 12(a), 12(d))");
}
