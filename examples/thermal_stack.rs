//! Thermal exploration: the 3DM stacked chip under load, with and
//! without short-flit layer shutdown, per-layer temperature profile.
//!
//! Run with: `cargo run --release --example thermal_stack`

use mira::arch::Arch;
use mira::experiments::quick_sim_config;
use mira::experiments::thermal::{chip_model, network_power_at};

fn main() {
    let arch = Arch::ThreeDM;
    let rate = 0.20;
    let p_dense = network_power_at(arch, rate, 0.0, quick_sim_config());
    let p_short = network_power_at(arch, rate, 0.5, quick_sim_config());
    println!(
        "network power at {rate} flits/node/cycle: {:.2} W dense, {:.2} W with 50% short flits + shutdown",
        p_dense, p_short
    );

    let hot = chip_model(arch, p_dense).solve();
    let cool = chip_model(arch, p_short).solve();
    println!("\nlayer means (K), top (sink side) to bottom:");
    for layer in 0..4 {
        let mean = |t: &mira::thermal::Temperatures| {
            let mut sum = 0.0;
            for r in 0..6 {
                for c in 0..6 {
                    sum += t.cell_k(layer, r, c);
                }
            }
            sum / 36.0
        };
        println!("  layer {layer}: {:>7.2} dense | {:>7.2} shutdown", mean(&hot), mean(&cool));
    }
    println!(
        "\nmean reduction {:.2} K, hottest cell {:.2} K -> {:.2} K",
        hot.mean_k() - cool.mean_k(),
        hot.max_k(),
        cool.max_k()
    );
}
