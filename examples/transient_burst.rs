//! Transient thermal response to bursty traffic: drive the 3DM chip with
//! an on/off workload, sample the network power in windows, and step the
//! transient thermal solver through the resulting power trace — the
//! time-domain view behind the paper's steady-state Fig. 13(c).
//!
//! Run with: `cargo run --release --example transient_burst`

use mira::arch::Arch;
use mira::experiments::thermal::chip_model;
use mira::experiments::{run_arch, EXPERIMENT_SEED};
use mira::noc::sim::SimConfig;
use mira::thermal::transient::TransientSim;
use mira::traffic::synthetic::BurstyUniform;

fn main() {
    let arch = Arch::ThreeDM;

    // Measure network power in ON-ish and OFF-ish phases by running the
    // bursty workload at two duty cycles.
    let power_at = |p_on: f64, p_off: f64| {
        let w = BurstyUniform::new(0.5, 5, p_on, p_off, EXPERIMENT_SEED);
        let cfg = SimConfig {
            warmup_cycles: 300,
            measure_cycles: 2_000,
            drain_cycles: 8_000,
            ..SimConfig::default()
        };
        run_arch(arch, false, Box::new(w), cfg).avg_power_w
    };
    let p_busy = power_at(0.05, 0.005); // ~91% duty
    let p_idle = power_at(0.005, 0.05); // ~9% duty
    println!("network power: busy phase {p_busy:.2} W, idle phase {p_idle:.2} W");

    // 200 ms of alternating 25 ms busy / 25 ms idle phases at 1 ms steps.
    let mut sim = TransientSim::new(chip_model(arch, p_idle), 1e-3);
    println!("\n   t(ms)   phase   mean(K)    max(K)");
    for step in 0..200 {
        let busy = (step / 25) % 2 == 1;
        let chip = chip_model(arch, if busy { p_busy } else { p_idle });
        *sim.chip_mut() = chip;
        sim.step();
        if step % 10 == 9 {
            println!(
                "{:>8.0} {:>7} {:>9.2} {:>9.2}",
                sim.time_s() * 1e3,
                if busy { "busy" } else { "idle" },
                sim.mean_k(),
                sim.max_k()
            );
        }
    }
    println!("\n(the chip breathes with the bursts — the transient view of Fig. 13(c))");
}
