#!/usr/bin/env python3
"""Validate flight-recorder black-box dumps against docs/blackbox.schema.json.

Stdlib-only subset JSON-Schema validator (no jsonschema dependency): it
supports exactly the keywords the schema uses — type (incl. union
lists), const, enum, minimum, minItems, required, properties, items,
and local $ref into #/definitions. Unknown keywords are a hard error so
the schema cannot silently outgrow the validator.

Usage: validate_blackbox.py <dump.json> [<dump.json> ...]

Also runs cross-field consistency checks the schema language cannot
express: the trigger appears in the firing log, counts cover the log,
and stuck-packet ages are capture-relative.

Exits non-zero on the first invalid dump.
"""

import json
import sys
from pathlib import Path

SCHEMA_PATH = Path(__file__).resolve().parent.parent / "docs" / "blackbox.schema.json"

HANDLED = {
    "$schema", "$ref", "title", "description", "definitions",
    "type", "const", "enum", "minimum", "minItems", "required",
    "properties", "items",
}

TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "null": type(None),
}


class Invalid(Exception):
    pass


def check_type(value, expected, path):
    names = expected if isinstance(expected, list) else [expected]
    for name in names:
        if name == "integer":
            if isinstance(value, int) and not isinstance(value, bool):
                return
        elif name == "number":
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                return
        elif isinstance(value, TYPES[name]) and not (
            name != "boolean" and isinstance(value, bool)
        ):
            return
    raise Invalid(f"{path}: expected {names}, got {type(value).__name__}")


def validate(value, schema, root, path="$"):
    unknown = set(schema) - HANDLED
    if unknown:
        raise Invalid(f"{path}: schema uses unsupported keywords {sorted(unknown)}")
    if "$ref" in schema:
        ref = schema["$ref"]
        if not ref.startswith("#/definitions/"):
            raise Invalid(f"{path}: unsupported $ref {ref}")
        validate(value, root["definitions"][ref.rsplit("/", 1)[1]], root, path)
        return
    if "const" in schema and value != schema["const"]:
        raise Invalid(f"{path}: expected const {schema['const']!r}, got {value!r}")
    if "enum" in schema and value not in schema["enum"]:
        raise Invalid(f"{path}: {value!r} not in {schema['enum']}")
    if "type" in schema:
        check_type(value, schema["type"], path)
    if "minimum" in schema and isinstance(value, (int, float)) and value < schema["minimum"]:
        raise Invalid(f"{path}: {value} < minimum {schema['minimum']}")
    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                raise Invalid(f"{path}: missing required key {key!r}")
        for key, sub in schema.get("properties", {}).items():
            if key in value:
                validate(value[key], sub, root, f"{path}.{key}")
    if isinstance(value, list):
        if len(value) < schema.get("minItems", 0):
            raise Invalid(f"{path}: {len(value)} items < minItems {schema['minItems']}")
        if "items" in schema:
            for i, item in enumerate(value):
                validate(item, schema["items"], root, f"{path}[{i}]")


def check_consistency(bb, path="$"):
    fired = bb["fired"]
    trig = bb["trigger"]
    if not any(f["kind"] == trig["kind"] and f["cycle"] == trig["cycle"] for f in fired):
        raise Invalid(f"{path}: trigger {trig['kind']}@{trig['cycle']} not in firing log")
    by_kind = {}
    for f in fired:
        by_kind[f["kind"]] = by_kind.get(f["kind"], 0) + 1
    for kind, n in by_kind.items():
        if bb["counts"][kind] < n:
            raise Invalid(f"{path}: counts.{kind}={bb['counts'][kind]} < {n} logged firings")
    for s in bb["stuck_packets"]:
        if s["created_at"] + s["age"] != bb["cycle"]:
            raise Invalid(
                f"{path}: stuck packet {s['packet']} age {s['age']} is not "
                f"capture-relative (created {s['created_at']}, cycle {bb['cycle']})"
            )
    live = {a["packet"] for a in bb["arena"]}
    stuck = {s["packet"] for s in bb["stuck_packets"]}
    if not live <= stuck:
        raise Invalid(f"{path}: arena holds packets not in the stuck set: {sorted(live - stuck)[:5]}")


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    schema = json.loads(SCHEMA_PATH.read_text())
    for arg in argv[1:]:
        try:
            bb = json.loads(Path(arg).read_text())
            validate(bb, schema, schema)
            check_consistency(bb)
        except Invalid as e:
            print(f"{arg}: INVALID: {e}", file=sys.stderr)
            return 1
        except (OSError, json.JSONDecodeError) as e:
            print(f"{arg}: unreadable: {e}", file=sys.stderr)
            return 1
        print(
            f"{arg}: valid v{bb['version']} dump — trigger {bb['trigger']['kind']} "
            f"@ cycle {bb['cycle']}, {len(bb['stuck_packets'])} stuck packets, "
            f"{len(bb['events'])} ring events"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
