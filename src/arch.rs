//! The six evaluated architectures (paper §4).
//!
//! [`Arch`] ties together everything one configuration needs: the
//! topology (with the right node pitch), the router configuration (port
//! count comes from the topology; the pipeline-combining decision comes
//! from the delay model, not by fiat), the CPU/cache node layout of
//! Fig. 10, and the matching power model geometry.

use mira_noc::config::{NetworkConfig, PipelineConfig};
use mira_noc::ids::NodeId;
use mira_noc::topology::{ExpressMesh2D, Mesh2D, Mesh3D, Topology};
use mira_power::delay::DelayModel;
use mira_power::energy::EnergyModel;
use mira_power::geometry::PaperArch;
use mira_power::network_power::NetworkPower;

/// One of the six evaluated router architectures.
///
/// Serializes as the variant identifier (e.g. `"ThreeDME"`), which is
/// what sweep checkpoints persist; [`Arch::name`] stays the paper's
/// display form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Arch {
    /// Baseline 2D, 6×6 mesh.
    TwoDB,
    /// Naïve 3D, 3×3×4 mesh.
    ThreeDB,
    /// Multi-layered 3D, 6×6 mesh, ST+LT combined.
    ThreeDM,
    /// 3DM without pipeline combining (ablation).
    ThreeDMNc,
    /// Multi-layered 3D with express channels, ST+LT combined.
    ThreeDME,
    /// 3DM-E without pipeline combining (ablation).
    ThreeDMENc,
}

impl Arch {
    /// All six, in the paper's presentation order.
    pub const ALL: [Arch; 6] = [
        Arch::TwoDB,
        Arch::ThreeDB,
        Arch::ThreeDM,
        Arch::ThreeDMNc,
        Arch::ThreeDME,
        Arch::ThreeDMENc,
    ];

    /// The four with distinct hardware (NC variants share their parent's).
    pub const HARDWARE: [Arch; 4] = [Arch::TwoDB, Arch::ThreeDB, Arch::ThreeDM, Arch::ThreeDME];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Arch::TwoDB => "2DB",
            Arch::ThreeDB => "3DB",
            Arch::ThreeDM => "3DM",
            Arch::ThreeDMNc => "3DM(NC)",
            Arch::ThreeDME => "3DM-E",
            Arch::ThreeDMENc => "3DM-E(NC)",
        }
    }

    /// The power-model architecture this maps onto.
    pub fn paper_arch(self) -> PaperArch {
        match self {
            Arch::TwoDB => PaperArch::TwoDB,
            Arch::ThreeDB => PaperArch::ThreeDB,
            Arch::ThreeDM | Arch::ThreeDMNc => PaperArch::ThreeDM,
            Arch::ThreeDME | Arch::ThreeDMENc => PaperArch::ThreeDME,
        }
    }

    /// Whether this variant merges switch and link traversal. The answer
    /// is derived from the delay model (paper Table 3), with the NC
    /// ablations forced to keep the stages separate.
    pub fn combines_st_lt(self) -> bool {
        match self {
            Arch::ThreeDMNc | Arch::ThreeDMENc => false,
            other => {
                let dm = DelayModel::default();
                dm.can_combine_st_lt(dm.paper_stage_delays(other.paper_arch()))
            }
        }
    }

    /// The 36-node topology (paper §4.1.1).
    pub fn topology(self) -> Box<dyn Topology> {
        match self.paper_arch() {
            PaperArch::TwoDB => Box::new(Mesh2D::with_pitch(6, 6, Mesh2D::PITCH_2DB_MM)),
            PaperArch::ThreeDB => Box::new(Mesh3D::new(3, 3, 4)),
            PaperArch::ThreeDM => Box::new(Mesh2D::with_pitch(6, 6, Mesh2D::PITCH_3DM_MM)),
            PaperArch::ThreeDME => Box::new(ExpressMesh2D::new(6, 6)),
        }
    }

    /// The network configuration (W=128, V=2, k=4; layers and pipeline
    /// per architecture).
    pub fn network_config(self, layer_shutdown: bool) -> NetworkConfig {
        let layers = self.paper_arch().geometry().layers.max(1);
        // The 2DB/3DB datapaths are monolithic, but the shutdown
        // technique still gates at word granularity within the layer
        // ("the shutdown technique can be applied to all four
        // architectures", §4.2.3) — so the word count, not the layer
        // count, bounds gating. We model both with `layers` datapath
        // slices for accounting; planar designs use 4 word-slices too.
        let slices = if layers > 1 { layers } else { 4 };
        let pipeline = if self.combines_st_lt() {
            PipelineConfig::combined_st_lt()
        } else {
            PipelineConfig::separate_lt()
        };
        NetworkConfig::builder()
            .flit_bits(128)
            .layers(slices)
            .layer_shutdown(layer_shutdown)
            .vcs_per_port(2)
            .buffer_depth(4)
            .pipeline(pipeline)
            .build()
    }

    /// CPU node placement (paper Fig. 10): 8 CPUs in the middle of the
    /// 6×6 layouts; on the top (sink-side) layer for 3DB.
    pub fn cpu_nodes(self) -> Vec<NodeId> {
        match self.paper_arch() {
            PaperArch::ThreeDB => {
                // 3×3×4: top layer is z = 3 → ids 27..36; eight CPUs and
                // one cache share it (Fig. 10(c)).
                (27..35).map(NodeId).collect()
            }
            _ => {
                // 6×6: the central 4×2 block (Fig. 10(a)/(b)).
                [13, 14, 15, 16, 19, 20, 21, 22].map(NodeId).to_vec()
            }
        }
    }

    /// Cache-bank node placement: the 28 nodes that are not CPUs.
    pub fn cache_nodes(self) -> Vec<NodeId> {
        let cpus = self.cpu_nodes();
        (0..36).map(NodeId).filter(|n| !cpus.contains(n)).collect()
    }

    /// The Orion-style energy model for this architecture's geometry.
    pub fn energy_model(self) -> EnergyModel {
        EnergyModel::for_arch(self.paper_arch())
    }

    /// Activity-counter pricing engine.
    pub fn network_power(self) -> NetworkPower {
        NetworkPower::new(self.energy_model())
    }
}

impl std::fmt::Display for Arch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_topologies_have_36_nodes() {
        for arch in Arch::ALL {
            assert_eq!(arch.topology().num_nodes(), 36, "{arch}");
        }
    }

    #[test]
    fn radix_matches_paper() {
        assert_eq!(Arch::TwoDB.topology().radix(), 5);
        assert_eq!(Arch::ThreeDB.topology().radix(), 7);
        assert_eq!(Arch::ThreeDM.topology().radix(), 5);
        assert_eq!(Arch::ThreeDME.topology().radix(), 9);
    }

    #[test]
    fn pipeline_combining_follows_delay_model() {
        assert!(!Arch::TwoDB.combines_st_lt(), "688 ps > 500 ps");
        assert!(!Arch::ThreeDB.combines_st_lt());
        assert!(Arch::ThreeDM.combines_st_lt(), "297.6 ps fits");
        assert!(Arch::ThreeDME.combines_st_lt(), "492.3 ps fits");
        assert!(!Arch::ThreeDMNc.combines_st_lt(), "NC ablation");
        assert!(!Arch::ThreeDMENc.combines_st_lt());
    }

    #[test]
    fn layout_partition_is_8_plus_28() {
        for arch in Arch::ALL {
            let cpus = arch.cpu_nodes();
            let caches = arch.cache_nodes();
            assert_eq!(cpus.len(), 8, "{arch}");
            assert_eq!(caches.len(), 28, "{arch}");
            for c in &cpus {
                assert!(!caches.contains(c), "{arch}: disjoint sets");
            }
        }
    }

    #[test]
    fn threedb_cpus_sit_on_top_layer() {
        let topo = Arch::ThreeDB.topology();
        for cpu in Arch::ThreeDB.cpu_nodes() {
            assert_eq!(topo.coords(cpu).z, 3, "CPUs live next to the heat sink");
        }
    }

    #[test]
    fn mesh_cpus_are_central() {
        let topo = Arch::TwoDB.topology();
        for cpu in Arch::TwoDB.cpu_nodes() {
            let c = topo.coords(cpu);
            assert!((1..=4).contains(&c.x) && (2..=3).contains(&c.y), "{cpu} at {c:?}");
        }
    }

    #[test]
    fn network_configs_validate() {
        for arch in Arch::ALL {
            let cfg = arch.network_config(true);
            assert!(cfg.validate().is_ok(), "{arch}");
            assert_eq!(cfg.flit_bits, 128);
            assert_eq!(cfg.router.vcs_per_port, 2);
        }
    }

    #[test]
    fn nc_variants_share_hardware() {
        assert_eq!(Arch::ThreeDMNc.paper_arch(), Arch::ThreeDM.paper_arch());
        assert_eq!(Arch::ThreeDMENc.paper_arch(), Arch::ThreeDME.paper_arch());
    }
}
